file(REMOVE_RECURSE
  "../bench/table1_distance_calls"
  "../bench/table1_distance_calls.pdb"
  "CMakeFiles/table1_distance_calls.dir/table1_distance_calls.cc.o"
  "CMakeFiles/table1_distance_calls.dir/table1_distance_calls.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_distance_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
