# Empty dependencies file for table1_distance_calls.
# This may be replaced when dependencies are built.
