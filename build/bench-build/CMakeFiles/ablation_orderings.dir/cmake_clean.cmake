file(REMOVE_RECURSE
  "../bench/ablation_orderings"
  "../bench/ablation_orderings.pdb"
  "CMakeFiles/ablation_orderings.dir/ablation_orderings.cc.o"
  "CMakeFiles/ablation_orderings.dir/ablation_orderings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
