# Empty compiler generated dependencies file for ablation_orderings.
# This may be replaced when dependencies are built.
