file(REMOVE_RECURSE
  "../bench/fig5_ranking"
  "../bench/fig5_ranking.pdb"
  "CMakeFiles/fig5_ranking.dir/fig5_ranking.cc.o"
  "CMakeFiles/fig5_ranking.dir/fig5_ranking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
