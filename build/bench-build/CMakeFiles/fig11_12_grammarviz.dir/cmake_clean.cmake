file(REMOVE_RECURSE
  "../bench/fig11_12_grammarviz"
  "../bench/fig11_12_grammarviz.pdb"
  "CMakeFiles/fig11_12_grammarviz.dir/fig11_12_grammarviz.cc.o"
  "CMakeFiles/fig11_12_grammarviz.dir/fig11_12_grammarviz.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_grammarviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
