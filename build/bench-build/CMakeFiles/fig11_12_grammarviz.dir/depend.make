# Empty dependencies file for fig11_12_grammarviz.
# This may be replaced when dependencies are built.
