# Empty dependencies file for fig1_video_density.
# This may be replaced when dependencies are built.
