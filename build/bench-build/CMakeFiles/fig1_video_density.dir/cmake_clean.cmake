file(REMOVE_RECURSE
  "../bench/fig1_video_density"
  "../bench/fig1_video_density.pdb"
  "CMakeFiles/fig1_video_density.dir/fig1_video_density.cc.o"
  "CMakeFiles/fig1_video_density.dir/fig1_video_density.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_video_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
