# Empty compiler generated dependencies file for fig3_power_discords.
# This may be replaced when dependencies are built.
