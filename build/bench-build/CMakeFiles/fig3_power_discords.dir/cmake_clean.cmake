file(REMOVE_RECURSE
  "../bench/fig3_power_discords"
  "../bench/fig3_power_discords.pdb"
  "CMakeFiles/fig3_power_discords.dir/fig3_power_discords.cc.o"
  "CMakeFiles/fig3_power_discords.dir/fig3_power_discords.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_power_discords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
