file(REMOVE_RECURSE
  "../bench/baselines_comparison"
  "../bench/baselines_comparison.pdb"
  "CMakeFiles/baselines_comparison.dir/baselines_comparison.cc.o"
  "CMakeFiles/baselines_comparison.dir/baselines_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
