# Empty dependencies file for fig2_ecg_density.
# This may be replaced when dependencies are built.
