file(REMOVE_RECURSE
  "../bench/fig2_ecg_density"
  "../bench/fig2_ecg_density.pdb"
  "CMakeFiles/fig2_ecg_density.dir/fig2_ecg_density.cc.o"
  "CMakeFiles/fig2_ecg_density.dir/fig2_ecg_density.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ecg_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
