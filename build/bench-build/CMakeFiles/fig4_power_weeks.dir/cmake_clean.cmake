file(REMOVE_RECURSE
  "../bench/fig4_power_weeks"
  "../bench/fig4_power_weeks.pdb"
  "CMakeFiles/fig4_power_weeks.dir/fig4_power_weeks.cc.o"
  "CMakeFiles/fig4_power_weeks.dir/fig4_power_weeks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_power_weeks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
