# Empty dependencies file for fig10_param_grid.
# This may be replaced when dependencies are built.
