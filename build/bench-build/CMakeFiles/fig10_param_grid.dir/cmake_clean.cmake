file(REMOVE_RECURSE
  "../bench/fig10_param_grid"
  "../bench/fig10_param_grid.pdb"
  "CMakeFiles/fig10_param_grid.dir/fig10_param_grid.cc.o"
  "CMakeFiles/fig10_param_grid.dir/fig10_param_grid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_param_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
