# Empty dependencies file for fig6_hilbert.
# This may be replaced when dependencies are built.
