file(REMOVE_RECURSE
  "../bench/fig6_hilbert"
  "../bench/fig6_hilbert.pdb"
  "CMakeFiles/fig6_hilbert.dir/fig6_hilbert.cc.o"
  "CMakeFiles/fig6_hilbert.dir/fig6_hilbert.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
