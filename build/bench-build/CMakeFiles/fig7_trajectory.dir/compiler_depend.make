# Empty compiler generated dependencies file for fig7_trajectory.
# This may be replaced when dependencies are built.
