file(REMOVE_RECURSE
  "../bench/fig7_trajectory"
  "../bench/fig7_trajectory.pdb"
  "CMakeFiles/fig7_trajectory.dir/fig7_trajectory.cc.o"
  "CMakeFiles/fig7_trajectory.dir/fig7_trajectory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
