# Empty dependencies file for ablation_numerosity.
# This may be replaced when dependencies are built.
