file(REMOVE_RECURSE
  "../bench/ablation_numerosity"
  "../bench/ablation_numerosity.pdb"
  "CMakeFiles/ablation_numerosity.dir/ablation_numerosity.cc.o"
  "CMakeFiles/ablation_numerosity.dir/ablation_numerosity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_numerosity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
