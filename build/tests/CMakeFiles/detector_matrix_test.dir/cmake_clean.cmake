file(REMOVE_RECURSE
  "CMakeFiles/detector_matrix_test.dir/integration/detector_matrix_test.cc.o"
  "CMakeFiles/detector_matrix_test.dir/integration/detector_matrix_test.cc.o.d"
  "detector_matrix_test"
  "detector_matrix_test.pdb"
  "detector_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
