# Empty dependencies file for detector_matrix_test.
# This may be replaced when dependencies are built.
