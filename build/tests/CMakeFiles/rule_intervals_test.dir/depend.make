# Empty dependencies file for rule_intervals_test.
# This may be replaced when dependencies are built.
