file(REMOVE_RECURSE
  "CMakeFiles/rule_intervals_test.dir/grammar/rule_intervals_test.cc.o"
  "CMakeFiles/rule_intervals_test.dir/grammar/rule_intervals_test.cc.o.d"
  "rule_intervals_test"
  "rule_intervals_test.pdb"
  "rule_intervals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_intervals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
