file(REMOVE_RECURSE
  "CMakeFiles/incremental_sequitur_test.dir/grammar/incremental_sequitur_test.cc.o"
  "CMakeFiles/incremental_sequitur_test.dir/grammar/incremental_sequitur_test.cc.o.d"
  "incremental_sequitur_test"
  "incremental_sequitur_test.pdb"
  "incremental_sequitur_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_sequitur_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
