# Empty compiler generated dependencies file for incremental_sequitur_test.
# This may be replaced when dependencies are built.
