# Empty dependencies file for parameter_profile_test.
# This may be replaced when dependencies are built.
