file(REMOVE_RECURSE
  "CMakeFiles/parameter_profile_test.dir/core/parameter_profile_test.cc.o"
  "CMakeFiles/parameter_profile_test.dir/core/parameter_profile_test.cc.o.d"
  "parameter_profile_test"
  "parameter_profile_test.pdb"
  "parameter_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
