file(REMOVE_RECURSE
  "CMakeFiles/grammar_printer_test.dir/grammar/grammar_printer_test.cc.o"
  "CMakeFiles/grammar_printer_test.dir/grammar/grammar_printer_test.cc.o.d"
  "grammar_printer_test"
  "grammar_printer_test.pdb"
  "grammar_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
