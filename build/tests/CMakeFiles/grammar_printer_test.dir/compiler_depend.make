# Empty compiler generated dependencies file for grammar_printer_test.
# This may be replaced when dependencies are built.
