# Empty compiler generated dependencies file for rule_density_detector_test.
# This may be replaced when dependencies are built.
