file(REMOVE_RECURSE
  "CMakeFiles/rule_density_detector_test.dir/core/rule_density_detector_test.cc.o"
  "CMakeFiles/rule_density_detector_test.dir/core/rule_density_detector_test.cc.o.d"
  "rule_density_detector_test"
  "rule_density_detector_test.pdb"
  "rule_density_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_density_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
