file(REMOVE_RECURSE
  "CMakeFiles/sax_transform_test.dir/sax/sax_transform_test.cc.o"
  "CMakeFiles/sax_transform_test.dir/sax/sax_transform_test.cc.o.d"
  "sax_transform_test"
  "sax_transform_test.pdb"
  "sax_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sax_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
