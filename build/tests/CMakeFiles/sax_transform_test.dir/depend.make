# Empty dependencies file for sax_transform_test.
# This may be replaced when dependencies are built.
