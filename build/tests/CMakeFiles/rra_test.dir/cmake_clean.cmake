file(REMOVE_RECURSE
  "CMakeFiles/rra_test.dir/core/rra_test.cc.o"
  "CMakeFiles/rra_test.dir/core/rra_test.cc.o.d"
  "rra_test"
  "rra_test.pdb"
  "rra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
