# Empty dependencies file for rra_test.
# This may be replaced when dependencies are built.
