file(REMOVE_RECURSE
  "CMakeFiles/alphabet_test.dir/sax/alphabet_test.cc.o"
  "CMakeFiles/alphabet_test.dir/sax/alphabet_test.cc.o.d"
  "alphabet_test"
  "alphabet_test.pdb"
  "alphabet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphabet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
