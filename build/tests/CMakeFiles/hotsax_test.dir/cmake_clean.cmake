file(REMOVE_RECURSE
  "CMakeFiles/hotsax_test.dir/discord/hotsax_test.cc.o"
  "CMakeFiles/hotsax_test.dir/discord/hotsax_test.cc.o.d"
  "hotsax_test"
  "hotsax_test.pdb"
  "hotsax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotsax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
