# Empty compiler generated dependencies file for hotsax_test.
# This may be replaced when dependencies are built.
