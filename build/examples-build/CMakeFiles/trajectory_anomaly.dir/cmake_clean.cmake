file(REMOVE_RECURSE
  "../examples/trajectory_anomaly"
  "../examples/trajectory_anomaly.pdb"
  "CMakeFiles/trajectory_anomaly.dir/trajectory_anomaly.cpp.o"
  "CMakeFiles/trajectory_anomaly.dir/trajectory_anomaly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
