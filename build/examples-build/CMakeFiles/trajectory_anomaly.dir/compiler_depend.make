# Empty compiler generated dependencies file for trajectory_anomaly.
# This may be replaced when dependencies are built.
