# Empty dependencies file for gva_cli.
# This may be replaced when dependencies are built.
