file(REMOVE_RECURSE
  "../examples/gva_cli"
  "../examples/gva_cli.pdb"
  "CMakeFiles/gva_cli.dir/gva_cli.cpp.o"
  "CMakeFiles/gva_cli.dir/gva_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gva_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
