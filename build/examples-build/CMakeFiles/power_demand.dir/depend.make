# Empty dependencies file for power_demand.
# This may be replaced when dependencies are built.
