file(REMOVE_RECURSE
  "../examples/power_demand"
  "../examples/power_demand.pdb"
  "CMakeFiles/power_demand.dir/power_demand.cpp.o"
  "CMakeFiles/power_demand.dir/power_demand.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
