# Empty compiler generated dependencies file for ecg_anomaly.
# This may be replaced when dependencies are built.
