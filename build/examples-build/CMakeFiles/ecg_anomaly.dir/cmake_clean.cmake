file(REMOVE_RECURSE
  "../examples/ecg_anomaly"
  "../examples/ecg_anomaly.pdb"
  "CMakeFiles/ecg_anomaly.dir/ecg_anomaly.cpp.o"
  "CMakeFiles/ecg_anomaly.dir/ecg_anomaly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
