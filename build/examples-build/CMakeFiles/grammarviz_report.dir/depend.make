# Empty dependencies file for grammarviz_report.
# This may be replaced when dependencies are built.
