file(REMOVE_RECURSE
  "../examples/grammarviz_report"
  "../examples/grammarviz_report.pdb"
  "CMakeFiles/grammarviz_report.dir/grammarviz_report.cpp.o"
  "CMakeFiles/grammarviz_report.dir/grammarviz_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammarviz_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
