file(REMOVE_RECURSE
  "../examples/streaming_monitor"
  "../examples/streaming_monitor.pdb"
  "CMakeFiles/streaming_monitor.dir/streaming_monitor.cpp.o"
  "CMakeFiles/streaming_monitor.dir/streaming_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
