
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compression_score.cc" "src/CMakeFiles/gva.dir/core/compression_score.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/compression_score.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/CMakeFiles/gva.dir/core/detector.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/detector.cc.o.d"
  "/root/repo/src/core/evaluate.cc" "src/CMakeFiles/gva.dir/core/evaluate.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/evaluate.cc.o.d"
  "/root/repo/src/core/frequency_detector.cc" "src/CMakeFiles/gva.dir/core/frequency_detector.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/frequency_detector.cc.o.d"
  "/root/repo/src/core/motif.cc" "src/CMakeFiles/gva.dir/core/motif.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/motif.cc.o.d"
  "/root/repo/src/core/parameter_profile.cc" "src/CMakeFiles/gva.dir/core/parameter_profile.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/parameter_profile.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/gva.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/rra.cc" "src/CMakeFiles/gva.dir/core/rra.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/rra.cc.o.d"
  "/root/repo/src/core/rule_density_detector.cc" "src/CMakeFiles/gva.dir/core/rule_density_detector.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/rule_density_detector.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/CMakeFiles/gva.dir/core/streaming.cc.o" "gcc" "src/CMakeFiles/gva.dir/core/streaming.cc.o.d"
  "/root/repo/src/datasets/ecg.cc" "src/CMakeFiles/gva.dir/datasets/ecg.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/ecg.cc.o.d"
  "/root/repo/src/datasets/power_demand.cc" "src/CMakeFiles/gva.dir/datasets/power_demand.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/power_demand.cc.o.d"
  "/root/repo/src/datasets/respiration.cc" "src/CMakeFiles/gva.dir/datasets/respiration.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/respiration.cc.o.d"
  "/root/repo/src/datasets/simple.cc" "src/CMakeFiles/gva.dir/datasets/simple.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/simple.cc.o.d"
  "/root/repo/src/datasets/tek.cc" "src/CMakeFiles/gva.dir/datasets/tek.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/tek.cc.o.d"
  "/root/repo/src/datasets/trajectory.cc" "src/CMakeFiles/gva.dir/datasets/trajectory.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/trajectory.cc.o.d"
  "/root/repo/src/datasets/video.cc" "src/CMakeFiles/gva.dir/datasets/video.cc.o" "gcc" "src/CMakeFiles/gva.dir/datasets/video.cc.o.d"
  "/root/repo/src/discord/brute_force.cc" "src/CMakeFiles/gva.dir/discord/brute_force.cc.o" "gcc" "src/CMakeFiles/gva.dir/discord/brute_force.cc.o.d"
  "/root/repo/src/discord/distance.cc" "src/CMakeFiles/gva.dir/discord/distance.cc.o" "gcc" "src/CMakeFiles/gva.dir/discord/distance.cc.o.d"
  "/root/repo/src/discord/hotsax.cc" "src/CMakeFiles/gva.dir/discord/hotsax.cc.o" "gcc" "src/CMakeFiles/gva.dir/discord/hotsax.cc.o.d"
  "/root/repo/src/grammar/grammar.cc" "src/CMakeFiles/gva.dir/grammar/grammar.cc.o" "gcc" "src/CMakeFiles/gva.dir/grammar/grammar.cc.o.d"
  "/root/repo/src/grammar/grammar_printer.cc" "src/CMakeFiles/gva.dir/grammar/grammar_printer.cc.o" "gcc" "src/CMakeFiles/gva.dir/grammar/grammar_printer.cc.o.d"
  "/root/repo/src/grammar/rule_intervals.cc" "src/CMakeFiles/gva.dir/grammar/rule_intervals.cc.o" "gcc" "src/CMakeFiles/gva.dir/grammar/rule_intervals.cc.o.d"
  "/root/repo/src/grammar/sequitur.cc" "src/CMakeFiles/gva.dir/grammar/sequitur.cc.o" "gcc" "src/CMakeFiles/gva.dir/grammar/sequitur.cc.o.d"
  "/root/repo/src/grammar/serialization.cc" "src/CMakeFiles/gva.dir/grammar/serialization.cc.o" "gcc" "src/CMakeFiles/gva.dir/grammar/serialization.cc.o.d"
  "/root/repo/src/hilbert/hilbert.cc" "src/CMakeFiles/gva.dir/hilbert/hilbert.cc.o" "gcc" "src/CMakeFiles/gva.dir/hilbert/hilbert.cc.o.d"
  "/root/repo/src/sax/alphabet.cc" "src/CMakeFiles/gva.dir/sax/alphabet.cc.o" "gcc" "src/CMakeFiles/gva.dir/sax/alphabet.cc.o.d"
  "/root/repo/src/sax/mindist.cc" "src/CMakeFiles/gva.dir/sax/mindist.cc.o" "gcc" "src/CMakeFiles/gva.dir/sax/mindist.cc.o.d"
  "/root/repo/src/sax/paa.cc" "src/CMakeFiles/gva.dir/sax/paa.cc.o" "gcc" "src/CMakeFiles/gva.dir/sax/paa.cc.o.d"
  "/root/repo/src/sax/sax_transform.cc" "src/CMakeFiles/gva.dir/sax/sax_transform.cc.o" "gcc" "src/CMakeFiles/gva.dir/sax/sax_transform.cc.o.d"
  "/root/repo/src/timeseries/io.cc" "src/CMakeFiles/gva.dir/timeseries/io.cc.o" "gcc" "src/CMakeFiles/gva.dir/timeseries/io.cc.o.d"
  "/root/repo/src/timeseries/stats.cc" "src/CMakeFiles/gva.dir/timeseries/stats.cc.o" "gcc" "src/CMakeFiles/gva.dir/timeseries/stats.cc.o.d"
  "/root/repo/src/timeseries/transforms.cc" "src/CMakeFiles/gva.dir/timeseries/transforms.cc.o" "gcc" "src/CMakeFiles/gva.dir/timeseries/transforms.cc.o.d"
  "/root/repo/src/timeseries/znorm.cc" "src/CMakeFiles/gva.dir/timeseries/znorm.cc.o" "gcc" "src/CMakeFiles/gva.dir/timeseries/znorm.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/gva.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/gva.dir/util/csv.cc.o.d"
  "/root/repo/src/util/math_utils.cc" "src/CMakeFiles/gva.dir/util/math_utils.cc.o" "gcc" "src/CMakeFiles/gva.dir/util/math_utils.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/gva.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/gva.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/gva.dir/util/status.cc.o" "gcc" "src/CMakeFiles/gva.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/gva.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/gva.dir/util/strings.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/gva.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/gva.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/viz/ascii_plot.cc" "src/CMakeFiles/gva.dir/viz/ascii_plot.cc.o" "gcc" "src/CMakeFiles/gva.dir/viz/ascii_plot.cc.o.d"
  "/root/repo/src/viz/report.cc" "src/CMakeFiles/gva.dir/viz/report.cc.o" "gcc" "src/CMakeFiles/gva.dir/viz/report.cc.o.d"
  "/root/repo/src/viz/svg.cc" "src/CMakeFiles/gva.dir/viz/svg.cc.o" "gcc" "src/CMakeFiles/gva.dir/viz/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
