file(REMOVE_RECURSE
  "libgva.a"
)
