# Empty dependencies file for gva.
# This may be replaced when dependencies are built.
