#include "ensemble/ensemble.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <optional>
#include <utility>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "timeseries/rolling_stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace gva {

namespace {

/// Substrate-cache key: the alphabet-independent part of a config. Two
/// configs with the same key share one SaxZPlane.
using PlaneKey = std::pair<size_t, size_t>;  // (window, paa_size)

PlaneKey KeyOf(const EnsembleConfig& config) {
  return {config.window, config.paa_size};
}

// Observability only: every read of this clock feeds a per-config timing
// metric, never a decision, so the monotonic-clock ban is waived at the
// single alias all the reads go through.
using MonotonicClock =
    std::chrono::steady_clock;  // gva-lint: allow(determinism-rng)

uint64_t ElapsedMicros(MonotonicClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          MonotonicClock::now() - start)
          .count());
}

}  // namespace

SaxOptions EnsembleOptions::SaxFor(const EnsembleConfig& config) const {
  SaxOptions sax;
  sax.window = config.window;
  sax.paa_size = config.paa_size;
  sax.alphabet_size = config.alphabet_size;
  sax.numerosity = numerosity;
  sax.znorm_epsilon = znorm_epsilon;
  return sax;
}

std::vector<EnsembleConfig> MakeEnsembleGrid(
    const std::vector<size_t>& windows, const std::vector<size_t>& paas,
    const std::vector<size_t>& alphabets) {
  std::vector<EnsembleConfig> grid;
  grid.reserve(windows.size() * paas.size() * alphabets.size());
  for (size_t w : windows) {
    for (size_t p : paas) {
      for (size_t a : alphabets) {
        grid.push_back(EnsembleConfig{w, p, a});
      }
    }
  }
  return grid;
}

std::vector<EnsembleConfig> AutoEnsembleGrid(size_t series_length) {
  if (series_length == 0) {
    return {};
  }
  const size_t base = std::max<size_t>(16, series_length / 15);
  std::vector<size_t> windows;
  for (size_t w : {base / 2, base, base * 2}) {
    w = std::clamp<size_t>(w, 8, series_length);
    if (std::find(windows.begin(), windows.end(), w) == windows.end()) {
      windows.push_back(w);
    }
  }
  return MakeEnsembleGrid(windows, {4, 6}, {3, 4, 5});
}

std::vector<double> NormalizeDensity(const std::vector<uint32_t>& density) {
  std::vector<double> normalized(density.size(), 0.0);
  if (density.empty()) {
    return normalized;
  }
  const auto [min_it, max_it] =
      std::minmax_element(density.begin(), density.end());
  const uint32_t min_d = *min_it;
  const uint32_t max_d = *max_it;
  if (max_d == min_d) {
    return normalized;  // constant curve: no structure to rank
  }
  const double range = static_cast<double>(max_d - min_d);
  for (size_t i = 0; i < density.size(); ++i) {
    normalized[i] = static_cast<double>(density[i] - min_d) / range;
  }
  return normalized;
}

std::vector<EnsembleAnomaly> FindLowScoreIntervals(
    const std::vector<double>& score, size_t edge_window,
    const DensityAnomalyOptions& options) {
  // Mirrors FindLowDensityIntervals step for step, over a double-valued
  // curve: same edge exclusion, same threshold rule, same maximal-run
  // collection, same (mean asc, longer first) stable ranking.
  std::vector<EnsembleAnomaly> anomalies;
  if (score.empty()) {
    return anomalies;
  }
  size_t lo = 0;
  size_t hi = score.size();
  if (options.exclude_edges && score.size() > 2 * edge_window) {
    lo = edge_window;
    hi = score.size() - edge_window;
  }
  if (lo >= hi) {
    return anomalies;
  }

  double min_s = score[lo];
  double max_s = score[lo];
  for (size_t i = lo; i < hi; ++i) {
    min_s = std::min(min_s, score[i]);
    max_s = std::max(max_s, score[i]);
  }
  const double threshold = min_s + options.threshold_fraction * (max_s - min_s);

  size_t i = lo;
  while (i < hi) {
    if (score[i] > threshold) {
      ++i;
      continue;
    }
    size_t j = i;
    double run_min = score[i];
    double run_sum = 0.0;
    while (j < hi && score[j] <= threshold) {
      run_min = std::min(run_min, score[j]);
      run_sum += score[j];
      ++j;
    }
    if (j - i >= options.min_length) {
      anomalies.push_back(EnsembleAnomaly{
          Interval{i, j}, run_min, run_sum / static_cast<double>(j - i), 0});
    }
    i = j;
  }

  std::stable_sort(anomalies.begin(), anomalies.end(),
                   [](const EnsembleAnomaly& a, const EnsembleAnomaly& b) {
                     if (a.mean_score != b.mean_score) {
                       return a.mean_score < b.mean_score;
                     }
                     return a.span.length() > b.span.length();
                   });
  if (anomalies.size() > options.max_anomalies) {
    anomalies.resize(options.max_anomalies);
  }
  for (size_t r = 0; r < anomalies.size(); ++r) {
    anomalies[r].rank = r;
  }
  return anomalies;
}

StatusOr<EnsembleDetection> RunEnsemble(std::span<const double> series,
                                        const EnsembleOptions& options) {
  GVA_OBS_SPAN("ensemble.run");
  if (series.empty()) {
    return Status::InvalidArgument("ensemble: series is empty");
  }
  std::vector<EnsembleConfig> configs = options.configs;
  if (configs.empty()) {
    configs = AutoEnsembleGrid(series.size());
  }
  if (configs.empty()) {
    return Status::InvalidArgument("ensemble: empty configuration grid");
  }

  EnsembleDetection out;
  out.configs.resize(configs.size());

  // Upfront validation: a config that cannot run against this series is
  // recorded and skipped, never fatal (grids routinely mix windows, some of
  // which outgrow a short series).
  std::vector<size_t> valid;  // indices into configs
  valid.reserve(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    out.configs[i].config = configs[i];
    const SaxOptions sax = options.SaxFor(configs[i]);
    Status status = sax.Validate();
    if (status.ok() && configs[i].window > series.size()) {
      status = Status::InvalidArgument(
          StrFormat("window %zu exceeds series length %zu", configs[i].window,
                    series.size()));
    }
    if (status.ok()) {
      valid.push_back(i);
    } else {
      out.configs[i].error = status.ToString();
    }
  }
  if (valid.empty()) {
    return Status::InvalidArgument(StrFormat(
        "ensemble: no runnable configuration (first error: %s)",
        out.configs.empty() ? "none" : out.configs[0].error.c_str()));
  }

  // Canonical processing order: valid indices sorted by the configs' total
  // order (ties by caller position). Aggregation walks this order, which
  // makes the score bit-for-bit invariant under config-list permutations,
  // and the canonically-first config per plane key deterministically owns
  // the cache miss.
  std::vector<size_t> canonical = valid;
  std::stable_sort(canonical.begin(), canonical.end(),
                   [&configs](size_t a, size_t b) {
                     return configs[a] < configs[b];
                   });

  obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  obs::Counter& config_us_counter = metrics.counter("ensemble.config.us");
  obs::Counter& cache_hit_counter = metrics.counter("ensemble.cache.hit");
  obs::Counter& cache_miss_counter = metrics.counter("ensemble.cache.miss");
  metrics.counter("ensemble.runs").Add(1);

  ThreadPool pool(options.num_threads);

  // Phase A (substrate): one RollingStats prefix-sum table for the series,
  // then one SaxZPlane per distinct (window, paa) key, rows computed on the
  // pool. Alphabet-only-differing configs share a plane — that sharing is
  // the cache, and its accounting is deterministic by construction.
  std::optional<RollingStats> stats;
  std::map<PlaneKey, SaxZPlane> planes;
  std::map<PlaneKey, Status> plane_errors;
  if (options.share_substrate) {
    GVA_OBS_SPAN("ensemble.substrate");
    stats.emplace(series);
    for (size_t idx : canonical) {
      const PlaneKey key = KeyOf(configs[idx]);
      const bool first_for_key =
          planes.find(key) == planes.end() &&
          plane_errors.find(key) == plane_errors.end();
      if (first_for_key) {
        StatusOr<SaxZPlane> plane =
            ComputeSaxZPlane(series, options.SaxFor(configs[idx]), &*stats,
                             &pool);
        if (plane.ok()) {
          planes.emplace(key, std::move(plane).value());
        } else {
          plane_errors.emplace(key, plane.status());
        }
        out.cache_misses += 1;
        cache_miss_counter.Add(1);
      } else {
        out.cache_hits += 1;
        cache_hit_counter.Add(1);
      }
      out.configs[idx].cache_hit = !first_for_key;
    }
  }

  // Phase B: every valid config through the decomposition pipeline, one
  // chunk of configs per pool lane. Each slot is written by exactly one
  // chunk and ParallelFor's join publishes the writes.
  {
    GVA_OBS_SPAN("ensemble.configs");
    pool.ParallelFor(
        0, valid.size(), [&](size_t begin, size_t end, size_t /*chunk*/) {
          for (size_t v = begin; v < end; ++v) {
            const size_t idx = valid[v];
            EnsembleConfigResult& slot = out.configs[idx];
            const SaxOptions sax = options.SaxFor(slot.config);
            const auto start = MonotonicClock::now();
            StatusOr<GrammarDecomposition> decomposition =
                [&]() -> StatusOr<GrammarDecomposition> {
              if (!options.share_substrate) {
                return DecomposeSeries(series, sax);
              }
              auto plane_error = plane_errors.find(KeyOf(slot.config));
              if (plane_error != plane_errors.end()) {
                return plane_error->second;
              }
              GVA_ASSIGN_OR_RETURN(
                  SaxRecords records,
                  DiscretizeWithZPlane(series, sax,
                                       planes.at(KeyOf(slot.config))));
              return DecomposeSeriesWithRecords(series, sax,
                                                std::move(records));
            }();
            slot.wall_us = ElapsedMicros(start);
            config_us_counter.Add(slot.wall_us);
            if (!decomposition.ok()) {
              slot.error = decomposition.status().ToString();
              continue;
            }
            GrammarDecomposition d = std::move(decomposition).value();
            slot.words = d.records.size();
            slot.rules = d.grammar.grammar.size();
            slot.intervals = d.intervals.size();
            slot.density = std::move(d.density);
            slot.ok = true;
          }
        });
  }

  // Aggregation, strictly in canonical order: mean of the per-config
  // min-max-normalized curves.
  out.score.assign(series.size(), 0.0);
  for (size_t idx : canonical) {
    const EnsembleConfigResult& result = out.configs[idx];
    if (!result.ok) {
      continue;
    }
    const std::vector<double> normalized = NormalizeDensity(result.density);
    for (size_t p = 0; p < out.score.size(); ++p) {
      out.score[p] += normalized[p];
    }
    out.configs_used += 1;
    out.max_window = std::max(out.max_window, result.config.window);
  }
  if (out.configs_used == 0) {
    for (size_t idx : valid) {
      if (!out.configs[idx].error.empty()) {
        return Status::Internal(StrFormat(
            "ensemble: every configuration failed (first error: %s)",
            out.configs[idx].error.c_str()));
      }
    }
    return Status::Internal("ensemble: every configuration failed");
  }
  if (out.configs_used > 1) {
    const double inv = 1.0 / static_cast<double>(out.configs_used);
    for (double& s : out.score) {
      s *= inv;
    }
  }

  out.anomalies =
      FindLowScoreIntervals(out.score, out.max_window, options.anomaly);

  metrics.counter("ensemble.configs.used").Add(out.configs_used);
  pool.ExportStats(metrics, "ensemble.pool");
  return out;
}

}  // namespace gva
