#ifndef GVA_ENSEMBLE_ENSEMBLE_H_
#define GVA_ENSEMBLE_ENSEMBLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rule_density_detector.h"
#include "sax/sax_transform.h"
#include "timeseries/interval.h"
#include "util/statusor.h"

namespace gva {

/// One discretization configuration of the ensemble: the SAX triple the
/// paper's detectors are sensitive to. Gao & Lin ("Ensemble Grammar
/// Induction For Detecting Anomalies in Time Series") remove this last free
/// parameter by running many configurations and aggregating their
/// rule-density surfaces; this engine is that idea on top of the
/// decomposition pipeline of PRs 1-4.
struct EnsembleConfig {
  size_t window = 100;
  size_t paa_size = 4;
  size_t alphabet_size = 4;

  friend bool operator==(const EnsembleConfig& a, const EnsembleConfig& b) {
    return a.window == b.window && a.paa_size == b.paa_size &&
           a.alphabet_size == b.alphabet_size;
  }
  /// Canonical total order (window, paa, alphabet) — the order in which
  /// curves are aggregated, which is what makes the ensemble score
  /// bit-for-bit invariant under permutations of the config list.
  friend bool operator<(const EnsembleConfig& a, const EnsembleConfig& b) {
    if (a.window != b.window) {
      return a.window < b.window;
    }
    if (a.paa_size != b.paa_size) {
      return a.paa_size < b.paa_size;
    }
    return a.alphabet_size < b.alphabet_size;
  }
};

/// Options for one ensemble run.
struct EnsembleOptions {
  /// The configuration grid. Empty means AutoEnsembleGrid(series length).
  std::vector<EnsembleConfig> configs;
  /// Shared by every config (the grid sweeps only the SAX triple).
  NumerosityReduction numerosity = NumerosityReduction::kExact;
  double znorm_epsilon = kDefaultZNormEpsilon;
  /// Interval extraction over the aggregated score: threshold fraction,
  /// minimum length, edge exclusion, and top-k (max_anomalies).
  DensityAnomalyOptions anomaly;
  /// Concurrency lanes for the per-config outer loop (one task per config,
  /// nested row-parallelism inside the shared z-plane builds); 0 = all
  /// hardware threads. Results are bit-identical for every value.
  size_t num_threads = 1;
  /// Share substrate across configs: one RollingStats prefix-sum per
  /// series, plus a keyed z-plane cache so configs that differ only in
  /// alphabet skip the O(n * paa) PAA recomputation. Turning this off runs
  /// each config through the plain single-query pipeline — same results,
  /// used as the baseline by bench/ensemble_bench.
  bool share_substrate = true;

  /// The SaxOptions a given grid point expands to.
  SaxOptions SaxFor(const EnsembleConfig& config) const;
};

/// Per-config outcome. Configs that fail validation against the series
/// (e.g. window longer than the series) are skipped, not fatal: ok == false
/// with the reason in `error`, and the config contributes nothing to the
/// aggregate.
struct EnsembleConfigResult {
  EnsembleConfig config;
  bool ok = false;
  std::string error;
  /// Raw rule-density curve of this config — bit-identical to what
  /// DecomposeSeries(series, SaxFor(config)) produces.
  std::vector<uint32_t> density;
  size_t words = 0;
  size_t rules = 0;
  size_t intervals = 0;
  /// Wall-clock microseconds the config's pipeline took (also accumulated
  /// into the `ensemble.config.us` counter).
  uint64_t wall_us = 0;
  /// Whether the config's SAX z-plane came out of the substrate cache
  /// (true for every config after the canonically-first one per
  /// (window, paa) key; always false without substrate sharing).
  bool cache_hit = false;
};

/// One low-score interval of the aggregated ensemble surface.
struct EnsembleAnomaly {
  Interval span;
  /// Smallest aggregated score inside the interval.
  double min_score = 0.0;
  /// Mean aggregated score — the ranking key (lower = more anomalous).
  double mean_score = 0.0;
  /// 0 = most anomalous.
  size_t rank = 0;
};

/// Full ensemble output.
struct EnsembleDetection {
  /// The normalized ensemble anomaly score, one value per series point in
  /// [0, 1]: the mean over successful configs of each config's min-max
  /// normalized rule-density curve. Low = anomalous.
  std::vector<double> score;
  /// Per-config outcomes, in the caller's config order.
  std::vector<EnsembleConfigResult> configs;
  /// Ranked low-score intervals (top-k variable-length extraction).
  std::vector<EnsembleAnomaly> anomalies;
  /// Number of configs that contributed to `score`.
  size_t configs_used = 0;
  /// Substrate-cache accounting (z-plane reuse across configs).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Largest successful window — the edge-exclusion margin used for the
  /// interval extraction.
  size_t max_window = 0;
};

/// Cross-product grid builder.
std::vector<EnsembleConfig> MakeEnsembleGrid(
    const std::vector<size_t>& windows, const std::vector<size_t>& paas,
    const std::vector<size_t>& alphabets);

/// Default sweep when no grid is given: three windows spread around
/// series_length / 15 (half / 1x / double, clamped to the series), PAA
/// sizes {4, 6}, alphabets {3, 4, 5} — 18 configs echoing the robust region
/// of the paper's Figure 10 parameter study.
std::vector<EnsembleConfig> AutoEnsembleGrid(size_t series_length);

/// Min-max normalization of one density curve to [0, 1]. A constant curve
/// (max == min, no structure to rank) maps to all zeros.
std::vector<double> NormalizeDensity(const std::vector<uint32_t>& density);

/// Low-score interval extraction over the aggregated surface — the
/// double-valued analog of FindLowDensityIntervals: threshold at
/// min + fraction * (max - min) over the edge-excluded range, maximal
/// below-threshold runs merged into intervals, ranked by mean score
/// ascending. `edge_window` plays the role the window plays there.
std::vector<EnsembleAnomaly> FindLowScoreIntervals(
    const std::vector<double>& score, size_t edge_window,
    const DensityAnomalyOptions& options);

/// Runs the ensemble: every config through discretize -> Sequitur -> rule
/// intervals -> density on the shared thread pool, curves normalized and
/// aggregated in canonical config order, intervals extracted from the
/// aggregate. Fails when the series is empty, the grid is empty after
/// auto-generation, or no config is runnable against the series.
StatusOr<EnsembleDetection> RunEnsemble(std::span<const double> series,
                                        const EnsembleOptions& options);

}  // namespace gva

#endif  // GVA_ENSEMBLE_ENSEMBLE_H_
