#include "core/rra.h"

#include <algorithm>
#include <unordered_map>

#include "discord/distance.h"
#include "discord/parallel_search.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gva {

std::vector<RuleInterval> BuildRraCandidates(
    const GrammarDecomposition& decomposition, const RraOptions& options) {
  std::vector<RuleInterval> candidates;
  candidates.reserve(decomposition.intervals.size() + 8);
  const size_t m = decomposition.series_length;
  for (const RuleInterval& ri : decomposition.intervals) {
    if (ri.span.length() >= 2 && ri.span.end <= m) {
      candidates.push_back(ri);
    }
  }
  if (options.include_gap_intervals) {
    size_t min_gap = options.min_gap_length;
    if (min_gap == 0) {  // auto: one PAA segment
      min_gap = std::max<size_t>(
          2, decomposition.window / std::max<size_t>(1, options.sax.paa_size));
    }
    min_gap = std::max<size_t>(2, min_gap);
    for (const RuleInterval& gap :
         ZeroCoverageIntervals(decomposition.density, min_gap)) {
      if (options.drop_boundary_gaps &&
          (gap.span.start == 0 || gap.span.end >= m)) {
        continue;
      }
      candidates.push_back(gap);
    }
  }
  return candidates;
}

namespace {

struct SearchState {
  const std::vector<RuleInterval>* candidates = nullptr;
  std::vector<size_t> outer_order;
  std::vector<size_t> inner_random;
  // rule id -> candidate indices, for the "same rule first" inner phase.
  std::unordered_map<int32_t, std::vector<size_t>> by_rule;
  // Every series position, pre-shuffled: the exhaustive inner tail. The
  // interval starts only quantize the alignment; a candidate that survives
  // them is verified against every sliding-window subsequence (with early
  // abandoning), which keeps the reported discord exact.
  std::vector<size_t> all_positions_random;
};

SearchState BuildOrders(const std::vector<RuleInterval>& candidates,
                        size_t series_length, uint64_t seed) {
  SearchState state;
  state.candidates = &candidates;
  state.outer_order.resize(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.outer_order[i] = i;
  }
  Rng rng(seed);
  rng.Shuffle(state.outer_order);
  // Ascending rule frequency: gaps (frequency 0) first — the most likely
  // anomalies are visited early, raising best_so_far quickly.
  std::stable_sort(state.outer_order.begin(), state.outer_order.end(),
                   [&](size_t a, size_t b) {
                     return candidates[a].rule_frequency <
                            candidates[b].rule_frequency;
                   });
  state.inner_random = state.outer_order;
  rng.Shuffle(state.inner_random);
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.by_rule[candidates[i].rule].push_back(i);
  }
  state.all_positions_random.resize(series_length);
  for (size_t i = 0; i < series_length; ++i) {
    state.all_positions_random[i] = i;
  }
  rng.Shuffle(state.all_positions_random);
  return state;
}

/// Cross-round memo of nearest-neighbor distances: only *completed* scans
/// are recorded, so every entry is the candidate's true nearest-neighbor
/// distance. Later top-k rounds reuse exact entries without spending
/// distance calls. Partial (pruned) scans are deliberately not memoized:
/// where a scan gets cut off depends on cross-thread pruning timing, so
/// caching partial bounds would leak thread-count-dependent state into
/// later rounds and break the bit-identical-results guarantee.
struct NnCache {
  std::vector<double> nn;      // true nearest-neighbor distance when exact
  std::vector<char> exact;     // entry is populated
  std::vector<size_t> nn_pos;  // neighbor achieving `nn`
};

/// A completed candidate scan, recorded thread-locally during a round and
/// merged into the NnCache afterwards. Each candidate is owned by exactly
/// one chunk, so the merge never sees two updates for the same index.
struct CacheUpdate {
  size_t ci;
  double nn;
  size_t nn_pos;
};

/// Per-round progress accounting, merged from chunk-local tallies after the
/// round joins.
struct RoundProgress {
  uint64_t visited = 0;
  uint64_t pruned = 0;
};

/// One discord-search round (Algorithm 1), parallelized over chunks of the
/// outer ordering. Returns false when no remaining candidate has a finite
/// nearest-neighbor distance.
///
/// Determinism: a candidate scan starts from scratch (no partial bounds),
/// follows fixed visit orders, and is cut short only by strict comparison
/// against the shared best-so-far — so a completed scan always produces the
/// same (distance, neighbor) pair, a tying-or-winning candidate can never
/// be pruned, and the arg-max reduction with the BestCandidate total order
/// yields the same round winner for every thread count.
bool FindBestDiscord(const SubsequenceDistance& dist, const SearchState& state,
                     const std::vector<char>& excluded, bool normalize,
                     bool exact_nn, size_t refine_delta,
                     const std::atomic<bool>* cancel, ThreadPool& pool,
                     NnCache& cache, obs::BestSoFarLog& trajectory,
                     RoundProgress* progress, DiscordRecord* best) {
  GVA_OBS_SPAN("search.rra.round");
  const std::vector<RuleInterval>& candidates = *state.candidates;
  const size_t m = dist.series_length();

  SharedBestDistance shared_best;

  // Exact entries from earlier rounds need no rescan: fold them into the
  // reduction up front. Their maximum also seeds the shared pruning
  // threshold before any distance call is spent.
  BestCandidate overall;
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (excluded[ci] || !cache.exact[ci] ||
        cache.nn[ci] == SubsequenceDistance::kInfinity) {
      continue;
    }
    overall.Consider(BestCandidate{cache.nn[ci], candidates[ci].span.start,
                                   candidates[ci].span.length(),
                                   cache.nn_pos[ci], candidates[ci].rule,
                                   true});
  }
  if (overall.valid) {
    shared_best.RaiseTo(overall.distance);
  }

  std::vector<BestCandidate> chunk_best(pool.num_threads());
  std::vector<std::vector<CacheUpdate>> chunk_updates(pool.num_threads());
  std::vector<RoundProgress> chunk_progress(pool.num_threads());

  pool.ParallelFor(0, state.outer_order.size(), [&](size_t chunk_begin,
                                                    size_t chunk_end,
                                                    size_t chunk) {
    GVA_OBS_SPAN("search.rra.chunk");
    BestCandidate local;
    RoundProgress tally;
    std::vector<CacheUpdate>& updates = chunk_updates[chunk];
    for (size_t oi = chunk_begin; oi < chunk_end; ++oi) {
      // Cancellation poll, one relaxed load per outer candidate: a
      // cancelled job must free its slot mid-search, not after the round
      // drains (a single candidate's inner scan is the latency bound).
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        break;
      }
      const size_t ci = state.outer_order[oi];
      if (excluded[ci] || cache.exact[ci]) {
        continue;
      }
      ++tally.visited;
      const RuleInterval& cand = candidates[ci];
      const size_t p = cand.span.start;
      const size_t len = cand.span.length();
      const double norm = normalize ? static_cast<double>(len) : 1.0;

      double nn = SubsequenceDistance::kInfinity;  // normalized units
      size_t nn_q = 0;
      bool pruned = false;

      auto visit_position = [&](size_t q) {
        if (q + len > m) {
          return true;  // neighbor window does not fit
        }
        const size_t gap = p > q ? p - q : q - p;
        if (gap < len) {
          return true;  // self match (|p0 - q0| < Length(p))
        }
        const double limit_raw =
            nn == SubsequenceDistance::kInfinity ? nn : nn * norm;
        const double raw = dist.Distance(p, q, len, limit_raw);
        const double d = raw / norm;
        if (d < nn) {
          nn = d;
          nn_q = q;
          if (nn < shared_best.load()) {
            pruned = true;  // candidate cannot beat the best so far
            return false;
          }
        }
        return true;
      };
      auto visit = [&](size_t qi) {
        return visit_position(candidates[qi].span.start);
      };
      // Local alignment refinement around the current nearest neighbor.
      // Interval starts quantize the alignment space (numerosity reduction
      // keeps roughly one start per PAA segment), so an aligned neighbor is
      // usually a few samples off its true optimum; probing around it costs
      // a handful of calls and prunes candidates that only look anomalous
      // because of alignment noise.
      auto refine = [&]() {
        if (pruned || nn == SubsequenceDistance::kInfinity) {
          return;
        }
        const size_t center = nn_q;
        for (size_t off = 1; off <= refine_delta && !pruned; ++off) {
          if (center >= off && !visit_position(center - off)) {
            break;
          }
          if (!pruned && !visit_position(center + off)) {
            break;
          }
        }
      };

      // Inner phase 1: occurrences of the same rule — highly similar by
      // construction, most likely to abandon the candidate early — then
      // refine the alignment around the best of them.
      auto rule_it = state.by_rule.find(cand.rule);
      if (rule_it != state.by_rule.end() && cand.rule >= 0) {
        for (size_t qi : rule_it->second) {
          if (qi != ci && !visit(qi)) {
            break;
          }
        }
        if (exact_nn) {
          refine();
        }
      }
      // Inner phase 2: the other rule intervals, random order, followed by
      // another refinement pass if the nearest neighbor moved.
      if (!pruned) {
        const size_t nn_before = nn_q;
        for (size_t qi : state.inner_random) {
          if (qi == ci ||
              (cand.rule >= 0 && candidates[qi].rule == cand.rule)) {
            continue;
          }
          if (!visit(qi)) {
            break;
          }
        }
        if (exact_nn && !pruned && nn_q != nn_before) {
          refine();
        }
      }
      // Inner phase 3: every remaining sliding-window position, random
      // order. A candidate that is still promising here is verified
      // exhaustively so the reported discord distance is its true
      // nearest-non-self-match distance. Early abandoning keeps this phase
      // cheap: one neighbor below best_so_far prunes the candidate.
      if (exact_nn && !pruned) {
        for (size_t q : state.all_positions_random) {
          if (!visit_position(q)) {
            break;
          }
        }
      }

      // A completed scan established the candidate's true nearest-neighbor
      // distance; queue it for the post-round cache merge. Pruned scans
      // learned nothing reusable (see NnCache).
      if (!pruned) {
        updates.push_back(CacheUpdate{ci, nn, nn_q});
        if (nn != SubsequenceDistance::kInfinity) {
          local.Consider(BestCandidate{nn, p, len, nn_q, cand.rule, true});
          if (shared_best.RaiseTo(nn)) {
            trajectory.Record(dist.calls(), nn);
          }
        }
      } else {
        ++tally.pruned;
      }
    }
    chunk_best[chunk] = local;
    chunk_progress[chunk] = tally;
  });

  // Post-round merge: publish what the chunks learned. Each candidate index
  // appears in at most one update list, so the merged cache state does not
  // depend on the thread count or merge order.
  for (const std::vector<CacheUpdate>& updates : chunk_updates) {
    for (const CacheUpdate& update : updates) {
      cache.nn[update.ci] = update.nn;
      cache.nn_pos[update.ci] = update.nn_pos;
      cache.exact[update.ci] = 1;
    }
  }

  for (const BestCandidate& candidate : chunk_best) {
    overall.Consider(candidate);
  }
  for (const RoundProgress& tally : chunk_progress) {
    progress->visited += tally.visited;
    progress->pruned += tally.pruned;
  }
  if (!overall.valid) {
    return false;
  }
  *best = DiscordRecord{overall.position, overall.length, overall.distance,
                        overall.nn_position, overall.rule};
  return true;
}

}  // namespace

StatusOr<DiscordResult> FindRraDiscordsInDecomposition(
    std::span<const double> series, const GrammarDecomposition& decomposition,
    const RraOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (series.size() != decomposition.series_length) {
    return Status::InvalidArgument(
        "series/decomposition length mismatch");
  }
  std::vector<RuleInterval> candidates =
      BuildRraCandidates(decomposition, options);
  DiscordResult result;
  if (candidates.empty()) {
    return result;
  }
  SearchState state =
      BuildOrders(candidates, series.size(), options.seed);
  SubsequenceDistance dist(series, options.sax.znorm_epsilon);
  std::vector<char> excluded(candidates.size(), 0);
  ThreadPool pool(options.num_threads);
  NnCache cache;
  cache.nn.assign(candidates.size(), SubsequenceDistance::kInfinity);
  cache.exact.assign(candidates.size(), 0);
  cache.nn_pos.assign(candidates.size(), 0);

  obs::BestSoFarLog trajectory;
  RoundProgress progress;
  for (size_t k = 0; k < options.top_k; ++k) {
    DiscordRecord best;
    // Alignment-refinement radius: half a PAA segment on each side covers
    // the quantization introduced by numerosity reduction.
    const size_t refine_delta = std::max<size_t>(
        2, options.sax.window / std::max<size_t>(1, 2 * options.sax.paa_size));
    const bool found = FindBestDiscord(
        dist, state, excluded, options.normalize_by_length,
        options.exact_nearest_neighbor, refine_delta, options.cancel, pool,
        cache, trajectory, &progress, &best);
    // A cancelled round may have skipped candidates, so whatever it
    // reported is not trustworthy: the whole search fails as Cancelled.
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("rra search cancelled");
    }
    if (!found) {
      break;
    }
    result.discords.push_back(best);
    // Exclude candidates overlapping the discovered discord.
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].span.Overlaps(best.span())) {
        excluded[i] = 1;
      }
    }
  }
  result.distance_calls = dist.calls();
  result.distance_calls_completed = dist.calls_completed();
  result.distance_calls_abandoned = dist.calls_abandoned();
  result.candidates_visited = progress.visited;
  result.candidates_pruned = progress.pruned;
  result.best_trajectory = trajectory.TakeSorted();
  AccumulateSearchMetrics(result, "rra", obs::GlobalMetrics());
  pool.ExportStats(obs::GlobalMetrics());
  return result;
}

StatusOr<RraDetection> FindRraDiscords(std::span<const double> series,
                                       const RraOptions& options) {
  RraDetection detection;
  GVA_ASSIGN_OR_RETURN(detection.decomposition,
                       DecomposeSeries(series, options.sax));
  GVA_ASSIGN_OR_RETURN(
      detection.result,
      FindRraDiscordsInDecomposition(series, detection.decomposition,
                                     options));
  return detection;
}

std::vector<double> IntervalNnDistances(std::span<const double> series,
                                        const std::vector<RuleInterval>& all,
                                        bool normalize_by_length,
                                        double znorm_epsilon) {
  SubsequenceDistance dist(series, znorm_epsilon);
  const size_t m = series.size();
  std::vector<double> result(all.size(), SubsequenceDistance::kInfinity);
  for (size_t i = 0; i < all.size(); ++i) {
    const size_t p = all[i].span.start;
    const size_t len = all[i].span.length();
    if (len < 2 || p + len > m) {
      continue;
    }
    const double norm =
        normalize_by_length ? static_cast<double>(len) : 1.0;
    double nn = SubsequenceDistance::kInfinity;
    for (size_t j = 0; j < all.size(); ++j) {
      if (j == i) {
        continue;
      }
      const size_t q = all[j].span.start;
      if (q + len > m) {
        continue;
      }
      const size_t gap = p > q ? p - q : q - p;
      if (gap < len) {
        continue;
      }
      const double limit_raw =
          nn == SubsequenceDistance::kInfinity ? nn : nn * norm;
      const double d = dist.Distance(p, q, len, limit_raw) / norm;
      if (d < nn) {
        nn = d;
      }
    }
    result[i] = nn;
  }
  return result;
}

}  // namespace gva
