#include "core/rra.h"

#include <algorithm>
#include <unordered_map>

#include "discord/distance.h"
#include "util/rng.h"

namespace gva {

namespace {

/// Candidate list assembled from the decomposition: rule intervals plus
/// zero-coverage gaps, with basic sanity filtering.
std::vector<RuleInterval> BuildCandidates(
    const GrammarDecomposition& decomposition, const RraOptions& options) {
  std::vector<RuleInterval> candidates;
  candidates.reserve(decomposition.intervals.size() + 8);
  const size_t m = decomposition.series_length;
  for (const RuleInterval& ri : decomposition.intervals) {
    if (ri.span.length() >= 2 && ri.span.end <= m) {
      candidates.push_back(ri);
    }
  }
  if (options.include_gap_intervals) {
    size_t min_gap = options.min_gap_length;
    if (min_gap == 0) {  // auto: one PAA segment
      min_gap = std::max<size_t>(
          2, decomposition.window / std::max<size_t>(1, options.sax.paa_size));
    }
    min_gap = std::max<size_t>(2, min_gap);
    for (const RuleInterval& gap :
         ZeroCoverageIntervals(decomposition.density, min_gap)) {
      if (options.drop_boundary_gaps &&
          (gap.span.start == 0 || gap.span.end >= m)) {
        continue;
      }
      candidates.push_back(gap);
    }
  }
  return candidates;
}

struct SearchState {
  const std::vector<RuleInterval>* candidates = nullptr;
  std::vector<size_t> outer_order;
  std::vector<size_t> inner_random;
  // rule id -> candidate indices, for the "same rule first" inner phase.
  std::unordered_map<int32_t, std::vector<size_t>> by_rule;
  // Every series position, pre-shuffled: the exhaustive inner tail. The
  // interval starts only quantize the alignment; a candidate that survives
  // them is verified against every sliding-window subsequence (with early
  // abandoning), which keeps the reported discord exact.
  std::vector<size_t> all_positions_random;
};

SearchState BuildOrders(const std::vector<RuleInterval>& candidates,
                        size_t series_length, uint64_t seed) {
  SearchState state;
  state.candidates = &candidates;
  state.outer_order.resize(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.outer_order[i] = i;
  }
  Rng rng(seed);
  rng.Shuffle(state.outer_order);
  // Ascending rule frequency: gaps (frequency 0) first — the most likely
  // anomalies are visited early, raising best_so_far quickly.
  std::stable_sort(state.outer_order.begin(), state.outer_order.end(),
                   [&](size_t a, size_t b) {
                     return candidates[a].rule_frequency <
                            candidates[b].rule_frequency;
                   });
  state.inner_random = state.outer_order;
  rng.Shuffle(state.inner_random);
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.by_rule[candidates[i].rule].push_back(i);
  }
  state.all_positions_random.resize(series_length);
  for (size_t i = 0; i < series_length; ++i) {
    state.all_positions_random[i] = i;
  }
  rng.Shuffle(state.all_positions_random);
  return state;
}

/// One discord-search round (Algorithm 1). Returns false when no remaining
/// candidate has a finite nearest-neighbor distance.
/// Cross-round memo of each candidate's nearest-neighbor distance: an upper
/// bound from partial scans, exact when a full scan completed. Later top-k
/// rounds prune against it without spending distance calls.
struct NnCache {
  std::vector<double> upper;   // true nn <= upper
  std::vector<bool> exact;     // upper IS the true nn
  std::vector<size_t> nn_pos;  // neighbor achieving `upper`
};

bool FindBestDiscord(const SubsequenceDistance& dist, const SearchState& state,
                     const std::vector<bool>& excluded, bool normalize,
                     bool exact_nn, size_t refine_delta, NnCache& cache,
                     DiscordRecord* best) {
  const std::vector<RuleInterval>& candidates = *state.candidates;
  const size_t m = dist.series_length();

  double best_dist = -1.0;
  const RuleInterval* best_interval = nullptr;
  size_t best_nn = 0;

  for (size_t ci : state.outer_order) {
    if (excluded[ci]) {
      continue;
    }
    // Re-use knowledge from earlier rounds.
    if (cache.upper[ci] < best_dist) {
      continue;  // true nn <= upper < best: cannot win
    }
    if (cache.exact[ci]) {
      if (cache.upper[ci] > best_dist &&
          cache.upper[ci] != SubsequenceDistance::kInfinity) {
        best_dist = cache.upper[ci];
        best_interval = &candidates[ci];
        best_nn = cache.nn_pos[ci];
      }
      continue;
    }
    const RuleInterval& cand = candidates[ci];
    const size_t p = cand.span.start;
    const size_t len = cand.span.length();
    const double norm = normalize ? static_cast<double>(len) : 1.0;

    double nn = SubsequenceDistance::kInfinity;  // normalized units
    size_t nn_q = 0;
    bool pruned = false;
    if (cache.upper[ci] != SubsequenceDistance::kInfinity) {
      // Partial knowledge from an earlier round tightens the abandon limit
      // from the first call.
      nn = cache.upper[ci];
      nn_q = cache.nn_pos[ci];
    }

    auto visit_position = [&](size_t q) {
      if (q + len > m) {
        return true;  // neighbor window does not fit
      }
      const size_t gap = p > q ? p - q : q - p;
      if (gap < len) {
        return true;  // self match (|p0 - q0| < Length(p))
      }
      const double limit_raw =
          nn == SubsequenceDistance::kInfinity ? nn : nn * norm;
      const double raw = dist.Distance(p, q, len, limit_raw);
      const double d = raw / norm;
      if (d < nn) {
        nn = d;
        nn_q = q;
        if (nn < best_dist) {
          pruned = true;  // candidate cannot beat the best so far
          return false;
        }
      }
      return true;
    };
    auto visit = [&](size_t qi) {
      return visit_position(candidates[qi].span.start);
    };
    // Local alignment refinement around the current nearest neighbor.
    // Interval starts quantize the alignment space (numerosity reduction
    // keeps roughly one start per PAA segment), so an aligned neighbor is
    // usually a few samples off its true optimum; probing around it costs a
    // handful of calls and prunes candidates that only look anomalous
    // because of alignment noise.
    auto refine = [&]() {
      if (pruned || nn == SubsequenceDistance::kInfinity) {
        return;
      }
      const size_t center = nn_q;
      for (size_t off = 1; off <= refine_delta && !pruned; ++off) {
        if (center >= off && !visit_position(center - off)) {
          break;
        }
        if (!pruned && !visit_position(center + off)) {
          break;
        }
      }
    };

    // Inner phase 1: occurrences of the same rule — highly similar by
    // construction, most likely to abandon the candidate early — then
    // refine the alignment around the best of them.
    auto rule_it = state.by_rule.find(cand.rule);
    if (rule_it != state.by_rule.end() && cand.rule >= 0) {
      for (size_t qi : rule_it->second) {
        if (qi != ci && !visit(qi)) {
          break;
        }
      }
      if (exact_nn) {
        refine();
      }
    }
    // Inner phase 2: the other rule intervals, random order, followed by
    // another refinement pass if the nearest neighbor moved.
    if (!pruned) {
      const size_t nn_before = nn_q;
      for (size_t qi : state.inner_random) {
        if (qi == ci ||
            (cand.rule >= 0 && candidates[qi].rule == cand.rule)) {
          continue;
        }
        if (!visit(qi)) {
          break;
        }
      }
      if (exact_nn && !pruned && nn_q != nn_before) {
        refine();
      }
    }
    // Inner phase 3: every remaining sliding-window position, random order.
    // A candidate that is still promising here is verified exhaustively so
    // the reported discord distance is its true nearest-non-self-match
    // distance. Early abandoning keeps this phase cheap: one neighbor below
    // best_so_far prunes the candidate.
    if (exact_nn && !pruned) {
      for (size_t q : state.all_positions_random) {
        if (!visit_position(q)) {
          break;
        }
      }
    }

    // Record what this scan learned for later rounds: `nn` upper-bounds the
    // true nearest-neighbor distance, and is exact when the exhaustive
    // phase completed.
    if (nn < cache.upper[ci]) {
      cache.upper[ci] = nn;
      cache.nn_pos[ci] = nn_q;
    }
    if (!pruned) {
      cache.exact[ci] = true;
    }

    if (!pruned && nn != SubsequenceDistance::kInfinity && nn > best_dist) {
      best_dist = nn;
      best_interval = &cand;
      best_nn = nn_q;
    }
  }

  if (best_interval == nullptr) {
    return false;
  }
  *best = DiscordRecord{best_interval->span.start,
                        best_interval->span.length(), best_dist, best_nn,
                        best_interval->rule};
  return true;
}

}  // namespace

StatusOr<DiscordResult> FindRraDiscordsInDecomposition(
    std::span<const double> series, const GrammarDecomposition& decomposition,
    const RraOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (series.size() != decomposition.series_length) {
    return Status::InvalidArgument(
        "series/decomposition length mismatch");
  }
  std::vector<RuleInterval> candidates =
      BuildCandidates(decomposition, options);
  DiscordResult result;
  if (candidates.empty()) {
    return result;
  }
  SearchState state =
      BuildOrders(candidates, series.size(), options.seed);
  SubsequenceDistance dist(series, options.sax.znorm_epsilon);
  std::vector<bool> excluded(candidates.size(), false);
  NnCache cache;
  cache.upper.assign(candidates.size(), SubsequenceDistance::kInfinity);
  cache.exact.assign(candidates.size(), false);
  cache.nn_pos.assign(candidates.size(), 0);

  for (size_t k = 0; k < options.top_k; ++k) {
    DiscordRecord best;
    // Alignment-refinement radius: half a PAA segment on each side covers
    // the quantization introduced by numerosity reduction.
    const size_t refine_delta = std::max<size_t>(
        2, options.sax.window / std::max<size_t>(1, 2 * options.sax.paa_size));
    if (!FindBestDiscord(dist, state, excluded, options.normalize_by_length,
                         options.exact_nearest_neighbor, refine_delta, cache,
                         &best)) {
      break;
    }
    result.discords.push_back(best);
    // Exclude candidates overlapping the discovered discord.
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].span.Overlaps(best.span())) {
        excluded[i] = true;
      }
    }
  }
  result.distance_calls = dist.calls();
  return result;
}

StatusOr<RraDetection> FindRraDiscords(std::span<const double> series,
                                       const RraOptions& options) {
  RraDetection detection;
  GVA_ASSIGN_OR_RETURN(detection.decomposition,
                       DecomposeSeries(series, options.sax));
  GVA_ASSIGN_OR_RETURN(
      detection.result,
      FindRraDiscordsInDecomposition(series, detection.decomposition,
                                     options));
  return detection;
}

std::vector<double> IntervalNnDistances(std::span<const double> series,
                                        const std::vector<RuleInterval>& all,
                                        bool normalize_by_length) {
  SubsequenceDistance dist(series);
  const size_t m = series.size();
  std::vector<double> result(all.size(), SubsequenceDistance::kInfinity);
  for (size_t i = 0; i < all.size(); ++i) {
    const size_t p = all[i].span.start;
    const size_t len = all[i].span.length();
    if (len < 2 || p + len > m) {
      continue;
    }
    const double norm =
        normalize_by_length ? static_cast<double>(len) : 1.0;
    double nn = SubsequenceDistance::kInfinity;
    for (size_t j = 0; j < all.size(); ++j) {
      if (j == i) {
        continue;
      }
      const size_t q = all[j].span.start;
      if (q + len > m) {
        continue;
      }
      const size_t gap = p > q ? p - q : q - p;
      if (gap < len) {
        continue;
      }
      const double limit_raw =
          nn == SubsequenceDistance::kInfinity ? nn : nn * norm;
      const double d = dist.Distance(p, q, len, limit_raw) / norm;
      if (d < nn) {
        nn = d;
      }
    }
    result[i] = nn;
  }
  return result;
}

}  // namespace gva
