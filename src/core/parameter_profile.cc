#include "core/parameter_profile.h"

#include <algorithm>
#include <cmath>

#include "grammar/sequitur.h"
#include "sax/alphabet.h"
#include "sax/paa.h"
#include "timeseries/sliding_window.h"
#include "timeseries/znorm.h"
#include "util/math_utils.h"

namespace gva {

namespace {

/// Decoded level of each letter: the median of its equiprobable region.
std::vector<double> LetterLevels(const NormalAlphabet& alphabet) {
  std::vector<double> levels(alphabet.size());
  const double a = static_cast<double>(alphabet.size());
  for (size_t i = 0; i < alphabet.size(); ++i) {
    levels[i] = InverseNormalCdf((static_cast<double>(i) + 0.5) / a);
  }
  return levels;
}

}  // namespace

StatusOr<GrammarProfile> ProfileParameters(std::span<const double> series,
                                           const SaxOptions& options) {
  GVA_ASSIGN_OR_RETURN(SaxRecords records, Discretize(series, options));
  GVA_ASSIGN_OR_RETURN(WordGrammar grammar,
                       InferGrammarFromWords(records.words));

  GrammarProfile profile;
  profile.sax = options;
  profile.tokens = records.size();
  profile.rules = grammar.grammar.size();
  for (const GrammarRule& rule : grammar.grammar.rules()) {
    profile.grammar_size += rule.rhs.size();
  }

  // Reconstruction error over the kept windows.
  const NormalAlphabet alphabet(options.alphabet_size);
  const std::vector<double> levels = LetterLevels(alphabet);
  std::vector<double> normalized;
  std::vector<double> paa;
  double total_error = 0.0;
  size_t total_points = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const size_t pos = records.offsets[i];
    ZNormalize(WindowAt(series, pos, options.window), normalized,
               options.znorm_epsilon);
    const std::string& word = records.words[i];
    // Expand the word back to window length: segment j covers the real
    // interval [j*n/w, (j+1)*n/w).
    for (size_t p = 0; p < options.window; ++p) {
      const size_t segment =
          std::min(options.paa_size - 1,
                   p * options.paa_size / options.window);
      const double level =
          levels[NormalAlphabet::IndexOfLetter(word[segment])];
      total_error += std::abs(normalized[p] - level);
    }
    total_points += options.window;
  }
  profile.approximation_error =
      total_points > 0 ? total_error / static_cast<double>(total_points)
                       : 0.0;

  profile.compression =
      profile.tokens > 0
          ? 1.0 - static_cast<double>(profile.grammar_size) /
                      static_cast<double>(profile.tokens)
          : 0.0;
  if (profile.compression < 0.0) {
    profile.compression = 0.0;
  }

  // Degenerate combinations cannot support anomaly discovery: nearly no
  // tokens (everything collapsed) or no rules (nothing repeated).
  if (profile.tokens >= 10 && profile.rules >= 2) {
    profile.score =
        profile.compression / (1.0 + profile.approximation_error);
  }
  return profile;
}

StatusOr<std::vector<GrammarProfile>> SweepParameterGrid(
    std::span<const double> series, const ParameterGrid& grid) {
  std::vector<GrammarProfile> profiles;
  for (size_t w : grid.windows) {
    if (series.size() < 2 * w) {
      continue;
    }
    for (size_t p : grid.paa_sizes) {
      if (p > w) {
        continue;
      }
      for (size_t a : grid.alphabet_sizes) {
        SaxOptions options;
        options.window = w;
        options.paa_size = p;
        options.alphabet_size = a;
        GVA_ASSIGN_OR_RETURN(GrammarProfile profile,
                             ProfileParameters(series, options));
        profiles.push_back(profile);
      }
    }
  }
  if (profiles.empty()) {
    return Status::InvalidArgument(
        "no grid combination fits the series length");
  }
  return profiles;
}

StatusOr<SaxOptions> SuggestParameters(std::span<const double> series,
                                       const ParameterGrid& grid) {
  GVA_ASSIGN_OR_RETURN(std::vector<GrammarProfile> profiles,
                       SweepParameterGrid(series, grid));
  const GrammarProfile* best = nullptr;
  for (const GrammarProfile& p : profiles) {
    if (best == nullptr || p.score > best->score) {
      best = &p;
    }
  }
  if (best == nullptr || best->score <= 0.0) {
    return Status::NotFound(
        "no parameter combination produced a usable grammar");
  }
  return best->sax;
}

}  // namespace gva
