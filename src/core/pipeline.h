#ifndef GVA_CORE_PIPELINE_H_
#define GVA_CORE_PIPELINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "grammar/rule_intervals.h"
#include "grammar/sequitur.h"
#include "sax/sax_transform.h"
#include "util/statusor.h"

namespace gva {

/// The grammar decomposition both detectors share (paper Section 3):
/// SAX discretization -> numerosity reduction -> Sequitur -> rule-to-series
/// interval mapping -> rule density curve.
struct GrammarDecomposition {
  SaxRecords records;
  WordGrammar grammar;
  std::vector<RuleInterval> intervals;
  std::vector<uint32_t> density;
  size_t series_length = 0;
  size_t window = 0;
};

/// Runs the full decomposition. Fails on invalid SAX options or a series
/// shorter than the window. Linear time and space in the series length.
StatusOr<GrammarDecomposition> DecomposeSeries(std::span<const double> series,
                                               const SaxOptions& options);

/// The decomposition tail for callers that already discretized the series
/// (e.g. the ensemble engine, whose substrate cache produces SaxRecords
/// from a shared z-plane): Sequitur -> interval mapping -> density curve.
/// `records` must be the discretization of `series` under `options`;
/// given that, the result is identical to DecomposeSeries(series, options).
StatusOr<GrammarDecomposition> DecomposeSeriesWithRecords(
    std::span<const double> series, const SaxOptions& options,
    SaxRecords records);

}  // namespace gva

#endif  // GVA_CORE_PIPELINE_H_
