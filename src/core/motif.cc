#include "core/motif.h"

#include <algorithm>

#include "grammar/grammar_printer.h"

namespace gva {

StatusOr<MotifDetection> FindMotifs(std::span<const double> series,
                                    const MotifOptions& options) {
  MotifDetection detection;
  GVA_ASSIGN_OR_RETURN(detection.decomposition,
                       DecomposeSeries(series, options.sax));
  const GrammarDecomposition& d = detection.decomposition;

  // Group the mapped intervals by rule.
  const size_t num_rules = d.grammar.grammar.size();
  std::vector<std::vector<Interval>> by_rule(num_rules);
  for (const RuleInterval& ri : d.intervals) {
    if (ri.rule >= 1) {
      by_rule[static_cast<size_t>(ri.rule)].push_back(ri.span);
    }
  }

  for (size_t r = 1; r < num_rules; ++r) {
    const std::vector<Interval>& occurrences = by_rule[r];
    if (occurrences.size() < options.min_frequency) {
      continue;
    }
    Motif motif;
    motif.rule = static_cast<int32_t>(r);
    motif.frequency = occurrences.size();
    motif.occurrences = occurrences;
    motif.min_length = occurrences.front().length();
    motif.max_length = occurrences.front().length();
    size_t total = 0;
    for (const Interval& occ : occurrences) {
      total += occ.length();
      motif.min_length = std::min(motif.min_length, occ.length());
      motif.max_length = std::max(motif.max_length, occ.length());
    }
    motif.mean_length =
        static_cast<double>(total) / static_cast<double>(occurrences.size());
    if (motif.mean_length < static_cast<double>(options.min_length)) {
      continue;
    }
    motif.rhs = RuleRhsToString(d.grammar, r);
    detection.motifs.push_back(std::move(motif));
  }

  std::stable_sort(detection.motifs.begin(), detection.motifs.end(),
                   [](const Motif& a, const Motif& b) {
                     if (a.frequency != b.frequency) {
                       return a.frequency > b.frequency;
                     }
                     return a.mean_length > b.mean_length;
                   });
  if (detection.motifs.size() > options.max_motifs) {
    detection.motifs.resize(options.max_motifs);
  }
  for (size_t i = 0; i < detection.motifs.size(); ++i) {
    detection.motifs[i].rank = i;
  }
  return detection;
}

}  // namespace gva
