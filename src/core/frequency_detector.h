#ifndef GVA_CORE_FREQUENCY_DETECTOR_H_
#define GVA_CORE_FREQUENCY_DETECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sax/sax_transform.h"
#include "timeseries/interval.h"
#include "util/statusor.h"

namespace gva {

/// Options for the word-frequency baseline.
struct FrequencyAnomalyOptions {
  /// Discretization parameters; numerosity reduction is ignored (every
  /// window position gets a word, as in VizTree's trie).
  SaxOptions sax;
  /// Support threshold as a fraction of the support range above the
  /// minimum; 0 keeps only globally rarest words.
  double threshold_fraction = 0.0;
  /// Keep at most this many anomalies, ranked by mean support ascending.
  size_t max_anomalies = 10;
};

/// One low-support interval.
struct FrequencyAnomaly {
  Interval span;
  /// Mean word support (occurrences / windows) over the interval.
  double mean_support = 0.0;
  size_t rank = 0;
};

/// Output of the rare-word baseline.
struct FrequencyDetection {
  /// Per-window-position support of the position's SAX word, in [0, 1].
  std::vector<double> support;
  std::vector<FrequencyAnomaly> anomalies;
};

/// Word-frequency anomaly detection in the spirit of VizTree (Lin et al.
/// 2004) and infrequent-pattern scoring (Chen & Zhan) — the
/// "rare patterns without distances" related work of paper Section 6.
/// Every window is discretized; positions whose words have the lowest
/// support are reported. Fast and grammar-free, but blind to the *order*
/// of words — the contextual information the paper's grammar approach
/// exploits — and bounded by the window length.
StatusOr<FrequencyDetection> DetectRareWordAnomalies(
    std::span<const double> series, const FrequencyAnomalyOptions& options);

}  // namespace gva

#endif  // GVA_CORE_FREQUENCY_DETECTOR_H_
