#ifndef GVA_CORE_PARAMETER_PROFILE_H_
#define GVA_CORE_PARAMETER_PROFILE_H_

#include <span>
#include <vector>

#include "sax/sax_transform.h"
#include "util/statusor.h"

namespace gva {

/// How one (window, paa, alphabet) combination behaves on a series — the
/// two axes of the paper's Figure 10 exploratory study (Section 5.2):
/// the precision of the raw-signal approximation, and the size of the
/// resulting grammar.
struct GrammarProfile {
  SaxOptions sax;
  /// Mean per-point reconstruction error of the SAX approximation over the
  /// kept (numerosity-reduced) windows: each letter is decoded to the
  /// median value of its equiprobable region, expanded back over the
  /// window and compared against the z-normalized original.
  double approximation_error = 0.0;
  /// Number of grammar rules, R0 included.
  size_t rules = 0;
  /// Total right-hand-side symbols over all rules — the grammar's size.
  size_t grammar_size = 0;
  /// Tokens after numerosity reduction.
  size_t tokens = 0;
  /// 1 - grammar_size / tokens: how much Sequitur compressed the token
  /// stream (0 = incompressible, -> 1 = highly regular).
  double compression = 0.0;
  /// Selection heuristic: compression discounted by approximation error.
  /// Zero when the combination is degenerate (almost no tokens or no
  /// rules).
  double score = 0.0;
};

/// Profiles a single parameter combination. Fails on invalid options or a
/// series shorter than the window.
StatusOr<GrammarProfile> ProfileParameters(std::span<const double> series,
                                           const SaxOptions& options);

/// Grid for SweepParameterGrid / SuggestParameters.
struct ParameterGrid {
  std::vector<size_t> windows = {50, 100, 150, 200, 300};
  std::vector<size_t> paa_sizes = {3, 4, 5, 6, 8};
  std::vector<size_t> alphabet_sizes = {3, 4, 5, 6};
};

/// Profiles every valid combination of the grid (combinations whose window
/// exceeds the series or whose PAA exceeds the window are skipped).
StatusOr<std::vector<GrammarProfile>> SweepParameterGrid(
    std::span<const double> series, const ParameterGrid& grid);

/// Picks the grid combination with the best score — a data-driven starting
/// point for the discretization parameters, following the paper's
/// observation that context-driven parameter choices (one heartbeat, one
/// week, one cycle) produce sensible grammars: such choices sit where the
/// grammar is both small and faithful.
StatusOr<SaxOptions> SuggestParameters(std::span<const double> series,
                                       const ParameterGrid& grid = {});

}  // namespace gva

#endif  // GVA_CORE_PARAMETER_PROFILE_H_
