#include "core/streaming.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "sax/mindist.h"
#include "util/check.h"
#include "util/strings.h"

namespace gva {

namespace {

/// The numerosity-reduction decision against the generation's previously
/// kept word (paper Section 3.2) — the streaming twin of the batch loop in
/// sax_transform.cc.
bool KeepWord(const std::vector<std::string>& kept, const std::string& word,
              NumerosityReduction numerosity, const NormalAlphabet& alphabet) {
  if (kept.empty()) {
    return true;
  }
  const std::string& prev = kept.back();
  switch (numerosity) {
    case NumerosityReduction::kNone:
      return true;
    case NumerosityReduction::kExact:
      return word != prev;
    case NumerosityReduction::kMinDist:
      return !MinDistIsZero(word, prev, alphabet);
  }
  return true;
}

bool SpanBefore(const Interval& a, const Interval& b) {
  return a.start != b.start ? a.start < b.start : a.end < b.end;
}

/// Difference-updates `density` (the curve built from the sorted span
/// multiset `old_spans`) into the curve of the sorted span multiset
/// `new_spans`: only spans present in exactly one of the two are touched,
/// so the cost is proportional to the changed coverage, not the suffix.
/// Removals are applied before additions — every point of a removed span
/// is still covered by it in `density`, so the subtraction cannot
/// underflow regardless of how additions interleave.
void ApplySpanDeltas(const std::vector<Interval>& old_spans,
                     const std::vector<Interval>& new_spans,
                     std::vector<uint32_t>& density) {
  std::vector<const Interval*> removed;
  std::vector<const Interval*> added;
  size_t i = 0;
  size_t j = 0;
  while (i < old_spans.size() && j < new_spans.size()) {
    if (old_spans[i] == new_spans[j]) {
      ++i;
      ++j;
    } else if (SpanBefore(old_spans[i], new_spans[j])) {
      removed.push_back(&old_spans[i++]);
    } else {
      added.push_back(&new_spans[j++]);
    }
  }
  for (; i < old_spans.size(); ++i) {
    removed.push_back(&old_spans[i]);
  }
  for (; j < new_spans.size(); ++j) {
    added.push_back(&new_spans[j]);
  }
  for (const Interval* s : removed) {
    for (size_t p = s->start; p < s->end && p < density.size(); ++p) {
      GVA_DCHECK(density[p] > 0);
      --density[p];
    }
  }
  for (const Interval* s : added) {
    for (size_t p = s->start; p < s->end && p < density.size(); ++p) {
      ++density[p];
    }
  }
}

}  // namespace

Status StreamingOptions::Validate() const {
  GVA_RETURN_IF_ERROR(sax.Validate());
  GVA_RETURN_IF_ERROR(density.Validate());
  if (horizon != 0 && horizon < sax.window) {
    return Status::InvalidArgument(
        StrFormat("horizon (%zu) must be 0 (unbounded) or >= window (%zu)",
                  horizon, sax.window));
  }
  return Status::Ok();
}

StreamingAnomalyMonitor::StreamingAnomalyMonitor(
    const StreamingOptions& options)
    : options_(options),
      alphabet_(options.sax.alphabet_size),
      samples_counter_(&obs::GlobalMetrics().counter("stream.samples")),
      tokens_counter_(&obs::GlobalMetrics().counter("stream.tokens")),
      evictions_counter_(&obs::GlobalMetrics().counter("stream.evictions")),
      reports_counter_(&obs::GlobalMetrics().counter("stream.reports")),
      retained_gauge_(&obs::GlobalMetrics().gauge("stream.retained_tokens")),
      generations_gauge_(
          &obs::GlobalMetrics().gauge("stream.generations.live")) {}

StatusOr<StreamingAnomalyMonitor> StreamingAnomalyMonitor::Create(
    const StreamingOptions& options) {
  GVA_RETURN_IF_ERROR(options.Validate());
  return StreamingAnomalyMonitor(options);
}

void StreamingAnomalyMonitor::Push(double value) {
  const size_t t = samples_seen_;
  const size_t horizon = options_.horizon;
  if (horizon > 0) {
    if (t % horizon == 0) {
      // A new generation opens at every horizon boundary; once the one
      // after next opens, the oldest covers >= 2*horizon samples and is
      // retired wholesale (rules, tokens, vocabulary, density — bounded
      // memory comes from dropping complete pipelines, not from surgically
      // un-weaving the grammar).
      if (generations_.size() == 2) {
        generations_.erase(generations_.begin());
        ++generations_evicted_;
        evictions_counter_->Add(1);
      }
      generations_.emplace_back(t, options_.sax);
    }
  } else if (generations_.empty()) {
    generations_.emplace_back(0, options_.sax);
  }
  for (Generation& generation : generations_) {
    Feed(generation, value);
  }
  ++samples_seen_;
  samples_counter_->Add(1);
  retained_gauge_->Set(static_cast<int64_t>(retained_tokens()));
  generations_gauge_->Set(static_cast<int64_t>(generations_.size()));
}

void StreamingAnomalyMonitor::Feed(Generation& generation, double value) {
  size_t pos = 0;
  if (!generation.discretizer.Push(value, word_scratch_, &pos)) {
    return;
  }
  if (!KeepWord(generation.words, word_scratch_, options_.sax.numerosity,
                alphabet_)) {
    return;
  }
  auto [it, inserted] = generation.vocabulary.emplace(
      word_scratch_, static_cast<int32_t>(generation.vocabulary_list.size()));
  if (inserted) {
    generation.vocabulary_list.push_back(word_scratch_);
  }
  const Status status = generation.sequitur.Append(it->second);
  GVA_DCHECK(status.ok());
  generation.tokens.push_back(it->second);
  generation.words.push_back(word_scratch_);
  generation.offsets.push_back(pos);
  tokens_counter_->Add(1);
}

void StreamingAnomalyMonitor::PushAll(std::span<const double> values) {
  for (double v : values) {
    Push(v);
  }
}

size_t StreamingAnomalyMonitor::tokens_emitted() const {
  return generations_.empty() ? 0 : generations_.front().tokens.size();
}

size_t StreamingAnomalyMonitor::retained_tokens() const {
  size_t total = 0;
  for (const Generation& generation : generations_) {
    total += generation.tokens.size();
  }
  return total;
}

size_t StreamingAnomalyMonitor::report_suffix_start() const {
  return generations_.empty() ? samples_seen_ : generations_.front().start;
}

size_t StreamingAnomalyMonitor::sax_fallback_words() const {
  size_t total = 0;
  for (const Generation& generation : generations_) {
    total += generation.discretizer.fallback_words();
  }
  return total;
}

StatusOr<StreamingReport> StreamingAnomalyMonitor::Report() {
  if (generations_.empty() ||
      samples_seen_ - generations_.front().start < options_.sax.window) {
    return Status::FailedPrecondition("not enough samples for one window yet");
  }
  GVA_OBS_SPAN("stream.report");
  reports_counter_->Add(1);
  Generation& generation = generations_.front();
  const size_t suffix_length = samples_seen_ - generation.start;

  StreamingReport report;
  report.suffix_start = generation.start;
  report.suffix_length = suffix_length;
  GrammarDecomposition& d = report.detection.decomposition;
  d.series_length = suffix_length;
  d.window = options_.sax.window;
  d.records.words = generation.words;
  d.records.offsets = generation.offsets;
  d.grammar.grammar = generation.sequitur.ExtractGrammar();
  d.grammar.vocabulary = generation.vocabulary_list;
  d.grammar.tokens = generation.tokens;
  d.intervals =
      MapRuleIntervals(d.grammar.grammar, d.records, d.window, suffix_length);

  // Difference-update the generation's density curve: grow it to the new
  // suffix length (new points start uncovered) and apply only the spans
  // whose multiset membership changed since the last report. The result is
  // identical to RuleDensityCurve(d.intervals, suffix_length) built from
  // scratch — integer coverage counts add exactly.
  generation.density.resize(suffix_length, 0);
  std::vector<Interval> spans;
  spans.reserve(d.intervals.size());
  for (const RuleInterval& interval : d.intervals) {
    spans.push_back(interval.span);
  }
  std::sort(spans.begin(), spans.end(), SpanBefore);
  ApplySpanDeltas(generation.density_spans, spans, generation.density);
  generation.density_spans = std::move(spans);

  d.density = generation.density;
  report.detection.anomalies =
      FindLowDensityIntervals(generation.density, d.window, options_.density);
  return report;
}

}  // namespace gva
