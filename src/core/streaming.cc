#include "core/streaming.h"

#include "sax/mindist.h"
#include "timeseries/sliding_window.h"

namespace gva {

StatusOr<StreamingAnomalyMonitor> StreamingAnomalyMonitor::Create(
    const StreamingOptions& options) {
  GVA_RETURN_IF_ERROR(options.sax.Validate());
  return StreamingAnomalyMonitor(options);
}

void StreamingAnomalyMonitor::Push(double value) {
  series_.push_back(value);
  const size_t window = options_.sax.window;
  if (series_.size() < window) {
    return;
  }
  // The newest complete window starts at series_.size() - window.
  const size_t pos = series_.size() - window;
  std::string word = SaxWordForWindow(
      std::span<const double>(series_).subspan(pos, window), options_.sax,
      alphabet_);

  bool keep = true;
  if (!words_.empty()) {
    const std::string& prev = words_.back();
    switch (options_.sax.numerosity) {
      case NumerosityReduction::kNone:
        break;
      case NumerosityReduction::kExact:
        keep = (word != prev);
        break;
      case NumerosityReduction::kMinDist:
        keep = !MinDistIsZero(word, prev, alphabet_);
        break;
    }
  }
  if (!keep) {
    return;
  }
  auto [it, inserted] = vocabulary_.emplace(
      word, static_cast<int32_t>(vocabulary_list_.size()));
  if (inserted) {
    vocabulary_list_.push_back(word);
  }
  const Status status = sequitur_.Append(it->second);
  GVA_DCHECK(status.ok());
  tokens_.push_back(it->second);
  words_.push_back(std::move(word));
  offsets_.push_back(pos);
}

void StreamingAnomalyMonitor::PushAll(std::span<const double> values) {
  for (double v : values) {
    Push(v);
  }
}

StatusOr<DensityDetection> StreamingAnomalyMonitor::Report() const {
  if (series_.size() < options_.sax.window) {
    return Status::FailedPrecondition(
        "not enough samples for one window yet");
  }
  DensityDetection detection;
  GrammarDecomposition& d = detection.decomposition;
  d.series_length = series_.size();
  d.window = options_.sax.window;
  d.records.words = words_;
  d.records.offsets = offsets_;
  d.grammar.grammar = sequitur_.ExtractGrammar();
  d.grammar.vocabulary = vocabulary_list_;
  d.grammar.tokens = tokens_;
  d.intervals = MapRuleIntervals(d.grammar.grammar, d.records,
                                 options_.sax.window, series_.size());
  d.density = RuleDensityCurve(d.intervals, series_.size());
  detection.anomalies =
      FindLowDensityIntervals(d.density, options_.sax.window,
                              options_.density);
  return detection;
}

}  // namespace gva
