#ifndef GVA_CORE_JOB_RUNNER_H_
#define GVA_CORE_JOB_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/statusor.h"

namespace gva {

/// Detector families a job can request. `kAuto` delegates to the ensemble
/// over the automatic configuration grid — the robust default when the
/// caller knows nothing about the series (the cross-config vote subsumes
/// any single configuration's blind spots; see DESIGN.md §7).
enum class JobDetector {
  kBruteForce,
  kHotSax,
  kRra,
  kDensity,
  kEnsemble,
  kAuto,
};

/// Parses "brute|hotsax|rra|density|ensemble|auto"; NotFound otherwise.
StatusOr<JobDetector> ParseJobDetector(std::string_view name);

/// Stable wire name of a detector ("brute", "hotsax", ...).
const char* JobDetectorName(JobDetector detector);

/// One detection job, as accepted by JobRunner::Submit. Field semantics
/// mirror the gva_cli flags exactly — a job must produce results
/// bit-identical to the corresponding CLI invocation.
struct JobSpec {
  /// Scheduling/accounting label; independent tenants share the runner.
  std::string tenant = "default";
  JobDetector detector = JobDetector::kAuto;
  /// The series to analyze (already materialized by the caller: inline
  /// payload, file load, or demo dataset).
  std::vector<double> series;
  /// Discretization triple; any 0 field is filled from
  /// SuggestParameters(series), like the CLI's flag fallback.
  size_t window = 0;
  size_t paa = 0;
  size_t alphabet = 0;
  /// Anomalies/discords to report (CLI --top).
  size_t top_k = 3;
  /// Density threshold fraction (CLI --threshold).
  double threshold = 0.05;
  /// Worker lanes inside the search (CLI --threads); clamped to
  /// JobRunnerOptions::max_threads_per_job. Results are thread-count
  /// invariant, so the clamp never changes an answer.
  size_t num_threads = 1;
  /// RRA only: the paper's interval-aligned inner loop (CLI --approx).
  bool approx = false;
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Stable wire name of a state ("queued", "running", ...).
const char* JobStateName(JobState state);

/// One ranked anomaly in the unified cross-detector format.
struct JobAnomaly {
  size_t start = 0;
  size_t end = 0;
  /// Detector-native ranking score: NN distance for discord searches
  /// (higher = more anomalous), mean density / mean ensemble score for the
  /// density detectors (lower = more anomalous). Bit-identical to the
  /// library result the CLI prints.
  double score = 0.0;
  size_t rank = 0;
};

/// Result payload of a finished job.
struct JobOutcome {
  /// Resolved detector name ("auto" resolves to what actually ran).
  std::string detector;
  /// Resolved discretization triple (after suggestion).
  size_t window = 0;
  size_t paa = 0;
  size_t alphabet = 0;
  std::vector<JobAnomaly> anomalies;
  uint64_t distance_calls = 0;
  /// Rule-density curve (density/rra jobs) for the SVG report panel.
  std::vector<uint32_t> density;
  /// Aggregated ensemble score curve (ensemble/auto jobs), one per point.
  std::vector<double> score_curve;
};

/// Point-in-time copy of a job's externally visible state. `series` aliases
/// the job's immutable input (shared, not copied) so report renderers can
/// draw it without a per-poll copy.
struct JobSnapshot {
  uint64_t id = 0;
  std::string tenant;
  JobState state = JobState::kQueued;
  /// Why the job failed / was cancelled; OK otherwise.
  Status status;
  std::shared_ptr<const std::vector<double>> series;
  JobSpec spec;  ///< series field left empty (see `series`)
  JobOutcome outcome;
};

struct JobRunnerOptions {
  /// Concurrent job slots (one worker thread each).
  size_t slots = 2;
  /// Bounded FIFO admission queue behind the slots; Submit is rejected
  /// with ResourceExhausted when full (the server maps that to 429).
  size_t queue_capacity = 8;
  /// Clamp on JobSpec::num_threads, bounding total pool lanes at
  /// slots * max_threads_per_job.
  size_t max_threads_per_job = 4;
  /// Largest accepted series (InvalidArgument beyond).
  size_t max_series_points = 2000000;

  Status Validate() const;
};

/// Slot-based job scheduler: a fixed worker pool drains a bounded FIFO of
/// detection jobs, modeled on the slot/queue architecture of llama.cpp's
/// server (DESIGN.md §13). Each worker runs one job at a time through the
/// library's detector entry points — the same calls the CLI makes — so
/// results are bit-identical to the CLI's. Cancellation is cooperative:
/// Cancel() removes a queued job immediately and flags a running one (the
/// RRA search polls the flag between outer candidates; other detectors
/// finish their current call, then the result is discarded as cancelled).
///
/// The runner is deliberately clock-free (src/core determinism contract):
/// admission order is the only ordering, and ids are a dense sequence.
class JobRunner {
 public:
  static StatusOr<std::unique_ptr<JobRunner>> Create(
      const JobRunnerOptions& options);

  ~JobRunner();
  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Enqueues a job. Fails with ResourceExhausted when the queue is full
  /// (never blocks), InvalidArgument on an unusable spec.
  StatusOr<uint64_t> Submit(JobSpec spec);

  /// Snapshot of one job; NotFound for unknown ids.
  StatusOr<JobSnapshot> Get(uint64_t id) const;

  /// Snapshots of every job, id-ascending. `tenant` filters when non-empty.
  std::vector<JobSnapshot> List(std::string_view tenant = {}) const;

  /// Cancels a job: a queued job transitions to kCancelled immediately; a
  /// running one is flagged and transitions when the detector yields.
  /// Finished jobs are left as-is (OK — cancel is idempotent). NotFound
  /// for unknown ids.
  Status Cancel(uint64_t id);

  /// Flags every live job as cancelled, drains the queue, joins the
  /// workers. Idempotent; the destructor calls it.
  void Shutdown();

  size_t slots() const { return options_.slots; }
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Live scheduling state (exact under the runner lock).
  size_t slots_busy() const;
  size_t queue_depth() const;

  /// Monotonic lifetime counters (independent of the resettable obs
  /// registry; these feed /healthz).
  uint64_t jobs_accepted() const;
  uint64_t jobs_rejected() const;
  uint64_t jobs_completed() const;
  uint64_t jobs_failed() const;
  uint64_t jobs_cancelled() const;

 private:
  struct Job {
    uint64_t id = 0;
    JobSpec spec;  ///< series moved out into `series`
    std::shared_ptr<const std::vector<double>> series;
    JobState state = JobState::kQueued;
    Status status;
    JobOutcome outcome;
    std::atomic<bool> cancel{false};
  };

  explicit JobRunner(const JobRunnerOptions& options);

  void WorkerLoop();
  JobSnapshot SnapshotLocked(const Job& job) const;
  void PublishGaugesLocked();

  const JobRunnerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  bool stop_ = false;
  uint64_t next_id_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  size_t slots_busy_ = 0;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t cancelled_ = 0;
  std::vector<std::thread> workers_;

  // Registry-owned handles (stable addresses): the server.* health series
  // telemetry scrapes see move while jobs flow.
  obs::Gauge* slots_busy_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* accepted_counter_;
  obs::Counter* rejected_counter_;
  obs::Counter* completed_counter_;
  obs::Counter* failed_counter_;
  obs::Counter* cancelled_counter_;
};

/// Runs one job spec synchronously through the library's detector entry
/// points (the exact calls gva_cli makes), polling `cancel` where the
/// detector supports it. Exposed for the differential tests that pin
/// server results to library results.
StatusOr<JobOutcome> RunDetectionJob(const JobSpec& spec,
                                     std::span<const double> series,
                                     const std::atomic<bool>* cancel);

}  // namespace gva

#endif  // GVA_CORE_JOB_RUNNER_H_
