#include "core/detector.h"

#include <algorithm>

namespace gva {

namespace {

class RuleDensityAdapter : public AnomalyDetector {
 public:
  RuleDensityAdapter(const SaxOptions& sax,
                     const DensityAnomalyOptions& options)
      : sax_(sax), options_(options) {}

  std::string name() const override { return "rule-density"; }

  StatusOr<UnifiedDetection> Detect(std::span<const double> series,
                                    size_t max_anomalies) const override {
    DensityAnomalyOptions options = options_;
    options.max_anomalies = max_anomalies;
    GVA_ASSIGN_OR_RETURN(DensityDetection detection,
                         DetectDensityAnomalies(series, sax_, options));
    UnifiedDetection out;
    // Score: depth below the curve mean — lower density is more anomalous.
    double mean = 0.0;
    for (uint32_t d : detection.decomposition.density) {
      mean += d;
    }
    mean /= static_cast<double>(
        std::max<size_t>(1, detection.decomposition.density.size()));
    for (const DensityAnomaly& a : detection.anomalies) {
      out.anomalies.push_back(UnifiedAnomaly{
          a.span, std::max(0.0, mean - a.mean_density), a.rank});
    }
    return out;
  }

 private:
  SaxOptions sax_;
  DensityAnomalyOptions options_;
};

class RraAdapter : public AnomalyDetector {
 public:
  explicit RraAdapter(const RraOptions& options) : options_(options) {}

  std::string name() const override { return "rra"; }

  StatusOr<UnifiedDetection> Detect(std::span<const double> series,
                                    size_t max_anomalies) const override {
    RraOptions options = options_;
    options.top_k = max_anomalies;
    GVA_ASSIGN_OR_RETURN(RraDetection detection,
                         FindRraDiscords(series, options));
    UnifiedDetection out;
    out.distance_calls = detection.result.distance_calls;
    out.distance_calls_completed = detection.result.distance_calls_completed;
    out.distance_calls_abandoned = detection.result.distance_calls_abandoned;
    for (size_t i = 0; i < detection.result.discords.size(); ++i) {
      const DiscordRecord& d = detection.result.discords[i];
      out.anomalies.push_back(UnifiedAnomaly{d.span(), d.distance, i});
    }
    return out;
  }

 private:
  RraOptions options_;
};

class RareWordAdapter : public AnomalyDetector {
 public:
  explicit RareWordAdapter(const FrequencyAnomalyOptions& options)
      : options_(options) {}

  std::string name() const override { return "rare-word"; }

  StatusOr<UnifiedDetection> Detect(std::span<const double> series,
                                    size_t max_anomalies) const override {
    FrequencyAnomalyOptions options = options_;
    options.max_anomalies = max_anomalies;
    GVA_ASSIGN_OR_RETURN(FrequencyDetection detection,
                         DetectRareWordAnomalies(series, options));
    UnifiedDetection out;
    for (const FrequencyAnomaly& a : detection.anomalies) {
      out.anomalies.push_back(
          UnifiedAnomaly{a.span, 1.0 - a.mean_support, a.rank});
    }
    return out;
  }

 private:
  FrequencyAnomalyOptions options_;
};

class CompressionAdapter : public AnomalyDetector {
 public:
  explicit CompressionAdapter(const CompressionScoreOptions& options)
      : options_(options) {}

  std::string name() const override { return "compression"; }

  StatusOr<UnifiedDetection> Detect(std::span<const double> series,
                                    size_t max_anomalies) const override {
    CompressionScoreOptions options = options_;
    options.max_anomalies = max_anomalies;
    GVA_ASSIGN_OR_RETURN(CompressionDetection detection,
                         DetectCompressionAnomalies(series, options));
    UnifiedDetection out;
    for (const SegmentScore& s : detection.anomalies) {
      out.anomalies.push_back(UnifiedAnomaly{s.span, s.cost, s.rank});
    }
    return out;
  }

 private:
  CompressionScoreOptions options_;
};

}  // namespace

std::unique_ptr<AnomalyDetector> MakeRuleDensityDetector(
    const SaxOptions& sax, const DensityAnomalyOptions& options) {
  return std::make_unique<RuleDensityAdapter>(sax, options);
}

std::unique_ptr<AnomalyDetector> MakeRraDetector(const RraOptions& options) {
  return std::make_unique<RraAdapter>(options);
}

std::unique_ptr<AnomalyDetector> MakeRareWordDetector(
    const FrequencyAnomalyOptions& options) {
  return std::make_unique<RareWordAdapter>(options);
}

std::unique_ptr<AnomalyDetector> MakeCompressionDetector(
    const CompressionScoreOptions& options) {
  return std::make_unique<CompressionAdapter>(options);
}

StatusOr<std::unique_ptr<AnomalyDetector>> MakeDetectorByName(
    const std::string& name, const SaxOptions& sax) {
  if (name == "rule-density") {
    return MakeRuleDensityDetector(sax);
  }
  if (name == "rra") {
    RraOptions options;
    options.sax = sax;
    return MakeRraDetector(options);
  }
  if (name == "rare-word") {
    FrequencyAnomalyOptions options;
    options.sax = sax;
    return MakeRareWordDetector(options);
  }
  if (name == "compression") {
    CompressionScoreOptions options;
    options.sax = sax;
    return MakeCompressionDetector(options);
  }
  return Status::NotFound("unknown detector '" + name + "'");
}

std::vector<std::string> AvailableDetectors() {
  return {"rule-density", "rra", "rare-word", "compression"};
}

}  // namespace gva
