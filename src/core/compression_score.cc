#include "core/compression_score.h"

#include <algorithm>
#include <map>
#include <memory>

namespace gva {

namespace {

/// Trie over the grammar's rule expansions (terminal token sequences),
/// supporting longest-prefix match.
class ExpansionTrie {
 public:
  void Insert(std::span<const int32_t> expansion) {
    Node* node = &root_;
    for (int32_t token : expansion) {
      auto [it, inserted] = node->children.try_emplace(token);
      if (inserted) {
        it->second = std::make_unique<Node>();
      }
      node = it->second.get();
    }
    node->terminal = true;
  }

  /// Length of the longest dictionary entry that prefixes `tokens`
  /// (0 when none matches).
  size_t LongestMatch(std::span<const int32_t> tokens) const {
    const Node* node = &root_;
    size_t best = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      auto it = node->children.find(tokens[i]);
      if (it == node->children.end()) {
        break;
      }
      node = it->second.get();
      if (node->terminal) {
        best = i + 1;
      }
    }
    return best;
  }

 private:
  struct Node {
    std::map<int32_t, std::unique_ptr<Node>> children;
    bool terminal = false;
  };
  Node root_;
};

ExpansionTrie BuildDictionary(const Grammar& grammar) {
  ExpansionTrie trie;
  for (size_t r = 1; r < grammar.size(); ++r) {
    trie.Insert(grammar.ExpandToTerminals(r));
  }
  return trie;
}

size_t GreedyParseItemsWithTrie(const ExpansionTrie& trie,
                                std::span<const int32_t> tokens) {
  size_t items = 0;
  size_t pos = 0;
  while (pos < tokens.size()) {
    const size_t match = trie.LongestMatch(tokens.subspan(pos));
    pos += match > 1 ? match : 1;  // single-token "rules" gain nothing
    ++items;
  }
  return items;
}

}  // namespace

size_t GreedyParseItems(const Grammar& grammar,
                        std::span<const int32_t> tokens) {
  return GreedyParseItemsWithTrie(BuildDictionary(grammar), tokens);
}

StatusOr<CompressionDetection> DetectCompressionAnomalies(
    std::span<const double> series, const CompressionScoreOptions& options) {
  if (options.segment_tokens == 0) {
    return Status::InvalidArgument("segment_tokens must be >= 1");
  }
  CompressionDetection detection;
  GVA_ASSIGN_OR_RETURN(detection.decomposition,
                       DecomposeSeries(series, options.sax));
  const GrammarDecomposition& d = detection.decomposition;
  const std::vector<int32_t>& tokens = d.grammar.tokens;
  const ExpansionTrie trie = BuildDictionary(d.grammar.grammar);

  for (size_t begin = 0; begin < tokens.size();
       begin += options.segment_tokens) {
    const size_t end =
        std::min(tokens.size(), begin + options.segment_tokens);
    SegmentScore score;
    score.tokens = end - begin;
    score.items = GreedyParseItemsWithTrie(
        trie, std::span<const int32_t>(tokens).subspan(begin, end - begin));
    score.cost =
        static_cast<double>(score.items) / static_cast<double>(score.tokens);
    const size_t series_start = d.records.offsets[begin];
    const size_t series_end =
        std::min(series.size(),
                 d.records.offsets[end - 1] + options.sax.window);
    score.span = Interval{series_start, series_end};
    detection.segments.push_back(score);
  }

  detection.anomalies = detection.segments;
  std::stable_sort(detection.anomalies.begin(), detection.anomalies.end(),
                   [](const SegmentScore& a, const SegmentScore& b) {
                     return a.cost > b.cost;
                   });
  if (detection.anomalies.size() > options.max_anomalies) {
    detection.anomalies.resize(options.max_anomalies);
  }
  for (size_t r = 0; r < detection.anomalies.size(); ++r) {
    detection.anomalies[r].rank = r;
  }
  return detection;
}

}  // namespace gva
