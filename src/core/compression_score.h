#ifndef GVA_CORE_COMPRESSION_SCORE_H_
#define GVA_CORE_COMPRESSION_SCORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "timeseries/interval.h"
#include "util/statusor.h"

namespace gva {

/// Options for the compression-based anomaly score.
struct CompressionScoreOptions {
  SaxOptions sax;
  /// Segment granularity, in tokens of the reduced word stream.
  size_t segment_tokens = 8;
  /// Keep at most this many anomalies (highest cost first).
  size_t max_anomalies = 10;
};

/// Score of one series segment under dictionary compression.
struct SegmentScore {
  /// Series span the segment covers.
  Interval span;
  /// Tokens in the segment.
  size_t tokens = 0;
  /// Dictionary items emitted by the greedy parse (rule references count 1,
  /// bare terminals count 1).
  size_t items = 0;
  /// items / tokens in (0, 1]: 1 means nothing compressed — the
  /// algorithmically random segments the method flags.
  double cost = 0.0;
  size_t rank = 0;
};

/// Output of the compression scorer.
struct CompressionDetection {
  GrammarDecomposition decomposition;
  /// One score per segment, in series order.
  std::vector<SegmentScore> segments;
  /// The worst-compressing segments, cost descending.
  std::vector<SegmentScore> anomalies;
};

/// Compression-dissimilarity anomaly scoring in the spirit of WCAD (Keogh,
/// Lonardi & Ratanamahatana, KDD'04 — paper Section 6), with the Sequitur
/// grammar as the compressor instead of an off-the-shelf one: the series is
/// discretized once, the grammar's rule expansions form a dictionary, and
/// every segment of the word stream is greedily parsed against it (longest
/// rule first). Segments that barely compress are flagged. One grammar
/// construction total — not the repeated compressor invocations that made
/// WCAD expensive.
StatusOr<CompressionDetection> DetectCompressionAnomalies(
    std::span<const double> series, const CompressionScoreOptions& options);

/// Greedy longest-match parse cost of `tokens` against the grammar's rule
/// expansions: the number of emitted items. Exposed for testing.
size_t GreedyParseItems(const Grammar& grammar,
                        std::span<const int32_t> tokens);

}  // namespace gva

#endif  // GVA_CORE_COMPRESSION_SCORE_H_
