#include "core/evaluate.h"

namespace gva {

namespace {

Interval Widen(const Interval& interval, size_t slack) {
  return Interval{interval.start >= slack ? interval.start - slack : 0,
                  interval.end + slack};
}

}  // namespace

bool HitsAnyTruth(const Interval& found, const std::vector<Interval>& truth,
                  size_t slack) {
  for (const Interval& t : truth) {
    if (found.Overlaps(Widen(t, slack))) {
      return true;
    }
  }
  return false;
}

double OverlapFraction(const Interval& found, const Interval& reference) {
  if (reference.empty()) {
    return 0.0;
  }
  return static_cast<double>(found.OverlapLength(reference)) /
         static_cast<double>(reference.length());
}

double Recall(const std::vector<Interval>& found,
              const std::vector<Interval>& truth, size_t slack) {
  if (truth.empty()) {
    return 1.0;
  }
  size_t hits = 0;
  for (const Interval& t : truth) {
    const Interval widened = Widen(t, slack);
    for (const Interval& f : found) {
      if (f.Overlaps(widened)) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double Precision(const std::vector<Interval>& found,
                 const std::vector<Interval>& truth, size_t slack) {
  if (found.empty()) {
    return 1.0;
  }
  size_t hits = 0;
  for (const Interval& f : found) {
    if (HitsAnyTruth(f, truth, slack)) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(found.size());
}

}  // namespace gva
