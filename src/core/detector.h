#ifndef GVA_CORE_DETECTOR_H_
#define GVA_CORE_DETECTOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/compression_score.h"
#include "core/frequency_detector.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "timeseries/interval.h"
#include "util/statusor.h"

namespace gva {

/// One detection in the unified result format: where, how anomalous, and
/// the detector-specific score semantics.
struct UnifiedAnomaly {
  Interval span;
  /// Higher = more anomalous, normalized per detector so rank order is
  /// meaningful within one result (not across detectors).
  double score = 0.0;
  size_t rank = 0;
};

/// Result of AnomalyDetector::Detect.
struct UnifiedDetection {
  std::vector<UnifiedAnomaly> anomalies;  ///< ranked, most anomalous first
  /// Distance-function calls spent (0 for distance-free detectors).
  uint64_t distance_calls = 0;
  /// The call split by outcome (see DiscordResult): completed + abandoned
  /// == distance_calls. Both 0 for distance-free detectors.
  uint64_t distance_calls_completed = 0;
  uint64_t distance_calls_abandoned = 0;
};

/// Uniform interface over the four detectors in this library, for callers
/// that want to swap or ensemble them: the paper's two contributions
/// ("rule-density", "rra"), and the two related-work baselines
/// ("rare-word", "compression"). Implementations are stateless beyond
/// their options; Detect may be called repeatedly and concurrently from
/// different instances.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Stable identifier ("rule-density", "rra", "rare-word", "compression").
  virtual std::string name() const = 0;

  /// Runs the detection, returning up to `max_anomalies` ranked anomalies.
  virtual StatusOr<UnifiedDetection> Detect(std::span<const double> series,
                                            size_t max_anomalies) const = 0;
};

/// Factory functions. Each captures its options by value.
std::unique_ptr<AnomalyDetector> MakeRuleDensityDetector(
    const SaxOptions& sax, const DensityAnomalyOptions& options = {});
std::unique_ptr<AnomalyDetector> MakeRraDetector(const RraOptions& options);
std::unique_ptr<AnomalyDetector> MakeRareWordDetector(
    const FrequencyAnomalyOptions& options);
std::unique_ptr<AnomalyDetector> MakeCompressionDetector(
    const CompressionScoreOptions& options);

/// Creates a detector by name with the given SAX options and otherwise
/// default settings. Fails with NotFound for unknown names.
StatusOr<std::unique_ptr<AnomalyDetector>> MakeDetectorByName(
    const std::string& name, const SaxOptions& sax);

/// Names accepted by MakeDetectorByName.
std::vector<std::string> AvailableDetectors();

}  // namespace gva

#endif  // GVA_CORE_DETECTOR_H_
