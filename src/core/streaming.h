#ifndef GVA_CORE_STREAMING_H_
#define GVA_CORE_STREAMING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/rule_density_detector.h"
#include "grammar/sequitur.h"
#include "obs/metrics.h"
#include "sax/sax_transform.h"
#include "util/statusor.h"

namespace gva {

/// Options for the streaming rule-density monitor.
struct StreamingOptions {
  /// Discretization parameters; window is the rolling window length.
  SaxOptions sax;
  /// Anomaly extraction parameters applied on each report.
  DensityAnomalyOptions density;
  /// Eviction horizon in samples. 0 keeps the entire stream (reports cover
  /// the full prefix and memory grows with it — the legacy behavior). A
  /// positive horizon bounds retained state: reports always cover a suffix
  /// of between `horizon` and 2x`horizon` samples and everything older is
  /// evicted. Must be 0 or >= sax.window.
  size_t horizon = 0;

  /// Validates the SAX options, the density options, and the horizon.
  Status Validate() const;
};

/// One streaming report: a density detection over the suffix the monitor
/// currently retains. All positions inside `detection` (record offsets,
/// rule intervals, anomaly spans) are relative to `suffix_start`; add it
/// to translate into absolute stream positions.
struct StreamingReport {
  /// Absolute stream index of the first sample the report covers.
  size_t suffix_start = 0;
  /// Number of samples covered: samples_seen() - suffix_start. With a
  /// positive horizon this stays within [horizon, 2*horizon].
  size_t suffix_length = 0;
  /// Bit-for-bit identical to DetectDensityAnomalies() on the same suffix.
  DensityDetection detection;
};

/// Online rule-density anomaly monitoring — the paper's Section 7 points
/// out that both SAX and Sequitur process the input left to right, enabling
/// early anomaly detection on streams; this class realizes that with
/// amortized O(1) work per sample and memory bounded by the horizon.
///
/// Ingestion: each pushed sample advances an online incremental SAX
/// discretizer (`OnlineSaxDiscretizer`: O(paa) per completed window via
/// rolling prefix-sum rings, byte-identical words to the batch path), the
/// kept words feed an append-only incremental Sequitur. Eviction is
/// generational: with horizon H, a fresh pipeline generation starts at
/// every multiple of H and at most two are live — samples are fed to both,
/// reports come from the older one, and crossing a horizon boundary retires
/// the oldest generation wholesale (its rules, tokens, vocabulary, and
/// density state all drop at once). That keeps every report a *complete*
/// decomposition of its suffix rather than an approximation over a
/// partially-forgotten grammar.
///
/// Reporting: each generation maintains its rule-density curve across
/// Report() calls as a difference update — only intervals whose coverage
/// changed since the previous report are touched — so a report costs
/// O(grammar + changed region + output), never O(stream prefix).
///
/// The equivalence contract (see streaming_differential_test.cc): a report
/// at any moment, under any report cadence, is bit-for-bit identical to
/// running the batch detector on the same suffix — streaming changes *when*
/// work happens, never the result.
class StreamingAnomalyMonitor {
 public:
  /// Validates the options (including `options.density` — see
  /// DensityAnomalyOptions::Validate()).
  static StatusOr<StreamingAnomalyMonitor> Create(
      const StreamingOptions& options);

  /// Feeds one sample. Amortized O(1) (one O(paa) SAX word per sample once
  /// the window is full; grammar upkeep is amortized constant).
  void Push(double value);

  /// Feeds a batch of samples.
  void PushAll(std::span<const double> values);

  /// Samples consumed so far (absolute stream length).
  size_t samples_seen() const { return samples_seen_; }

  /// SAX words kept after numerosity reduction in the suffix a Report()
  /// would cover right now.
  size_t tokens_emitted() const;

  /// Tokens retained across every live generation — the memory-relevant
  /// number; bounded by the horizon (two generations of at most 2x`horizon`
  /// windows), unbounded only when horizon == 0.
  size_t retained_tokens() const;

  /// Absolute stream index where a Report() issued now would start.
  size_t report_suffix_start() const;

  /// Generations retired so far (0 until the stream crosses 2x horizon).
  size_t generations_evicted() const { return generations_evicted_; }

  /// Completed windows recomputed through the reference SAX path because a
  /// numerical guard fired (diagnostic; see OnlineSaxDiscretizer).
  size_t sax_fallback_words() const;

  /// Extracts the current grammar of the oldest live generation, maps its
  /// rules onto the retained suffix, difference-updates the density curve,
  /// and returns the detection. Fails with kFailedPrecondition until one
  /// full window has streamed by; any other error is a real failure.
  StatusOr<StreamingReport> Report();

 private:
  /// One complete pipeline over the samples from `start` onward: online
  /// discretizer -> numerosity reduction -> vocabulary -> Sequitur, plus
  /// the incrementally maintained density state of the last report.
  struct Generation {
    Generation(size_t start_index, const SaxOptions& sax)
        : start(start_index), discretizer(sax) {}

    size_t start;
    OnlineSaxDiscretizer discretizer;
    std::vector<std::string> words;
    std::vector<size_t> offsets;  // window starts, relative to `start`
    std::vector<int32_t> tokens;
    std::vector<std::string> vocabulary_list;
    std::unordered_map<std::string, int32_t> vocabulary;
    IncrementalSequitur sequitur;
    // Density curve as of the last Report() on this generation, plus the
    // sorted interval spans it was built from; the next Report() applies
    // only the span multiset difference.
    std::vector<uint32_t> density;
    std::vector<Interval> density_spans;
  };

  explicit StreamingAnomalyMonitor(const StreamingOptions& options);

  void Feed(Generation& generation, double value);

  StreamingOptions options_;
  NormalAlphabet alphabet_;
  size_t samples_seen_ = 0;
  size_t generations_evicted_ = 0;
  // Oldest generation first; at most two are live with a positive horizon.
  std::vector<Generation> generations_;
  std::string word_scratch_;
  // Registry-owned counters (stable addresses), so the monitor stays
  // movable while hot paths skip the registry lock.
  obs::Counter* samples_counter_;
  obs::Counter* tokens_counter_;
  obs::Counter* evictions_counter_;
  obs::Counter* reports_counter_;
  // Live health gauges for telemetry scrapes: current retained-token count
  // and live generation count, refreshed on every Push so /metrics sees
  // the monitor's memory state move mid-stream.
  obs::Gauge* retained_gauge_;
  obs::Gauge* generations_gauge_;
};

}  // namespace gva

#endif  // GVA_CORE_STREAMING_H_
