#ifndef GVA_CORE_STREAMING_H_
#define GVA_CORE_STREAMING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/rule_density_detector.h"
#include "grammar/sequitur.h"
#include "sax/sax_transform.h"
#include "util/statusor.h"

namespace gva {

/// Options for the streaming rule-density monitor.
struct StreamingOptions {
  /// Discretization parameters; window is the rolling window length.
  SaxOptions sax;
  /// Anomaly extraction parameters applied on each report.
  DensityAnomalyOptions density;
};

/// Online rule-density anomaly monitoring — the paper's Section 7 points
/// out that both SAX and Sequitur process the input left to right, enabling
/// early anomaly detection on streams; this class realizes that: samples
/// are pushed one at a time, each completed window is discretized, reduced
/// and fed to an incremental Sequitur, and a density report over the data
/// seen so far can be requested at any moment.
///
/// The report is bit-for-bit identical to running the batch detector on the
/// same prefix (see StreamingTest.MatchesBatchDetection): streaming changes
/// *when* work happens, never the result.
class StreamingAnomalyMonitor {
 public:
  /// Validates the options.
  static StatusOr<StreamingAnomalyMonitor> Create(
      const StreamingOptions& options);

  /// Feeds one sample. Amortized O(window) (one SAX word per sample once
  /// the window is full).
  void Push(double value);

  /// Feeds a batch of samples.
  void PushAll(std::span<const double> values);

  /// Samples consumed so far.
  size_t samples_seen() const { return series_.size(); }

  /// SAX words kept after numerosity reduction so far.
  size_t tokens_emitted() const { return offsets_.size(); }

  /// Extracts the current grammar, maps rules onto the prefix seen so far,
  /// and returns the density detection over it. O(prefix) — intended to be
  /// called every so often, not per sample.
  StatusOr<DensityDetection> Report() const;

 private:
  explicit StreamingAnomalyMonitor(const StreamingOptions& options)
      : options_(options), alphabet_(options.sax.alphabet_size) {}

  StreamingOptions options_;
  NormalAlphabet alphabet_;
  std::vector<double> series_;  // full prefix (the detectors need it)
  // Discretization state: kept words/offsets after numerosity reduction,
  // their token ids, and the vocabulary in first-occurrence order.
  std::vector<std::string> words_;
  std::vector<size_t> offsets_;
  std::vector<int32_t> tokens_;
  std::vector<std::string> vocabulary_list_;
  std::unordered_map<std::string, int32_t> vocabulary_;
  IncrementalSequitur sequitur_;
};

}  // namespace gva

#endif  // GVA_CORE_STREAMING_H_
