#ifndef GVA_CORE_EVALUATE_H_
#define GVA_CORE_EVALUATE_H_

#include <vector>

#include "timeseries/interval.h"

namespace gva {

/// True when `found` overlaps any ground-truth interval. `slack` widens each
/// truth interval on both sides before testing, which accommodates
/// detections that start slightly before the annotated anomaly (discord
/// windows usually do).
bool HitsAnyTruth(const Interval& found, const std::vector<Interval>& truth,
                  size_t slack = 0);

/// Fraction of `reference` covered by `found` in [0, 1] — the "overlap"
/// column of the paper's Table 1 (how much of the HOTSAX discord the RRA
/// discord covers).
double OverlapFraction(const Interval& found, const Interval& reference);

/// Recall over the truth set: fraction of truth intervals hit by at least
/// one found interval (with slack).
double Recall(const std::vector<Interval>& found,
              const std::vector<Interval>& truth, size_t slack = 0);

/// Precision over the found set: fraction of found intervals that hit at
/// least one truth interval (with slack).
double Precision(const std::vector<Interval>& found,
                 const std::vector<Interval>& truth, size_t slack = 0);

}  // namespace gva

#endif  // GVA_CORE_EVALUATE_H_
