#include "core/job_runner.h"

#include <algorithm>
#include <span>
#include <utility>

#include "core/parameter_profile.h"
#include "core/pipeline.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "discord/brute_force.h"
#include "discord/hotsax.h"
#include "ensemble/ensemble.h"
#include "util/status.h"

namespace gva {

StatusOr<JobDetector> ParseJobDetector(std::string_view name) {
  if (name == "brute") {
    return JobDetector::kBruteForce;
  }
  if (name == "hotsax") {
    return JobDetector::kHotSax;
  }
  if (name == "rra") {
    return JobDetector::kRra;
  }
  if (name == "density") {
    return JobDetector::kDensity;
  }
  if (name == "ensemble") {
    return JobDetector::kEnsemble;
  }
  if (name == "auto") {
    return JobDetector::kAuto;
  }
  return Status::NotFound("unknown detector '" + std::string(name) +
                          "' (have brute|hotsax|rra|density|ensemble|auto)");
}

const char* JobDetectorName(JobDetector detector) {
  switch (detector) {
    case JobDetector::kBruteForce:
      return "brute";
    case JobDetector::kHotSax:
      return "hotsax";
    case JobDetector::kRra:
      return "rra";
    case JobDetector::kDensity:
      return "density";
    case JobDetector::kEnsemble:
      return "ensemble";
    case JobDetector::kAuto:
      return "auto";
  }
  return "unknown";
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

bool CancelRequested(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

/// The CLI's ResolveSax, field-for-field: explicit values win, zeros come
/// from the data-driven suggestion, and a failed suggestion silently falls
/// back to the library defaults (the CLI proceeds the same way) — keeping
/// server jobs bit-identical to the equivalent gva_cli invocation.
StatusOr<SaxOptions> ResolveJobSax(const JobSpec& spec,
                                   std::span<const double> series) {
  SaxOptions sax;
  const bool all_given =
      spec.window != 0 && spec.paa != 0 && spec.alphabet != 0;
  if (!all_given) {
    StatusOr<SaxOptions> suggested = SuggestParameters(series);
    if (suggested.ok()) {
      sax = *suggested;
    }
  }
  if (spec.window != 0) {
    sax.window = spec.window;
  }
  if (spec.paa != 0) {
    sax.paa_size = spec.paa;
  }
  if (spec.alphabet != 0) {
    sax.alphabet_size = spec.alphabet;
  }
  GVA_RETURN_IF_ERROR(sax.Validate());
  return sax;
}

void FillFromSax(const SaxOptions& sax, JobOutcome* outcome) {
  outcome->window = sax.window;
  outcome->paa = sax.paa_size;
  outcome->alphabet = sax.alphabet_size;
}

void FillDiscords(const DiscordResult& result, JobOutcome* outcome) {
  outcome->distance_calls = result.distance_calls;
  size_t rank = 0;
  for (const DiscordRecord& d : result.discords) {
    outcome->anomalies.push_back(
        JobAnomaly{d.position, d.position + d.length, d.distance, rank});
    ++rank;
  }
}

StatusOr<JobOutcome> RunEnsembleJob(const JobSpec& spec,
                                    std::span<const double> series,
                                    bool force_auto_grid) {
  EnsembleOptions options;
  options.anomaly.threshold_fraction = spec.threshold;
  options.anomaly.max_anomalies = spec.top_k;
  options.num_threads = spec.num_threads;
  const bool single_config =
      !force_auto_grid &&
      (spec.window != 0 || spec.paa != 0 || spec.alphabet != 0);
  JobOutcome outcome;
  outcome.detector = "ensemble";
  if (single_config) {
    StatusOr<SaxOptions> sax = ResolveJobSax(spec, series);
    GVA_RETURN_IF_ERROR(sax.status());
    options.configs.push_back(
        EnsembleConfig{sax->window, sax->paa_size, sax->alphabet_size});
    FillFromSax(*sax, &outcome);
  }
  // else: empty grid -> AutoEnsembleGrid inside RunEnsemble, the CLI's
  // no-flags path; the resolved triple stays 0 (many configs ran).
  StatusOr<EnsembleDetection> detection = RunEnsemble(series, options);
  GVA_RETURN_IF_ERROR(detection.status());
  for (const EnsembleAnomaly& a : detection->anomalies) {
    outcome.anomalies.push_back(
        JobAnomaly{a.span.start, a.span.end, a.mean_score, a.rank});
  }
  outcome.score_curve = std::move(detection->score);
  return outcome;
}

}  // namespace

StatusOr<JobOutcome> RunDetectionJob(const JobSpec& spec,
                                     std::span<const double> series,
                                     const std::atomic<bool>* cancel) {
  if (CancelRequested(cancel)) {
    return Status::Cancelled("job cancelled before start");
  }

  StatusOr<JobOutcome> outcome = [&]() -> StatusOr<JobOutcome> {
    switch (spec.detector) {
      case JobDetector::kBruteForce: {
        StatusOr<SaxOptions> sax = ResolveJobSax(spec, series);
        GVA_RETURN_IF_ERROR(sax.status());
        StatusOr<DiscordResult> result = FindDiscordsBruteForce(
            series, sax->window, spec.top_k, spec.num_threads);
        GVA_RETURN_IF_ERROR(result.status());
        JobOutcome out;
        out.detector = "brute";
        FillFromSax(*sax, &out);
        FillDiscords(*result, &out);
        return out;
      }
      case JobDetector::kHotSax: {
        StatusOr<SaxOptions> sax = ResolveJobSax(spec, series);
        GVA_RETURN_IF_ERROR(sax.status());
        HotSaxOptions options;
        options.sax = *sax;
        options.top_k = spec.top_k;
        options.num_threads = spec.num_threads;
        StatusOr<DiscordResult> result = FindDiscordsHotSax(series, options);
        GVA_RETURN_IF_ERROR(result.status());
        JobOutcome out;
        out.detector = "hotsax";
        FillFromSax(*sax, &out);
        FillDiscords(*result, &out);
        return out;
      }
      case JobDetector::kRra: {
        StatusOr<SaxOptions> sax = ResolveJobSax(spec, series);
        GVA_RETURN_IF_ERROR(sax.status());
        RraOptions options;
        options.sax = *sax;
        options.top_k = spec.top_k;
        options.exact_nearest_neighbor = !spec.approx;
        options.num_threads = spec.num_threads;
        options.cancel = cancel;
        StatusOr<RraDetection> detection = FindRraDiscords(series, options);
        GVA_RETURN_IF_ERROR(detection.status());
        JobOutcome out;
        out.detector = "rra";
        FillFromSax(*sax, &out);
        FillDiscords(detection->result, &out);
        out.density = std::move(detection->decomposition.density);
        return out;
      }
      case JobDetector::kDensity: {
        StatusOr<SaxOptions> sax = ResolveJobSax(spec, series);
        GVA_RETURN_IF_ERROR(sax.status());
        DensityAnomalyOptions options;
        options.threshold_fraction = spec.threshold;
        options.max_anomalies = spec.top_k;
        StatusOr<DensityDetection> detection =
            DetectDensityAnomalies(series, *sax, options);
        GVA_RETURN_IF_ERROR(detection.status());
        JobOutcome out;
        out.detector = "density";
        FillFromSax(*sax, &out);
        for (const DensityAnomaly& a : detection->anomalies) {
          out.anomalies.push_back(
              JobAnomaly{a.span.start, a.span.end, a.mean_density, a.rank});
        }
        out.density = std::move(detection->decomposition.density);
        return out;
      }
      case JobDetector::kEnsemble:
        return RunEnsembleJob(spec, series, /*force_auto_grid=*/false);
      case JobDetector::kAuto:
        // "auto" is the ensemble over the automatic grid: the cross-config
        // vote is the robust choice when the caller supplies nothing.
        return RunEnsembleJob(spec, series, /*force_auto_grid=*/true);
    }
    return Status::InvalidArgument("unknown detector");
  }();

  // A cancel that lands mid-run in a detector without a token (everything
  // but RRA) surfaces here: the result is complete but unwanted — report
  // Cancelled rather than handing back work the caller abandoned.
  if (CancelRequested(cancel)) {
    return Status::Cancelled("job cancelled while running");
  }
  return outcome;
}

Status JobRunnerOptions::Validate() const {
  if (slots == 0) {
    return Status::InvalidArgument("job runner needs at least one slot");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("job queue capacity must be >= 1");
  }
  if (max_threads_per_job == 0) {
    return Status::InvalidArgument("max_threads_per_job must be >= 1");
  }
  if (max_series_points == 0) {
    return Status::InvalidArgument("max_series_points must be >= 1");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<JobRunner>> JobRunner::Create(
    const JobRunnerOptions& options) {
  GVA_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<JobRunner>(new JobRunner(options));
}

JobRunner::JobRunner(const JobRunnerOptions& options)
    : options_(options),
      slots_busy_gauge_(&obs::GlobalMetrics().gauge("server.slots.busy")),
      queue_depth_gauge_(&obs::GlobalMetrics().gauge("server.queue.depth")),
      accepted_counter_(&obs::GlobalMetrics().counter("server.jobs.accepted")),
      rejected_counter_(&obs::GlobalMetrics().counter("server.jobs.rejected")),
      completed_counter_(
          &obs::GlobalMetrics().counter("server.jobs.completed")),
      failed_counter_(&obs::GlobalMetrics().counter("server.jobs.failed")),
      cancelled_counter_(
          &obs::GlobalMetrics().counter("server.jobs.cancelled")) {
  workers_.reserve(options_.slots);
  for (size_t i = 0; i < options_.slots; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobRunner::~JobRunner() { Shutdown(); }

StatusOr<uint64_t> JobRunner::Submit(JobSpec spec) {
  if (spec.series.empty()) {
    return Status::InvalidArgument("job series is empty");
  }
  if (spec.series.size() > options_.max_series_points) {
    return Status::InvalidArgument(
        "job series exceeds the runner's max_series_points");
  }
  // 0 means "all cores" at the library layer; inside a multi-slot server
  // that would oversubscribe, so both 0 and large values clamp to the
  // per-job lane budget. Results are thread-count invariant, so the clamp
  // never changes an answer.
  if (spec.num_threads == 0 ||
      spec.num_threads > options_.max_threads_per_job) {
    spec.num_threads = options_.max_threads_per_job;
  }

  auto job = std::make_shared<Job>();
  job->series =
      std::make_shared<const std::vector<double>>(std::move(spec.series));
  spec.series = {};
  job->spec = std::move(spec);

  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    return Status::FailedPrecondition("job runner is shut down");
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++rejected_;
    rejected_counter_->Add(1);
    return Status::ResourceExhausted("job queue is full");
  }
  job->id = next_id_++;
  jobs_.emplace(job->id, job);
  queue_.push_back(job);
  ++accepted_;
  accepted_counter_->Add(1);
  PublishGaugesLocked();
  wake_.notify_one();
  return job->id;
}

void JobRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // stop_ set and nothing left to run
    }
    std::shared_ptr<Job> job = queue_.front();
    queue_.pop_front();
    job->state = JobState::kRunning;
    ++slots_busy_;
    PublishGaugesLocked();
    lock.unlock();

    // spec and series are immutable after Submit; only the worker writes
    // state/status/outcome, and only under the lock.
    StatusOr<JobOutcome> result =
        RunDetectionJob(job->spec, *job->series, &job->cancel);

    lock.lock();
    --slots_busy_;
    const bool flagged = job->cancel.load(std::memory_order_relaxed);
    if (!result.ok() &&
        result.status().code() == StatusCode::kCancelled) {
      job->state = JobState::kCancelled;
      job->status = result.status();
      ++cancelled_;
      cancelled_counter_->Add(1);
    } else if (flagged) {
      job->state = JobState::kCancelled;
      job->status = Status::Cancelled("job cancelled while running");
      ++cancelled_;
      cancelled_counter_->Add(1);
    } else if (result.ok()) {
      job->state = JobState::kDone;
      job->outcome = std::move(*result);
      ++completed_;
      completed_counter_->Add(1);
    } else {
      job->state = JobState::kFailed;
      job->status = result.status();
      ++failed_;
      failed_counter_->Add(1);
    }
    PublishGaugesLocked();
  }
}

StatusOr<JobSnapshot> JobRunner::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job");
  }
  return SnapshotLocked(*it->second);
}

std::vector<JobSnapshot> JobRunner::List(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobSnapshot> out;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    if (!tenant.empty() && job->spec.tenant != tenant) {
      continue;
    }
    out.push_back(SnapshotLocked(*job));
  }
  return out;
}

Status JobRunner::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job");
  }
  Job& job = *it->second;
  if (job.state == JobState::kDone || job.state == JobState::kFailed ||
      job.state == JobState::kCancelled) {
    return Status::Ok();  // already finished; cancel is idempotent
  }
  job.cancel.store(true, std::memory_order_relaxed);
  if (job.state == JobState::kQueued) {
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if ((*qit)->id == id) {
        queue_.erase(qit);
        break;
      }
    }
    job.state = JobState::kCancelled;
    job.status = Status::Cancelled("job cancelled while queued");
    ++cancelled_;
    cancelled_counter_->Add(1);
    PublishGaugesLocked();
  }
  // A running job transitions when its worker observes the flag.
  return Status::Ok();
}

void JobRunner::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (const auto& [id, job] : jobs_) {
      (void)id;
      job->cancel.store(true, std::memory_order_relaxed);
    }
    while (!queue_.empty()) {
      std::shared_ptr<Job> job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kCancelled;
      job->status = Status::Cancelled("job runner shut down");
      ++cancelled_;
      cancelled_counter_->Add(1);
    }
    PublishGaugesLocked();
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

JobSnapshot JobRunner::SnapshotLocked(const Job& job) const {
  JobSnapshot snap;
  snap.id = job.id;
  snap.tenant = job.spec.tenant;
  snap.state = job.state;
  snap.status = job.status;
  snap.series = job.series;
  snap.spec = job.spec;
  snap.outcome = job.outcome;
  return snap;
}

void JobRunner::PublishGaugesLocked() {
  slots_busy_gauge_->Set(static_cast<int64_t>(slots_busy_));
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
}

size_t JobRunner::slots_busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_busy_;
}

size_t JobRunner::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t JobRunner::jobs_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

uint64_t JobRunner::jobs_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t JobRunner::jobs_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

uint64_t JobRunner::jobs_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

uint64_t JobRunner::jobs_cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

}  // namespace gva
