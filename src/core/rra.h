#ifndef GVA_CORE_RRA_H_
#define GVA_CORE_RRA_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "discord/discord_record.h"
#include "timeseries/znorm.h"
#include "util/statusor.h"

namespace gva {

/// Options for the RRA (Rare Rule Anomaly) exact discord search
/// (paper Section 4.2, Algorithm 1).
struct RraOptions {
  /// Discretization parameters; the window is only a "seed" size — reported
  /// discords may be shorter or longer.
  SaxOptions sax;
  /// How many (non-overlapping) variable-length discords to report.
  size_t top_k = 1;
  /// Seed for the randomized tail of the inner/outer orderings.
  uint64_t seed = 0x5eedu;
  /// Zero-coverage runs of the density curve shorter than this are not
  /// added as candidate intervals. 0 means automatic: one PAA segment
  /// (window / paa_size) — anything shorter is sub-symbol noise.
  size_t min_gap_length = 0;
  /// Drop zero-coverage gaps touching the series boundary. The density
  /// curve always ramps to zero at the edges (fewer windows cover them), so
  /// boundary gaps are artifacts, not anomalies.
  bool drop_boundary_gaps = true;
  /// Whether zero-coverage gaps are added at all (frequency 0, visited
  /// first; this is how anomalies that never made it into a rule are found).
  bool include_gap_intervals = true;
  /// Use the length-normalized Euclidean distance of paper Eq. (1). When
  /// false, raw z-normalized Euclidean distance is used (longer intervals
  /// then dominate the ranking).
  bool normalize_by_length = true;
  /// When true (default), candidates that survive the interval-aligned
  /// inner phases are verified against every sliding-window position (with
  /// early abandoning), so the reported discord distance is exact. When
  /// false the inner loop stops at the rule-interval starts — the
  /// approximate behaviour of the original GrammarViz RRA, cheaper but
  /// sensitive to alignment quantization.
  bool exact_nearest_neighbor = true;
  /// Concurrency lanes for the outer candidate loop of each search round;
  /// 0 means all hardware threads. Reported discords are bit-identical for
  /// every value (see DESIGN.md, "Concurrency model"); only the
  /// distance-call count varies, because cross-thread pruning cuts losing
  /// scans at different points.
  size_t num_threads = 1;
  /// Optional cooperative-cancellation token (owned by the caller, e.g.
  /// the server's JobRunner — DESIGN.md §13). The search polls it between
  /// outer candidates and between top-k rounds; once it reads true the
  /// search returns Status::Cancelled promptly instead of a result. Null
  /// (the default) compiles to the exact pre-existing behaviour — the
  /// flag is never set mid-run in deterministic contexts, so the
  /// bit-identical-results contract is unaffected.
  const std::atomic<bool>* cancel = nullptr;
};

/// Full RRA output: the grammar decomposition plus the ranked discords and
/// the distance-call count.
struct RraDetection {
  GrammarDecomposition decomposition;
  DiscordResult result;
};

/// Runs the complete RRA pipeline: decompose the series (SAX + Sequitur +
/// interval mapping), then search the rule intervals for the subsequences
/// with the largest nearest-non-self-match distances. The outer loop visits
/// intervals in ascending rule-use frequency (gaps first), the inner loop
/// visits same-rule siblings first and the rest in random order, with
/// HOTSAX-style early abandoning.
StatusOr<RraDetection> FindRraDiscords(std::span<const double> series,
                                       const RraOptions& options);

/// The candidate-interval assembly step of the RRA search: rule intervals
/// (length >= 2, in bounds) plus zero-coverage gaps of the density curve,
/// subject to `options`' gap filtering. This is exactly the candidate set
/// FindRraDiscordsInDecomposition searches, exposed so differential tests
/// can compare the search result against an exhaustive scan over the same
/// candidates.
std::vector<RuleInterval> BuildRraCandidates(
    const GrammarDecomposition& decomposition, const RraOptions& options);

/// The search step alone, over an existing decomposition. Used by the
/// parameter-grid experiment (Figure 10) where both detectors share one
/// decomposition per parameter combination.
StatusOr<DiscordResult> FindRraDiscordsInDecomposition(
    std::span<const double> series, const GrammarDecomposition& decomposition,
    const RraOptions& options);

/// For every rule interval, its (normalized) distance to the nearest
/// non-self match among the other intervals — the bottom panels of the
/// paper's Figures 2 and 3. Exhaustive (no pruning); intended for plots and
/// diagnostics, not for the search itself. `znorm_epsilon` must match the
/// epsilon of the RRA run whose intervals are being ranked (it defaults to
/// the library-wide flat-window threshold, the same default as
/// SaxOptions::znorm_epsilon); with a mismatched epsilon the ranking can
/// disagree with the search on near-flat windows.
std::vector<double> IntervalNnDistances(std::span<const double> series,
                                        const std::vector<RuleInterval>& all,
                                        bool normalize_by_length = true,
                                        double znorm_epsilon =
                                            kDefaultZNormEpsilon);

}  // namespace gva

#endif  // GVA_CORE_RRA_H_
