#include "core/frequency_detector.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace gva {

StatusOr<FrequencyDetection> DetectRareWordAnomalies(
    std::span<const double> series, const FrequencyAnomalyOptions& options) {
  GVA_ASSIGN_OR_RETURN(SaxRecords records,
                       DiscretizeAllWindows(series, options.sax));
  const size_t windows = records.size();

  std::unordered_map<std::string, size_t> counts;
  counts.reserve(windows);
  for (const std::string& word : records.words) {
    ++counts[word];
  }

  FrequencyDetection detection;
  detection.support.resize(windows);
  double min_support = 1.0;
  double max_support = 0.0;
  for (size_t i = 0; i < windows; ++i) {
    detection.support[i] = static_cast<double>(counts[records.words[i]]) /
                           static_cast<double>(windows);
    min_support = std::min(min_support, detection.support[i]);
    max_support = std::max(max_support, detection.support[i]);
  }

  const double threshold =
      min_support +
      options.threshold_fraction * (max_support - min_support);

  // Maximal low-support runs of window positions; each run's reported span
  // extends to the end of its last window.
  size_t i = 0;
  while (i < windows) {
    if (detection.support[i] > threshold) {
      ++i;
      continue;
    }
    size_t j = i;
    double sum = 0.0;
    while (j < windows && detection.support[j] <= threshold) {
      sum += detection.support[j];
      ++j;
    }
    detection.anomalies.push_back(FrequencyAnomaly{
        Interval{i, std::min(series.size(), j - 1 + options.sax.window)},
        sum / static_cast<double>(j - i), 0});
    i = j;
  }

  std::stable_sort(detection.anomalies.begin(), detection.anomalies.end(),
                   [](const FrequencyAnomaly& a, const FrequencyAnomaly& b) {
                     return a.mean_support < b.mean_support;
                   });
  if (detection.anomalies.size() > options.max_anomalies) {
    detection.anomalies.resize(options.max_anomalies);
  }
  for (size_t r = 0; r < detection.anomalies.size(); ++r) {
    detection.anomalies[r].rank = r;
  }
  return detection;
}

}  // namespace gva
