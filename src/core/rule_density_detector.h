#ifndef GVA_CORE_RULE_DENSITY_DETECTOR_H_
#define GVA_CORE_RULE_DENSITY_DETECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "timeseries/interval.h"
#include "util/statusor.h"

namespace gva {

/// Options for the rule density-based anomaly discovery (paper Section 4.1).
struct DensityAnomalyOptions {
  /// Density threshold as a fraction of the curve's range:
  /// threshold = min + fraction * (max - min). 0 keeps strictly the global
  /// minima; the paper's "given a fixed threshold, it simply reports
  /// contiguous points whose density is less than the threshold value".
  double threshold_fraction = 0.0;
  /// Anomalous runs shorter than this are dropped (the optional "minimal
  /// anomaly length" ranking criterion the paper mentions).
  size_t min_length = 1;
  /// Skip the first/last window points: the curve ramps down at the series
  /// boundaries simply because fewer windows cover them.
  bool exclude_edges = true;
  /// Keep at most this many anomalies (ranked by mean density ascending).
  /// 0 is allowed and reports nothing (callers use it as "count only").
  size_t max_anomalies = 10;

  /// Validates ranges: threshold_fraction must lie in [0, 1] (NaN
  /// rejected), min_length must be >= 1. Checked by both the batch
  /// detector and the streaming monitor — out-of-range values used to be
  /// silently accepted and produced nonsense reports.
  Status Validate() const;
};

/// One low-density interval reported as a (putative) anomaly.
struct DensityAnomaly {
  Interval span;
  /// Smallest density value inside the interval.
  uint32_t min_density = 0;
  /// Mean density inside the interval — the ranking key (lower = more
  /// anomalous).
  double mean_density = 0.0;
  /// 0 = most anomalous.
  size_t rank = 0;
};

/// Full detection output: the curve itself plus the ranked anomalies.
struct DensityDetection {
  GrammarDecomposition decomposition;
  std::vector<DensityAnomaly> anomalies;
};

/// Runs the rule density-based anomaly discovery: decompose, build the
/// density curve, and report the lowest-density intervals. Linear time and
/// space in the series length (paper Section 4.1).
StatusOr<DensityDetection> DetectDensityAnomalies(
    std::span<const double> series, const SaxOptions& sax,
    const DensityAnomalyOptions& options = {});

/// The anomaly-extraction step alone, for callers that already have a
/// density curve. `window` is only used for edge exclusion.
std::vector<DensityAnomaly> FindLowDensityIntervals(
    const std::vector<uint32_t>& density, size_t window,
    const DensityAnomalyOptions& options);

}  // namespace gva

#endif  // GVA_CORE_RULE_DENSITY_DETECTOR_H_
