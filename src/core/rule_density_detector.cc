#include "core/rule_density_detector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace gva {

Status DensityAnomalyOptions::Validate() const {
  // Written as a negated membership test so NaN (every comparison false)
  // is rejected too.
  if (!(threshold_fraction >= 0.0 && threshold_fraction <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("threshold_fraction must be in [0, 1], got %g",
                  threshold_fraction));
  }
  if (min_length == 0) {
    return Status::InvalidArgument("min_length must be >= 1");
  }
  return Status::Ok();
}

std::vector<DensityAnomaly> FindLowDensityIntervals(
    const std::vector<uint32_t>& density, size_t window,
    const DensityAnomalyOptions& options) {
  std::vector<DensityAnomaly> anomalies;
  if (density.empty()) {
    return anomalies;
  }
  size_t lo = 0;
  size_t hi = density.size();
  if (options.exclude_edges && density.size() > 2 * window) {
    lo = window;
    hi = density.size() - window;
  }
  if (lo >= hi) {
    return anomalies;
  }

  uint32_t min_d = density[lo];
  uint32_t max_d = density[lo];
  for (size_t i = lo; i < hi; ++i) {
    min_d = std::min(min_d, density[i]);
    max_d = std::max(max_d, density[i]);
  }
  const double threshold =
      static_cast<double>(min_d) +
      options.threshold_fraction * static_cast<double>(max_d - min_d);

  // Collect maximal runs with density <= threshold.
  size_t i = lo;
  while (i < hi) {
    if (static_cast<double>(density[i]) > threshold) {
      ++i;
      continue;
    }
    size_t j = i;
    uint32_t run_min = density[i];
    double run_sum = 0.0;
    while (j < hi && static_cast<double>(density[j]) <= threshold) {
      run_min = std::min(run_min, density[j]);
      run_sum += density[j];
      ++j;
    }
    if (j - i >= options.min_length) {
      anomalies.push_back(DensityAnomaly{
          Interval{i, j}, run_min, run_sum / static_cast<double>(j - i), 0});
    }
    i = j;
  }

  std::stable_sort(anomalies.begin(), anomalies.end(),
                   [](const DensityAnomaly& a, const DensityAnomaly& b) {
                     if (a.mean_density != b.mean_density) {
                       return a.mean_density < b.mean_density;
                     }
                     return a.span.length() > b.span.length();
                   });
  if (anomalies.size() > options.max_anomalies) {
    anomalies.resize(options.max_anomalies);
  }
  for (size_t r = 0; r < anomalies.size(); ++r) {
    anomalies[r].rank = r;
  }
  return anomalies;
}

StatusOr<DensityDetection> DetectDensityAnomalies(
    std::span<const double> series, const SaxOptions& sax,
    const DensityAnomalyOptions& options) {
  GVA_RETURN_IF_ERROR(options.Validate());
  DensityDetection result;
  GVA_ASSIGN_OR_RETURN(result.decomposition, DecomposeSeries(series, sax));
  result.anomalies = FindLowDensityIntervals(result.decomposition.density,
                                             sax.window, options);
  return result;
}

}  // namespace gva
