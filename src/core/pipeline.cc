#include "core/pipeline.h"

namespace gva {

StatusOr<GrammarDecomposition> DecomposeSeries(std::span<const double> series,
                                               const SaxOptions& options) {
  GrammarDecomposition out;
  out.series_length = series.size();
  out.window = options.window;
  GVA_ASSIGN_OR_RETURN(out.records, Discretize(series, options));
  GVA_ASSIGN_OR_RETURN(out.grammar,
                       InferGrammarFromWords(out.records.words));
  out.intervals = MapRuleIntervals(out.grammar.grammar, out.records,
                                   options.window, series.size());
  out.density = RuleDensityCurve(out.intervals, series.size());
  return out;
}

}  // namespace gva
