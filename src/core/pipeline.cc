#include "core/pipeline.h"

#include "obs/trace.h"

namespace gva {

namespace {

/// Sequitur -> interval mapping -> density, over `out.records` in place.
Status DecomposeTail(std::span<const double> series, const SaxOptions& options,
                     GrammarDecomposition& out) {
  {
    GVA_OBS_SPAN("grammar.sequitur");
    GVA_ASSIGN_OR_RETURN(out.grammar,
                         InferGrammarFromWords(out.records.words));
  }
  {
    GVA_OBS_SPAN("grammar.rule_intervals");
    out.intervals = MapRuleIntervals(out.grammar.grammar, out.records,
                                     options.window, series.size());
  }
  {
    GVA_OBS_SPAN("grammar.density");
    out.density = RuleDensityCurve(out.intervals, series.size());
  }
  obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  metrics.counter("pipeline.decompose.runs").Add(1);
  metrics.counter("pipeline.sax.words").Add(out.records.size());
  metrics.counter("pipeline.grammar.rules").Add(out.grammar.grammar.size());
  metrics.counter("pipeline.grammar.intervals").Add(out.intervals.size());
  return Status::Ok();
}

}  // namespace

StatusOr<GrammarDecomposition> DecomposeSeries(std::span<const double> series,
                                               const SaxOptions& options) {
  GVA_OBS_SPAN("pipeline.decompose");
  GrammarDecomposition out;
  out.series_length = series.size();
  out.window = options.window;
  {
    GVA_OBS_SPAN("sax.discretize");
    GVA_ASSIGN_OR_RETURN(out.records, Discretize(series, options));
  }
  GVA_RETURN_IF_ERROR(DecomposeTail(series, options, out));
  return out;
}

StatusOr<GrammarDecomposition> DecomposeSeriesWithRecords(
    std::span<const double> series, const SaxOptions& options,
    SaxRecords records) {
  GVA_OBS_SPAN("pipeline.decompose");
  GVA_RETURN_IF_ERROR(options.Validate());
  GrammarDecomposition out;
  out.series_length = series.size();
  out.window = options.window;
  out.records = std::move(records);
  GVA_RETURN_IF_ERROR(DecomposeTail(series, options, out));
  return out;
}

}  // namespace gva
