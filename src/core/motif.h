#ifndef GVA_CORE_MOTIF_H_
#define GVA_CORE_MOTIF_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "timeseries/interval.h"
#include "util/statusor.h"

namespace gva {

/// Options for grammar-based motif discovery.
struct MotifOptions {
  SaxOptions sax;
  /// Rules with fewer occurrences than this are not motifs.
  size_t min_frequency = 3;
  /// Motifs whose mean mapped length is below this are dropped (0 = no
  /// minimum beyond one point).
  size_t min_length = 0;
  /// Keep at most this many motifs.
  size_t max_motifs = 10;
};

/// One recurrent variable-length pattern: a grammar rule and its mapped
/// subsequences.
struct Motif {
  /// Rule index in the decomposition's grammar.
  int32_t rule = 0;
  /// Number of occurrences in the series.
  size_t frequency = 0;
  /// Every mapped occurrence (variable lengths!).
  std::vector<Interval> occurrences;
  /// Mean / min / max occurrence length.
  double mean_length = 0.0;
  size_t min_length = 0;
  size_t max_length = 0;
  /// The rule's right-hand side, rendered ("aac abc").
  std::string rhs;
  size_t rank = 0;
};

/// Result of motif discovery.
struct MotifDetection {
  GrammarDecomposition decomposition;
  /// Motifs ranked by frequency descending (ties: longer first) — the
  /// inverse of anomaly discovery: the *most* compressible structures.
  std::vector<Motif> motifs;
};

/// Variable-length motif discovery via grammar induction — the GrammarViz
/// algorithm (Li, Lin & Oates 2012) the paper's Section 3.5 builds upon:
/// Sequitur's utility constraint guarantees every rule maps to a recurrent
/// pattern, and numerosity reduction lets occurrences differ in length.
/// Anomaly detection is the inverse problem; this is the direct one.
StatusOr<MotifDetection> FindMotifs(std::span<const double> series,
                                    const MotifOptions& options);

}  // namespace gva

#endif  // GVA_CORE_MOTIF_H_
