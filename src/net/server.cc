#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "timeseries/io.h"
#include "util/json.h"
#include "util/strings.h"
#include "viz/json_report.h"

namespace gva::net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Tenant and stream identifiers share one restricted alphabet so the
/// "<tenant>/<id>" stream key is unambiguous and identifiers embed into
/// JSON and logs without escaping.
bool ValidName(std::string_view name) {
  if (name.empty() || name.size() > 64) {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '-' || c == '_';
  });
}

std::string TenantOf(const HttpRequest& request) {
  const std::string* header = request.FindHeader("x-gva-tenant");
  return header != nullptr ? *header : std::string("default");
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kCancelled:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    default:
      return 503;
  }
}

void FillJson(const JsonValue& value, int status, HttpResponse* response) {
  response->status = status;
  response->content_type = "application/json";
  response->body = value.Dump() + "\n";
}

void FillError(const Status& status, HttpResponse* response) {
  JsonValue error = JsonValue::Object();
  error.Set("error", JsonValue::String(status.ToString()));
  FillJson(error, HttpStatusFor(status), response);
  if (response->status == 429) {
    // The queue drains at detection speed, not wire speed; one second is
    // an honest lower bound for a slot to free up.
    response->extra_headers.emplace_back("Retry-After", "1");
  }
}

void FillMethodNotAllowed(std::string_view allowed, HttpResponse* response) {
  response->status = 405;
  response->content_type = "text/plain; charset=utf-8";
  response->body = "method not allowed; use " + std::string(allowed) + "\n";
}

/// Strict non-negative integer out of a JSON number: fractions, negatives,
/// and values beyond exact double-integer range are rejected rather than
/// silently truncated.
Status ReadSize(const JsonValue& value, std::string_view key, size_t* out) {
  if (!value.is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a number");
  }
  const double number = value.as_number();
  if (!(number >= 0) || number != std::floor(number) || number > 9e15) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a non-negative integer");
  }
  *out = static_cast<size_t>(number);
  return Status::Ok();
}

Status ReadSamples(const JsonValue& value, std::string_view key,
                   std::vector<double>* out) {
  if (!value.is_array()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be an array of numbers");
  }
  out->reserve(value.items().size());
  for (const JsonValue& item : value.items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("field '" + std::string(key) +
                                     "' must contain only numbers");
    }
    out->push_back(item.as_number());
  }
  return Status::Ok();
}

/// Materializes a series reference the way gva_cli's LoadInput does:
/// "demo:*" builds the synthetic dataset in-process, anything else reads a
/// CSV column — the bit-identical contract starts at the input bytes.
Status LoadSeriesReference(const std::string& input, size_t column,
                           std::vector<double>* out) {
  if (input == "demo:ecg") {
    *out = MakeEcg().series.values();
    return Status::Ok();
  }
  if (input == "demo:power") {
    *out = MakePowerDemand().series.values();
    return Status::Ok();
  }
  if (input.rfind("demo:", 0) == 0) {
    return Status::NotFound("unknown demo dataset '" + input +
                            "' (have demo:ecg, demo:power)");
  }
  StatusOr<TimeSeries> loaded = ReadTimeSeriesCsv(input, column);
  GVA_RETURN_IF_ERROR(loaded.status());
  *out = loaded->values();
  return Status::Ok();
}

/// Parses a POST /v1/jobs body into a JobSpec. Strict: unknown fields are
/// 400, not ignored — a typoed "widnow" must not silently run with the
/// suggested window instead.
Status ParseJobRequest(const HttpRequest& request, JobSpec* spec) {
  spec->tenant = TenantOf(request);
  if (request.body.empty()) {
    return Status::InvalidArgument("job submission needs a JSON body");
  }
  StatusOr<JsonValue> doc = ParseJson(request.body);
  GVA_RETURN_IF_ERROR(doc.status());
  if (!doc->is_object()) {
    return Status::InvalidArgument("job request must be a JSON object");
  }

  std::string input;
  size_t column = 0;
  for (const auto& [key, value] : doc->members()) {
    if (key == "tenant") {
      if (!value.is_string()) {
        return Status::InvalidArgument("field 'tenant' must be a string");
      }
      spec->tenant = value.as_string();
    } else if (key == "detector") {
      if (!value.is_string()) {
        return Status::InvalidArgument("field 'detector' must be a string");
      }
      StatusOr<JobDetector> detector = ParseJobDetector(value.as_string());
      GVA_RETURN_IF_ERROR(detector.status());
      spec->detector = *detector;
    } else if (key == "series") {
      GVA_RETURN_IF_ERROR(ReadSamples(value, key, &spec->series));
    } else if (key == "input") {
      if (!value.is_string()) {
        return Status::InvalidArgument("field 'input' must be a string");
      }
      input = value.as_string();
    } else if (key == "column") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &column));
    } else if (key == "window") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &spec->window));
    } else if (key == "paa") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &spec->paa));
    } else if (key == "alphabet") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &spec->alphabet));
    } else if (key == "top") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &spec->top_k));
    } else if (key == "threads") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &spec->num_threads));
    } else if (key == "threshold") {
      if (!value.is_number()) {
        return Status::InvalidArgument("field 'threshold' must be a number");
      }
      spec->threshold = value.as_number();
    } else if (key == "approx") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("field 'approx' must be a boolean");
      }
      spec->approx = value.as_bool();
    } else {
      return Status::InvalidArgument("unknown job field '" + key + "'");
    }
  }

  if (!ValidName(spec->tenant)) {
    return Status::InvalidArgument(
        "tenant must be 1-64 chars of [A-Za-z0-9_-]");
  }
  if (!spec->series.empty() && !input.empty()) {
    return Status::InvalidArgument(
        "give either an inline 'series' or an 'input' reference, not both");
  }
  if (spec->series.empty()) {
    if (input.empty()) {
      return Status::InvalidArgument(
          "job needs an inline 'series' or an 'input' reference");
    }
    GVA_RETURN_IF_ERROR(LoadSeriesReference(input, column, &spec->series));
  }
  return Status::Ok();
}

/// Parses a POST /v1/streams/{id} body. An empty body means all defaults
/// (the CLI's stdin-streaming defaults: library SAX triple, threshold
/// 0.05, top 3, unbounded horizon).
Status ParseStreamOptions(const std::string& body, StreamingOptions* options) {
  options->density.threshold_fraction = 0.05;
  options->density.max_anomalies = 3;
  if (body.empty()) {
    return Status::Ok();
  }
  StatusOr<JsonValue> doc = ParseJson(body);
  GVA_RETURN_IF_ERROR(doc.status());
  if (!doc->is_object()) {
    return Status::InvalidArgument("stream config must be a JSON object");
  }
  for (const auto& [key, value] : doc->members()) {
    if (key == "window") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &options->sax.window));
    } else if (key == "paa") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &options->sax.paa_size));
    } else if (key == "alphabet") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &options->sax.alphabet_size));
    } else if (key == "top") {
      GVA_RETURN_IF_ERROR(
          ReadSize(value, key, &options->density.max_anomalies));
    } else if (key == "horizon") {
      GVA_RETURN_IF_ERROR(ReadSize(value, key, &options->horizon));
    } else if (key == "threshold") {
      if (!value.is_number()) {
        return Status::InvalidArgument("field 'threshold' must be a number");
      }
      options->density.threshold_fraction = value.as_number();
    } else {
      return Status::InvalidArgument("unknown stream field '" + key + "'");
    }
  }
  return Status::Ok();
}

bool WantsKeepAlive(const HttpRequest& request) {
  const std::string* connection = request.FindHeader("connection");
  if (connection == nullptr) {
    return true;  // HTTP/1.1 default
  }
  std::string value = *connection;
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(
                     c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c); });
  return value != "close";
}

bool ParseJobId(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 18) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<AnomalyServer>> AnomalyServer::Start(
    const AnomalyServerOptions& options) {
  StatusOr<std::unique_ptr<JobRunner>> runner =
      JobRunner::Create(options.runner);
  GVA_RETURN_IF_ERROR(runner.status());

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad server bind address '" +
                                   options.bind_address + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("server socket(2) failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot bind server port %u on %s",
                                     static_cast<unsigned>(options.port),
                                     options.bind_address.c_str()));
  }
  if (::listen(fd, 64) != 0 || !SetNonBlocking(fd)) {
    ::close(fd);
    return Status::IoError("server listen(2) failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::IoError("server getsockname(2) failed");
  }
  const uint16_t port = ntohs(bound.sin_port);

  int wake[2];
  if (::pipe(wake) != 0) {
    ::close(fd);
    return Status::IoError("server self-pipe failed");
  }
  int event[2];
  if (::pipe(event) != 0) {
    ::close(fd);
    ::close(wake[0]);
    ::close(wake[1]);
    return Status::IoError("server event pipe failed");
  }

  return std::unique_ptr<AnomalyServer>(
      new AnomalyServer(options, fd, wake[0], wake[1], event[0], event[1],
                        port, std::move(*runner)));
}

AnomalyServer::AnomalyServer(const AnomalyServerOptions& options,
                             int listen_fd, int wake_read_fd,
                             int wake_write_fd, int event_read_fd,
                             int event_write_fd, uint16_t port,
                             std::unique_ptr<JobRunner> runner)
    : options_(options),
      listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      shutdown_event_read_fd_(event_read_fd),
      shutdown_event_write_fd_(event_write_fd),
      port_(port),
      started_(std::chrono::steady_clock::now()),
      runner_(std::move(runner)) {
  thread_ = std::thread([this] { EventLoop(); });
}

AnomalyServer::~AnomalyServer() { Stop(); }

void AnomalyServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  const ssize_t poked = ::write(wake_write_fd_, "q", 1);
  (void)poked;  // a full pipe still wakes the 250 ms poll timeout
  if (thread_.joinable()) {
    thread_.join();
  }
  runner_->Shutdown();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  ::close(shutdown_event_read_fd_);
  ::close(shutdown_event_write_fd_);
}

size_t AnomalyServer::stream_count() const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  return streams_.size();
}

void AnomalyServer::EventLoop() {
  std::vector<Connection> connections;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.reserve(connections.size() + 2);
    const bool can_accept = connections.size() < options_.max_connections;
    fds.push_back(
        pollfd{listen_fd_, static_cast<short>(can_accept ? POLLIN : 0), 0});
    fds.push_back(pollfd{wake_read_fd_, static_cast<short>(POLLIN), 0});
    for (const Connection& connection : connections) {
      short events = static_cast<short>(POLLIN);
      if (!connection.out.empty()) {
        events = static_cast<short>(events | POLLOUT);
      }
      fds.push_back(pollfd{connection.fd, events, 0});
    }
    // The 250 ms timeout backstops a lost wakeup; the self-pipe is the
    // fast path.
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 250);
    if (ready <= 0) {
      continue;  // timeout or EINTR; re-check the stop flag
    }
    if ((fds[1].revents & POLLIN) != 0) {
      break;  // Stop() poked the pipe
    }
    // Connections polled this round; AcceptConnections grows the vector
    // past this count, and the newcomers have no fds entry yet — they are
    // serviced next iteration, once polled.
    const size_t polled = connections.size();
    if ((fds[0].revents & POLLIN) != 0) {
      AcceptConnections(&connections);
    }
    std::vector<Connection> live;
    live.reserve(connections.size());
    for (size_t i = 0; i < connections.size(); ++i) {
      Connection& connection = connections[i];
      if (i >= polled) {
        live.push_back(std::move(connection));
        continue;
      }
      const short revents = fds[i + 2].revents;
      bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
      if (alive && (revents & (POLLIN | POLLHUP)) != 0) {
        alive = ServiceReadable(&connection);
      }
      if (alive && (revents & POLLOUT) != 0) {
        alive = ServiceWritable(&connection);
      }
      if (alive && connection.out.empty() && connection.close_after_write) {
        alive = false;
      }
      if (alive) {
        live.push_back(std::move(connection));
      } else {
        ::close(connection.fd);
      }
    }
    connections = std::move(live);
  }
  DrainPendingWrites(&connections);
}

void AnomalyServer::AcceptConnections(std::vector<Connection>* connections) {
  while (connections->size() < options_.max_connections) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN (drained) or transient accept failure
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    Connection connection;
    connection.fd = fd;
    connection.parser = HttpParser(options_.http_limits);
    connections->push_back(std::move(connection));
  }
}

bool AnomalyServer::ServiceReadable(Connection* connection) {
  char buf[8192];
  while (true) {
    const ssize_t n = ::read(connection->fd, buf, sizeof(buf));
    if (n > 0) {
      connection->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // short read: the socket is drained for now
      }
      continue;
    }
    if (n == 0) {
      // Peer EOF. Serve whatever complete requests are buffered, then drop.
      connection->close_after_write = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // connection reset
  }

  // Drain every complete pipelined request in arrival order.
  while (true) {
    const HttpParser::State state = connection->parser.Parse();
    if (state == HttpParser::State::kNeedMore) {
      break;
    }
    if (state == HttpParser::State::kError) {
      HttpResponse error;
      error.status = connection->parser.error_status();
      error.body = connection->parser.error_reason() + "\n";
      connection->out += SerializeResponse(error);
      connection->close_after_write = true;
      break;
    }
    HttpResponse response = HandleRequest(connection->parser.request());
    connection->parser.ConsumeRequest();
    if (!response.keep_alive) {
      connection->close_after_write = true;
    }
    connection->out += SerializeResponse(response);
    if (connection->close_after_write) {
      break;
    }
  }
  // Opportunistic flush: the common response fits the socket buffer and
  // never needs a POLLOUT round trip.
  return ServiceWritable(connection);
}

bool AnomalyServer::ServiceWritable(Connection* connection) {
  while (!connection->out.empty()) {
    const ssize_t n =
        ::send(connection->fd, connection->out.data(),
               connection->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      connection->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // wait for POLLOUT
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer gone
  }
  return true;
}

void AnomalyServer::DrainPendingWrites(std::vector<Connection>* connections) {
  // Best-effort flush so a response queued just before Stop() — the admin
  // shutdown acknowledgement in particular — still reaches the client.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  for (Connection& connection : *connections) {
    while (!connection.out.empty() &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{connection.fd, static_cast<short>(POLLOUT), 0};
      if (::poll(&pfd, 1, 50) <= 0) {
        continue;
      }
      if (!ServiceWritable(&connection)) {
        break;
      }
    }
    ::close(connection.fd);
  }
  connections->clear();
}

HttpResponse AnomalyServer::HandleRequest(const HttpRequest& request) {
  const bool keep_alive = WantsKeepAlive(request);
  obs::GlobalMetrics().counter("server.requests").Add(1);

  HttpResponse response;
  const std::string& method = request.method;
  const std::string& path = request.path;

  if (path == "/v1/admin/shutdown") {
    if (method != "POST") {
      FillMethodNotAllowed("POST", &response);
    } else {
      shutdown_requested_.store(true, std::memory_order_relaxed);
      const ssize_t poked = ::write(shutdown_event_write_fd_, "s", 1);
      (void)poked;
      JsonValue body = JsonValue::Object();
      body.Set("status", JsonValue::String("shutting-down"));
      FillJson(body, 202, &response);
      response.keep_alive = false;
      return response;
    }
  } else if (obs::HandleTelemetryRoute(method, path, started_,
                                       HealthzExtra(), &response)) {
    // Shared telemetry surface (/metrics, /metrics.json, /healthz,
    // /flightz) with server health appended to /healthz.
  } else if (path == "/v1/jobs") {
    if (method == "POST") {
      HandleJobSubmit(request, &response);
    } else if (method == "GET") {
      HandleJobList(request, &response);
    } else {
      FillMethodNotAllowed("GET or POST", &response);
    }
  } else if (path.rfind("/v1/jobs/", 0) == 0) {
    HandleJobRoute(request, std::string_view(path).substr(9), &response);
  } else if (path.rfind("/v1/streams/", 0) == 0) {
    HandleStreamRoute(request, std::string_view(path).substr(12), &response);
  } else {
    FillError(Status::NotFound("no route for '" + path + "'"), &response);
  }

  response.keep_alive = keep_alive;
  return response;
}

void AnomalyServer::HandleJobSubmit(const HttpRequest& request,
                                    HttpResponse* response) {
  JobSpec spec;
  const Status parsed = ParseJobRequest(request, &spec);
  if (!parsed.ok()) {
    FillError(parsed, response);
    return;
  }
  const std::string tenant = spec.tenant;
  StatusOr<uint64_t> id = runner_->Submit(std::move(spec));
  if (!id.ok()) {
    FillError(id.status(), response);
    return;
  }
  JsonValue body = JsonValue::Object();
  body.Set("id", JsonValue::Number(static_cast<double>(*id)));
  body.Set("tenant", JsonValue::String(tenant));
  body.Set("state", JsonValue::String("queued"));
  FillJson(body, 202, response);
}

void AnomalyServer::HandleJobList(const HttpRequest& request,
                                  HttpResponse* response) {
  // `?tenant=` filters; without it the listing spans tenants (ids are
  // global — this is an operations surface, not an isolation boundary).
  const std::string tenant = QueryParam(request.query, "tenant");
  JsonValue jobs = JsonValue::Array();
  for (const JobSnapshot& snapshot : runner_->List(tenant)) {
    jobs.Append(JobSummaryJson(snapshot));
  }
  JsonValue body = JsonValue::Object();
  body.Set("jobs", std::move(jobs));
  FillJson(body, 200, response);
}

void AnomalyServer::HandleJobRoute(const HttpRequest& request,
                                   std::string_view rest,
                                   HttpResponse* response) {
  bool svg = false;
  std::string_view id_part = rest;
  if (rest.size() > 4 && rest.substr(rest.size() - 4) == "/svg") {
    svg = true;
    id_part = rest.substr(0, rest.size() - 4);
  }
  uint64_t id = 0;
  if (!ParseJobId(id_part, &id)) {
    FillError(Status::NotFound("malformed job id"), response);
    return;
  }
  const std::string& method = request.method;

  if (svg) {
    if (method != "GET") {
      FillMethodNotAllowed("GET", response);
      return;
    }
    StatusOr<JobSnapshot> snapshot = runner_->Get(id);
    if (!snapshot.ok()) {
      FillError(snapshot.status(), response);
      return;
    }
    if (snapshot->state != JobState::kDone) {
      FillError(Status::FailedPrecondition(
                    "job is not finished; poll GET /v1/jobs/{id} first"),
                response);
      return;
    }
    response->status = 200;
    response->content_type = "image/svg+xml";
    response->body = JobSvg(*snapshot);
    return;
  }

  if (method == "GET") {
    StatusOr<JobSnapshot> snapshot = runner_->Get(id);
    if (!snapshot.ok()) {
      FillError(snapshot.status(), response);
      return;
    }
    FillJson(JobJson(*snapshot), 200, response);
    return;
  }
  if (method == "DELETE") {
    const Status cancelled = runner_->Cancel(id);
    if (!cancelled.ok()) {
      FillError(cancelled, response);
      return;
    }
    StatusOr<JobSnapshot> snapshot = runner_->Get(id);
    if (!snapshot.ok()) {
      FillError(snapshot.status(), response);
      return;
    }
    FillJson(JobJson(*snapshot), 200, response);
    return;
  }
  FillMethodNotAllowed("GET or DELETE", response);
}

void AnomalyServer::HandleStreamRoute(const HttpRequest& request,
                                      std::string_view rest,
                                      HttpResponse* response) {
  const size_t slash = rest.find('/');
  const std::string id(
      rest.substr(0, slash == std::string_view::npos ? rest.size() : slash));
  const std::string_view action =
      slash == std::string_view::npos ? std::string_view()
                                      : rest.substr(slash + 1);
  if (!ValidName(id)) {
    FillError(Status::InvalidArgument(
                  "stream id must be 1-64 chars of [A-Za-z0-9_-]"),
              response);
    return;
  }
  const std::string tenant = TenantOf(request);
  if (!ValidName(tenant)) {
    FillError(Status::InvalidArgument(
                  "tenant must be 1-64 chars of [A-Za-z0-9_-]"),
              response);
    return;
  }
  const std::string key = tenant + "/" + id;
  const std::string& method = request.method;

  if (action.empty()) {
    if (method == "POST") {
      StreamingOptions options;
      const Status parsed = ParseStreamOptions(request.body, &options);
      if (!parsed.ok()) {
        FillError(parsed, response);
        return;
      }
      StatusOr<StreamingAnomalyMonitor> monitor =
          StreamingAnomalyMonitor::Create(options);
      if (!monitor.ok()) {
        FillError(monitor.status(), response);
        return;
      }
      std::lock_guard<std::mutex> lock(streams_mu_);
      if (streams_.size() >= options_.max_streams) {
        FillError(Status::ResourceExhausted("stream capacity reached"),
                  response);
        return;
      }
      if (streams_.count(key) != 0) {
        FillError(Status::FailedPrecondition("stream '" + id +
                                             "' already exists"),
                  response);
        return;
      }
      streams_.emplace(key, StreamSession{tenant, std::move(*monitor)});
      JsonValue body = JsonValue::Object();
      body.Set("stream", JsonValue::String(id));
      body.Set("tenant", JsonValue::String(tenant));
      body.Set("window",
               JsonValue::Number(static_cast<double>(options.sax.window)));
      body.Set("paa",
               JsonValue::Number(static_cast<double>(options.sax.paa_size)));
      body.Set("alphabet", JsonValue::Number(static_cast<double>(
                               options.sax.alphabet_size)));
      body.Set("horizon",
               JsonValue::Number(static_cast<double>(options.horizon)));
      FillJson(body, 201, response);
      return;
    }
    if (method == "DELETE") {
      std::lock_guard<std::mutex> lock(streams_mu_);
      if (streams_.erase(key) == 0) {
        FillError(Status::NotFound("no stream '" + id + "'"), response);
        return;
      }
      JsonValue body = JsonValue::Object();
      body.Set("status", JsonValue::String("deleted"));
      FillJson(body, 200, response);
      return;
    }
    FillMethodNotAllowed("POST or DELETE", response);
    return;
  }

  if (action == "samples") {
    if (method != "POST") {
      FillMethodNotAllowed("POST", response);
      return;
    }
    if (request.body.empty()) {
      FillError(Status::InvalidArgument("samples need a JSON body"),
                response);
      return;
    }
    StatusOr<JsonValue> doc = ParseJson(request.body);
    if (!doc.ok()) {
      FillError(doc.status(), response);
      return;
    }
    std::vector<double> samples;
    const JsonValue* field =
        doc->is_object() ? doc->Find("samples") : nullptr;
    if (field == nullptr) {
      FillError(Status::InvalidArgument(
                    "body must be {\"samples\": [numbers...]}"),
                response);
      return;
    }
    const Status read = ReadSamples(*field, "samples", &samples);
    if (!read.ok()) {
      FillError(read, response);
      return;
    }
    std::lock_guard<std::mutex> lock(streams_mu_);
    const auto it = streams_.find(key);
    if (it == streams_.end()) {
      FillError(Status::NotFound("no stream '" + id + "'"), response);
      return;
    }
    it->second.monitor.PushAll(samples);
    JsonValue body = JsonValue::Object();
    body.Set("samples_seen", JsonValue::Number(static_cast<double>(
                                 it->second.monitor.samples_seen())));
    FillJson(body, 200, response);
    return;
  }

  if (action == "report") {
    if (method != "GET") {
      FillMethodNotAllowed("GET", response);
      return;
    }
    std::lock_guard<std::mutex> lock(streams_mu_);
    const auto it = streams_.find(key);
    if (it == streams_.end()) {
      FillError(Status::NotFound("no stream '" + id + "'"), response);
      return;
    }
    StatusOr<StreamingReport> report = it->second.monitor.Report();
    if (!report.ok()) {
      FillError(report.status(), response);
      return;
    }
    FillJson(
        StreamReportJson(*report, it->second.monitor.samples_seen()), 200,
        response);
    return;
  }

  FillError(Status::NotFound("no stream action '" + std::string(action) +
                             "'"),
            response);
}

std::vector<std::string> AnomalyServer::HealthzExtra() const {
  std::vector<std::string> extra;
  extra.push_back(StrFormat("\"server_slots\": %zu", runner_->slots()));
  extra.push_back(
      StrFormat("\"server_slots_busy\": %zu", runner_->slots_busy()));
  extra.push_back(
      StrFormat("\"server_queue_depth\": %zu", runner_->queue_depth()));
  extra.push_back(StrFormat("\"server_queue_capacity\": %zu",
                            runner_->queue_capacity()));
  extra.push_back(StrFormat(
      "\"server_jobs_accepted\": %llu",
      static_cast<unsigned long long>(runner_->jobs_accepted())));
  extra.push_back(StrFormat(
      "\"server_jobs_rejected\": %llu",
      static_cast<unsigned long long>(runner_->jobs_rejected())));
  extra.push_back(StrFormat(
      "\"server_jobs_completed\": %llu",
      static_cast<unsigned long long>(runner_->jobs_completed())));
  extra.push_back(StrFormat(
      "\"server_jobs_failed\": %llu",
      static_cast<unsigned long long>(runner_->jobs_failed())));
  extra.push_back(StrFormat(
      "\"server_jobs_cancelled\": %llu",
      static_cast<unsigned long long>(runner_->jobs_cancelled())));
  extra.push_back(StrFormat("\"server_streams\": %zu", stream_count()));
  return extra;
}

}  // namespace gva::net
