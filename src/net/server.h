#ifndef GVA_NET_SERVER_H_
#define GVA_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job_runner.h"
#include "core/streaming.h"
#include "net/http.h"
#include "util/statusor.h"

namespace gva::net {

struct AnomalyServerOptions {
  /// TCP port; 0 asks the kernel for an ephemeral one (read it back from
  /// port()).
  uint16_t port = 0;
  /// Loopback by default — the API is plaintext and unauthenticated.
  std::string bind_address = "127.0.0.1";
  /// Slot/queue scheduling of detection jobs.
  JobRunnerOptions runner;
  /// Cap on live streaming sessions across all tenants.
  size_t max_streams = 64;
  /// Cap on simultaneously open connections; the listener stops accepting
  /// (clients queue in the kernel backlog) while at the cap.
  size_t max_connections = 64;
  /// Parser limits (header block 16 KiB, body 8 MiB by default — an inline
  /// series of ~400k JSON doubles).
  HttpParser::Limits http_limits;
};

/// The gva_serverd engine: a single-threaded poll() event loop serving the
/// multi-tenant anomaly-detection API over HTTP/1.1, with detection work
/// delegated to a JobRunner worker pool so a long RRA search never blocks
/// the socket loop (DESIGN.md §13). Embeddable: tests Start() it
/// in-process on an ephemeral port and speak to it over real sockets, or
/// call HandleRequest() directly for route-table unit tests.
///
/// Routes (all request/response bodies JSON unless noted):
///
///   POST   /v1/jobs                 submit a job -> 202 {"id": n, ...};
///                                   429 + Retry-After when the queue is
///                                   full
///   GET    /v1/jobs[?tenant=t]      list jobs (summaries)
///   GET    /v1/jobs/{id}            job state + result when done
///   GET    /v1/jobs/{id}/svg        SVG report of a finished job
///   DELETE /v1/jobs/{id}            cancel (idempotent)
///   POST   /v1/streams/{id}         create a streaming session -> 201
///   POST   /v1/streams/{id}/samples append samples
///   GET    /v1/streams/{id}/report  current streaming detection
///   DELETE /v1/streams/{id}         drop the session
///   POST   /v1/admin/shutdown       request process shutdown -> 202
///   GET    /metrics|/metrics.json|/healthz|/flightz
///                                   the shared telemetry surface
///                                   (obs::HandleTelemetryRoute), with
///                                   server slot/queue state appended to
///                                   /healthz
///
/// Tenancy: the x-gva-tenant header (or the "tenant" job field) labels
/// jobs and namespaces streams; absent means "default". Tenants share the
/// slot pool — isolation is accounting and namespacing, not scheduling.
class AnomalyServer {
 public:
  static StatusOr<std::unique_ptr<AnomalyServer>> Start(
      const AnomalyServerOptions& options);

  ~AnomalyServer();
  AnomalyServer(const AnomalyServer&) = delete;
  AnomalyServer& operator=(const AnomalyServer&) = delete;

  /// Wakes the event loop, drains pending writes briefly, joins the loop
  /// thread, and shuts the job runner down. Idempotent.
  void Stop();

  /// The bound port (the kernel's choice when options.port was 0).
  uint16_t port() const { return port_; }

  /// Read end of the shutdown-event pipe: becomes readable when a
  /// POST /v1/admin/shutdown lands. The daemon's main() polls this next to
  /// its signal pipe and calls Stop() when either fires; the response is
  /// flushed by the still-running loop in the meantime.
  int shutdown_event_fd() const { return shutdown_event_read_fd_; }

  /// Whether an admin shutdown was requested.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// The routing core: maps one parsed request to a response. Thread-safe;
  /// exposed so unit tests can exercise the route table without sockets.
  HttpResponse HandleRequest(const HttpRequest& request);

  /// The scheduler, for tests asserting slot/queue/counter state.
  JobRunner& runner() { return *runner_; }

  /// Live streaming sessions across all tenants.
  size_t stream_count() const;

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser;
    std::string out;   ///< serialized responses awaiting POLLOUT
    bool close_after_write = false;
  };

  struct StreamSession {
    std::string tenant;
    StreamingAnomalyMonitor monitor;
  };

  AnomalyServer(const AnomalyServerOptions& options, int listen_fd,
                int wake_read_fd, int wake_write_fd, int event_read_fd,
                int event_write_fd, uint16_t port,
                std::unique_ptr<JobRunner> runner);

  void EventLoop();
  void AcceptConnections(std::vector<Connection>* connections);
  /// Reads, parses, handles, and queues responses for one connection.
  /// Returns false when the connection should be dropped immediately.
  bool ServiceReadable(Connection* connection);
  bool ServiceWritable(Connection* connection);
  /// Best-effort flush of pending responses at shutdown.
  void DrainPendingWrites(std::vector<Connection>* connections);

  // Route handlers. Each fills `response` (status, body, content type).
  void HandleJobSubmit(const HttpRequest& request, HttpResponse* response);
  void HandleJobList(const HttpRequest& request, HttpResponse* response);
  void HandleJobRoute(const HttpRequest& request, std::string_view rest,
                      HttpResponse* response);
  void HandleStreamRoute(const HttpRequest& request, std::string_view rest,
                         HttpResponse* response);

  std::vector<std::string> HealthzExtra() const;

  const AnomalyServerOptions options_;
  const int listen_fd_;
  const int wake_read_fd_;   ///< self-pipe: Stop() wakes the poll loop
  const int wake_write_fd_;
  const int shutdown_event_read_fd_;   ///< admin shutdown notification
  const int shutdown_event_write_fd_;
  const uint16_t port_;
  const std::chrono::steady_clock::time_point started_;

  std::unique_ptr<JobRunner> runner_;

  mutable std::mutex streams_mu_;
  /// Keyed "<tenant>/<id>"; both components are validated to [A-Za-z0-9_-]
  /// so the join is unambiguous. std::map: deterministic listing order.
  std::map<std::string, StreamSession> streams_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread thread_;
};

}  // namespace gva::net

#endif  // GVA_NET_SERVER_H_
