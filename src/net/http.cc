#include "net/http.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "util/strings.h"

namespace gva::net {

namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Finds the end of the header block: the first blank line. Accepts CRLF
/// and bare LF. Returns npos while incomplete; sets `*body_start` to the
/// offset just past the blank line on success.
size_t FindHeaderEnd(std::string_view buffer, size_t* body_start) {
  const size_t crlf = buffer.find("\r\n\r\n");
  const size_t lf = buffer.find("\n\n");
  if (crlf == std::string_view::npos && lf == std::string_view::npos) {
    return std::string_view::npos;
  }
  if (crlf != std::string_view::npos &&
      (lf == std::string_view::npos || crlf < lf)) {
    *body_start = crlf + 4;
    return crlf;
  }
  *body_start = lf + 2;
  return lf;
}

/// Strict non-negative decimal parse for Content-Length: digits only, no
/// sign, no whitespace beyond the trim, overflow rejected.
bool ParseContentLength(std::string_view text, size_t* out) {
  if (text.empty()) {
    return false;
  }
  size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n",
      response.status, HttpStatusText(response.status),
      response.content_type.c_str(), response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += response.keep_alive ? "Connection: keep-alive\r\n\r\n"
                             : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void NormalizeTarget(std::string_view target, std::string* path,
                     std::string* query) {
  // A fragment is client-side state; a proxy that forwards one anyway must
  // not change routing.
  const size_t hash = target.find('#');
  if (hash != std::string_view::npos) {
    target = target.substr(0, hash);
  }
  const size_t question = target.find('?');
  if (question == std::string_view::npos) {
    path->assign(target);
    query->clear();
  } else {
    path->assign(target.substr(0, question));
    query->assign(target.substr(question + 1));
  }
}

std::string QueryParam(std::string_view query, std::string_view key) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t amp = query.find('&', start);
    if (amp == std::string_view::npos) {
      amp = query.size();
    }
    const std::string_view pair = query.substr(start, amp - start);
    start = amp + 1;
    const size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos ? std::string()
                                          : std::string(pair.substr(eq + 1));
    }
  }
  return std::string();
}

HttpParser::State HttpParser::Fail(int status, std::string reason) {
  error_status_ = status;
  error_reason_ = std::move(reason);
  return State::kError;
}

HttpParser::State HttpParser::Parse() {
  if (error_status_ != 0) {
    return State::kError;
  }
  if (!headers_done_) {
    size_t body_start = 0;
    const size_t header_end = FindHeaderEnd(buffer_, &body_start);
    if (header_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(431, "header block exceeds limit");
      }
      return State::kNeedMore;
    }
    if (header_end > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds limit");
    }

    // Request line: METHOD SP target SP HTTP/1.x
    const std::string_view head(buffer_.data(), header_end);
    size_t line_end = head.find_first_of("\r\n");
    if (line_end == std::string_view::npos) {
      line_end = head.size();
    }
    const std::string_view request_line = head.substr(0, line_end);
    const size_t method_end = request_line.find(' ');
    if (method_end == std::string_view::npos || method_end == 0) {
      return Fail(400, "malformed request line");
    }
    const std::string_view after_method = request_line.substr(method_end + 1);
    const size_t target_end = after_method.find(' ');
    if (target_end == std::string_view::npos || target_end == 0) {
      return Fail(400, "malformed request line");
    }
    const std::string_view version = after_method.substr(target_end + 1);
    if (version.rfind("HTTP/1.", 0) != 0) {
      return Fail(400, "unsupported protocol version");
    }
    request_.method.assign(request_line.substr(0, method_end));
    request_.target.assign(after_method.substr(0, target_end));
    NormalizeTarget(request_.target, &request_.path, &request_.query);
    if (request_.path.empty() || request_.path[0] != '/') {
      return Fail(400, "request target must be an absolute path");
    }

    // Header fields.
    request_.headers.clear();
    size_t cursor = line_end;
    while (cursor < head.size()) {
      // Skip the line terminator (CRLF or LF).
      if (head[cursor] == '\r') {
        ++cursor;
      }
      if (cursor < head.size() && head[cursor] == '\n') {
        ++cursor;
      }
      if (cursor >= head.size()) {
        break;
      }
      size_t next = head.find_first_of("\r\n", cursor);
      if (next == std::string_view::npos) {
        next = head.size();
      }
      const std::string_view line = head.substr(cursor, next - cursor);
      cursor = next;
      if (line.empty()) {
        continue;
      }
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return Fail(400, "malformed header field");
      }
      const std::string name = ToLower(StripWhitespace(line.substr(0, colon)));
      if (name.find(' ') != std::string::npos) {
        return Fail(400, "whitespace inside header field name");
      }
      request_.headers.emplace_back(
          name, std::string(StripWhitespace(line.substr(colon + 1))));
    }

    // Body length. Chunked bodies are out of scope for these daemons.
    if (request_.FindHeader("transfer-encoding") != nullptr) {
      return Fail(400, "transfer-encoding is not supported");
    }
    content_length_ = 0;
    const std::string* declared = request_.FindHeader("content-length");
    if (declared != nullptr) {
      if (!ParseContentLength(*declared, &content_length_)) {
        return Fail(400, "malformed content-length");
      }
      // Duplicate Content-Length fields with disagreeing values are a
      // smuggling vector; reject them.
      for (const auto& [name, value] : request_.headers) {
        if (name == "content-length" && value != *declared) {
          return Fail(400, "conflicting content-length fields");
        }
      }
      if (content_length_ > limits_.max_body_bytes) {
        return Fail(413, "declared body exceeds limit");
      }
    }
    body_offset_ = body_start;
    headers_done_ = true;
  }

  if (buffer_.size() < body_offset_ + content_length_) {
    return State::kNeedMore;
  }
  request_.body.assign(buffer_, body_offset_, content_length_);
  consumed_ = body_offset_ + content_length_;
  return State::kComplete;
}

void HttpParser::ConsumeRequest() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  body_offset_ = 0;
  content_length_ = 0;
  headers_done_ = false;
  request_ = HttpRequest{};
}

bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t written = ::write(fd, data.data() + off, data.size() - off);
    if (written <= 0) {
      return false;
    }
    off += static_cast<size_t>(written);
  }
  return true;
}

}  // namespace gva::net
