#ifndef GVA_NET_HTTP_H_
#define GVA_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gva::net {

/// One parsed HTTP/1.x request. `target` is the raw request target as sent;
/// `path` is the normalized routing key (query string and fragment
/// stripped), `query` the raw query string without the '?'. Routing on
/// anything but `path` is a bug — a scraper appending `?x=1` must hit the
/// same route (the PR 9 telemetry server got this right only inside its own
/// handler; the normalization now lives here so every daemon shares it).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string query;
  /// Header fields in arrival order, names lowercased (field names are
  /// case-insensitive per RFC 9110; values are kept verbatim, trimmed).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given (lowercase) name, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// One response about to be serialized. `extra_headers` carries
/// route-specific fields (e.g. Retry-After on a 429).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  /// When false the serializer emits `Connection: close` and the server
  /// drops the connection after writing.
  bool keep_alive = false;
};

/// Reason phrase for the status codes the daemons emit.
const char* HttpStatusText(int status);

/// Serializes status line + Content-Type/Content-Length/Connection +
/// extra headers + body.
std::string SerializeResponse(const HttpResponse& response);

/// Splits a request target into (path, query), dropping any fragment: the
/// shared normalization both daemons route on.
void NormalizeTarget(std::string_view target, std::string* path,
                     std::string* query);

/// Value of `key` in a normalized query string ("a=1&b=2"), or empty when
/// absent (an empty value and an absent key are indistinguishable — the
/// daemons' parameters are all non-empty). No percent-decoding: the
/// accepted parameter values (tenant names, numbers) never need it.
std::string QueryParam(std::string_view query, std::string_view key);

/// Incremental HTTP/1.x request parser, built for a poll() loop: bytes
/// arrive in arbitrary fragments across wakeups, several pipelined
/// requests may sit in one read, and a hostile peer may send unbounded
/// headers. Feed() appends bytes; Parse() advances the state machine:
///
///   kNeedMore  — incomplete; feed more bytes and call Parse() again
///   kComplete  — request() is valid; ConsumeRequest() drops its bytes
///                (keeping any pipelined remainder) and re-arms
///   kError     — protocol violation; error_status() is the HTTP status
///                to answer with (400 malformed, 413 body too large,
///                431 headers too large) before closing
///
/// The parser is deliberately small: no chunked transfer encoding (a
/// Transfer-Encoding header is answered 400 — jobs are submitted with a
/// known Content-Length), no continuation lines, CRLF or bare LF line
/// endings.
class HttpParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  struct Limits {
    /// Request line + headers; 431 beyond this without a blank line.
    size_t max_header_bytes = 16 * 1024;
    /// Declared Content-Length ceiling; 413 beyond. Inline series are the
    /// big payload: 8 MiB holds ~400k points of JSON doubles.
    size_t max_body_bytes = 8 * 1024 * 1024;
  };

  HttpParser() : HttpParser(Limits{}) {}
  explicit HttpParser(const Limits& limits) : limits_(limits) {}

  /// Appends raw bytes from the socket.
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Attempts to parse one complete request from the front of the buffer.
  State Parse();

  /// The parsed request; valid only after Parse() returned kComplete.
  const HttpRequest& request() const { return request_; }

  /// Drops the parsed request's bytes, keeps pipelined leftovers, and
  /// resets the state machine for the next request.
  void ConsumeRequest();

  /// HTTP status to answer with after kError.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Unparsed bytes currently buffered.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  State Fail(int status, std::string reason);

  Limits limits_;
  std::string buffer_;
  HttpRequest request_;
  /// Bytes of `buffer_` owned by the parsed request (headers + body).
  size_t consumed_ = 0;
  /// Offset of the body within `buffer_` once headers parsed; 0 = headers
  /// not yet parsed.
  size_t body_offset_ = 0;
  size_t content_length_ = 0;
  bool headers_done_ = false;
  int error_status_ = 0;
  std::string error_reason_;
};

/// Writes the whole buffer to `fd`, tolerating short writes. Returns false
/// if the peer hung up mid-write.
bool SendAll(int fd, std::string_view data);

}  // namespace gva::net

#endif  // GVA_NET_HTTP_H_
