#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

#include "backend/backend.h"
#include "net/http.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/strings.h"

namespace gva::obs {

bool HandleTelemetryRoute(std::string_view method, std::string_view path,
                          std::chrono::steady_clock::time_point started,
                          const std::vector<std::string>& healthz_extra,
                          net::HttpResponse* response) {
  const bool is_route = path == "/metrics" || path == "/metrics.json" ||
                        path == "/healthz" || path == "/flightz";
  if (!is_route) {
    return false;
  }
  if (method != "GET") {
    response->status = 405;
    response->content_type = "text/plain; charset=utf-8";
    response->body = "telemetry endpoints are GET-only\n";
    return true;
  }
  MetricsRegistry& metrics = GlobalMetrics();
  if (path == "/metrics") {
    response->content_type = "text/plain; version=0.0.4; charset=utf-8";
    response->body = RenderPrometheusText(metrics);
    return true;
  }
  if (path == "/metrics.json") {
    response->content_type = "application/json";
    response->body = metrics.ToJson();
    return true;
  }
  if (path == "/healthz") {
    const uint64_t uptime_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    const FlightRecorder& recorder = FlightRecorder::Global();
    std::string body = StrFormat(
        "{\"status\": \"ok\", \"backend\": \"%s\", \"obs_enabled\": %s, "
        "\"uptime_us\": %llu, \"flight_threads\": %zu, "
        "\"flight_events\": %llu",
        backend::ActiveBackend().name, kEnabled ? "true" : "false",
        static_cast<unsigned long long>(uptime_us), recorder.threads_seen(),
        static_cast<unsigned long long>(recorder.events_recorded()));
    for (const std::string& field : healthz_extra) {
      body += ", ";
      body += field;
    }
    body += "}\n";
    response->content_type = "application/json";
    response->body = std::move(body);
    return true;
  }
  // path == "/flightz"
  response->content_type = "application/json";
  response->body = FlightRecorder::Global().ToJson();
  return true;
}

StatusOr<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    const Options& options) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad telemetry bind address '" +
                                   options.bind_address + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("telemetry socket(2) failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot bind telemetry port %u on %s",
                                     static_cast<unsigned>(options.port),
                                     options.bind_address.c_str()));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("telemetry listen(2) failed");
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::IoError("telemetry getsockname(2) failed");
  }
  const uint16_t port = ntohs(bound.sin_port);

  int wake[2];
  if (::pipe(wake) != 0) {
    ::close(fd);
    return Status::IoError("telemetry self-pipe failed");
  }

  return std::unique_ptr<TelemetryServer>(
      new TelemetryServer(fd, wake[0], wake[1], port));
}

TelemetryServer::TelemetryServer(int listen_fd, int wake_read_fd,
                                 int wake_write_fd, uint16_t port)
    : listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      port_(port),
      started_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { ServeLoop(); });
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  net::SendAll(wake_write_fd_, "q");
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

void TelemetryServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_read_fd_;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    // The 250 ms timeout is a belt on top of the self-pipe braces: even a
    // lost wakeup only delays shutdown by a beat.
    const int ready = ::poll(fds, 2, 250);
    if (ready <= 0) {
      continue;  // timeout or EINTR; re-check the stop flag
    }
    if ((fds[1].revents & POLLIN) != 0) {
      return;  // Stop() poked the pipe
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // A scraper that connects but never finishes its request must not wedge
  // the loop: cap the read wait.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Scrapes are bodyless GETs; cap what a confused client can buffer here.
  net::HttpParser::Limits limits;
  limits.max_body_bytes = 4 * 1024;
  net::HttpParser parser(limits);
  char buf[4096];
  net::HttpParser::State state = net::HttpParser::State::kNeedMore;
  while (state == net::HttpParser::State::kNeedMore) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      return;  // timeout, reset, or EOF before a full request
    }
    parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
    state = parser.Parse();
  }
  if (state == net::HttpParser::State::kError) {
    net::HttpResponse error;
    error.status = parser.error_status();
    error.body = parser.error_reason() + "\n";
    net::SendAll(fd, net::SerializeResponse(error));
    return;
  }
  const net::HttpResponse response =
      HandleRequest(parser.request().method, parser.request().path);
  net::SendAll(fd, net::SerializeResponse(response));
}

net::HttpResponse TelemetryServer::HandleRequest(std::string_view method,
                                                 std::string_view path) {
  // Direct callers may pass a raw target; the socket path already arrives
  // normalized from the parser. Normalizing twice is a no-op.
  std::string normalized_path;
  std::string query;
  net::NormalizeTarget(path, &normalized_path, &query);

  // Self-metrics re-published on every request: an ObsSession reset wipes
  // their values, and this is what restores them on the next scrape.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry& metrics = GlobalMetrics();
  metrics.counter("telemetry.requests").Add(1);
  metrics.gauge("telemetry.port").Set(static_cast<int64_t>(port_));

  net::HttpResponse response;
  if (HandleTelemetryRoute(method, normalized_path, started_, {}, &response)) {
    return response;
  }
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body =
      "not found; try /metrics /metrics.json /healthz /flightz\n";
  return response;
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<TelemetryServer> g_global_server;

}  // namespace

Status StartGlobalTelemetry(const TelemetryServer::Options& options) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_server != nullptr) {
    return Status::FailedPrecondition("global telemetry already running");
  }
  StatusOr<std::unique_ptr<TelemetryServer>> server =
      TelemetryServer::Start(options);
  if (!server.ok()) {
    return server.status();
  }
  g_global_server = std::move(server).value();
  // Join the serving thread on normal exit so no binary needs an explicit
  // shutdown call (and tsan sees no leaked thread). Registering more than
  // once is harmless — StopGlobalTelemetry is idempotent.
  std::atexit(StopGlobalTelemetry);
  return Status::Ok();
}

TelemetryServer* GlobalTelemetry() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_server.get();
}

void StopGlobalTelemetry() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_server.reset();
}

}  // namespace gva::obs
