#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

#include "backend/backend.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/strings.h"

namespace gva::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

/// Writes the whole buffer, tolerating short writes. Best effort: a
/// scraper that hangs up mid-response is its own problem.
void WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t written = ::write(fd, data + off, size - off);
    if (written <= 0) {
      return;
    }
    off += static_cast<size_t>(written);
  }
}

}  // namespace

StatusOr<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    const Options& options) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad telemetry bind address '" +
                                   options.bind_address + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("telemetry socket(2) failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot bind telemetry port %u on %s",
                                     static_cast<unsigned>(options.port),
                                     options.bind_address.c_str()));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("telemetry listen(2) failed");
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::IoError("telemetry getsockname(2) failed");
  }
  const uint16_t port = ntohs(bound.sin_port);

  int wake[2];
  if (::pipe(wake) != 0) {
    ::close(fd);
    return Status::IoError("telemetry self-pipe failed");
  }

  return std::unique_ptr<TelemetryServer>(
      new TelemetryServer(fd, wake[0], wake[1], port));
}

TelemetryServer::TelemetryServer(int listen_fd, int wake_read_fd,
                                 int wake_write_fd, uint16_t port)
    : listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      port_(port),
      started_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { ServeLoop(); });
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  const char byte = 'q';
  WriteAll(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

void TelemetryServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_read_fd_;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    // The 250 ms timeout is a belt on top of the self-pipe braces: even a
    // lost wakeup only delays shutdown by a beat.
    const int ready = ::poll(fds, 2, 250);
    if (ready <= 0) {
      continue;  // timeout or EINTR; re-check the stop flag
    }
    if ((fds[1].revents & POLLIN) != 0) {
      return;  // Stop() poked the pipe
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // A scraper that connects but never finishes its request line must not
  // wedge the loop: cap the read wait.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  char buf[4096];
  size_t have = 0;
  while (have < sizeof(buf) - 1) {
    const ssize_t n = ::read(fd, buf + have, sizeof(buf) - 1 - have);
    if (n <= 0) {
      break;
    }
    have += static_cast<size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;  // end of request headers
    }
  }
  if (have == 0) {
    return;
  }
  buf[have] = '\0';

  // Parse "<METHOD> <path> HTTP/1.x" — the only line we care about.
  std::string_view request(buf, have);
  const size_t line_end = request.find_first_of("\r\n");
  if (line_end != std::string_view::npos) {
    request = request.substr(0, line_end);
  }
  const size_t method_end = request.find(' ');
  std::string_view method = "GET";
  std::string_view path = "/";
  if (method_end != std::string_view::npos) {
    method = request.substr(0, method_end);
    std::string_view rest = request.substr(method_end + 1);
    const size_t path_end = rest.find(' ');
    path = path_end == std::string_view::npos ? rest : rest.substr(0, path_end);
  }

  const Response response = HandleRequest(method, path);
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, StatusText(response.status),
      response.content_type.c_str(), response.body.size());
  out += response.body;
  WriteAll(fd, out.data(), out.size());
}

TelemetryServer::Response TelemetryServer::HandleRequest(
    std::string_view method, std::string_view path) {
  // Strip a query string: Prometheus scrapers may append one.
  const size_t query = path.find('?');
  if (query != std::string_view::npos) {
    path = path.substr(0, query);
  }

  // Self-metrics re-published on every request: an ObsSession reset wipes
  // their values, and this is what restores them on the next scrape.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry& metrics = GlobalMetrics();
  metrics.counter("telemetry.requests").Add(1);
  metrics.gauge("telemetry.port").Set(static_cast<int64_t>(port_));

  Response response;
  if (method != "GET") {
    response.status = 405;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "telemetry endpoints are GET-only\n";
    return response;
  }
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheusText(metrics);
    return response;
  }
  if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = metrics.ToJson();
    return response;
  }
  if (path == "/healthz") {
    const uint64_t uptime_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
    const FlightRecorder& recorder = FlightRecorder::Global();
    response.content_type = "application/json";
    response.body = StrFormat(
        "{\"status\": \"ok\", \"backend\": \"%s\", \"obs_enabled\": %s, "
        "\"uptime_us\": %llu, \"flight_threads\": %zu, "
        "\"flight_events\": %llu}\n",
        backend::ActiveBackend().name, kEnabled ? "true" : "false",
        static_cast<unsigned long long>(uptime_us), recorder.threads_seen(),
        static_cast<unsigned long long>(recorder.events_recorded()));
    return response;
  }
  if (path == "/flightz") {
    response.content_type = "application/json";
    response.body = FlightRecorder::Global().ToJson();
    return response;
  }
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body =
      "not found; try /metrics /metrics.json /healthz /flightz\n";
  return response;
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<TelemetryServer> g_global_server;

}  // namespace

Status StartGlobalTelemetry(const TelemetryServer::Options& options) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_server != nullptr) {
    return Status::FailedPrecondition("global telemetry already running");
  }
  StatusOr<std::unique_ptr<TelemetryServer>> server =
      TelemetryServer::Start(options);
  if (!server.ok()) {
    return server.status();
  }
  g_global_server = std::move(server).value();
  // Join the serving thread on normal exit so no binary needs an explicit
  // shutdown call (and tsan sees no leaked thread). Registering more than
  // once is harmless — StopGlobalTelemetry is idempotent.
  std::atexit(StopGlobalTelemetry);
  return Status::Ok();
}

TelemetryServer* GlobalTelemetry() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_server.get();
}

void StopGlobalTelemetry() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_server.reset();
}

}  // namespace gva::obs
