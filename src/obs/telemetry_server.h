#ifndef GVA_OBS_TELEMETRY_SERVER_H_
#define GVA_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http.h"
#include "util/status.h"
#include "util/statusor.h"

namespace gva::obs {

/// The four always-on telemetry routes, shared by every daemon that mounts
/// them (the embedded TelemetryServer and gva_serverd serve the same
/// surface from one implementation):
///
///   /metrics       Prometheus text exposition of GlobalMetrics()
///   /metrics.json  the registry's native JSON export
///   /healthz       liveness + backend/uptime snapshot (JSON)
///   /flightz       the flight recorder's Chrome trace JSON
///
/// Returns true when `path` (already normalized — query string stripped by
/// the net::HttpParser) names one of them, with `response` filled in;
/// non-GET methods on a telemetry route get 405. `healthz_extra` appends
/// caller-supplied `"key": value` JSON fragments to the /healthz body —
/// gva_serverd reports its slot/queue state there. `started` anchors the
/// uptime field.
bool HandleTelemetryRoute(std::string_view method, std::string_view path,
                          std::chrono::steady_clock::time_point started,
                          const std::vector<std::string>& healthz_extra,
                          net::HttpResponse* response);

/// Minimal embedded HTTP/1.1 listener for always-on telemetry. One
/// background thread runs a blocking poll() accept loop and serves
/// connections serially (scrapers come one Prometheus poll at a time;
/// this is an exposition endpoint, not a web server). No third-party
/// dependencies — raw POSIX sockets.
///
/// Routes:
///   /metrics       Prometheus text exposition of GlobalMetrics()
///   /metrics.json  the registry's native JSON export
///   /healthz       liveness + backend/uptime snapshot (JSON)
///   /flightz       the flight recorder's Chrome trace JSON
///
/// Every request bumps the `telemetry.requests` counter and re-publishes
/// the `telemetry.port` gauge, so the server's own series reappear on the
/// very next scrape after an ObsSession resets the global registry.
class TelemetryServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 asks the kernel for an ephemeral port
    /// (read the outcome from port()).
    uint16_t port = 0;
    /// Bind address. Loopback by default: telemetry is plaintext and
    /// unauthenticated, so exposing it beyond the host is an explicit act.
    std::string bind_address = "127.0.0.1";
  };

  /// Binds, listens, and starts the serving thread. Fails with
  /// kIoError if the port is taken or the address does not parse.
  static StatusOr<std::unique_ptr<TelemetryServer>> Start(
      const Options& options);

  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Wakes the poll loop, joins the thread, closes the socket. Idempotent.
  void Stop();

  /// The bound port (the kernel's choice when Options::port was 0).
  uint16_t port() const { return port_; }

  /// Maps a request to a response — the shared telemetry routing table
  /// plus this server's 404 tail. Unknown paths get 404, non-GET methods
  /// 405. `path` may still carry a query string (direct callers); it is
  /// normalized with the same net::NormalizeTarget the parser uses.
  net::HttpResponse HandleRequest(std::string_view method,
                                  std::string_view path);

  /// Requests served since Start (monotonic, independent of the
  /// resettable `telemetry.requests` metric).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  TelemetryServer(int listen_fd, int wake_read_fd, int wake_write_fd,
                  uint16_t port);

  void ServeLoop();
  void ServeConnection(int fd);

  const int listen_fd_;
  const int wake_read_fd_;   ///< self-pipe: poll()ed alongside listen_fd_
  const int wake_write_fd_;  ///< Stop() writes one byte here
  const uint16_t port_;
  const std::chrono::steady_clock::time_point started_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread thread_;
};

/// Process-wide server for binaries that take --telemetry-port: starts the
/// singleton (FailedPrecondition if already running) and registers an
/// atexit hook that stops it, so the serving thread is joined on normal
/// exit. Port 0 still works; read it back via GlobalTelemetry()->port().
Status StartGlobalTelemetry(const TelemetryServer::Options& options);

/// The running global server, or nullptr.
TelemetryServer* GlobalTelemetry();

/// Stops and destroys the global server. Idempotent, safe without a
/// prior Start.
void StopGlobalTelemetry();

}  // namespace gva::obs

#endif  // GVA_OBS_TELEMETRY_SERVER_H_
