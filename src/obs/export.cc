#include "obs/export.h"

#include <cctype>
#include <cstdint>

#include "util/strings.h"

namespace gva::obs {

namespace {

/// Formats a histogram bucket's upper bound as a Prometheus `le` value.
/// Every finite boundary under the shared base-2 rule is an exact power of
/// two (or 1.0), so integer formatting is lossless; the last bucket is
/// unbounded and spelled "+Inf".
std::string LeValue(size_t bucket_index) {
  if (bucket_index >= kHistogramBuckets - 1) {
    return "+Inf";
  }
  const auto [lower, upper] = HistogramBucketBounds(bucket_index);
  (void)lower;
  return StrFormat("%llu", static_cast<unsigned long long>(upper));
}

const char* TypeName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string PrometheusSeriesName(std::string_view name,
                                 MetricSample::Kind kind) {
  std::string out = "gva_";
  out.reserve(name.size() + 24);
  // A trailing `.us` is a unit, not a path segment: rewrite it to the
  // spelled-out base unit the exposition conventions ask for.
  std::string_view body = name;
  bool microseconds = false;
  if (body.size() > 3 && body.substr(body.size() - 3) == ".us") {
    body.remove_suffix(3);
    microseconds = true;
  }
  for (const char c : body) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out.push_back(valid ? c : '_');
  }
  if (microseconds) {
    out += "_microseconds";
  }
  if (kind == MetricSample::Kind::kCounter) {
    out += "_total";
  }
  return out;
}

std::string RenderPrometheusText(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 96);
  for (const MetricSample& s : samples) {
    const std::string series = PrometheusSeriesName(s.name, s.kind);
    out += StrFormat("# HELP %s gva metric %s\n", series.c_str(),
                     s.name.c_str());
    out += StrFormat("# TYPE %s %s\n", series.c_str(), TypeName(s.kind));
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += StrFormat("%s %llu\n", series.c_str(),
                         static_cast<unsigned long long>(s.counter_value));
        break;
      case MetricSample::Kind::kGauge:
        out += StrFormat("%s %lld\n", series.c_str(),
                         static_cast<long long>(s.gauge_value));
        break;
      case MetricSample::Kind::kHistogram: {
        // Cumulative buckets over the shared boundaries: only boundaries up
        // to the highest occupied bucket are materialized (the curve is
        // flat beyond it), then the mandatory +Inf terminator.
        uint64_t cumulative = 0;
        size_t next = 0;  // next sparse (index, count) pair to fold in
        // Highest occupied *finite* bucket: tail-only occupancy must not
        // drag every flat intermediate boundary into the exposition.
        size_t highest = 0;
        bool any_finite = false;
        for (const auto& bucket : s.histogram_buckets) {
          if (bucket.first < kHistogramBuckets - 1) {
            highest = bucket.first;
            any_finite = true;
          }
        }
        for (size_t b = 0; any_finite && b <= highest; ++b) {
          if (next < s.histogram_buckets.size() &&
              s.histogram_buckets[next].first == b) {
            cumulative += s.histogram_buckets[next].second;
            ++next;
          }
          out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", series.c_str(),
                           LeValue(b).c_str(),
                           static_cast<unsigned long long>(cumulative));
        }
        out += StrFormat(
            "%s_bucket{le=\"+Inf\"} %llu\n", series.c_str(),
            static_cast<unsigned long long>(s.histogram_count));
        out += StrFormat("%s_sum %.6f\n", series.c_str(), s.histogram_sum);
        out += StrFormat("%s_count %llu\n", series.c_str(),
                         static_cast<unsigned long long>(s.histogram_count));
        break;
      }
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsRegistry& registry) {
  return RenderPrometheusText(registry.Snapshot());
}

}  // namespace gva::obs
