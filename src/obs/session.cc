#include "obs/session.h"

#include <cstdio>

namespace gva::obs {

ObsSession::ObsSession(Options options) : options_(std::move(options)) {
  if (tracing()) {
    GlobalTracer().Enable();
  }
  if (metrics()) {
    GlobalMetrics().Reset();
    SetStageTimingEnabled(true);
  }
}

ObsSession::~ObsSession() {
  const Status status = Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "obs export failed: %s\n",
                 status.ToString().c_str());
  }
  if (tracing()) {
    GlobalTracer().Disable();
  }
  if (metrics()) {
    SetStageTimingEnabled(false);
  }
}

Status ObsSession::Flush() {
  Status first = Status::Ok();
  if (tracing()) {
    const Status status = GlobalTracer().WriteChromeTrace(options_.trace_path);
    if (!status.ok() && first.ok()) {
      first = status;
    } else if (status.ok() && options_.announce && !flushed_) {
      std::printf("trace written: %s\n", options_.trace_path.c_str());
    }
  }
  if (metrics()) {
    const std::string json = GlobalMetrics().ToJson();
    std::FILE* f = std::fopen(options_.metrics_path.c_str(), "w");
    if (f == nullptr) {
      if (first.ok()) {
        first = Status::IoError("cannot open metrics file '" +
                                options_.metrics_path + "'");
      }
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      if (options_.announce && !flushed_) {
        std::printf("metrics written: %s\n", options_.metrics_path.c_str());
      }
    }
  }
  flushed_ = true;
  return first;
}

}  // namespace gva::obs
