#ifndef GVA_OBS_EXPORT_H_
#define GVA_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace gva::obs {

/// Maps a registry metric name onto the Prometheus series name the text
/// exposition uses. The registry's dot-separated lowercase paths become
/// underscore-separated, prefixed with `gva_`; any character outside
/// [a-zA-Z0-9_] is replaced by '_' (Prometheus names admit no others).
/// Unit suffixes follow the exposition conventions: a trailing `.us`
/// becomes `_microseconds`, and counters additionally end in `_total`.
/// Examples:
///   stage.sax.words.us + kCounter -> gva_stage_sax_words_microseconds_total
///   threadpool.queue.depth + kGauge -> gva_threadpool_queue_depth
///   stream.latency.us + kHistogram -> gva_stream_latency_microseconds
std::string PrometheusSeriesName(std::string_view name,
                                 MetricSample::Kind kind);

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4). Output is deterministic for a given snapshot: series
/// appear in the snapshot's name-sorted order, each preceded by `# HELP`
/// (carrying the original registry name) and `# TYPE` lines. Histograms
/// render as cumulative `_bucket{le="..."}` series over the shared base-2
/// boundaries (HistogramBucketBounds), ending in `le="+Inf"`, plus `_sum`
/// and `_count`.
std::string RenderPrometheusText(const std::vector<MetricSample>& samples);

/// Convenience overload: snapshot + render in one call.
std::string RenderPrometheusText(const MetricsRegistry& registry);

}  // namespace gva::obs

#endif  // GVA_OBS_EXPORT_H_
