#ifndef GVA_OBS_PROGRESS_H_
#define GVA_OBS_PROGRESS_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace gva::obs {

/// One best-so-far improvement during a discord search: after `at_call`
/// distance-function calls the search's best discord distance rose to
/// `distance`. The sequence of samples is the search's convergence
/// trajectory — the paper's efficiency story (Table 1) in curve form.
struct BestSoFarSample {
  uint64_t at_call = 0;
  double distance = 0.0;
};

/// Thread-safe append-only log of best-so-far improvements. Raises are rare
/// (a handful per search round), so one mutex is plenty; the searches call
/// Record only when the shared best actually rose.
class BestSoFarLog {
 public:
  void Record(uint64_t at_call, double distance) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(BestSoFarSample{at_call, distance});
  }

  /// Moves the samples out, ordered by (at_call, distance). With multiple
  /// search threads the interleaving of raises is timing-dependent; sorting
  /// gives callers a canonical monotone-in-calls view.
  std::vector<BestSoFarSample> TakeSorted() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<BestSoFarSample> out = std::move(samples_);
    samples_.clear();
    std::sort(out.begin(), out.end(),
              [](const BestSoFarSample& a, const BestSoFarSample& b) {
                return a.at_call != b.at_call ? a.at_call < b.at_call
                                              : a.distance < b.distance;
              });
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<BestSoFarSample> samples_;
};

}  // namespace gva::obs

#endif  // GVA_OBS_PROGRESS_H_
