#include "obs/recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/strings.h"

namespace gva::obs {

/// One ring of span-edge slots, owned by exactly one writer thread and
/// readable by any dumper. Every field of a slot is a relaxed/acquire
/// atomic: the writer publishes with a per-slot sequence word (0 while a
/// write is in flight, (id << 1) | is_begin once stable), readers load the
/// sequence, then the fields, then the sequence again, and skip the slot
/// on any mismatch. A reader therefore never blocks a recorder and never
/// observes a torn event.
struct FlightRecorder::Ring {
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> category{nullptr};
    std::atomic<uint64_t> ts_us{0};
  };

  explicit Ring(int tid_in) : tid(tid_in) {}

  const int tid;
  /// Events ever written to this ring (the next event's 0-based id).
  std::atomic<uint64_t> head{0};
  Slot slots[kFlightSlotsPerThread];
};

namespace {

/// A consistent copy of one slot, taken under the sequence protocol.
struct EventCopy {
  const char* name;
  const char* category;
  uint64_t ts_us;
  bool is_begin;
};

/// Scratch for one ring's worth of collection + begin/end matching. The
/// signal path uses a statically allocated instance (no malloc in a
/// handler); the normal path heap-allocates its own per call.
struct DumpScratch {
  EventCopy events[kFlightSlotsPerThread];
  uint32_t stack[kFlightSlotsPerThread];
};

/// Statically initialized (no magic-static guard — a guard could block
/// inside a signal handler) scratch + one-dumper-at-a-time latch for the
/// signal path.
DumpScratch g_signal_scratch;
std::atomic_flag g_signal_dump_lock = ATOMIC_FLAG_INIT;

/// Copies the retained, still-consistent slots of `ring` into `out`
/// (capacity kFlightSlotsPerThread) in chronological order. Slots
/// overwritten or mid-write during the walk are skipped.
size_t CollectRing(const FlightRecorder::Ring& ring, EventCopy* out) {
  const uint64_t head = ring.head.load(std::memory_order_acquire);
  const uint64_t oldest =
      head > kFlightSlotsPerThread ? head - kFlightSlotsPerThread : 0;
  size_t n = 0;
  for (uint64_t i = oldest; i < head; ++i) {
    const FlightRecorder::Ring::Slot& slot =
        ring.slots[i % kFlightSlotsPerThread];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if ((seq >> 1) != i + 1) {
      continue;  // overwritten by a newer event, or write in flight
    }
    EventCopy e;
    e.name = slot.name.load(std::memory_order_relaxed);
    e.category = slot.category.load(std::memory_order_relaxed);
    e.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    e.is_begin = (seq & 1) != 0;
    if (slot.seq.load(std::memory_order_acquire) != seq ||
        e.name == nullptr) {
      continue;  // torn: the writer lapped us mid-copy
    }
    out[n++] = e;
  }
  return n;
}

/// Folds a ring's chronological begin/end events into Chrome "X" complete
/// events via a per-thread LIFO match (RAII spans nest, so LIFO is exact).
/// A begin with no end by dump time is closed at `now_us` (the span is
/// still running); an end whose begin was overwritten by wraparound is
/// dropped — its start is unknowable.
template <typename Emitter>
void EmitMatched(const EventCopy* events, size_t n, int tid, uint64_t now_us,
                 uint32_t* stack, Emitter& emit) {
  size_t depth = 0;
  for (size_t i = 0; i < n; ++i) {
    if (events[i].is_begin) {
      stack[depth++] = static_cast<uint32_t>(i);
      continue;
    }
    if (depth == 0) {
      continue;
    }
    const EventCopy& begin = events[stack[--depth]];
    const uint64_t end_ts = events[i].ts_us;
    emit.Event(begin.name, begin.category, tid, begin.ts_us,
               end_ts >= begin.ts_us ? end_ts - begin.ts_us : 0);
  }
  for (size_t d = 0; d < depth; ++d) {
    const EventCopy& begin = events[stack[d]];
    emit.Event(begin.name, begin.category, tid, begin.ts_us,
               now_us >= begin.ts_us ? now_us - begin.ts_us : 0);
  }
}

/// Emits trace events into a growing string (the allocating path).
class StringEmitter {
 public:
  explicit StringEmitter(std::string& out) : out_(out) {}
  void Event(const char* name, const char* category, int tid, uint64_t ts,
             uint64_t dur) {
    out_ += StrFormat(
        "%s  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
        "\"tid\": %d, \"ts\": %llu, \"dur\": %llu}",
        first_ ? "" : ",\n", name, category, tid,
        static_cast<unsigned long long>(ts),
        static_cast<unsigned long long>(dur));
    first_ = false;
  }

 private:
  std::string& out_;
  bool first_ = true;
};

/// Emits trace events straight to a file descriptor with hand-rolled
/// formatting — the async-signal-safe path (write(2) is the only call).
class FdEmitter {
 public:
  explicit FdEmitter(int fd) : fd_(fd) {}

  void Raw(const char* text) {
    size_t length = 0;
    while (text[length] != '\0') {
      ++length;
    }
    WriteAll(text, length);
  }

  void Event(const char* name, const char* category, int tid, uint64_t ts,
             uint64_t dur) {
    char buf[kCap];
    size_t pos = 0;
    if (!first_) {
      pos = Append(buf, pos, ",\n");
    }
    first_ = false;
    pos = Append(buf, pos, "  {\"name\": \"");
    pos = Append(buf, pos, name);
    pos = Append(buf, pos, "\", \"cat\": \"");
    pos = Append(buf, pos, category);
    pos = Append(buf, pos, "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ");
    pos = AppendU64(buf, pos, static_cast<uint64_t>(tid < 0 ? 0 : tid));
    pos = Append(buf, pos, ", \"ts\": ");
    pos = AppendU64(buf, pos, ts);
    pos = Append(buf, pos, ", \"dur\": ");
    pos = AppendU64(buf, pos, dur);
    pos = Append(buf, pos, "}");
    WriteAll(buf, pos);
  }

 private:
  static constexpr size_t kCap = 320;

  static size_t Append(char* buf, size_t pos, const char* text) {
    while (*text != '\0' && pos < kCap) {
      buf[pos++] = *text++;
    }
    return pos;
  }

  static size_t AppendU64(char* buf, size_t pos, uint64_t value) {
    char digits[20];
    size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + value % 10);
      value /= 10;
    } while (value != 0);
    while (n > 0 && pos < kCap) {
      buf[pos++] = digits[--n];
    }
    return pos;
  }

  void WriteAll(const char* data, size_t size) {
    size_t off = 0;
    while (off < size) {
      const ssize_t written = ::write(fd_, data + off, size - off);
      if (written <= 0) {
        return;  // best effort: a failing fd must not abort the dump
      }
      off += static_cast<size_t>(written);
    }
  }

  const int fd_;
  bool first_ = true;
};

}  // namespace

FlightRecorder::FlightRecorder()
    : origin_(std::chrono::steady_clock::now()) {
  for (std::atomic<Ring*>& ring : rings_) {
    ring.store(nullptr, std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint64_t FlightRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  // One ring per thread per process: the recorder is a process-wide
  // singleton (the constructor is private), so a plain thread_local works.
  thread_local Ring* ring = nullptr;
  thread_local bool exhausted = false;
  if (ring != nullptr || exhausted) {
    return ring;
  }
  const size_t index = ring_count_.fetch_add(1, std::memory_order_relaxed);
  if (index >= kMaxFlightThreads) {
    exhausted = true;  // over budget: this thread records nothing, forever
    return nullptr;
  }
  ring = new Ring(static_cast<int>(index));
  rings_[index].store(ring, std::memory_order_release);
  return ring;
}

void FlightRecorder::RecordBegin(const char* name, const char* category) {
  Ring* ring = RingForThisThread();
  if (ring == nullptr) {
    return;
  }
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  Ring::Slot& slot = ring->slots[h % kFlightSlotsPerThread];
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.category.store(category, std::memory_order_relaxed);
  slot.ts_us.store(NowMicros(), std::memory_order_relaxed);
  slot.seq.store(((h + 1) << 1) | 1, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::RecordEnd(const char* name) {
  Ring* ring = RingForThisThread();
  if (ring == nullptr) {
    return;
  }
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  Ring::Slot& slot = ring->slots[h % kFlightSlotsPerThread];
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.category.store("gva", std::memory_order_relaxed);
  slot.ts_us.store(NowMicros(), std::memory_order_relaxed);
  slot.seq.store((h + 1) << 1, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

std::string FlightRecorder::ToJson() const {
  const uint64_t now = NowMicros();
  auto scratch = std::make_unique<DumpScratch>();
  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  StringEmitter emit(json);
  const size_t rings =
      std::min(ring_count_.load(std::memory_order_acquire), kMaxFlightThreads);
  for (size_t r = 0; r < rings; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;  // registration in flight on another thread
    }
    const size_t n = CollectRing(*ring, scratch->events);
    EmitMatched(scratch->events, n, ring->tid, now, scratch->stack, emit);
  }
  json += "\n]}\n";
  return json;
}

Status FlightRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open flight file '" + path + "'");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to flight file '" + path + "'");
  }
  return Status::Ok();
}

void FlightRecorder::DumpToFd(int fd) const {
  if (g_signal_dump_lock.test_and_set(std::memory_order_acquire)) {
    return;  // a dump is already in flight (e.g. two threads crashed)
  }
  const uint64_t now = NowMicros();
  FdEmitter emit(fd);
  emit.Raw("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  const size_t rings =
      std::min(ring_count_.load(std::memory_order_acquire), kMaxFlightThreads);
  for (size_t r = 0; r < rings; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;
    }
    const size_t n = CollectRing(*ring, g_signal_scratch.events);
    EmitMatched(g_signal_scratch.events, n, ring->tid, now,
                g_signal_scratch.stack, emit);
  }
  emit.Raw("\n]}\n");
  g_signal_dump_lock.clear(std::memory_order_release);
}

size_t FlightRecorder::threads_seen() const {
  return std::min(ring_count_.load(std::memory_order_acquire),
                  kMaxFlightThreads);
}

uint64_t FlightRecorder::events_recorded() const {
  uint64_t total = 0;
  const size_t rings = threads_seen();
  for (size_t r = 0; r < rings; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring != nullptr) {
      total += ring->head.load(std::memory_order_relaxed);
    }
  }
  return total;
}

namespace {

/// The fatal-signal dump. Async-signal-safe by construction: open(2),
/// write(2) (inside DumpToFd), close(2), and raise(2) only — the
/// signal-safety lint rule (tools/lint/gva_lint.py) machine-checks that
/// no allocation, stdio, or lock ever creeps in here.
void FlightSignalHandler(int signum) {
  const int fd =
      ::open("gva_flight.json", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    FlightRecorder::Global().DumpToFd(fd);
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition before this handler ran,
  // so re-raising terminates the process with the original signal.
  ::raise(signum);
}

}  // namespace

void InstallFlightSignalHandler() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) {
    return;
  }
  // Force the recorder's construction here, in normal context: the
  // handler must never be the first caller of Global() (a magic-static
  // guard can block inside a signal).
  FlightRecorder::Global();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FlightSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = static_cast<int>(SA_RESETHAND);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS}) {
    sigaction(sig, &action, nullptr);
  }
}

}  // namespace gva::obs
