#ifndef GVA_OBS_RECORDER_H_
#define GVA_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace gva::obs {

/// Fixed per-thread byte budget of the flight recorder's ring. 64 KiB at
/// 32 bytes per event slot keeps the last ~2048 span begin/end events per
/// thread — hours of stage-granular history at the repo's span density.
inline constexpr size_t kFlightBytesPerThread = 64 * 1024;

/// Event slots per ring (derived; each slot is four 8-byte atomic words).
inline constexpr size_t kFlightSlotsPerThread = kFlightBytesPerThread / 32;

/// Upper bound on distinct recording threads. Rings are allocated on a
/// thread's first span and intentionally never freed (a crashed thread's
/// history must survive for the post-mortem dump), so worst-case retained
/// memory is kMaxFlightThreads * kFlightBytesPerThread = 16 MiB.
inline constexpr size_t kMaxFlightThreads = 256;

/// Always-on span flight recorder: every ScopedSpan writes begin/end
/// events into a lock-free per-thread ring buffer, even when the tracer
/// (--trace) is off. The ring holds the most recent events only, so the
/// steady-state cost is a bounded memory footprint and a few relaxed
/// atomic stores plus one clock read per span edge — no locks, no
/// allocation after a thread's first span.
///
/// Dumps can happen at any moment (the /flightz telemetry endpoint, or a
/// fatal-signal handler): readers walk the rings with a per-slot sequence
/// protocol (seq, fields, seq re-check) so a concurrently overwritten slot
/// is skipped rather than torn. Begin/end events are matched per thread
/// into Chrome trace "X" complete events; a span still open at dump time
/// gets its end synthesized at "now", and an end whose begin has been
/// overwritten by ring wraparound is dropped (its start is unknowable).
///
/// The signal path (DumpToFd) is async-signal-safe: it formats into
/// static scratch with hand-rolled integer conversion and emits through
/// write(2) only — no malloc, no stdio, no locks.
class FlightRecorder {
 public:
  /// Opaque per-thread ring; defined in recorder.cc (public so the file's
  /// internal dump helpers can take it by reference).
  struct Ring;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every ScopedSpan feeds.
  static FlightRecorder& Global();

  /// Appends a span-begin event for the calling thread. `name` and
  /// `category` must be string literals (slots keep the pointer).
  void RecordBegin(const char* name, const char* category);

  /// Appends the matching span-end event for the calling thread.
  void RecordEnd(const char* name);

  /// Microseconds since the recorder's origin (process start).
  uint64_t NowMicros() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}) of every ring's
  /// retained history, begin/end pairs folded into "X" events and open
  /// spans closed at now. Never blocks recorders.
  std::string ToJson() const;

  /// ToJson() to a file. Returns the first I/O error.
  Status WriteJson(const std::string& path) const;

  /// Async-signal-safe dump of the same JSON document to `fd` via
  /// write(2). Intended for fatal-signal handlers; callable from normal
  /// context too (tests, /flightz fallbacks).
  void DumpToFd(int fd) const;

  /// Rings ever registered (threads that recorded at least one event).
  size_t threads_seen() const;

  /// Total events ever written across all rings (monotonic; not bounded
  /// by ring capacity).
  uint64_t events_recorded() const;

 private:
  FlightRecorder();

  Ring* RingForThisThread();

  std::chrono::steady_clock::time_point origin_;
  std::atomic<size_t> ring_count_{0};
  std::atomic<Ring*> rings_[kMaxFlightThreads];
};

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that write the global
/// recorder's retained history to ./gva_flight.json (write(2) only — see
/// DESIGN.md §12 for the signal-safety rules), then re-raise so the
/// process still dies with the original signal. Idempotent.
void InstallFlightSignalHandler();

}  // namespace gva::obs

#endif  // GVA_OBS_RECORDER_H_
