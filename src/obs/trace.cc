#include "obs/trace.h"

#include <cstdio>

#include "obs/recorder.h"
#include "util/strings.h"

namespace gva::obs {

namespace {

std::atomic<bool> g_stage_timing{false};

}  // namespace

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

void Tracer::Enable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    tids_.clear();
    open_.clear();
    origin_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

int Tracer::TidOfCurrentThread() {
  const std::thread::id id = std::this_thread::get_id();
  auto it = tids_.find(id);
  if (it == tids_.end()) {
    it = tids_.emplace(id, static_cast<int>(tids_.size())).first;
  }
  return it->second;
}

void Tracer::RecordComplete(const char* name, const char* category,
                            uint64_t ts_us, uint64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{name, category, ts_us, dur_us, TidOfCurrentThread()});
}

void Tracer::BeginOpen(const char* name, const char* category,
                       uint64_t ts_us) {
  std::lock_guard<std::mutex> lock(mu_);
  TidOfCurrentThread();  // register the tid while we can (calling thread)
  open_[std::this_thread::get_id()].push_back(OpenSpan{name, category, ts_us});
}

void Tracer::CompleteOpen(uint64_t end_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(std::this_thread::get_id());
  if (it == open_.end() || it->second.empty()) {
    return;
  }
  const OpenSpan span = it->second.back();
  it->second.pop_back();
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;  // capture ended while the span was open
  }
  const uint64_t dur = end_us >= span.ts_us ? end_us - span.ts_us : 0;
  events_.push_back(TraceEvent{span.name, span.category, span.ts_us, dur,
                               TidOfCurrentThread()});
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t Tracer::open_span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [tid, stack] : open_) {
    n += stack.size();
  }
  return n;
}

std::string Tracer::ToJson() const {
  const uint64_t now_us = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&json, &first](const char* name, const char* category, int tid,
                              uint64_t ts, uint64_t dur) {
    json += StrFormat(
        "%s  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
        "\"tid\": %d, \"ts\": %llu, \"dur\": %llu}",
        first ? "" : ",\n", name, category, tid,
        static_cast<unsigned long long>(ts),
        static_cast<unsigned long long>(dur));
    first = false;
  };
  for (const TraceEvent& e : events_) {
    emit(e.name, e.category, e.tid, e.ts_us, e.dur_us);
  }
  // Spans still open at serialization time: synthesize their end at "now"
  // so a mid-run dump (telemetry scrape, crash) is valid, parseable JSON.
  for (const auto& [thread_id, stack] : open_) {
    const auto tid_it = tids_.find(thread_id);
    const int tid = tid_it == tids_.end() ? 0 : tid_it->second;
    for (const OpenSpan& span : stack) {
      emit(span.name, span.category, tid, span.ts_us,
           now_us >= span.ts_us ? now_us - span.ts_us : 0);
    }
  }
  json += "\n]}\n";
  return json;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  tids_.clear();
  open_.clear();
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

bool StageTimingEnabled() {
  return g_stage_timing.load(std::memory_order_relaxed);
}

void SetStageTimingEnabled(bool enabled) {
  g_stage_timing.store(enabled, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if constexpr (kEnabled) {
    FlightRecorder::Global().RecordBegin(name, category);
  }
  tracing_ = GlobalTracer().enabled();
  timing_ = StageTimingEnabled();
  if (tracing_ || timing_) {
    start_us_ = GlobalTracer().NowMicros();
  }
  if (tracing_) {
    GlobalTracer().BeginOpen(name_, category_, start_us_);
  }
}

ScopedSpan::~ScopedSpan() {
  if constexpr (kEnabled) {
    FlightRecorder::Global().RecordEnd(name_);
  }
  if (!tracing_ && !timing_) {
    return;
  }
  const uint64_t end_us = GlobalTracer().NowMicros();
  const uint64_t dur = end_us >= start_us_ ? end_us - start_us_ : 0;
  if (tracing_) {
    GlobalTracer().CompleteOpen(end_us);
  }
  if (timing_) {
    MetricsRegistry& metrics = GlobalMetrics();
    metrics.counter(std::string("stage.") + name_ + ".us").Add(dur);
    metrics.counter(std::string("stage.") + name_ + ".count").Add(1);
  }
}

}  // namespace gva::obs
