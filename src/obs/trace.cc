#include "obs/trace.h"

#include <cstdio>

#include "util/strings.h"

namespace gva::obs {

namespace {

std::atomic<bool> g_stage_timing{false};

}  // namespace

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

void Tracer::Enable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    tids_.clear();
    origin_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

int Tracer::TidOfCurrentThread() {
  const std::thread::id id = std::this_thread::get_id();
  auto it = tids_.find(id);
  if (it == tids_.end()) {
    it = tids_.emplace(id, static_cast<int>(tids_.size())).first;
  }
  return it->second;
}

void Tracer::RecordComplete(const char* name, const char* category,
                            uint64_t ts_us, uint64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{name, category, ts_us, dur_us, TidOfCurrentThread()});
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    json += StrFormat(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
        "\"tid\": %d, \"ts\": %llu, \"dur\": %llu}%s\n",
        e.name, e.category, e.tid, static_cast<unsigned long long>(e.ts_us),
        static_cast<unsigned long long>(e.dur_us),
        i + 1 < events_.size() ? "," : "");
  }
  json += "]}\n";
  return json;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  tids_.clear();
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

bool StageTimingEnabled() {
  return g_stage_timing.load(std::memory_order_relaxed);
}

void SetStageTimingEnabled(bool enabled) {
  g_stage_timing.store(enabled, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  tracing_ = GlobalTracer().enabled();
  timing_ = StageTimingEnabled();
  if (tracing_ || timing_) {
    start_us_ = GlobalTracer().NowMicros();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!tracing_ && !timing_) {
    return;
  }
  const uint64_t end_us = GlobalTracer().NowMicros();
  const uint64_t dur = end_us >= start_us_ ? end_us - start_us_ : 0;
  if (tracing_ && GlobalTracer().enabled()) {
    GlobalTracer().RecordComplete(name_, category_, start_us_, dur);
  }
  if (timing_) {
    MetricsRegistry& metrics = GlobalMetrics();
    metrics.counter(std::string("stage.") + name_ + ".us").Add(dur);
    metrics.counter(std::string("stage.") + name_ + ".count").Add(1);
  }
}

}  // namespace gva::obs
