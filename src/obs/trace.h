#ifndef GVA_OBS_TRACE_H_
#define GVA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace gva::obs {

/// One completed span in Chrome trace_event "complete" form ("ph": "X").
struct TraceEvent {
  const char* name;  ///< static string (span sites use literals)
  const char* category;
  uint64_t ts_us;   ///< start, microseconds since the tracer's origin
  uint64_t dur_us;  ///< duration in microseconds
  int tid;          ///< dense per-tracer thread index (0 = first seen)
};

/// Collects spans and serializes them as Chrome trace-event JSON, loadable
/// in chrome://tracing and Perfetto. Disabled by default: ScopedSpan checks
/// one relaxed atomic and does nothing else, so idle tracing costs a load
/// per span site. While enabled, each completed span takes a short mutex
/// hold; spans are stage/round/chunk-granular (never per distance call), so
/// contention is negligible next to the work they bracket.
///
/// Nesting requires no bookkeeping: the viewers reconstruct the hierarchy
/// from containment of [ts, ts+dur) intervals within a thread track, so
/// nested ScopedSpans on one thread render as nested slices.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a capture: clears prior events and re-anchors the origin so
  /// timestamps start near zero.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the capture origin.
  uint64_t NowMicros() const;

  /// Appends one completed span for the calling thread.
  void RecordComplete(const char* name, const char* category, uint64_t ts_us,
                      uint64_t dur_us);

  /// Marks a span as begun (not yet ended) on the calling thread. A later
  /// CompleteOpen pops it — LIFO, since RAII spans nest. Spans still open
  /// when ToJson() runs are serialized with their end synthesized at now,
  /// so a dump taken mid-span is valid JSON instead of losing the span.
  void BeginOpen(const char* name, const char* category, uint64_t ts_us);

  /// Pops the calling thread's innermost open span and (if the tracer is
  /// still enabled) records it as complete, ending at `end_us`. No-op when
  /// the thread has no open span (e.g. Enable() raced the span's start).
  void CompleteOpen(uint64_t end_us);

  size_t event_count() const;

  /// Spans begun but not yet completed, across all threads.
  size_t open_span_count() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome
  /// trace-event JSON object form.
  std::string ToJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  void Clear();

 private:
  struct OpenSpan {
    const char* name;
    const char* category;
    uint64_t ts_us;
  };

  int TidOfCurrentThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> tids_;
  /// Per-thread stacks of spans whose destructor has not run yet.
  std::map<std::thread::id, std::vector<OpenSpan>> open_;
};

/// The process-wide tracer every GVA_OBS_SPAN site records into.
Tracer& GlobalTracer();

/// Process-wide switch for stage wall-time metrics: when on, ScopedSpan
/// also accumulates its duration into GlobalMetrics() counters
/// `stage.<name>.us` / `stage.<name>.count`. Enabled by ObsSession when a
/// metrics export was requested; off by default so plain library use never
/// touches the clock.
bool StageTimingEnabled();
void SetStageTimingEnabled(bool enabled);

/// RAII span: captures the start time if the global tracer (or stage
/// timing) is active when constructed, and records on destruction. `name`
/// and `category` must be string literals — the tracer's capture and the
/// always-on flight recorder (obs/recorder.h), which every span also feeds
/// in obs-enabled builds, both keep the pointers.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "gva");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  uint64_t start_us_ = 0;
  bool tracing_ = false;
  bool timing_ = false;
};

}  // namespace gva::obs

/// Span convenience macro: one relaxed load when observability is idle;
/// compiles to nothing when the library is built with -DGVA_OBS=OFF.
#define GVA_OBS_CONCAT_INNER(a, b) a##b
#define GVA_OBS_CONCAT(a, b) GVA_OBS_CONCAT_INNER(a, b)
#ifdef GVA_OBS_DISABLED
#define GVA_OBS_SPAN(name) \
  do {                     \
  } while (false)
#else
#define GVA_OBS_SPAN(name) \
  ::gva::obs::ScopedSpan GVA_OBS_CONCAT(gva_obs_span_, __LINE__)(name)
#endif

#endif  // GVA_OBS_TRACE_H_
