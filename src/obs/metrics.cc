#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace gva::obs {

size_t HistogramBucketFor(double value) {
  if (!(value >= 1.0)) {  // negatives, NaN, and [0, 1) all land in bucket 0
    return 0;
  }
  // floor(log2(value)) + 1 without libm: count the exponent by halving.
  size_t bucket = 1;
  while (bucket < kHistogramBuckets - 1 && value >= 2.0) {
    value *= 0.5;
    ++bucket;
  }
  return bucket;
}

std::pair<double, double> HistogramBucketBounds(size_t i) {
  const double inf = std::numeric_limits<double>::infinity();
  if (i == 0) {
    return {0.0, 1.0};
  }
  const double lower = std::ldexp(1.0, static_cast<int>(i) - 1);
  if (i >= kHistogramBuckets - 1) {
    return {lower, inf};
  }
  return {lower, std::ldexp(1.0, static_cast<int>(i))};
}

double HistogramQuantile(
    const std::vector<std::pair<size_t, uint64_t>>& buckets, double q) {
  uint64_t total = 0;
  for (const auto& [index, count] : buckets) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // The sample of rank ceil(q * total) (1-based), i.e. the smallest value
  // v such that at least q of the mass is <= v's bucket.
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (const auto& [index, count] : buckets) {
    cumulative += count;
    if (static_cast<double>(cumulative) >= target) {
      const auto [lower, upper] = HistogramBucketBounds(index);
      if (std::isinf(upper)) {
        return lower;  // unbounded tail: the bound is the honest answer
      }
      // Linear interpolation: how far into this bucket's count the target
      // rank lands scales across the bucket's width.
      const double before =
          static_cast<double>(cumulative) - static_cast<double>(count);
      const double within =
          count > 0 ? (target - before) / static_cast<double>(count) : 0.0;
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
  }
  return HistogramBucketBounds(buckets.back().first).second;
}

double HistogramQuantile(const MetricSample& sample, double q) {
  return HistogramQuantile(sample.histogram_buckets, q);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.counter_value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.gauge_value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.histogram_count = h->count();
    s.histogram_sum = h->sum();
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t n = h->bucket(i);
      if (n > 0) {
        s.histogram_buckets.emplace_back(i, n);
      }
    }
    out.push_back(std::move(s));
  }
  // The three maps are each sorted; a final sort merges them by name.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string json = "{\n  \"metrics\": {\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    json += StrFormat("    \"%s\": ", s.name.c_str());
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        json += StrFormat("%llu",
                          static_cast<unsigned long long>(s.counter_value));
        break;
      case MetricSample::Kind::kGauge:
        json += StrFormat("%lld", static_cast<long long>(s.gauge_value));
        break;
      case MetricSample::Kind::kHistogram: {
        json += StrFormat(
            "{\"count\": %llu, \"sum\": %.6f, \"buckets\": {",
            static_cast<unsigned long long>(s.histogram_count),
            s.histogram_sum);
        for (size_t b = 0; b < s.histogram_buckets.size(); ++b) {
          json += StrFormat(
              "%s\"%zu\": %llu", b == 0 ? "" : ", ",
              s.histogram_buckets[b].first,
              static_cast<unsigned long long>(s.histogram_buckets[b].second));
        }
        json += "}}";
        break;
      }
    }
    json += i + 1 < samples.size() ? ",\n" : "\n";
  }
  json += "  }\n}\n";
  return json;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace gva::obs
