#ifndef GVA_OBS_SESSION_H_
#define GVA_OBS_SESSION_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gva::obs {

/// RAII capture window for the process-wide observability surfaces: turns
/// on the global tracer and/or stage-time metrics on construction and, on
/// destruction, writes the requested export files. The CLI and the bench
/// binaries create one of these from their --trace/--metrics flags; library
/// code never does (it only hosts instrumentation points).
class ObsSession {
 public:
  struct Options {
    /// Chrome trace-event JSON output path; empty disables tracing.
    std::string trace_path;
    /// Metrics JSON output path; empty disables the metrics export (stage
    /// timing is enabled whenever this is set).
    std::string metrics_path;
    /// Announce written files on stdout.
    bool announce = true;
  };

  explicit ObsSession(Options options);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool tracing() const { return !options_.trace_path.empty(); }
  bool metrics() const { return !options_.metrics_path.empty(); }
  bool active() const { return tracing() || metrics(); }

  /// Writes the export files now (also called by the destructor; calling
  /// twice overwrites with fresher data). Returns the first error.
  Status Flush();

 private:
  Options options_;
  bool flushed_ = false;
};

}  // namespace gva::obs

#endif  // GVA_OBS_SESSION_H_
