#ifndef GVA_OBS_METRICS_H_
#define GVA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gva::obs {

/// Compile-time observability switch. The default build keeps metrics on:
/// every primitive is a relaxed atomic, cheap enough for the per-distance-
/// call hot path (see bench/kernel_bench's obs-overhead row). Configuring
/// with -DGVA_OBS=OFF defines GVA_OBS_DISABLED and swaps every primitive
/// for an empty no-op type, so instrumented code compiles to nothing — no
/// atomics, no loads, no stores. Both variants of each primitive are always
/// compiled (they are templates), which is how the unit tests pin down the
/// disabled path's properties without a second build tree.
inline constexpr bool kEnabled =
#ifdef GVA_OBS_DISABLED
    false;
#else
    true;
#endif

/// Monotonic counter. Enabled: one relaxed fetch_add per Add. Disabled:
/// empty type, all members constexpr no-ops.
template <bool Enabled>
class BasicCounter;

template <>
class BasicCounter<true> {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Must not race with in-flight Add() calls.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

template <>
class BasicCounter<false> {
 public:
  constexpr void Add(uint64_t = 1) {}
  constexpr uint64_t value() const { return 0; }
  constexpr void Reset() {}
};

using Counter = BasicCounter<kEnabled>;

/// Last-write-wins gauge (signed, for depths/levels that go up and down).
template <bool Enabled>
class BasicGauge;

template <>
class BasicGauge<true> {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Atomically raises the gauge to `v` if larger (high-water marks).
  void RaiseTo(int64_t v) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current && !value_.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

template <>
class BasicGauge<false> {
 public:
  constexpr void Set(int64_t) {}
  constexpr void Add(int64_t) {}
  constexpr void RaiseTo(int64_t) {}
  constexpr int64_t value() const { return 0; }
  constexpr void Reset() {}
};

using Gauge = BasicGauge<kEnabled>;

/// Fixed-bucket histogram for latencies (microseconds) and distances.
/// Buckets are base-2 geometric and identical for every histogram ever
/// created, so dashboards and diffs can rely on stable boundaries:
/// bucket 0 holds values < 1, bucket i (1 <= i < kBuckets-1) holds
/// [2^(i-1), 2^i), and the last bucket holds everything >= 2^(kBuckets-2).
/// Negative and NaN values are clamped into bucket 0.
template <bool Enabled>
class BasicHistogram;

inline constexpr size_t kHistogramBuckets = 32;

/// The shared bucketization rule. Pure function of the value, exposed so
/// tests (and exporters) can assert the boundaries directly.
size_t HistogramBucketFor(double value);

/// Inclusive-exclusive [lower, upper) bounds of bucket `i` under the rule
/// above; the last bucket's upper bound is +infinity.
std::pair<double, double> HistogramBucketBounds(size_t i);

template <>
class BasicHistogram<true> {
 public:
  void Record(double value) {
    buckets_[HistogramBucketFor(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed double add via CAS; sums are diagnostic, not load-bearing.
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
    }
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Must not race with in-flight Record() calls.
  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

template <>
class BasicHistogram<false> {
 public:
  constexpr void Record(double) {}
  constexpr uint64_t count() const { return 0; }
  constexpr double sum() const { return 0.0; }
  constexpr uint64_t bucket(size_t) const { return 0; }
  constexpr void Reset() {}
};

using Histogram = BasicHistogram<kEnabled>;

/// Quantile estimate (q in [0, 1]) from a histogram's sparse
/// (bucket index, count) pairs under the shared base-2 bucketization:
/// the answer is the bucket whose cumulative count crosses q of the total,
/// linearly interpolated across that bucket's [lower, upper) bounds. The
/// unbounded last bucket yields its lower bound (nothing to interpolate
/// against). Returns 0.0 for an empty histogram. Exact to within one
/// bucket's width — the right tool for p50/p95/p99 summary columns, not
/// for sub-bucket precision claims.
double HistogramQuantile(
    const std::vector<std::pair<size_t, uint64_t>>& buckets, double q);

/// Point-in-time copy of one metric, for export.
struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  uint64_t histogram_count = 0;
  double histogram_sum = 0.0;
  /// Non-empty buckets only, as (bucket index, count) pairs.
  std::vector<std::pair<size_t, uint64_t>> histogram_buckets;
};

/// Convenience overload over a snapshot sample's sparse buckets.
double HistogramQuantile(const MetricSample& sample, double q);

/// Thread-safe named registry. Lookup (counter/gauge/histogram) takes a
/// mutex and is meant for setup paths; the returned references are stable
/// for the registry's lifetime, so hot loops resolve their handle once and
/// then pay only the primitive's relaxed-atomic cost. Metric names are
/// dot-separated lowercase paths: <component>.<stage-or-object>.<measure>
/// with unit suffixes where meaningful (`.us` wall-clock microseconds,
/// `.count` plain totals) — e.g. `stage.sax.discretize.us`,
/// `search.rra.calls.abandoned`, `pool.tasks.executed`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Snapshot of every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Machine-readable export: {"metrics": {"<name>": <value-or-object>}}.
  /// Counters export as integers, gauges as integers, histograms as
  /// {"count", "sum", "buckets": {"<index>": n}}.
  std::string ToJson() const;

  /// Zeroes every counter and gauge and forgets every histogram's samples.
  /// Must not race with concurrent Add/Record on the same metrics.
  void Reset();

 private:
  mutable std::mutex mu_;
  // node-based maps: values never move, so handed-out references stay valid.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry the library's instrumentation points write to.
/// Always present; reading it is only interesting while an ObsSession (or a
/// test) is collecting.
MetricsRegistry& GlobalMetrics();

}  // namespace gva::obs

#endif  // GVA_OBS_METRICS_H_
