#ifndef GVA_DATASETS_POWER_DEMAND_H_
#define GVA_DATASETS_POWER_DEMAND_H_

#include <cstdint>
#include <vector>

#include "datasets/labeled_series.h"

namespace gva {

/// Parameters for the synthetic power-demand generator — the stand-in for
/// the Dutch research facility dataset (35,040 points, 1997; paper Figures
/// 3-4). A year is `weeks` weeks of `samples_per_day` readings; weekdays
/// carry a tall daytime consumption hump, weekends a low flat profile.
/// Holidays are weekdays that behave like weekend days — exactly the
/// anomalies the paper discovers (Queen's Birthday, Liberation Day,
/// Ascension Day).
struct PowerDemandOptions {
  size_t weeks = 52;
  size_t samples_per_day = 96;  // 15-minute readings
  double noise = 0.015;
  /// Absolute day indices (0-based from the first Monday) that behave like
  /// weekend days. Defaults pick a Wednesday, a Monday and a Thursday in
  /// three different spring weeks, mirroring the paper's three holidays.
  std::vector<size_t> holiday_days = {121, 126, 129};
  uint64_t seed = 1997;
};

LabeledSeries MakePowerDemand(const PowerDemandOptions& options = {});

}  // namespace gva

#endif  // GVA_DATASETS_POWER_DEMAND_H_
