#include "datasets/ecg.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace gva {

namespace {

double Bump(double t, double center, double width, double amplitude) {
  const double d = (t - center) / width;
  return amplitude * std::exp(-0.5 * d * d);
}

/// Normal beat morphology on t in [0, 1). Wave widths are proportioned like
/// a 250 Hz qtdb beat (QRS roughly a tenth of the cycle) so that the
/// z-normalized shape is tolerant of the small beat-length jitter — narrow
/// spike-like waves would make every beat pair look distant under small
/// misalignment and drown structural anomalies in alignment noise.
double NormalBeat(double t) {
  double v = 0.0;
  v += Bump(t, 0.18, 0.050, 0.15);   // P wave
  v += Bump(t, 0.35, 0.018, -0.12);  // Q
  v += Bump(t, 0.40, 0.028, 1.00);   // R
  v += Bump(t, 0.45, 0.018, -0.20);  // S
  v += Bump(t, 0.62, 0.070, 0.35);   // T wave
  return v;
}

/// Premature-ventricular-contraction-like beat: no P wave, early wide
/// low-amplitude R, depressed ST segment and inverted T.
double AnomalousBeat(double t) {
  double v = 0.0;
  v += Bump(t, 0.32, 0.060, 0.60);   // early, wide, smaller R
  v += Bump(t, 0.44, 0.040, -0.35);  // deep S / depressed ST
  v += Bump(t, 0.62, 0.080, -0.30);  // inverted T
  return v;
}

}  // namespace

LabeledSeries MakeEcg(const EcgOptions& options) {
  Rng rng(options.seed);
  LabeledSeries out;
  out.name = "synthetic-ecg";
  std::vector<double>& values = out.series.mutable_values();
  values.reserve(options.num_beats * options.beat_length);

  for (size_t beat = 0; beat < options.num_beats; ++beat) {
    const bool anomalous =
        std::find(options.anomalous_beats.begin(),
                  options.anomalous_beats.end(),
                  beat) != options.anomalous_beats.end();
    const double jitter =
        1.0 + options.length_jitter * (2.0 * rng.UniformDouble() - 1.0);
    const size_t len = std::max<size_t>(
        8, static_cast<size_t>(
               std::lround(static_cast<double>(options.beat_length) * jitter)));
    const size_t start = values.size();
    const double beat_gain =
        1.0 + options.amplitude_modulation * (2.0 * rng.UniformDouble() - 1.0);
    for (size_t i = 0; i < len; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(len);
      const double base = anomalous ? AnomalousBeat(t) : NormalBeat(t);
      const double global_t = static_cast<double>(start + i);
      const double wander =
          options.baseline_wander *
          std::sin(2.0 * M_PI * global_t /
                   (6.7 * static_cast<double>(options.beat_length)));
      values.push_back(beat_gain * base + wander +
                       rng.Gaussian(0.0, options.noise));
    }
    if (anomalous) {
      out.anomalies.push_back(Interval{start, values.size()});
    }
  }

  out.recommended.window = options.beat_length;
  out.recommended.paa_size = 4;
  out.recommended.alphabet_size = 4;
  out.series.set_name(out.name);
  return out;
}

}  // namespace gva
