#ifndef GVA_DATASETS_TRAJECTORY_H_
#define GVA_DATASETS_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "datasets/labeled_series.h"
#include "hilbert/hilbert.h"

namespace gva {

/// Parameters for the synthetic commute-trajectory generator — the stand-in
/// for the paper's GPS case study (Section 5.1, Figures 7-9). Trips run
/// between a home and a work location over a small set of habitual routes
/// on a unit square; two special trips plant the paper's two anomaly
/// classes:
///  * a detour trip — a unique excursion through otherwise unvisited space
///    (found by the rule-density curve in the paper);
///  * a degraded-fix trip — the habitual route traversed with heavy GPS
///    jitter (the paper's best RRA discord).
struct TrajectoryOptions {
  size_t num_trips = 24;
  /// Nominal samples per trip.
  size_t samples_per_trip = 700;
  /// Trip index taking the unique detour; out-of-range disables it.
  size_t detour_trip = 12;
  /// Trip index travelled with degraded GPS fix; out-of-range disables it.
  size_t noisy_trip = 18;
  /// Standard deviation of the fix-loss jitter (fraction of the unit map).
  double fix_noise = 0.035;
  /// Hilbert curve order (paper: order 8).
  uint32_t hilbert_order = 8;
  uint64_t seed = 88;
};

/// Trajectory dataset: the Hilbert-transformed scalar series (with
/// ground-truth intervals) plus the raw planar track for visualization.
struct TrajectoryData {
  LabeledSeries labeled;
  std::vector<GeoPoint> points;
};

TrajectoryData MakeTrajectory(const TrajectoryOptions& options = {});

}  // namespace gva

#endif  // GVA_DATASETS_TRAJECTORY_H_
