#ifndef GVA_DATASETS_LABELED_SERIES_H_
#define GVA_DATASETS_LABELED_SERIES_H_

#include <string>
#include <vector>

#include "sax/sax_transform.h"
#include "timeseries/interval.h"
#include "timeseries/time_series.h"

namespace gva {

/// A synthetic dataset with ground-truth anomaly annotations and the
/// discretization parameters recommended for it (mirroring the per-dataset
/// parameters of the paper's Table 1, scaled to the synthetic lengths).
struct LabeledSeries {
  TimeSeries series;
  /// Ground-truth anomalous intervals, ascending by start.
  std::vector<Interval> anomalies;
  /// Discretization parameters that suit the dataset's dominant cycle.
  SaxOptions recommended;
  std::string name;
};

}  // namespace gva

#endif  // GVA_DATASETS_LABELED_SERIES_H_
