#ifndef GVA_DATASETS_RESPIRATION_H_
#define GVA_DATASETS_RESPIRATION_H_

#include <cstdint>

#include "datasets/labeled_series.h"

namespace gva {

/// Parameters for the synthetic respiration generator — the stand-in for
/// the NPRS 43/44 nasal-pressure traces (paper Table 1). Breathing is a
/// quasi-sinusoid with slowly drifting amplitude; the anomaly is a
/// regime change to slow, shallow breathing for a few breaths (the
/// stage-II-sleep transition the original annotations mark).
struct RespirationOptions {
  size_t length = 4000;
  /// Samples per normal breath.
  double period = 64.0;
  double noise = 0.01;
  /// Start of the anomalous regime, in samples.
  size_t anomaly_start = 2500;
  /// Length of the anomalous regime, in samples.
  size_t anomaly_length = 300;
  uint64_t seed = 43;
};

LabeledSeries MakeRespiration(const RespirationOptions& options = {});

}  // namespace gva

#endif  // GVA_DATASETS_RESPIRATION_H_
