#include "datasets/respiration.h"

#include <cmath>

#include "util/rng.h"

namespace gva {

LabeledSeries MakeRespiration(const RespirationOptions& options) {
  Rng rng(options.seed);
  LabeledSeries out;
  out.name = "synthetic-respiration";
  std::vector<double>& values = out.series.mutable_values();
  values.reserve(options.length);

  const size_t a0 = options.anomaly_start;
  const size_t a1 = options.anomaly_start + options.anomaly_length;
  double phase = 0.0;
  for (size_t i = 0; i < options.length; ++i) {
    const bool anomalous = i >= a0 && i < a1;
    // Slow, shallow breathing inside the anomalous regime; phase is
    // integrated so the frequency change is continuous.
    const double period = anomalous ? options.period * 2.3 : options.period;
    phase += 2.0 * M_PI / period;
    const double drift =
        1.0 + 0.08 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                              (options.period * 13.0));
    const double amplitude = (anomalous ? 0.45 : 1.0) * drift;
    values.push_back(amplitude * std::sin(phase) +
                     rng.Gaussian(0.0, options.noise));
  }
  if (options.anomaly_length > 0 && a1 <= options.length) {
    out.anomalies.push_back(Interval{a0, a1});
  }

  out.recommended.window = static_cast<size_t>(options.period * 2.0);
  out.recommended.paa_size = 5;
  out.recommended.alphabet_size = 4;
  out.series.set_name(out.name);
  return out;
}

}  // namespace gva
