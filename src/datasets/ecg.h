#ifndef GVA_DATASETS_ECG_H_
#define GVA_DATASETS_ECG_H_

#include <cstdint>
#include <vector>

#include "datasets/labeled_series.h"

namespace gva {

/// Parameters for the synthetic electrocardiogram generator — the stand-in
/// for the paper's PhysioNet qtdb/MIT-BIH excerpts. A normal beat is a
/// P-QRS-T morphology built from Gaussian bumps; anomalous beats are
/// premature-ventricular-contraction-like (no P wave, wide early R,
/// inverted T), the same class of subtle one-beat deviation the paper's
/// Figure 2 targets.
struct EcgOptions {
  size_t num_beats = 60;
  /// Nominal samples per beat; per-beat length jitters by +/- jitter
  /// (resting heart-rate variability over a short strip is ~1%).
  size_t beat_length = 120;
  double length_jitter = 0.01;
  double noise = 0.01;
  /// Slow baseline wander (respiration artifact), as an absolute amplitude;
  /// period is several beats. Present in every real recording.
  double baseline_wander = 0.0;
  /// Beat-to-beat R-amplitude modulation, as a fraction.
  double amplitude_modulation = 0.0;
  /// Indices of beats replaced with the anomalous morphology.
  std::vector<size_t> anomalous_beats = {40};
  uint64_t seed = 42;
};

LabeledSeries MakeEcg(const EcgOptions& options = {});

}  // namespace gva

#endif  // GVA_DATASETS_ECG_H_
