#include "datasets/video.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace gva {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Normal draw gesture on t in [0, 1): rest, raise, hold steady, lower.
double NormalCycle(double t) {
  const double raise = Sigmoid((t - 0.25) / 0.03);
  const double lower = Sigmoid((0.75 - t) / 0.03);
  return 0.15 + 0.75 * raise * lower;
}

/// Hesitation gesture: the raise stalls and dips before completing, and the
/// hold level wobbles — structurally unlike every other cycle.
double AnomalousCycle(double t) {
  const double raise = Sigmoid((t - 0.20) / 0.04);
  const double lower = Sigmoid((0.78 - t) / 0.03);
  double v = 0.15 + 0.55 * raise * lower;
  // Mid-gesture fumble: a dip followed by a corrective overshoot.
  const double dip = (t - 0.45) / 0.05;
  v -= 0.28 * std::exp(-0.5 * dip * dip);
  const double overshoot = (t - 0.60) / 0.04;
  v += 0.18 * std::exp(-0.5 * overshoot * overshoot);
  return v;
}

}  // namespace

LabeledSeries MakeVideo(const VideoOptions& options) {
  Rng rng(options.seed);
  LabeledSeries out;
  out.name = "synthetic-video";
  std::vector<double>& values = out.series.mutable_values();
  values.reserve(options.num_cycles * options.cycle_length);

  for (size_t cycle = 0; cycle < options.num_cycles; ++cycle) {
    const bool anomalous =
        std::find(options.anomalous_cycles.begin(),
                  options.anomalous_cycles.end(),
                  cycle) != options.anomalous_cycles.end();
    const double jitter =
        1.0 + options.length_jitter * (2.0 * rng.UniformDouble() - 1.0);
    const size_t len = std::max<size_t>(
        16, static_cast<size_t>(std::lround(
                static_cast<double>(options.cycle_length) * jitter)));
    const size_t start = values.size();
    for (size_t i = 0; i < len; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(len);
      const double base = anomalous ? AnomalousCycle(t) : NormalCycle(t);
      values.push_back(base + rng.Gaussian(0.0, options.noise));
    }
    if (anomalous) {
      out.anomalies.push_back(Interval{start, values.size()});
    }
  }

  out.recommended.window = options.cycle_length;
  out.recommended.paa_size = 5;
  out.recommended.alphabet_size = 3;
  out.series.set_name(out.name);
  return out;
}

}  // namespace gva
