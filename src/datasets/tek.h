#ifndef GVA_DATASETS_TEK_H_
#define GVA_DATASETS_TEK_H_

#include <cstdint>
#include <vector>

#include "datasets/labeled_series.h"

namespace gva {

/// Parameters for the synthetic valve-telemetry generator — the stand-in
/// for the Space Shuttle Marotta valve TEK series (paper Table 1,
/// TEK14/16/17). Each cycle is an energize/de-energize pulse: sharp rise,
/// decaying plateau, sharp drop with undershoot. The anomaly is one cycle
/// with a mid-plateau dropout glitch.
struct TekOptions {
  size_t num_cycles = 20;
  size_t cycle_length = 250;
  /// Kept below the z-normalization flat-window epsilon (0.01): the TEK
  /// traces have long truly-quiet stretches, and noise above the guard
  /// would be amplified by z-normalization into spurious discords.
  double noise = 0.005;
  /// Cycles carrying the plateau glitch.
  std::vector<size_t> anomalous_cycles = {11};
  uint64_t seed = 14;
};

LabeledSeries MakeTek(const TekOptions& options = {});

}  // namespace gva

#endif  // GVA_DATASETS_TEK_H_
