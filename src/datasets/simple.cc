#include "datasets/simple.h"

#include <cmath>

#include "util/rng.h"

namespace gva {

std::vector<double> MakeSine(size_t length, double period, double noise,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    values.push_back(
        std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
        rng.Gaussian(0.0, noise));
  }
  return values;
}

LabeledSeries MakeSineWithAnomaly(size_t length, double period, double noise,
                                  size_t anomaly_start, size_t anomaly_length,
                                  uint64_t seed) {
  Rng rng(seed);
  LabeledSeries out;
  out.name = "sine-with-anomaly";
  std::vector<double>& values = out.series.mutable_values();
  values.reserve(length);
  const size_t a0 = anomaly_start;
  const size_t a1 = anomaly_start + anomaly_length;
  for (size_t i = 0; i < length; ++i) {
    double v;
    if (i >= a0 && i < a1) {
      v = rng.Gaussian(0.0, noise);  // the oscillation flatlines
    } else {
      v = std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
          rng.Gaussian(0.0, noise);
    }
    values.push_back(v);
  }
  if (anomaly_length > 0 && a1 <= length) {
    out.anomalies.push_back(Interval{a0, a1});
  }
  out.recommended.window = static_cast<size_t>(period * 2.0);
  out.recommended.paa_size = 4;
  out.recommended.alphabet_size = 3;
  out.series.set_name(out.name);
  return out;
}

std::vector<double> MakeRandomWalk(size_t length, double step, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(length);
  double position = 0.0;
  for (size_t i = 0; i < length; ++i) {
    position += rng.Gaussian(0.0, step);
    values.push_back(position);
  }
  return values;
}

std::vector<double> MakeNoise(size_t length, double sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    values.push_back(rng.Gaussian(0.0, sigma));
  }
  return values;
}

}  // namespace gva
