#ifndef GVA_DATASETS_VIDEO_H_
#define GVA_DATASETS_VIDEO_H_

#include <cstdint>
#include <vector>

#include "datasets/labeled_series.h"

namespace gva {

/// Parameters for the synthetic "video" generator — the stand-in for the
/// recorded gun-draw video dataset (paper Figures 1 and 11). The series is
/// a tracked hand coordinate over repeated draw/aim/return gestures; the
/// anomalies are hesitation cycles where the actor fumbles mid-draw,
/// producing a structurally different motion profile.
struct VideoOptions {
  size_t num_cycles = 25;
  size_t cycle_length = 150;
  double length_jitter = 0.03;
  double noise = 0.008;
  /// Cycles replaced by the hesitation gesture.
  std::vector<size_t> anomalous_cycles = {14};
  uint64_t seed = 7;
};

LabeledSeries MakeVideo(const VideoOptions& options = {});

}  // namespace gva

#endif  // GVA_DATASETS_VIDEO_H_
