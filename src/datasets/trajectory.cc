#include "datasets/trajectory.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace gva {

namespace {

/// Samples `count` points along the polyline `waypoints` at uniform arc
/// length, with mild speed jitter and light positional noise.
std::vector<GeoPoint> SamplePolyline(const std::vector<GeoPoint>& waypoints,
                                     size_t count, double position_noise,
                                     Rng& rng) {
  GVA_CHECK_GE(waypoints.size(), 2u);
  std::vector<double> cumulative{0.0};
  for (size_t i = 1; i < waypoints.size(); ++i) {
    const double dx = waypoints[i].x - waypoints[i - 1].x;
    const double dy = waypoints[i].y - waypoints[i - 1].y;
    cumulative.push_back(cumulative.back() + std::hypot(dx, dy));
  }
  const double total = cumulative.back();
  std::vector<GeoPoint> points;
  points.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    double s = total * static_cast<double>(k) / static_cast<double>(count);
    // Speed jitter: up to 1% of the path length.
    s += total * 0.01 * (rng.UniformDouble() - 0.5);
    s = std::min(std::max(s, 0.0), total);
    size_t seg = 1;
    while (seg + 1 < cumulative.size() && cumulative[seg] < s) {
      ++seg;
    }
    const double seg_len = cumulative[seg] - cumulative[seg - 1];
    const double t =
        seg_len > 0.0 ? (s - cumulative[seg - 1]) / seg_len : 0.0;
    GeoPoint p{
        waypoints[seg - 1].x + t * (waypoints[seg].x - waypoints[seg - 1].x),
        waypoints[seg - 1].y + t * (waypoints[seg].y - waypoints[seg - 1].y)};
    p.x += rng.Gaussian(0.0, position_noise);
    p.y += rng.Gaussian(0.0, position_noise);
    p.x = std::min(std::max(p.x, 0.0), 1.0);
    p.y = std::min(std::max(p.y, 0.0), 1.0);
    points.push_back(p);
  }
  return points;
}

}  // namespace

TrajectoryData MakeTrajectory(const TrajectoryOptions& options) {
  Rng rng(options.seed);
  TrajectoryData out;
  out.labeled.name = "synthetic-trajectory";

  const GeoPoint home{0.12, 0.12};
  const GeoPoint work{0.80, 0.72};
  // Two habitual routes (the weekly commute) ...
  const std::vector<GeoPoint> route_a{home, {0.12, 0.72}, work};
  const std::vector<GeoPoint> route_b{home, {0.80, 0.12}, work};
  // ... and the unique detour: route A with an excursion through an
  // otherwise unvisited corner of the map.
  const std::vector<GeoPoint> detour{
      home, {0.12, 0.72}, {0.45, 0.93}, {0.60, 0.93}, work};

  std::vector<Interval> anomalies;
  for (size_t trip = 0; trip < options.num_trips; ++trip) {
    const bool is_detour = trip == options.detour_trip;
    const bool is_noisy = trip == options.noisy_trip;
    const std::vector<GeoPoint>* route = &route_a;
    if (is_detour) {
      route = &detour;
    } else if (trip % 3 == 2) {  // every third trip takes route B
      route = &route_b;
    }
    // Alternate commute direction.
    std::vector<GeoPoint> waypoints = *route;
    if (trip % 2 == 1) {
      std::vector<GeoPoint> reversed(waypoints.rbegin(), waypoints.rend());
      waypoints = std::move(reversed);
    }
    const double noise = is_noisy ? options.fix_noise : 0.004;
    const size_t start = out.points.size();
    std::vector<GeoPoint> sampled =
        SamplePolyline(waypoints, options.samples_per_trip, noise, rng);
    out.points.insert(out.points.end(), sampled.begin(), sampled.end());
    if (is_detour || is_noisy) {
      anomalies.push_back(Interval{start, out.points.size()});
    }
  }

  const HilbertCurve curve(options.hilbert_order);
  StatusOr<std::vector<double>> series =
      TrajectoryToHilbertSeries(out.points, curve, 0.0, 1.0, 0.0, 1.0);
  GVA_CHECK(series.ok()) << series.status().ToString();
  out.labeled.series = TimeSeries(std::move(series).value(), out.labeled.name);
  out.labeled.anomalies = std::move(anomalies);
  out.labeled.recommended.window = options.samples_per_trip / 2;
  out.labeled.recommended.paa_size = 15;
  out.labeled.recommended.alphabet_size = 4;
  return out;
}

}  // namespace gva
