#include "datasets/tek.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace gva {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Valve energize/de-energize pulse on t in [0, 1): idle, sharp rise,
/// slowly decaying plateau, sharp drop with a small undershoot.
double ValveCycle(double t) {
  const double rise = Sigmoid((t - 0.30) / 0.008);
  const double drop = Sigmoid((0.72 - t) / 0.008);
  double v = rise * drop;
  v *= 1.0 - 0.15 * std::max(0.0, (t - 0.30) / 0.42);  // plateau decay
  // Undershoot after de-energize.
  const double u = (t - 0.76) / 0.02;
  v -= 0.12 * std::exp(-0.5 * u * u);
  return v;
}

/// The anomalous cycle: a transient dropout in the middle of the plateau —
/// the "poppet pulled significantly out of the solenoid" failure mode of
/// the original TEK traces.
double GlitchCycle(double t) {
  double v = ValveCycle(t);
  const double g = (t - 0.52) / 0.030;
  v -= 0.55 * std::exp(-0.5 * g * g);
  return v;
}

}  // namespace

LabeledSeries MakeTek(const TekOptions& options) {
  Rng rng(options.seed);
  LabeledSeries out;
  out.name = "synthetic-tek";
  std::vector<double>& values = out.series.mutable_values();
  values.reserve(options.num_cycles * options.cycle_length);

  for (size_t cycle = 0; cycle < options.num_cycles; ++cycle) {
    const bool anomalous =
        std::find(options.anomalous_cycles.begin(),
                  options.anomalous_cycles.end(),
                  cycle) != options.anomalous_cycles.end();
    const size_t start = values.size();
    for (size_t i = 0; i < options.cycle_length; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(options.cycle_length);
      const double base = anomalous ? GlitchCycle(t) : ValveCycle(t);
      values.push_back(base + rng.Gaussian(0.0, options.noise));
    }
    if (anomalous) {
      out.anomalies.push_back(Interval{start, values.size()});
    }
  }

  out.recommended.window = options.cycle_length / 2;
  out.recommended.paa_size = 4;
  out.recommended.alphabet_size = 4;
  out.series.set_name(out.name);
  return out;
}

}  // namespace gva
