#ifndef GVA_DATASETS_SIMPLE_H_
#define GVA_DATASETS_SIMPLE_H_

#include <cstdint>
#include <vector>

#include "datasets/labeled_series.h"

namespace gva {

/// Noisy sinusoid — the simplest periodic test signal.
std::vector<double> MakeSine(size_t length, double period, double noise,
                             uint64_t seed);

/// Noisy sinusoid with one planted anomaly: a `anomaly_length`-sample
/// segment starting at `anomaly_start` where the oscillation is flattened
/// to noise around zero. Used by quickstart and as a canonical test signal.
LabeledSeries MakeSineWithAnomaly(size_t length, double period, double noise,
                                  size_t anomaly_start, size_t anomaly_length,
                                  uint64_t seed);

/// Gaussian random walk (structureless; a hard case for any structural
/// detector).
std::vector<double> MakeRandomWalk(size_t length, double step, uint64_t seed);

/// Pure Gaussian noise.
std::vector<double> MakeNoise(size_t length, double sigma, uint64_t seed);

}  // namespace gva

#endif  // GVA_DATASETS_SIMPLE_H_
