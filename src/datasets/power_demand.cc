#include "datasets/power_demand.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace gva {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Working-day demand profile over hour-of-day in [0, 24): low overnight
/// base, steep morning ramp, daytime plateau, evening decline.
double WeekdayProfile(double hour) {
  return 0.25 + 0.75 * Sigmoid((hour - 7.0) / 0.8) *
                    Sigmoid((18.0 - hour) / 1.2);
}

/// Weekend / holiday profile: base load with a faint midday bump.
double WeekendProfile(double hour) {
  return 0.25 + 0.08 * Sigmoid((hour - 9.0) / 1.5) *
                    Sigmoid((17.0 - hour) / 2.0);
}

}  // namespace

LabeledSeries MakePowerDemand(const PowerDemandOptions& options) {
  Rng rng(options.seed);
  LabeledSeries out;
  out.name = "synthetic-power-demand";
  const size_t days = options.weeks * 7;
  std::vector<double>& values = out.series.mutable_values();
  values.reserve(days * options.samples_per_day);

  for (size_t day = 0; day < days; ++day) {
    const bool weekend = (day % 7) >= 5;
    const bool holiday =
        std::find(options.holiday_days.begin(), options.holiday_days.end(),
                  day) != options.holiday_days.end();
    const bool low_profile = weekend || holiday;
    const size_t start = values.size();
    for (size_t s = 0; s < options.samples_per_day; ++s) {
      const double hour = 24.0 * static_cast<double>(s) /
                          static_cast<double>(options.samples_per_day);
      const double base =
          low_profile ? WeekendProfile(hour) : WeekdayProfile(hour);
      values.push_back(base + rng.Gaussian(0.0, options.noise));
    }
    if (holiday && !weekend) {
      out.anomalies.push_back(Interval{start, values.size()});
    }
  }

  // One week is the dominant cycle, as in the paper (W=750 for 672
  // samples/week there; here the window is exactly one week).
  out.recommended.window = 7 * options.samples_per_day;
  out.recommended.paa_size = 7;
  out.recommended.alphabet_size = 4;
  out.series.set_name(out.name);
  return out;
}

}  // namespace gva
