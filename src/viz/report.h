#ifndef GVA_VIZ_REPORT_H_
#define GVA_VIZ_REPORT_H_

#include <string>
#include <vector>

#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "ensemble/ensemble.h"
#include "obs/metrics.h"

namespace gva {

/// Renders the ranked-discord table of the GrammarViz 2.0 anomaly pane
/// (paper Figure 11): rank, position, length, NN distance, source rule.
std::string DiscordTable(const RraDetection& detection);

/// Renders the rule-density anomaly report (paper Figure 12): ranked
/// low-density intervals with their density statistics.
std::string DensityAnomalyTable(const DensityDetection& detection);

/// Renders the ranked ensemble anomaly report: low-score intervals of the
/// aggregated surface with their score statistics.
std::string EnsembleAnomalyTable(const EnsembleDetection& detection);

/// Renders the per-config pane of an ensemble run: one line per grid point
/// with its pipeline statistics, wall time, and substrate-cache outcome,
/// followed by a cache-accounting summary line.
std::string EnsembleConfigTable(const EnsembleDetection& detection);

/// Renders the grammar-rules pane: one line per rule with use count,
/// expansion size in tokens, and mean/min/max mapped subsequence length.
std::string RuleStatsTable(const GrammarDecomposition& decomposition,
                           size_t max_rules = 20);

/// Renders a human-readable summary of a metrics snapshot: a per-stage
/// timing table built from the `stage.<name>.us` / `stage.<name>.count`
/// counter pairs the ScopedSpan instrumentation maintains, followed by the
/// remaining counters/gauges/histograms. Empty string when the snapshot
/// holds nothing (e.g. no ObsSession was active).
std::string MetricsSummaryTable(const std::vector<obs::MetricSample>& samples);

/// Convenience overload: snapshot + render in one call.
std::string MetricsSummaryTable(const obs::MetricsRegistry& registry);

}  // namespace gva

#endif  // GVA_VIZ_REPORT_H_
