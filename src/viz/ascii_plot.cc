#include "viz/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gva {

namespace {

/// Per-column [min, max] aggregation of `values` into `width` bins.
struct ColumnRange {
  double lo;
  double hi;
};

std::vector<ColumnRange> BinColumns(std::span<const double> values,
                                    size_t width) {
  std::vector<ColumnRange> columns(width,
                                   {std::numeric_limits<double>::infinity(),
                                    -std::numeric_limits<double>::infinity()});
  for (size_t i = 0; i < values.size(); ++i) {
    const size_t c = std::min(width - 1, i * width / values.size());
    columns[c].lo = std::min(columns[c].lo, values[i]);
    columns[c].hi = std::max(columns[c].hi, values[i]);
  }
  return columns;
}

}  // namespace

std::string RenderSeries(std::span<const double> values,
                         const std::vector<Interval>& highlights,
                         const AsciiPlotOptions& options) {
  if (values.empty() || options.width == 0 || options.height == 0) {
    return "";
  }
  const size_t width = std::min(options.width, values.size());
  std::vector<ColumnRange> columns = BinColumns(values, width);

  double global_lo = std::numeric_limits<double>::infinity();
  double global_hi = -global_lo;
  for (const ColumnRange& c : columns) {
    global_lo = std::min(global_lo, c.lo);
    global_hi = std::max(global_hi, c.hi);
  }
  if (global_hi <= global_lo) {
    global_hi = global_lo + 1.0;
  }
  const double scale =
      static_cast<double>(options.height - 1) / (global_hi - global_lo);

  std::vector<std::string> grid(options.height,
                                std::string(width, ' '));
  for (size_t c = 0; c < width; ++c) {
    const size_t row_lo = static_cast<size_t>(
        std::lround((columns[c].lo - global_lo) * scale));
    const size_t row_hi = static_cast<size_t>(
        std::lround((columns[c].hi - global_lo) * scale));
    for (size_t r = row_lo; r <= row_hi && r < options.height; ++r) {
      // Row 0 of the grid is the top of the chart.
      grid[options.height - 1 - r][c] = (r == row_lo || r == row_hi) ? 'o'
                                                                     : '|';
    }
  }

  // Bottom marker row for highlighted intervals.
  std::string markers(width, ' ');
  for (size_t c = 0; c < width; ++c) {
    const size_t begin = c * values.size() / width;
    const size_t end = (c + 1) * values.size() / width;
    const Interval column{begin, std::max(end, begin + 1)};
    for (const Interval& h : highlights) {
      if (column.Overlaps(h)) {
        markers[c] = options.highlight;
        break;
      }
    }
  }

  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  out += std::string(width, '-');
  out += '\n';
  out += markers;
  out += '\n';
  return out;
}

std::string RenderDensityShading(std::span<const uint32_t> density,
                                 size_t width) {
  static constexpr char kShades[] = " .:-=+*#%@";
  static constexpr size_t kLevels = sizeof(kShades) - 1;  // exclude NUL
  if (density.empty() || width == 0) {
    return "";
  }
  width = std::min(width, density.size());
  uint32_t max_d = 0;
  for (uint32_t d : density) {
    max_d = std::max(max_d, d);
  }
  std::string out(width, ' ');
  for (size_t c = 0; c < width; ++c) {
    const size_t begin = c * density.size() / width;
    const size_t end =
        std::max(begin + 1, (c + 1) * density.size() / width);
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) {
      sum += density[i];
    }
    const double mean = sum / static_cast<double>(end - begin);
    size_t level = 0;
    if (max_d > 0) {
      level = static_cast<size_t>(
          std::lround(mean / static_cast<double>(max_d) *
                      static_cast<double>(kLevels - 1)));
    }
    out[c] = kShades[std::min(level, kLevels - 1)];
  }
  return out;
}

}  // namespace gva
