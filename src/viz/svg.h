#ifndef GVA_VIZ_SVG_H_
#define GVA_VIZ_SVG_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "timeseries/interval.h"
#include "util/status.h"

namespace gva {

/// Multi-panel SVG figure builder — the library's replacement for the
/// paper's matplotlib/GUI plots. Panels stack vertically (series on top,
/// rule density below, NN distances below that, like the paper's Figures
/// 2 and 3); intervals can be highlighted as translucent bands.
class SvgFigure {
 public:
  /// `width`/`panel_height` in pixels.
  explicit SvgFigure(std::string title, size_t width = 960,
                     size_t panel_height = 160);

  /// Adds a line-plot panel. `highlights` become red translucent bands.
  void AddSeriesPanel(const std::string& label,
                      std::span<const double> values,
                      const std::vector<Interval>& highlights = {});

  /// Adds a filled step-area panel for a density curve.
  void AddDensityPanel(const std::string& label,
                       std::span<const uint32_t> density);

  /// Adds a stem panel (vertical lines at positions with given heights),
  /// like the paper's per-interval NN-distance panels. `positions` and
  /// `heights` must be equal length; non-finite heights are skipped.
  void AddStemPanel(const std::string& label,
                    const std::vector<size_t>& positions,
                    const std::vector<double>& heights, size_t domain);

  /// Number of panels added so far.
  size_t panels() const { return panels_.size(); }

  /// Serializes the figure to SVG markup.
  std::string ToSvg() const;

  /// Writes the figure to a file.
  Status WriteFile(const std::string& path) const;

 private:
  struct Panel {
    std::string body;  // inner SVG markup, in panel-local coordinates
    std::string label;
  };

  std::string title_;
  size_t width_;
  size_t panel_height_;
  std::vector<Panel> panels_;
};

}  // namespace gva

#endif  // GVA_VIZ_SVG_H_
