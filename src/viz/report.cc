#include "viz/report.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "grammar/grammar_printer.h"
#include "util/strings.h"

namespace gva {

std::string DiscordTable(const RraDetection& detection) {
  std::ostringstream out;
  out << StrFormat("%-5s %-10s %-8s %-12s %s\n", "Rank", "Position", "Length",
                   "NN distance", "Rule");
  for (size_t i = 0; i < detection.result.discords.size(); ++i) {
    const DiscordRecord& d = detection.result.discords[i];
    std::string rule = d.rule >= 0 ? StrFormat("R%d", d.rule)
                                   : std::string("zero-coverage gap");
    out << StrFormat("%-5zu %-10zu %-8zu %-12.5f %s\n", i, d.position,
                     d.length, d.distance, rule.c_str());
  }
  out << StrFormat("distance calls: %s\n",
                   FormatWithThousands(detection.result.distance_calls)
                       .c_str());
  return out.str();
}

std::string DensityAnomalyTable(const DensityDetection& detection) {
  std::ostringstream out;
  out << StrFormat("%-5s %-16s %-8s %-12s %s\n", "Rank", "Interval", "Length",
                   "MinDensity", "MeanDensity");
  for (const DensityAnomaly& a : detection.anomalies) {
    out << StrFormat("%-5zu [%zu, %zu)%*s %-8zu %-12u %.3f\n", a.rank,
                     a.span.start, a.span.end, 0, "", a.span.length(),
                     a.min_density, a.mean_density);
  }
  return out.str();
}

std::string EnsembleAnomalyTable(const EnsembleDetection& detection) {
  std::ostringstream out;
  out << StrFormat("%-5s %-16s %-8s %-10s %s\n", "Rank", "Interval", "Length",
                   "MinScore", "MeanScore");
  for (const EnsembleAnomaly& a : detection.anomalies) {
    out << StrFormat("%-5zu [%zu, %zu)%*s %-8zu %-10.4f %.4f\n", a.rank,
                     a.span.start, a.span.end, 0, "", a.span.length(),
                     a.min_score, a.mean_score);
  }
  return out.str();
}

std::string EnsembleConfigTable(const EnsembleDetection& detection) {
  std::ostringstream out;
  out << StrFormat("%-8s %-5s %-5s %-8s %-7s %-10s %-8s %s\n", "Window",
                   "PAA", "Alpha", "Words", "Rules", "Intervals", "Wall ms",
                   "Substrate");
  for (const EnsembleConfigResult& c : detection.configs) {
    if (!c.ok) {
      out << StrFormat("%-8zu %-5zu %-5zu skipped: %s\n", c.config.window,
                       c.config.paa_size, c.config.alphabet_size,
                       c.error.c_str());
      continue;
    }
    out << StrFormat("%-8zu %-5zu %-5zu %-8zu %-7zu %-10zu %-8.2f %s\n",
                     c.config.window, c.config.paa_size,
                     c.config.alphabet_size, c.words, c.rules, c.intervals,
                     static_cast<double>(c.wall_us) / 1000.0,
                     c.cache_hit ? "cache hit" : "computed");
  }
  out << StrFormat(
      "configs used: %zu/%zu, z-plane cache: %llu hits / %llu misses\n",
      detection.configs_used, detection.configs.size(),
      static_cast<unsigned long long>(detection.cache_hits),
      static_cast<unsigned long long>(detection.cache_misses));
  return out.str();
}

std::string RuleStatsTable(const GrammarDecomposition& decomposition,
                           size_t max_rules) {
  // Aggregate per-rule interval statistics.
  const size_t num_rules = decomposition.grammar.grammar.size();
  struct Stats {
    size_t count = 0;
    size_t min_len = 0;
    size_t max_len = 0;
    size_t total_len = 0;
  };
  std::vector<Stats> stats(num_rules);
  for (const RuleInterval& ri : decomposition.intervals) {
    if (ri.rule < 0) {
      continue;
    }
    Stats& s = stats[static_cast<size_t>(ri.rule)];
    const size_t len = ri.span.length();
    if (s.count == 0) {
      s.min_len = len;
      s.max_len = len;
    } else {
      s.min_len = std::min(s.min_len, len);
      s.max_len = std::max(s.max_len, len);
    }
    s.total_len += len;
    ++s.count;
  }

  std::ostringstream out;
  out << StrFormat("%-6s %-6s %-10s %-10s %-12s %s\n", "Rule", "Used",
                   "MeanLen", "MinLen", "MaxLen", "RHS");
  const size_t limit = std::min(max_rules + 1, num_rules);
  for (size_t r = 1; r < limit; ++r) {
    const Stats& s = stats[r];
    const double mean =
        s.count > 0 ? static_cast<double>(s.total_len) /
                          static_cast<double>(s.count)
                    : 0.0;
    out << StrFormat("R%-5zu %-6zu %-10.1f %-10zu %-12zu %s\n", r, s.count,
                     mean, s.min_len, s.max_len,
                     RuleRhsToString(decomposition.grammar, r).c_str());
  }
  if (num_rules > limit) {
    out << StrFormat("... (%zu more rules)\n", num_rules - limit);
  }
  return out.str();
}

std::string MetricsSummaryTable(
    const std::vector<obs::MetricSample>& samples) {
  if (samples.empty()) {
    return std::string();
  }

  // Pair up the span-derived stage counters: `stage.<name>.us` carries the
  // accumulated wall time, `stage.<name>.count` the number of spans.
  struct StageRow {
    std::string name;
    uint64_t us = 0;
    uint64_t count = 0;
  };
  std::vector<StageRow> stages;
  std::vector<const obs::MetricSample*> rest;
  auto stage_row = [&](const std::string& stage) -> StageRow& {
    for (StageRow& row : stages) {
      if (row.name == stage) {
        return row;
      }
    }
    stages.push_back(StageRow{stage, 0, 0});
    return stages.back();
  };
  for (const obs::MetricSample& s : samples) {
    if (s.kind == obs::MetricSample::Kind::kCounter &&
        s.name.rfind("stage.", 0) == 0) {
      if (s.name.size() > 3 && s.name.ends_with(".us")) {
        stage_row(s.name.substr(6, s.name.size() - 9)).us = s.counter_value;
        continue;
      }
      if (s.name.size() > 6 && s.name.ends_with(".count")) {
        stage_row(s.name.substr(6, s.name.size() - 12)).count =
            s.counter_value;
        continue;
      }
    }
    rest.push_back(&s);
  }

  std::ostringstream out;
  if (!stages.empty()) {
    // Slowest stage first — the reason anyone reads this table.
    std::stable_sort(stages.begin(), stages.end(),
                     [](const StageRow& a, const StageRow& b) {
                       return a.us > b.us;
                     });
    out << StrFormat("%-28s %8s %12s %12s\n", "Stage", "Spans", "Total ms",
                     "Mean ms");
    for (const StageRow& s : stages) {
      const double total_ms = static_cast<double>(s.us) / 1000.0;
      const double mean_ms =
          s.count > 0 ? total_ms / static_cast<double>(s.count) : 0.0;
      out << StrFormat("%-28s %8llu %12.3f %12.3f\n", s.name.c_str(),
                       static_cast<unsigned long long>(s.count), total_ms,
                       mean_ms);
    }
  }
  if (!rest.empty()) {
    if (!stages.empty()) {
      out << "\n";
    }
    out << StrFormat("%-40s %s\n", "Metric", "Value");
    for (const obs::MetricSample* s : rest) {
      switch (s->kind) {
        case obs::MetricSample::Kind::kCounter:
          out << StrFormat("%-40s %s\n", s->name.c_str(),
                           FormatWithThousands(s->counter_value).c_str());
          break;
        case obs::MetricSample::Kind::kGauge:
          out << StrFormat("%-40s %lld\n", s->name.c_str(),
                           static_cast<long long>(s->gauge_value));
          break;
        case obs::MetricSample::Kind::kHistogram:
          // Percentiles from the shared base-2 buckets: exact to within a
          // bucket, which beats eyeballing a raw bucket dump.
          out << StrFormat(
              "%-40s count=%s mean=%.4f p50=%.1f p95=%.1f p99=%.1f\n",
              s->name.c_str(),
              FormatWithThousands(s->histogram_count).c_str(),
              s->histogram_count > 0
                  ? s->histogram_sum /
                        static_cast<double>(s->histogram_count)
                  : 0.0,
              obs::HistogramQuantile(*s, 0.50),
              obs::HistogramQuantile(*s, 0.95),
              obs::HistogramQuantile(*s, 0.99));
          break;
      }
    }
  }
  return out.str();
}

std::string MetricsSummaryTable(const obs::MetricsRegistry& registry) {
  return MetricsSummaryTable(registry.Snapshot());
}

}  // namespace gva
