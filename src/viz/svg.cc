#include "viz/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "util/strings.h"

namespace gva {

namespace {

constexpr size_t kMarginLeft = 8;
constexpr size_t kMarginTop = 24;
constexpr size_t kPanelGap = 14;

/// Min/max with a guard for flat data.
std::pair<double, double> Range(std::span<const double> values) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : values) {
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
  if (hi <= lo) {
    hi = lo + 1.0;
  }
  return {lo, hi};
}

}  // namespace

SvgFigure::SvgFigure(std::string title, size_t width, size_t panel_height)
    : title_(std::move(title)), width_(width), panel_height_(panel_height) {}

void SvgFigure::AddSeriesPanel(const std::string& label,
                               std::span<const double> values,
                               const std::vector<Interval>& highlights) {
  Panel panel;
  panel.label = label;
  if (values.empty()) {
    panels_.push_back(std::move(panel));
    return;
  }
  const auto [lo, hi] = Range(values);
  const double x_scale =
      static_cast<double>(width_) / static_cast<double>(values.size());
  const double y_scale = static_cast<double>(panel_height_ - 8) / (hi - lo);

  for (const Interval& h : highlights) {
    if (h.empty() || h.start >= values.size()) {
      continue;
    }
    const double x = static_cast<double>(h.start) * x_scale;
    const double w =
        static_cast<double>(std::min(h.end, values.size()) - h.start) *
        x_scale;
    panel.body += StrFormat(
        "<rect x='%.1f' y='0' width='%.1f' height='%zu' fill='#d62728' "
        "fill-opacity='0.18'/>",
        x, w, panel_height_);
  }

  std::string points;
  // Cap the polyline at ~4 points per pixel to keep files small.
  const size_t stride =
      std::max<size_t>(1, values.size() / (4 * width_));
  for (size_t i = 0; i < values.size(); i += stride) {
    const double x = static_cast<double>(i) * x_scale;
    const double y = static_cast<double>(panel_height_ - 4) -
                     (values[i] - lo) * y_scale;
    points += StrFormat("%.1f,%.1f ", x, y);
  }
  panel.body += StrFormat(
      "<polyline points='%s' fill='none' stroke='#1f77b4' "
      "stroke-width='1'/>",
      points.c_str());
  panels_.push_back(std::move(panel));
}

void SvgFigure::AddDensityPanel(const std::string& label,
                                std::span<const uint32_t> density) {
  Panel panel;
  panel.label = label;
  if (density.empty()) {
    panels_.push_back(std::move(panel));
    return;
  }
  uint32_t max_d = 1;
  for (uint32_t d : density) {
    max_d = std::max(max_d, d);
  }
  const double x_scale =
      static_cast<double>(width_) / static_cast<double>(density.size());
  const double y_scale =
      static_cast<double>(panel_height_ - 8) / static_cast<double>(max_d);

  std::string points =
      StrFormat("0,%zu ", panel_height_ - 4);  // close the area at zero
  const size_t stride =
      std::max<size_t>(1, density.size() / (4 * width_));
  for (size_t i = 0; i < density.size(); i += stride) {
    const double x = static_cast<double>(i) * x_scale;
    const double y = static_cast<double>(panel_height_ - 4) -
                     static_cast<double>(density[i]) * y_scale;
    points += StrFormat("%.1f,%.1f ", x, y);
  }
  points += StrFormat("%zu,%zu", width_, panel_height_ - 4);
  panel.body += StrFormat(
      "<polygon points='%s' fill='#2ca02c' fill-opacity='0.45' "
      "stroke='#2ca02c' stroke-width='1'/>",
      points.c_str());
  panels_.push_back(std::move(panel));
}

void SvgFigure::AddStemPanel(const std::string& label,
                             const std::vector<size_t>& positions,
                             const std::vector<double>& heights,
                             size_t domain) {
  Panel panel;
  panel.label = label;
  if (positions.empty() || domain == 0 ||
      positions.size() != heights.size()) {
    panels_.push_back(std::move(panel));
    return;
  }
  double max_h = 0.0;
  for (double h : heights) {
    if (std::isfinite(h)) {
      max_h = std::max(max_h, h);
    }
  }
  if (max_h <= 0.0) {
    max_h = 1.0;
  }
  const double x_scale =
      static_cast<double>(width_) / static_cast<double>(domain);
  const double y_scale = static_cast<double>(panel_height_ - 8) / max_h;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (!std::isfinite(heights[i])) {
      continue;
    }
    const double x = static_cast<double>(positions[i]) * x_scale;
    const double y = static_cast<double>(panel_height_ - 4) -
                     heights[i] * y_scale;
    panel.body += StrFormat(
        "<line x1='%.1f' y1='%zu' x2='%.1f' y2='%.1f' stroke='#9467bd' "
        "stroke-width='1'/>",
        x, panel_height_ - 4, x, y);
  }
  panels_.push_back(std::move(panel));
}

std::string SvgFigure::ToSvg() const {
  const size_t total_height =
      kMarginTop + panels_.size() * (panel_height_ + kPanelGap);
  std::string svg = StrFormat(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%zu' height='%zu' "
      "font-family='sans-serif'>\n",
      width_ + 2 * kMarginLeft, total_height);
  svg += StrFormat(
      "<text x='%zu' y='16' font-size='14' font-weight='bold'>%s</text>\n",
      kMarginLeft, title_.c_str());
  size_t y = kMarginTop;
  for (const Panel& panel : panels_) {
    svg += StrFormat("<g transform='translate(%zu,%zu)'>\n", kMarginLeft, y);
    svg += StrFormat(
        "<rect x='0' y='0' width='%zu' height='%zu' fill='#fafafa' "
        "stroke='#cccccc'/>\n",
        width_, panel_height_);
    svg += panel.body;
    svg += StrFormat(
        "\n<text x='4' y='12' font-size='11' fill='#555555'>%s</text>\n",
        panel.label.c_str());
    svg += "</g>\n";
    y += panel_height_ + kPanelGap;
  }
  svg += "</svg>\n";
  return svg;
}

Status SvgFigure::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << ToSvg();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace gva
