#ifndef GVA_VIZ_JSON_REPORT_H_
#define GVA_VIZ_JSON_REPORT_H_

#include <string>
#include <vector>

#include "core/job_runner.h"
#include "core/streaming.h"
#include "util/json.h"

namespace gva {

/// JSON wire representations of the server's result objects (DESIGN.md
/// §13). Rendering lives here, next to the other presentation code, so the
/// server and the tests share one definition of the format. Doubles are
/// emitted via JsonNumber's %.17g, which round-trips bit-exactly — the
/// representation the bit-identical differential tests compare on.

/// One job as `GET /v1/jobs/{id}` returns it:
///   {"id": n, "tenant": s, "state": s, "detector": s, "error": s?,
///    "config": {"window": n, "paa": n, "alphabet": n, "top_k": n,
///               "threshold": x, "threads": n, "approx": b},
///    "result": {"detector": s, "window": n, "paa": n, "alphabet": n,
///               "distance_calls": n,
///               "anomalies": [{"rank": n, "start": n, "end": n,
///                              "score": x}, ...]}?}
/// `error` appears only for failed/cancelled jobs, `result` only for done
/// ones. `config` echoes the request (0 = "suggest from the data");
/// `result` carries the resolved values.
JsonValue JobJson(const JobSnapshot& snapshot);

/// One row of `GET /v1/jobs`: the identity/state subset of JobJson
/// (no config, no result payload — list responses stay small).
JsonValue JobSummaryJson(const JobSnapshot& snapshot);

/// A streaming report as `GET /v1/streams/{id}/report` returns it:
///   {"samples_seen": n, "suffix_start": n, "suffix_end": n,
///    "anomalies": [{"rank": n, "start": n, "end": n, "min_density": n,
///                   "mean_density": x}, ...]}
/// Anomaly positions are absolute stream coordinates (suffix offset
/// already applied), matching what `gva_cli stream` prints.
JsonValue StreamReportJson(const StreamingReport& report, size_t samples_seen);

/// The SVG figure for a finished job: the series with anomaly spans
/// highlighted, plus the density or ensemble-score panel when the detector
/// produced one. Only meaningful for state == kDone.
std::string JobSvg(const JobSnapshot& snapshot);

}  // namespace gva

#endif  // GVA_VIZ_JSON_REPORT_H_
