#ifndef GVA_VIZ_ASCII_PLOT_H_
#define GVA_VIZ_ASCII_PLOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "timeseries/interval.h"

namespace gva {

/// Options for terminal chart rendering.
struct AsciiPlotOptions {
  size_t width = 100;
  size_t height = 12;
  /// Marker for highlighted columns (those overlapping any interval passed
  /// to RenderSeries).
  char highlight = '!';
};

/// Renders `values` as a width x height character chart (columns are
/// min-max bins over the series). Columns overlapping any interval in
/// `highlights` carry the highlight marker on the bottom axis row — this is
/// the text analogue of the paper's red/blue anomaly shading.
std::string RenderSeries(std::span<const double> values,
                         const std::vector<Interval>& highlights = {},
                         const AsciiPlotOptions& options = {});

/// Renders a density curve as one shading line: per column, mean density
/// mapped onto " .:-=+*#%@" (dark = high rule density, space = zero). The
/// text analogue of GrammarViz's Figure 12 background shading.
std::string RenderDensityShading(std::span<const uint32_t> density,
                                 size_t width = 100);

}  // namespace gva

#endif  // GVA_VIZ_ASCII_PLOT_H_
