#include "viz/json_report.h"

#include <utility>

#include "timeseries/interval.h"
#include "viz/svg.h"

namespace gva {

namespace {

JsonValue SizeNumber(size_t value) {
  return JsonValue::Number(static_cast<double>(value));
}

JsonValue IdentityJson(const JobSnapshot& snapshot) {
  JsonValue object = JsonValue::Object();
  object.Set("id", SizeNumber(static_cast<size_t>(snapshot.id)));
  object.Set("tenant", JsonValue::String(snapshot.tenant));
  object.Set("state", JsonValue::String(JobStateName(snapshot.state)));
  object.Set("detector",
             JsonValue::String(JobDetectorName(snapshot.spec.detector)));
  return object;
}

}  // namespace

JsonValue JobJson(const JobSnapshot& snapshot) {
  JsonValue object = IdentityJson(snapshot);
  if (!snapshot.status.ok()) {
    object.Set("error", JsonValue::String(snapshot.status.ToString()));
  }

  JsonValue config = JsonValue::Object();
  config.Set("window", SizeNumber(snapshot.spec.window));
  config.Set("paa", SizeNumber(snapshot.spec.paa));
  config.Set("alphabet", SizeNumber(snapshot.spec.alphabet));
  config.Set("top_k", SizeNumber(snapshot.spec.top_k));
  config.Set("threshold", JsonValue::Number(snapshot.spec.threshold));
  config.Set("threads", SizeNumber(snapshot.spec.num_threads));
  config.Set("approx", JsonValue::Bool(snapshot.spec.approx));
  object.Set("config", std::move(config));

  if (snapshot.state == JobState::kDone) {
    JsonValue result = JsonValue::Object();
    result.Set("detector", JsonValue::String(snapshot.outcome.detector));
    result.Set("window", SizeNumber(snapshot.outcome.window));
    result.Set("paa", SizeNumber(snapshot.outcome.paa));
    result.Set("alphabet", SizeNumber(snapshot.outcome.alphabet));
    result.Set("distance_calls",
               SizeNumber(static_cast<size_t>(
                   snapshot.outcome.distance_calls)));
    JsonValue anomalies = JsonValue::Array();
    for (const JobAnomaly& a : snapshot.outcome.anomalies) {
      JsonValue entry = JsonValue::Object();
      entry.Set("rank", SizeNumber(a.rank));
      entry.Set("start", SizeNumber(a.start));
      entry.Set("end", SizeNumber(a.end));
      entry.Set("score", JsonValue::Number(a.score));
      anomalies.Append(std::move(entry));
    }
    result.Set("anomalies", std::move(anomalies));
    object.Set("result", std::move(result));
  }
  return object;
}

JsonValue JobSummaryJson(const JobSnapshot& snapshot) {
  return IdentityJson(snapshot);
}

JsonValue StreamReportJson(const StreamingReport& report,
                           size_t samples_seen) {
  JsonValue object = JsonValue::Object();
  object.Set("samples_seen", SizeNumber(samples_seen));
  object.Set("suffix_start", SizeNumber(report.suffix_start));
  object.Set("suffix_end",
             SizeNumber(report.suffix_start + report.suffix_length));
  JsonValue anomalies = JsonValue::Array();
  for (const DensityAnomaly& a : report.detection.anomalies) {
    JsonValue entry = JsonValue::Object();
    entry.Set("rank", SizeNumber(a.rank));
    entry.Set("start", SizeNumber(report.suffix_start + a.span.start));
    entry.Set("end", SizeNumber(report.suffix_start + a.span.end));
    entry.Set("min_density", SizeNumber(a.min_density));
    entry.Set("mean_density", JsonValue::Number(a.mean_density));
    anomalies.Append(std::move(entry));
  }
  object.Set("anomalies", std::move(anomalies));
  return object;
}

std::string JobSvg(const JobSnapshot& snapshot) {
  std::string title = "gva job " + std::to_string(snapshot.id) + " (" +
                      snapshot.outcome.detector + ")";
  SvgFigure figure(std::move(title));
  std::vector<Interval> highlights;
  for (const JobAnomaly& a : snapshot.outcome.anomalies) {
    highlights.push_back(Interval{a.start, a.end});
  }
  if (snapshot.series != nullptr) {
    figure.AddSeriesPanel("series", *snapshot.series, highlights);
  }
  if (!snapshot.outcome.density.empty()) {
    figure.AddDensityPanel("rule density", snapshot.outcome.density);
  }
  if (!snapshot.outcome.score_curve.empty()) {
    figure.AddSeriesPanel("ensemble score", snapshot.outcome.score_curve,
                          highlights);
  }
  return figure.ToSvg();
}

}  // namespace gva
