#ifndef GVA_TIMESERIES_IO_H_
#define GVA_TIMESERIES_IO_H_

#include <string>

#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace gva {

/// Loads a time series from one numeric column of a CSV/TSV file. The
/// series name is set to the file path.
StatusOr<TimeSeries> ReadTimeSeriesCsv(const std::string& path,
                                       size_t column = 0,
                                       char delimiter = ',');

/// Writes a time series as a single-column CSV.
Status WriteTimeSeriesCsv(const std::string& path, const TimeSeries& series);

}  // namespace gva

#endif  // GVA_TIMESERIES_IO_H_
