#include "timeseries/stats.h"

#include <cmath>
#include <limits>

namespace gva {

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double Min(std::span<const double> values) {
  double result = std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (v < result) {
      result = v;
    }
  }
  return result;
}

double Max(std::span<const double> values) {
  double result = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (v > result) {
      result = v;
    }
  }
  return result;
}

size_t ArgMin(std::span<const double> values) {
  size_t best = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[best]) {
      best = i;
    }
  }
  return best;
}

size_t ArgMax(std::span<const double> values) {
  size_t best = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) {
      best = i;
    }
  }
  return best;
}

}  // namespace gva
