#include "timeseries/znorm.h"

#include "timeseries/stats.h"

namespace gva {

void ZNormalize(std::span<const double> values, std::vector<double>& out,
                double epsilon) {
  out.resize(values.size());
  if (values.empty()) {
    return;
  }
  const double mean = Mean(values);
  const double sd = StdDev(values);
  if (sd < epsilon) {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = values[i] - mean;
    }
    return;
  }
  const double inv_sd = 1.0 / sd;
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - mean) * inv_sd;
  }
}

std::vector<double> ZNormalized(std::span<const double> values,
                                double epsilon) {
  std::vector<double> out;
  ZNormalize(values, out, epsilon);
  return out;
}

}  // namespace gva
