#ifndef GVA_TIMESERIES_TRANSFORMS_H_
#define GVA_TIMESERIES_TRANSFORMS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/statusor.h"

namespace gva {

/// Centered moving average with an odd window (edges use the available
/// prefix/suffix, so output length equals input length). Typical use:
/// taming sensor noise before discretization of very noisy data.
/// `window` must be odd and >= 1.
StatusOr<std::vector<double>> MovingAverage(std::span<const double> values,
                                            size_t window);

/// Keeps every `factor`-th sample (factor >= 1). Anomaly positions found on
/// the downsampled series map back as index * factor.
StatusOr<std::vector<double>> Downsample(std::span<const double> values,
                                         size_t factor);

/// Removes the least-squares linear trend. Useful before SAX when a global
/// drift would otherwise dominate every window's shape.
std::vector<double> Detrend(std::span<const double> values);

/// First difference: out[i] = values[i+1] - values[i] (length n-1). Turns
/// level anomalies into spike anomalies, a standard preprocessing trade.
std::vector<double> Difference(std::span<const double> values);

/// Clamps values to [lo, hi] — guard against sensor glitches that would
/// stretch the z-normalization of every window containing them.
std::vector<double> Clamp(std::span<const double> values, double lo,
                          double hi);

}  // namespace gva

#endif  // GVA_TIMESERIES_TRANSFORMS_H_
