#ifndef GVA_TIMESERIES_SLIDING_WINDOW_H_
#define GVA_TIMESERIES_SLIDING_WINDOW_H_

#include <cstddef>
#include <span>

#include "util/check.h"

namespace gva {

/// Number of length-`window` subsequences a series of length `m` yields
/// under sliding-window extraction (paper Section 2): m - window + 1, or 0
/// when the window does not fit.
inline size_t NumSlidingWindows(size_t m, size_t window) {
  GVA_DCHECK(window > 0);
  return m >= window ? m - window + 1 : 0;
}

/// View of the subsequence starting at `pos`.
inline std::span<const double> WindowAt(std::span<const double> series,
                                        size_t pos, size_t window) {
  GVA_DCHECK(pos + window <= series.size());
  return series.subspan(pos, window);
}

/// True when subsequences of length `length_p` at `p` and `q` would be
/// self-matches, i.e. |p - q| < length_p (paper Section 2, "Non-self
/// match" requires |p - q| >= n).
inline bool IsSelfMatch(size_t p, size_t q, size_t length_p) {
  size_t distance = p > q ? p - q : q - p;
  return distance < length_p;
}

}  // namespace gva

#endif  // GVA_TIMESERIES_SLIDING_WINDOW_H_
