#ifndef GVA_TIMESERIES_ZNORM_H_
#define GVA_TIMESERIES_ZNORM_H_

#include <span>
#include <vector>

namespace gva {

/// Standard-deviation threshold below which a subsequence is considered
/// flat. Matches the default used by GrammarViz / jmotif: z-normalizing a
/// near-constant window would amplify noise into spurious shape, so flat
/// windows are only mean-centered.
inline constexpr double kDefaultZNormEpsilon = 0.01;

/// Z-normalizes `values` into `out` (resized to match): subtracts the mean
/// and divides by the population standard deviation, unless the standard
/// deviation is below `epsilon`, in which case values are only mean-centered
/// (paper Section 2, "Z-normalization").
void ZNormalize(std::span<const double> values, std::vector<double>& out,
                double epsilon = kDefaultZNormEpsilon);

/// Convenience overload returning a fresh vector.
std::vector<double> ZNormalized(std::span<const double> values,
                                double epsilon = kDefaultZNormEpsilon);

}  // namespace gva

#endif  // GVA_TIMESERIES_ZNORM_H_
