#ifndef GVA_TIMESERIES_ROLLING_STATS_H_
#define GVA_TIMESERIES_ROLLING_STATS_H_

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace gva {

/// Safety factor applied on top of the machine epsilon in prefix-sum range
/// error bounds. The dominant term of a prefix-difference's divergence from
/// a naive range sum is one rounding of the larger prefix value
/// (eps * |prefix|); the accumulated rounding of both summations adds a
/// term that grows like sqrt(n) in practice. 4096 covers both with two
/// orders of magnitude to spare for every series this library targets
/// (|values| <= 1e9, n <= 1e8); the cost of being generous is only an
/// occasional fallback to the O(w) reference path in the SAX kernel.
/// Shared by RollingStats and the online prefix rings in
/// `sax/sax_transform.h` so both layers guard with identical bounds.
inline constexpr double kRangeSumErrFactor =
    4096.0 * std::numeric_limits<double>::epsilon();

/// Prefix-sum accelerator for per-window statistics over one series: after
/// an O(n) build, the sum, sum of squares, mean, and (population) variance
/// of any contiguous range cost O(1). This is the shared substrate of the
/// two hot kernels — sliding-window SAX discretization
/// (`sax/sax_transform.cc`) and the subsequence distance oracle
/// (`discord/distance.h`) — so both see the *same* floating-point values
/// for a given range.
///
/// Numerical contract: the prefix arrays are built by plain sequential
/// accumulation (no compensation, no reassociation), which keeps the
/// derived range sums bit-stable across builds and thread counts. A range
/// sum obtained as `prefix[p+len] - prefix[p]`, however, differs from the
/// naive left-to-right sum of the same range by rounding noise on the
/// order of eps * |prefix| — callers that must agree bit-for-bit with a
/// naively-summed reference (the SAX kernel) guard their decisions with
/// `RangeSumErrorBound()` and fall back to the reference when a decision
/// falls inside the bound.
class RollingStats {
 public:
  /// Builds the prefix arrays in one sequential pass. The span is only
  /// read during construction; it need not outlive the object.
  explicit RollingStats(std::span<const double> values);

  size_t size() const { return n_; }

  /// Sum over [pos, pos + len).
  double Sum(size_t pos, size_t len) const {
    return prefix_[pos + len] - prefix_[pos];
  }

  /// Sum of squares over [pos, pos + len).
  double SumSq(size_t pos, size_t len) const {
    return prefix_sq_[pos + len] - prefix_sq_[pos];
  }

  /// Mean and population variance of [pos, pos + len); the variance is
  /// clamped at zero (the one-pass identity sum_sq/n - mean^2 can go
  /// slightly negative on near-constant ranges).
  struct Moments {
    double mean;
    double variance;
  };
  Moments MomentsOf(size_t pos, size_t len) const;

  /// Conservative bound on |Sum(pos, len) - naive left-to-right sum of the
  /// same range|: rounding noise proportional to the magnitude of the
  /// prefix values the difference cancels, with a generous factor for the
  /// accumulation error both summations carry. Used by the SAX kernel to
  /// decide when a prefix-derived value is too close to a discretization
  /// breakpoint to trust.
  double RangeSumErrorBound(size_t pos, size_t len) const;

  /// Same bound for SumSq(pos, len).
  double RangeSumSqErrorBound(size_t pos, size_t len) const;

  /// The raw prefix-sum table (size() + 1 entries, PrefixSums()[i] = sum of
  /// the first i values). Exposed so batched kernels — the backend layer's
  /// PaaSegmentSums — can difference many ranges in one pass; each such
  /// difference is the identical single IEEE subtraction Sum() performs, so
  /// batching never changes a value.
  std::span<const double> PrefixSums() const { return prefix_; }

 private:
  size_t n_;
  std::vector<double> prefix_;     // prefix_[i] = values[0] + ... + values[i-1]
  std::vector<double> prefix_sq_;  // sums of squares
};

}  // namespace gva

#endif  // GVA_TIMESERIES_ROLLING_STATS_H_
