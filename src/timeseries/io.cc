#include "timeseries/io.h"

#include "util/csv.h"

namespace gva {

StatusOr<TimeSeries> ReadTimeSeriesCsv(const std::string& path, size_t column,
                                       char delimiter) {
  GVA_ASSIGN_OR_RETURN(std::vector<double> values,
                       ReadCsvColumn(path, column, delimiter));
  return TimeSeries(std::move(values), path);
}

Status WriteTimeSeriesCsv(const std::string& path, const TimeSeries& series) {
  return WriteCsvColumn(path, series.values());
}

}  // namespace gva
