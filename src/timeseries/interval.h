#ifndef GVA_TIMESERIES_INTERVAL_H_
#define GVA_TIMESERIES_INTERVAL_H_

#include <algorithm>
#include <cstddef>
#include <ostream>

namespace gva {

/// Half-open index interval [start, end) over a time series. Used for
/// grammar-rule spans, anomaly locations, and ground-truth annotations.
struct Interval {
  size_t start = 0;
  size_t end = 0;  ///< exclusive

  size_t length() const { return end > start ? end - start : 0; }
  bool empty() const { return end <= start; }

  bool Contains(size_t index) const { return index >= start && index < end; }

  bool Overlaps(const Interval& other) const {
    return !empty() && !other.empty() && start < other.end &&
           other.start < end;
  }

  /// Number of indices shared with `other`.
  size_t OverlapLength(const Interval& other) const {
    size_t lo = std::max(start, other.start);
    size_t hi = std::min(end, other.end);
    return hi > lo ? hi - lo : 0;
  }

  /// Intersection-over-union; 0 when either interval is empty.
  double Jaccard(const Interval& other) const {
    size_t inter = OverlapLength(other);
    size_t uni = length() + other.length() - inter;
    return uni == 0 ? 0.0
                    : static_cast<double>(inter) / static_cast<double>(uni);
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.start == b.start && a.end == b.end;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& i) {
  return os << "[" << i.start << ", " << i.end << ")";
}

}  // namespace gva

#endif  // GVA_TIMESERIES_INTERVAL_H_
