#ifndef GVA_TIMESERIES_TIME_SERIES_H_
#define GVA_TIMESERIES_TIME_SERIES_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gva {

/// An ordered set of scalar observations (paper Section 2), optionally
/// carrying a display name. The class is a thin, copyable value wrapper
/// around std::vector<double>; algorithms accept std::span<const double> so
/// plain vectors interoperate freely.
class TimeSeries {
 public:
  TimeSeries() = default;

  explicit TimeSeries(std::vector<double> values, std::string name = "")
      : values_(std::move(values)), name_(std::move(name)) {}

  TimeSeries(const TimeSeries&) = default;
  TimeSeries& operator=(const TimeSeries&) = default;
  TimeSeries(TimeSeries&&) = default;
  TimeSeries& operator=(TimeSeries&&) = default;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const {
    GVA_DCHECK(i < values_.size());
    return values_[i];
  }
  double& operator[](size_t i) {
    GVA_DCHECK(i < values_.size());
    return values_[i];
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Implicit view conversion so a TimeSeries can be passed wherever a span
  /// of values is expected.
  operator std::span<const double>() const {  // NOLINT(runtime/explicit)
    return std::span<const double>(values_);
  }

  std::span<const double> view() const {
    return std::span<const double>(values_);
  }

  /// Contiguous subsequence view of `length` points starting at `pos`
  /// (paper Section 2, "Subsequence"). Bounds-checked.
  std::span<const double> Subsequence(size_t pos, size_t length) const {
    GVA_CHECK(pos + length <= values_.size())
        << "subsequence [" << pos << ", " << pos + length << ") out of range "
        << values_.size();
    return std::span<const double>(values_).subspan(pos, length);
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::vector<double> values_;
  std::string name_;
};

}  // namespace gva

#endif  // GVA_TIMESERIES_TIME_SERIES_H_
