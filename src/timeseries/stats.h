#ifndef GVA_TIMESERIES_STATS_H_
#define GVA_TIMESERIES_STATS_H_

#include <span>

namespace gva {

/// Arithmetic mean. Returns 0 for an empty span.
double Mean(std::span<const double> values);

/// Population standard deviation (divides by N, as in the original SAX
/// papers and the GrammarViz implementation). Returns 0 for spans with
/// fewer than 1 element.
double StdDev(std::span<const double> values);

/// Population variance.
double Variance(std::span<const double> values);

/// Smallest element; +inf for an empty span.
double Min(std::span<const double> values);

/// Largest element; -inf for an empty span.
double Max(std::span<const double> values);

/// Index of the first smallest element; 0 for an empty span.
size_t ArgMin(std::span<const double> values);

/// Index of the first largest element; 0 for an empty span.
size_t ArgMax(std::span<const double> values);

}  // namespace gva

#endif  // GVA_TIMESERIES_STATS_H_
