#include "timeseries/rolling_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace gva {

RollingStats::RollingStats(std::span<const double> values)
    : n_(values.size()) {
  prefix_.resize(n_ + 1);
  prefix_sq_.resize(n_ + 1);
  prefix_[0] = 0.0;
  prefix_sq_[0] = 0.0;
  for (size_t i = 0; i < n_; ++i) {
    prefix_[i + 1] = prefix_[i] + values[i];
    prefix_sq_[i + 1] = prefix_sq_[i] + values[i] * values[i];
  }
}

RollingStats::Moments RollingStats::MomentsOf(size_t pos, size_t len) const {
  GVA_DCHECK(len > 0);
  GVA_DCHECK(pos + len <= n_);
  const double n = static_cast<double>(len);
  const double mean = Sum(pos, len) / n;
  double variance = SumSq(pos, len) / n - mean * mean;
  if (variance < 0.0) {  // numerical noise on near-constant ranges
    variance = 0.0;
  }
  return Moments{mean, variance};
}

double RollingStats::RangeSumErrorBound(size_t pos, size_t len) const {
  const double lo = std::abs(prefix_[pos]);
  const double hi = std::abs(prefix_[pos + len]);
  return kRangeSumErrFactor * std::max({1.0, lo, hi});
}

double RollingStats::RangeSumSqErrorBound(size_t pos, size_t len) const {
  const double lo = prefix_sq_[pos];
  const double hi = prefix_sq_[pos + len];
  return kRangeSumErrFactor * std::max({1.0, lo, hi});
}

}  // namespace gva
