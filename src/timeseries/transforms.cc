#include "timeseries/transforms.h"

#include <algorithm>

namespace gva {

StatusOr<std::vector<double>> MovingAverage(std::span<const double> values,
                                            size_t window) {
  if (window == 0 || window % 2 == 0) {
    return Status::InvalidArgument("moving-average window must be odd");
  }
  std::vector<double> out(values.size());
  if (values.empty()) {
    return out;
  }
  const size_t half = window / 2;
  // Prefix sums for O(1) range means.
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(values.size() - 1, i + half);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

StatusOr<std::vector<double>> Downsample(std::span<const double> values,
                                         size_t factor) {
  if (factor == 0) {
    return Status::InvalidArgument("downsample factor must be >= 1");
  }
  std::vector<double> out;
  out.reserve(values.size() / factor + 1);
  for (size_t i = 0; i < values.size(); i += factor) {
    out.push_back(values[i]);
  }
  return out;
}

std::vector<double> Detrend(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<double> out(n);
  if (n < 2) {
    std::copy(values.begin(), values.end(), out.begin());
    return out;
  }
  // Least squares y = a + b*x over x = 0..n-1.
  const double nx = static_cast<double>(n);
  const double sum_x = nx * (nx - 1.0) / 2.0;
  const double sum_xx = (nx - 1.0) * nx * (2.0 * nx - 1.0) / 6.0;
  double sum_y = 0.0;
  double sum_xy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum_y += values[i];
    sum_xy += static_cast<double>(i) * values[i];
  }
  const double denom = nx * sum_xx - sum_x * sum_x;
  const double b = denom != 0.0 ? (nx * sum_xy - sum_x * sum_y) / denom : 0.0;
  const double a = (sum_y - b * sum_x) / nx;
  for (size_t i = 0; i < n; ++i) {
    out[i] = values[i] - (a + b * static_cast<double>(i));
  }
  return out;
}

std::vector<double> Difference(std::span<const double> values) {
  std::vector<double> out;
  if (values.size() < 2) {
    return out;
  }
  out.reserve(values.size() - 1);
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    out.push_back(values[i + 1] - values[i]);
  }
  return out;
}

std::vector<double> Clamp(std::span<const double> values, double lo,
                          double hi) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(std::min(hi, std::max(lo, v)));
  }
  return out;
}

}  // namespace gva
