#include "backend/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace gva::backend {

namespace {

/// Records the selection in the metrics registry. Idempotent; under
/// -DGVA_OBS=OFF the gauge compiles to a no-op and selection costs nothing.
void AnnounceSelection(const KernelBackend* b) {
  obs::GlobalMetrics().gauge("backend.selected").Set(
      static_cast<int64_t>(b->id));
}

/// Resolves the GVA_BACKEND environment override, defaulting to "auto".
/// An unknown or unavailable value is a hard error: a run that asked for a
/// specific backend and silently got another would report wrong numbers.
const KernelBackend* SelectFromEnvironment() {
  const char* env = std::getenv("GVA_BACKEND");
  const std::string_view name =
      (env == nullptr || env[0] == '\0') ? std::string_view("auto") : env;
  const KernelBackend* b = FindBackend(name);
  if (b == nullptr) {
    std::string have;
    for (const KernelBackend* avail : AvailableBackends()) {
      if (!have.empty()) {
        have += ", ";
      }
      have += avail->name;
    }
    std::fprintf(stderr,
                 "gva: GVA_BACKEND='%.*s' is not a usable backend on this "
                 "host (available: %s, auto)\n",
                 static_cast<int>(name.size()), name.data(), have.c_str());
    std::abort();
  }
  return b;
}

std::atomic<const KernelBackend*>& ActiveSlot() {
  static std::atomic<const KernelBackend*> slot{nullptr};
  return slot;
}

}  // namespace

#if !defined(GVA_BACKEND_AVX2)
const KernelBackend* Avx2Backend() { return nullptr; }
#endif

#if !defined(GVA_BACKEND_NEON)
const KernelBackend* NeonBackend() { return nullptr; }
#endif

std::vector<const KernelBackend*> AvailableBackends() {
  std::vector<const KernelBackend*> backends;
  if (const KernelBackend* b = Avx2Backend()) {
    backends.push_back(b);
  }
  if (const KernelBackend* b = NeonBackend()) {
    backends.push_back(b);
  }
  backends.push_back(ScalarBackend());
  return backends;
}

const KernelBackend* FindBackend(std::string_view name) {
  if (name == "auto") {
    return AvailableBackends().front();
  }
  for (const KernelBackend* b : AvailableBackends()) {
    if (name == b->name) {
      return b;
    }
  }
  return nullptr;
}

const KernelBackend& ActiveBackend() {
  std::atomic<const KernelBackend*>& slot = ActiveSlot();
  const KernelBackend* b = slot.load(std::memory_order_acquire);
  if (b == nullptr) {
    // First use. Two threads racing here resolve the same environment to
    // the same table and both store it — benign, and the slot is atomic.
    b = SelectFromEnvironment();
    AnnounceSelection(b);
    slot.store(b, std::memory_order_release);
  }
  return *b;
}

Status SetActiveBackend(std::string_view name) {
  const KernelBackend* b = FindBackend(name);
  if (b == nullptr) {
    std::string have = "auto";
    for (const KernelBackend* avail : AvailableBackends()) {
      have += ", ";
      have += avail->name;
    }
    return Status::InvalidArgument("unknown or unavailable backend '" +
                                   std::string(name) + "' (available: " +
                                   have + ")");
  }
  AnnounceSelection(b);
  ActiveSlot().store(b, std::memory_order_release);
  return Status::Ok();
}

void AnnounceActiveBackend() { AnnounceSelection(&ActiveBackend()); }

}  // namespace gva::backend
