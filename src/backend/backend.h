#ifndef GVA_BACKEND_BACKEND_H_
#define GVA_BACKEND_BACKEND_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gva::backend {

/// Elements per abandon-check block of the z-normalized distance kernel.
/// Every backend — scalar or SIMD — checks the abandon limit at exactly
/// this granularity, so the set of abandoned calls is backend-independent
/// wherever the accumulated sums agree (see DESIGN.md §11 for the one
/// tolerance-bounded exception). SubsequenceDistance::kBlock aliases this.
inline constexpr size_t kDistanceBlock = 16;

/// Stable identifiers exported through the `backend.selected` gauge.
/// Gauge value 0 means "no backend selected yet", so ids start at 1.
enum class BackendId : int { kScalar = 1, kAvx2 = 2, kNeon = 3 };

/// A table of kernel implementations plus capability metadata — the
/// ggml-style seam between the algorithm layer (discord searches, SAX
/// substrate) and hardware-specific code. All raw SIMD intrinsics in the
/// tree live behind this table, under src/backend/ (enforced by the
/// `simd-intrinsics` lint rule). A future GPU/OpenCL backend is one more
/// table (plus staging buffers), not a rewrite of the call sites.
struct KernelBackend {
  /// Stable lowercase name ("scalar", "avx2", "neon") — the vocabulary of
  /// GVA_BACKEND / --backend and of kernel_bench row suffixes.
  const char* name;
  BackendId id;
  /// Doubles processed per SIMD lane-group (1 for scalar, 4 for AVX2,
  /// 2 for NEON). Diagnostic only.
  size_t lanes;
  /// True when znorm_distance_block reproduces the scalar backend's strict
  /// left-to-right summation order bit-for-bit. The SIMD backends fold
  /// lane-parallel partial sums instead — the one documented exception to
  /// the repo's bit-exactness contract (DESIGN.md §11); their results are
  /// tolerance-tested against scalar. paa_segment_sums is bit-exact in
  /// every backend (each output is a single IEEE subtraction).
  bool bit_exact_distance;

  /// Fused z-normalized squared-Euclidean pass over a[0..length) and
  /// b[0..length): accumulates ((a[i]-mean_a)*inv_a - (b[i]-mean_b)*inv_b)^2
  /// with an abandon check against `limit_sq` once per kDistanceBlock
  /// elements plus once after the tail. Passing limit_sq == +infinity
  /// disables the checks (full-length path). Returns true when the scan
  /// completed — *sum_sq then holds the squared distance — and false when
  /// the running sum reached limit_sq (early abandon; *sum_sq untouched).
  /// Within one backend the full-length and abandoning paths use the same
  /// accumulation structure, so a non-abandoned limited call returns the
  /// same bits as the unlimited call.
  bool (*znorm_distance_block)(const double* a, const double* b,
                               size_t length, double mean_a, double inv_a,
                               double mean_b, double inv_b, double limit_sq,
                               double* sum_sq);

  /// PAA segment sums from a prefix-sum table: for j in [0, segments),
  /// out[j] = prefix[(j + 1) * step] - prefix[j * step]. One IEEE
  /// subtraction per output, so results are bit-identical across backends
  /// and the SAX guarded-fallback contract is unaffected by dispatch.
  void (*paa_segment_sums)(const double* prefix, size_t segments,
                           size_t step, double* out);
};

/// The portable reference backend. Always available; its summation order is
/// the contract every test oracle pins.
const KernelBackend* ScalarBackend();

/// The AVX2+FMA backend. Null when the binary was built without AVX2
/// support or the CPU lacks avx2/fma.
const KernelBackend* Avx2Backend();

/// The NEON backend. Null off aarch64.
const KernelBackend* NeonBackend();

/// Available backends in auto-selection preference order (fastest first,
/// scalar always last). Never empty.
std::vector<const KernelBackend*> AvailableBackends();

/// Resolves "scalar" / "avx2" / "neon" / "auto" to a backend. Returns null
/// for unknown names and for backends this host cannot run.
const KernelBackend* FindBackend(std::string_view name);

/// The process-wide active backend used by default-constructed oracles and
/// discretizers. Resolved once on first use: GVA_BACKEND=scalar|avx2|neon|
/// auto when set (an unknown or unavailable value aborts loudly — a forced
/// backend silently falling back would invalidate a benchmark), otherwise
/// "auto". Selection records the backend's id in the `backend.selected`
/// gauge. Thread-safe.
const KernelBackend& ActiveBackend();

/// Programmatic override (the --backend CLI/bench flag). Accepts the same
/// vocabulary as GVA_BACKEND; InvalidArgument for unknown/unavailable
/// names. Affects oracles constructed afterwards, not ones already holding
/// the previous backend.
Status SetActiveBackend(std::string_view name);

/// Re-records the active backend's id in the `backend.selected` gauge,
/// resolving the backend if it has not been used yet. Selection announces
/// itself, but a metrics reset — obs::ObsSession's constructor clears
/// every gauge — erases that record; call this after starting a session so
/// the exported snapshot still names the backend in use.
void AnnounceActiveBackend();

}  // namespace gva::backend

#endif  // GVA_BACKEND_BACKEND_H_
