// AVX2+FMA backend. This is the only x86 translation unit compiled with
// -mavx2 -mfma (per-file, see src/CMakeLists.txt), so the rest of the tree
// stays baseline-ISA and the binary still runs on pre-AVX2 hardware — the
// table below is handed out only after a runtime cpuid check.
//
// The distance kernel accumulates into four independent 4-lane FMA
// accumulators (one per quarter of each 16-element block) instead of the
// scalar backend's strict left-to-right fold. That breaks the serial
// FP-add dependency chain that bounds the scalar kernel — the whole point
// of this backend — at the cost of a different (fixed, deterministic)
// summation order: results differ from scalar by rounding noise only and
// are tolerance-tested, the one documented exception to the bit-exactness
// contract (DESIGN.md §11). The full-length and abandoning paths share the
// same accumulator structure, fold order, and scalar tail, so within this
// backend a non-abandoned limited call returns the same bits as the
// unlimited call, and results are reproducible across runs and thread
// counts. The per-16-block abandon check folds the current accumulators
// without disturbing them; squared terms are non-negative and
// round-to-nearest addition is monotone, so the folded running sum is
// monotone and block-granular abandoning stays conservative-exact with
// respect to this backend's own completed sums.

#if defined(GVA_BACKEND_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <limits>

#include "backend/backend.h"

namespace gva::backend {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Folds the four accumulators in a fixed order: lane-wise
/// (acc0 + acc1) + (acc2 + acc3), then (low128 + high128), then the two
/// remaining lanes. Every completed-sum and abandon-check fold uses this
/// exact order, which is what makes results within this backend
/// deterministic.
inline double FoldSum(__m256d acc0, __m256d acc1, __m256d acc2,
                      __m256d acc3) {
  const __m256d v =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

/// One 4-lane quarter of a block: acc += ((a-ma)*ia - (b-mb)*ib)^2.
inline __m256d Quarter(const double* a, const double* b, __m256d ma,
                       __m256d ia, __m256d mb, __m256d ib, __m256d acc) {
  const __m256d va = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(a), ma), ia);
  const __m256d vb = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(b), mb), ib);
  const __m256d d = _mm256_sub_pd(va, vb);
  return _mm256_fmadd_pd(d, d, acc);
}

bool Avx2ZNormDistanceBlock(const double* a, const double* b, size_t length,
                            double mean_a, double inv_a, double mean_b,
                            double inv_b, double limit_sq, double* sum_sq) {
  const __m256d ma = _mm256_set1_pd(mean_a);
  const __m256d ia = _mm256_set1_pd(inv_a);
  const __m256d mb = _mm256_set1_pd(mean_b);
  const __m256d ib = _mm256_set1_pd(inv_b);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;

  if (limit_sq == kInf) {
    for (; i + kDistanceBlock <= length; i += kDistanceBlock) {
      acc0 = Quarter(a + i, b + i, ma, ia, mb, ib, acc0);
      acc1 = Quarter(a + i + 4, b + i + 4, ma, ia, mb, ib, acc1);
      acc2 = Quarter(a + i + 8, b + i + 8, ma, ia, mb, ib, acc2);
      acc3 = Quarter(a + i + 12, b + i + 12, ma, ia, mb, ib, acc3);
    }
  } else {
    for (; i + kDistanceBlock <= length; i += kDistanceBlock) {
      acc0 = Quarter(a + i, b + i, ma, ia, mb, ib, acc0);
      acc1 = Quarter(a + i + 4, b + i + 4, ma, ia, mb, ib, acc1);
      acc2 = Quarter(a + i + 8, b + i + 8, ma, ia, mb, ib, acc2);
      acc3 = Quarter(a + i + 12, b + i + 12, ma, ia, mb, ib, acc3);
      if (FoldSum(acc0, acc1, acc2, acc3) >= limit_sq) {
        return false;
      }
    }
  }

  // Scalar tail (identical in both paths; lengths < kDistanceBlock never
  // enter the vector loop, so they are bit-identical to the scalar
  // backend). Folding the accumulators before the tail keeps the tail
  // contributions in the same left-to-right order as scalar.
  double sum = FoldSum(acc0, acc1, acc2, acc3);
  for (; i < length; ++i) {
    const double va = (a[i] - mean_a) * inv_a;
    const double vb = (b[i] - mean_b) * inv_b;
    const double d = va - vb;
    sum += d * d;
  }
  if (limit_sq != kInf && sum >= limit_sq) {
    return false;
  }
  *sum_sq = sum;
  return true;
}

void Avx2PaaSegmentSums(const double* prefix, size_t segments, size_t step,
                        double* out) {
  const long long s = static_cast<long long>(step);
  size_t j = 0;
  for (; j + 4 <= segments; j += 4) {
    const long long base = static_cast<long long>(j) * s;
    // Segment starts are `step` apart in the prefix table; the matching
    // segment ends are the same indices off prefix + step. Lane-wise
    // subtraction, so each output is the identical single IEEE subtraction
    // the scalar backend performs — bit-exact by construction.
    const __m256i idx =
        _mm256_set_epi64x(base + 3 * s, base + 2 * s, base + s, base);
    const __m256d lo = _mm256_i64gather_pd(prefix, idx, 8);
    const __m256d hi = _mm256_i64gather_pd(prefix + step, idx, 8);
    _mm256_storeu_pd(out + j, _mm256_sub_pd(hi, lo));
  }
  for (; j < segments; ++j) {
    out[j] = prefix[(j + 1) * step] - prefix[j * step];
  }
}

}  // namespace

const KernelBackend* Avx2Backend() {
  // Runtime gate: the TU is compiled with AVX2 enabled, but the binary may
  // run on an older CPU. Never hand out a table the host cannot execute.
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
    return nullptr;
  }
  static constexpr KernelBackend kTable{
      /*name=*/"avx2",
      /*id=*/BackendId::kAvx2,
      /*lanes=*/4,
      /*bit_exact_distance=*/false,
      /*znorm_distance_block=*/&Avx2ZNormDistanceBlock,
      /*paa_segment_sums=*/&Avx2PaaSegmentSums,
  };
  return &kTable;
}

}  // namespace gva::backend

#endif  // GVA_BACKEND_AVX2
