// The portable reference backend: the blocked kernel that previously lived
// inline in discord/distance.cc, moved verbatim. Its strict left-to-right
// block-fold order defines the repo's bit-exactness contract — every other
// backend is validated against this one (bitwise where the table says
// bit_exact_distance, within tolerance otherwise; see DESIGN.md §11).

#include <cstddef>
#include <limits>

#include "backend/backend.h"

namespace gva::backend {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Writes the squared z-normalized differences of a[0..count) and
/// b[0..count) into out[0..count). Branch-free with independent iterations,
/// so the compiler can vectorize it under the baseline ISA; the caller
/// folds `out` into its running sum left-to-right, which keeps the overall
/// summation order identical to a plain scalar loop's.
inline void SquaredDiffBlock(const double* a, const double* b, size_t count,
                             double mean_a, double inv_a, double mean_b,
                             double inv_b, double* out) {
  for (size_t i = 0; i < count; ++i) {
    const double va = (a[i] - mean_a) * inv_a;
    const double vb = (b[i] - mean_b) * inv_b;
    const double d = va - vb;
    out[i] = d * d;
  }
}

bool ScalarZNormDistanceBlock(const double* a, const double* b,
                              size_t length, double mean_a, double inv_a,
                              double mean_b, double inv_b, double limit_sq,
                              double* sum_sq) {
  double block[kDistanceBlock];
  double sum = 0.0;
  size_t i = 0;

  if (limit_sq == kInf) {
    // Full-length fast path: no abandon checks at all.
    for (; i + kDistanceBlock <= length; i += kDistanceBlock) {
      SquaredDiffBlock(a + i, b + i, kDistanceBlock, mean_a, inv_a, mean_b,
                       inv_b, block);
      for (size_t j = 0; j < kDistanceBlock; ++j) {
        sum += block[j];
      }
    }
    const size_t tail = length - i;
    SquaredDiffBlock(a + i, b + i, tail, mean_a, inv_a, mean_b, inv_b,
                     block);
    for (size_t j = 0; j < tail; ++j) {
      sum += block[j];
    }
    *sum_sq = sum;
    return true;
  }

  // Abandoning path: the limit is checked once per block. The squared
  // terms are non-negative, so the running sum is monotone and the
  // block-granular check abandons exactly the calls a per-element check
  // would (possibly a few elements later).
  for (; i + kDistanceBlock <= length; i += kDistanceBlock) {
    SquaredDiffBlock(a + i, b + i, kDistanceBlock, mean_a, inv_a, mean_b,
                     inv_b, block);
    for (size_t j = 0; j < kDistanceBlock; ++j) {
      sum += block[j];
    }
    if (sum >= limit_sq) {
      return false;
    }
  }
  const size_t tail = length - i;
  SquaredDiffBlock(a + i, b + i, tail, mean_a, inv_a, mean_b, inv_b, block);
  for (size_t j = 0; j < tail; ++j) {
    sum += block[j];
  }
  if (sum >= limit_sq) {
    return false;
  }
  *sum_sq = sum;
  return true;
}

void ScalarPaaSegmentSums(const double* prefix, size_t segments, size_t step,
                          double* out) {
  for (size_t j = 0; j < segments; ++j) {
    out[j] = prefix[(j + 1) * step] - prefix[j * step];
  }
}

}  // namespace

const KernelBackend* ScalarBackend() {
  static constexpr KernelBackend kTable{
      /*name=*/"scalar",
      /*id=*/BackendId::kScalar,
      /*lanes=*/1,
      /*bit_exact_distance=*/true,
      /*znorm_distance_block=*/&ScalarZNormDistanceBlock,
      /*paa_segment_sums=*/&ScalarPaaSegmentSums,
  };
  return &kTable;
}

}  // namespace gva::backend
