// NEON (aarch64) backend. ASIMD with double-precision lanes is mandatory
// on AArch64, so the only runtime gate is a hwcap sanity check on Linux.
// Structure mirrors the AVX2 backend at half the lane width: four
// independent 2-lane FMA accumulators, one per quarter of each 16-element
// block (two fused multiply-adds per quarter), a fixed fold order, and a
// scalar tail shared by the full-length and abandoning paths. Like AVX2,
// the lane-parallel accumulation is the documented tolerance-bounded
// exception to the scalar bit-exactness contract (DESIGN.md §11).
//
// paa_segment_sums stays scalar here: the strided prefix reads would need
// lane-by-lane gathers on NEON, which measure no better than the scalar
// loop for the small segment counts SAX uses. It is bit-exact either way.

#if defined(GVA_BACKEND_NEON)

#include <arm_neon.h>

#include <cstddef>
#include <limits>

#if defined(__linux__)
#include <sys/auxv.h>
#endif

#include "backend/backend.h"

namespace gva::backend {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fixed fold order: lane-wise (acc0 + acc1) + (acc2 + acc3), then
/// lane 0 + lane 1.
inline double FoldSum(float64x2_t acc0, float64x2_t acc1, float64x2_t acc2,
                      float64x2_t acc3) {
  const float64x2_t v =
      vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3));
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}

/// One 4-element quarter of a block as two 2-lane fused multiply-adds:
/// acc += ((a-ma)*ia - (b-mb)*ib)^2.
inline float64x2_t Quarter(const double* a, const double* b, float64x2_t ma,
                           float64x2_t ia, float64x2_t mb, float64x2_t ib,
                           float64x2_t acc) {
  const float64x2_t va0 = vmulq_f64(vsubq_f64(vld1q_f64(a), ma), ia);
  const float64x2_t vb0 = vmulq_f64(vsubq_f64(vld1q_f64(b), mb), ib);
  const float64x2_t d0 = vsubq_f64(va0, vb0);
  acc = vfmaq_f64(acc, d0, d0);
  const float64x2_t va1 = vmulq_f64(vsubq_f64(vld1q_f64(a + 2), ma), ia);
  const float64x2_t vb1 = vmulq_f64(vsubq_f64(vld1q_f64(b + 2), mb), ib);
  const float64x2_t d1 = vsubq_f64(va1, vb1);
  return vfmaq_f64(acc, d1, d1);
}

bool NeonZNormDistanceBlock(const double* a, const double* b, size_t length,
                            double mean_a, double inv_a, double mean_b,
                            double inv_b, double limit_sq, double* sum_sq) {
  const float64x2_t ma = vdupq_n_f64(mean_a);
  const float64x2_t ia = vdupq_n_f64(inv_a);
  const float64x2_t mb = vdupq_n_f64(mean_b);
  const float64x2_t ib = vdupq_n_f64(inv_b);
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  size_t i = 0;

  if (limit_sq == kInf) {
    for (; i + kDistanceBlock <= length; i += kDistanceBlock) {
      acc0 = Quarter(a + i, b + i, ma, ia, mb, ib, acc0);
      acc1 = Quarter(a + i + 4, b + i + 4, ma, ia, mb, ib, acc1);
      acc2 = Quarter(a + i + 8, b + i + 8, ma, ia, mb, ib, acc2);
      acc3 = Quarter(a + i + 12, b + i + 12, ma, ia, mb, ib, acc3);
    }
  } else {
    for (; i + kDistanceBlock <= length; i += kDistanceBlock) {
      acc0 = Quarter(a + i, b + i, ma, ia, mb, ib, acc0);
      acc1 = Quarter(a + i + 4, b + i + 4, ma, ia, mb, ib, acc1);
      acc2 = Quarter(a + i + 8, b + i + 8, ma, ia, mb, ib, acc2);
      acc3 = Quarter(a + i + 12, b + i + 12, ma, ia, mb, ib, acc3);
      if (FoldSum(acc0, acc1, acc2, acc3) >= limit_sq) {
        return false;
      }
    }
  }

  // Scalar tail, identical in both paths; lengths < kDistanceBlock never
  // enter the vector loop and are bit-identical to the scalar backend.
  double sum = FoldSum(acc0, acc1, acc2, acc3);
  for (; i < length; ++i) {
    const double va = (a[i] - mean_a) * inv_a;
    const double vb = (b[i] - mean_b) * inv_b;
    const double d = va - vb;
    sum += d * d;
  }
  if (limit_sq != kInf && sum >= limit_sq) {
    return false;
  }
  *sum_sq = sum;
  return true;
}

void NeonPaaSegmentSums(const double* prefix, size_t segments, size_t step,
                        double* out) {
  for (size_t j = 0; j < segments; ++j) {
    out[j] = prefix[(j + 1) * step] - prefix[j * step];
  }
}

bool NeonAvailable() {
#if defined(__linux__) && defined(HWCAP_ASIMD)
  return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  // ASIMD is architecturally mandatory on AArch64.
  return true;
#endif
}

}  // namespace

const KernelBackend* NeonBackend() {
  if (!NeonAvailable()) {
    return nullptr;
  }
  static constexpr KernelBackend kTable{
      /*name=*/"neon",
      /*id=*/BackendId::kNeon,
      /*lanes=*/2,
      /*bit_exact_distance=*/false,
      /*znorm_distance_block=*/&NeonZNormDistanceBlock,
      /*paa_segment_sums=*/&NeonPaaSegmentSums,
  };
  return &kTable;
}

}  // namespace gva::backend

#endif  // GVA_BACKEND_NEON
