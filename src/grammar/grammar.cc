#include "grammar/grammar.h"

namespace gva {

std::vector<int32_t> Grammar::ExpandToTerminals(size_t rule_index) const {
  GVA_CHECK_LT(rule_index, rules_.size());
  std::vector<int32_t> out;
  out.reserve(rules_[rule_index].expansion_tokens);
  // Iterative DFS over RHS positions to avoid deep recursion on long rule
  // chains.
  struct Frame {
    size_t rule;
    size_t pos;
  };
  std::vector<Frame> stack;
  stack.push_back({rule_index, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    const GrammarRule& r = rules_[top.rule];
    if (top.pos >= r.rhs.size()) {
      stack.pop_back();
      continue;
    }
    const GrammarSymbol& sym = r.rhs[top.pos];
    ++top.pos;
    if (sym.is_terminal) {
      out.push_back(sym.id);
    } else {
      GVA_DCHECK(static_cast<size_t>(sym.id) < rules_.size());
      stack.push_back({static_cast<size_t>(sym.id), 0});
    }
  }
  return out;
}

}  // namespace gva
