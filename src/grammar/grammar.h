#ifndef GVA_GRAMMAR_GRAMMAR_H_
#define GVA_GRAMMAR_GRAMMAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace gva {

/// One right-hand-side entry of a grammar rule: either a terminal token
/// (vocabulary id) or a reference to another rule (rule index).
struct GrammarSymbol {
  bool is_terminal = true;
  int32_t id = 0;  ///< terminal: vocabulary id; non-terminal: rule index

  friend bool operator==(const GrammarSymbol& a, const GrammarSymbol& b) {
    return a.is_terminal == b.is_terminal && a.id == b.id;
  }
};

/// A context-free grammar rule R<id> -> rhs. Because Sequitur reduces each
/// repeated digram to a single non-terminal, every rule other than R0 is
/// used at least twice (the utility constraint).
struct GrammarRule {
  /// Rule number; 0 is the top-level rule R0 whose expansion is the input.
  int32_t id = 0;
  std::vector<GrammarSymbol> rhs;
  /// Number of non-terminal symbols referencing this rule across all
  /// right-hand sides (0 for R0, >= 2 for all other rules — Sequitur's
  /// utility constraint). Note this is the *static* count; the number of
  /// occurrences in R0's full expansion is occurrences.size(), which can be
  /// larger when the rule is referenced from inside other repeated rules.
  size_t use_count = 0;
  /// Length of the rule's expansion in terminal tokens.
  size_t expansion_tokens = 0;
  /// Start token index (in the input token sequence) of every occurrence of
  /// this rule in R0's expansion, ascending. Each occurrence spans
  /// exactly `expansion_tokens` tokens. For R0 this is {0}.
  std::vector<size_t> occurrences;
};

/// The context-free grammar produced by Sequitur over an integer token
/// sequence. Rule 0 is the start rule; its expansion reproduces the input
/// exactly.
class Grammar {
 public:
  Grammar() = default;
  Grammar(std::vector<GrammarRule> rules, size_t num_tokens)
      : rules_(std::move(rules)), num_tokens_(num_tokens) {}

  const std::vector<GrammarRule>& rules() const { return rules_; }
  const GrammarRule& rule(size_t index) const {
    GVA_CHECK_LT(index, rules_.size());
    return rules_[index];
  }
  /// Number of rules including R0.
  size_t size() const { return rules_.size(); }
  /// Length of the input token sequence (== R0's expansion length).
  size_t num_tokens() const { return num_tokens_; }

  /// Fully expands rule `rule_index` to terminal token ids.
  std::vector<int32_t> ExpandToTerminals(size_t rule_index) const;

 private:
  std::vector<GrammarRule> rules_;
  size_t num_tokens_ = 0;
};

}  // namespace gva

#endif  // GVA_GRAMMAR_GRAMMAR_H_
