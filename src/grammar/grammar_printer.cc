#include "grammar/grammar_printer.h"

#include <sstream>

#include "util/strings.h"

namespace gva {

std::string RuleRhsToString(const WordGrammar& wg, size_t rule_index) {
  const GrammarRule& rule = wg.grammar.rule(rule_index);
  std::vector<std::string> parts;
  parts.reserve(rule.rhs.size());
  for (const GrammarSymbol& sym : rule.rhs) {
    if (sym.is_terminal) {
      parts.push_back(wg.WordOf(sym.id));
    } else {
      parts.push_back(StrFormat("R%d", sym.id));
    }
  }
  return Join(parts, " ");
}

std::string RuleExpansionToString(const WordGrammar& wg, size_t rule_index) {
  std::vector<int32_t> terminals = wg.grammar.ExpandToTerminals(rule_index);
  std::vector<std::string> parts;
  parts.reserve(terminals.size());
  for (int32_t t : terminals) {
    parts.push_back(wg.WordOf(t));
  }
  return Join(parts, " ");
}

std::string GrammarToString(const WordGrammar& wg, bool verbose) {
  std::ostringstream out;
  for (size_t i = 0; i < wg.grammar.size(); ++i) {
    out << StrFormat("R%zu -> %s", i, RuleRhsToString(wg, i).c_str());
    if (verbose) {
      const GrammarRule& rule = wg.grammar.rule(i);
      out << StrFormat("   [use=%zu, tokens=%zu]", rule.use_count,
                       rule.expansion_tokens);
      if (i != 0) {
        out << "   (" << RuleExpansionToString(wg, i) << ")";
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace gva
