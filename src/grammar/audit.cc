#include "grammar/audit.h"

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gva {
namespace {

std::string RulePos(size_t rule, size_t pos) {
  // Appended piecewise: gcc 12 mis-fires -Wrestrict on chained string
  // operator+ at -O2 (PR105651).
  std::string out = "R";
  out += std::to_string(rule);
  out += '[';
  out += std::to_string(pos);
  out += ']';
  return out;
}

/// Stable identity of a symbol for digram comparison: terminals and rule
/// references live in disjoint key spaces.
uint64_t SymbolId(const GrammarSymbol& s) {
  return s.is_terminal ? (static_cast<uint64_t>(s.id) << 1) | 1u
                       : static_cast<uint64_t>(s.id) << 1;
}

Status AuditStructure(const Grammar& grammar) {
  const auto& rules = grammar.rules();
  if (rules.empty()) {
    return Status::FailedPrecondition("grammar audit: no rules (R0 missing)");
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id != static_cast<int32_t>(i)) {
      return Status::FailedPrecondition(
          "grammar audit: rule at index " + std::to_string(i) +
          " has id " + std::to_string(rules[i].id) + " (ids must be dense)");
    }
    for (size_t p = 0; p < rules[i].rhs.size(); ++p) {
      const GrammarSymbol& sym = rules[i].rhs[p];
      if (sym.is_terminal) {
        if (sym.id < 0) {
          return Status::FailedPrecondition(
              "grammar audit: negative terminal at " + RulePos(i, p));
        }
        continue;
      }
      if (sym.id <= 0 || static_cast<size_t>(sym.id) >= rules.size()) {
        std::string msg = "grammar audit: reference to R";
        msg += std::to_string(sym.id);
        msg += " at ";
        msg += RulePos(i, p);
        msg += sym.id == 0 ? " (the start rule is never referenced)"
                           : " (out of range)";
        return Status::FailedPrecondition(std::move(msg));
      }
    }
  }
  return Status::Ok();
}

Status AuditDigramUniqueness(const Grammar& grammar) {
  // Sequitur's first invariant: a digram (pair of adjacent symbols) occurs
  // at most once across all right-hand sides — except for the overlapping
  // repeat inside a run "x x x", which the algorithm deliberately skips
  // (folding it would consume the shared middle symbol twice).
  struct Occurrence {
    size_t rule;
    size_t pos;
  };
  std::map<std::pair<uint64_t, uint64_t>, std::vector<Occurrence>> digrams;
  const auto& rules = grammar.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const auto& rhs = rules[i].rhs;
    for (size_t p = 0; p + 1 < rhs.size(); ++p) {
      digrams[{SymbolId(rhs[p]), SymbolId(rhs[p + 1])}].push_back({i, p});
    }
  }
  for (const auto& [key, occurrences] : digrams) {
    for (size_t a = 0; a < occurrences.size(); ++a) {
      for (size_t b = a + 1; b < occurrences.size(); ++b) {
        const bool overlapping =
            occurrences[a].rule == occurrences[b].rule &&
            occurrences[b].pos - occurrences[a].pos == 1;
        if (!overlapping) {
          return Status::FailedPrecondition(
              "grammar audit: digram uniqueness violated — digram at " +
              RulePos(occurrences[a].rule, occurrences[a].pos) +
              " repeats at " +
              RulePos(occurrences[b].rule, occurrences[b].pos));
        }
      }
    }
  }
  return Status::Ok();
}

Status AuditRuleUtility(const Grammar& grammar) {
  // Sequitur's second invariant: every rule except R0 is referenced at
  // least twice (a once-used rule would have been inlined), and the stored
  // use_count is the true reference count.
  const auto& rules = grammar.rules();
  std::vector<size_t> references(rules.size(), 0);
  for (const GrammarRule& rule : rules) {
    for (const GrammarSymbol& sym : rule.rhs) {
      if (!sym.is_terminal) {
        ++references[static_cast<size_t>(sym.id)];
      }
    }
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].use_count != references[i]) {
      return Status::FailedPrecondition(
          "grammar audit: R" + std::to_string(i) + " stores use_count " +
          std::to_string(rules[i].use_count) + " but is referenced " +
          std::to_string(references[i]) + " time(s)");
    }
    if (i == 0 && references[i] != 0) {
      return Status::FailedPrecondition(
          "grammar audit: R0 is referenced " + std::to_string(references[i]) +
          " time(s); the start rule must never be referenced");
    }
    if (i > 0 && references[i] < 2) {
      return Status::FailedPrecondition(
          "grammar audit: rule utility violated — R" + std::to_string(i) +
          " is referenced " + std::to_string(references[i]) +
          " time(s) (must be >= 2, or inlined away)");
    }
  }
  return Status::Ok();
}

Status AuditRoundTrip(const Grammar& grammar,
                      std::span<const int32_t> tokens) {
  if (grammar.num_tokens() != tokens.size()) {
    return Status::FailedPrecondition(
        "grammar audit: num_tokens() is " +
        std::to_string(grammar.num_tokens()) + " but the input has " +
        std::to_string(tokens.size()) + " token(s)");
  }
  const std::vector<int32_t> expansion = grammar.ExpandToTerminals(0);
  if (expansion.size() != tokens.size()) {
    return Status::FailedPrecondition(
        "grammar audit: R0 expands to " + std::to_string(expansion.size()) +
        " token(s), input has " + std::to_string(tokens.size()));
  }
  for (size_t t = 0; t < tokens.size(); ++t) {
    if (expansion[t] != tokens[t]) {
      return Status::FailedPrecondition(
          "grammar audit: round-trip mismatch at token " + std::to_string(t) +
          ": expansion has " + std::to_string(expansion[t]) + ", input has " +
          std::to_string(tokens[t]));
    }
  }
  return Status::Ok();
}

Status AuditCoveragePartition(const Grammar& grammar,
                              std::span<const int32_t> tokens) {
  const auto& rules = grammar.rules();
  const size_t n = grammar.num_tokens();

  // Per rule: expansion length bookkeeping, occurrence ordering/bounds, and
  // every occurrence matching the input at its claimed position.
  for (size_t i = 0; i < rules.size(); ++i) {
    const GrammarRule& rule = rules[i];
    const std::vector<int32_t> expansion = grammar.ExpandToTerminals(i);
    if (expansion.size() != rule.expansion_tokens) {
      return Status::FailedPrecondition(
          "grammar audit: R" + std::to_string(i) + " claims " +
          std::to_string(rule.expansion_tokens) +
          " expansion token(s) but expands to " +
          std::to_string(expansion.size()));
    }
    if (rule.occurrences.empty()) {
      return Status::FailedPrecondition(
          "grammar audit: R" + std::to_string(i) + " has no occurrences");
    }
    for (size_t o = 0; o < rule.occurrences.size(); ++o) {
      const size_t start = rule.occurrences[o];
      if (o > 0 && start <= rule.occurrences[o - 1]) {
        return Status::FailedPrecondition(
            "grammar audit: occurrences of R" + std::to_string(i) +
            " are not strictly ascending");
      }
      if (start + rule.expansion_tokens > n) {
        return Status::FailedPrecondition(
            "grammar audit: occurrence of R" + std::to_string(i) + " at " +
            std::to_string(start) + " overruns the input (" +
            std::to_string(n) + " tokens)");
      }
      for (size_t t = 0; t < expansion.size(); ++t) {
        if (tokens[start + t] != expansion[t]) {
          return Status::FailedPrecondition(
              "grammar audit: occurrence of R" + std::to_string(i) + " at " +
              std::to_string(start) + " does not match the input at token " +
              std::to_string(start + t));
        }
      }
    }
  }

  // Partition check: the difference array built from the occurrence lists
  // (what RuleDensityCurve consumes, R0 excluded) must equal the derivation
  // tree's nesting depth at every token. Compute the depth directly with a
  // walk of the derivation; any drift between the two is double-counted or
  // lost coverage.
  std::vector<size_t> from_occurrences(n + 1, 0);
  std::vector<long long> diff(n + 1, 0);
  for (size_t i = 1; i < rules.size(); ++i) {
    for (size_t start : rules[i].occurrences) {
      diff[start] += 1;
      diff[start + rules[i].expansion_tokens] -= 1;
    }
  }
  long long running = 0;
  for (size_t t = 0; t < n; ++t) {
    running += diff[t];
    from_occurrences[t] = static_cast<size_t>(running);
  }

  struct Frame {
    size_t rule;
    size_t pos;
  };
  std::vector<Frame> stack{{0, 0}};
  std::vector<size_t> depth_at(n, 0);
  size_t token_pos = 0;
  while (!stack.empty()) {
    Frame& top = stack.back();
    const GrammarRule& rule = rules[top.rule];
    if (top.pos == rule.rhs.size()) {
      stack.pop_back();
      continue;
    }
    const GrammarSymbol& sym = rule.rhs[top.pos];
    ++top.pos;
    if (sym.is_terminal) {
      depth_at[token_pos] = stack.size() - 1;  // frames above R0
      ++token_pos;
    } else {
      stack.push_back({static_cast<size_t>(sym.id), 0});
    }
  }
  for (size_t t = 0; t < n; ++t) {
    if (from_occurrences[t] != depth_at[t]) {
      return Status::FailedPrecondition(
          "grammar audit: coverage partition violated at token " +
          std::to_string(t) + " — occurrence lists cover it " +
          std::to_string(from_occurrences[t]) +
          " time(s) but the derivation nests it " +
          std::to_string(depth_at[t]) + " deep");
    }
  }
  return Status::Ok();
}

}  // namespace

Status AuditGrammar(const Grammar& grammar, std::span<const int32_t> tokens) {
  GVA_RETURN_IF_ERROR(AuditStructure(grammar));
  GVA_RETURN_IF_ERROR(AuditDigramUniqueness(grammar));
  GVA_RETURN_IF_ERROR(AuditRuleUtility(grammar));
  GVA_RETURN_IF_ERROR(AuditRoundTrip(grammar, tokens));
  return AuditCoveragePartition(grammar, tokens);
}

}  // namespace gva
