#ifndef GVA_GRAMMAR_SERIALIZATION_H_
#define GVA_GRAMMAR_SERIALIZATION_H_

#include <string>

#include "grammar/sequitur.h"
#include "util/statusor.h"

namespace gva {

/// Serializes a word grammar to a line-oriented text format:
///
///   gva-grammar 1
///   tokens <n>
///   vocab <size>
///   w <word>                  (vocabulary, in id order)
///   rule <id> <use> : <sym>*  (sym: t<token-id> or R<rule-id>)
///
/// Occurrences and expansion lengths are derived data and are recomputed on
/// load. The format is stable and diff-friendly — grammars can be stored
/// next to the data they explain and inspected with standard tools.
std::string SerializeGrammar(const WordGrammar& grammar);

/// Parses the format back. Verifies structural sanity (rule references in
/// range, R0 present, token stream reproducible) and recomputes the derived
/// fields; fails with InvalidArgument on malformed input.
StatusOr<WordGrammar> DeserializeGrammar(const std::string& text);

/// Convenience file wrappers.
Status WriteGrammarFile(const std::string& path, const WordGrammar& grammar);
StatusOr<WordGrammar> ReadGrammarFile(const std::string& path);

}  // namespace gva

#endif  // GVA_GRAMMAR_SERIALIZATION_H_
