#include "grammar/sequitur.h"

#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

#ifdef GVA_AUDIT
#include "grammar/audit.h"
#endif

namespace gva {
namespace {

// ---------------------------------------------------------------------------
// Internal linked representation, following Nevill-Manning & Witten's
// reference implementation: each rule is a circular doubly-linked list of
// symbols anchored at a guard node; a hash index maps digram contents to the
// first symbol of their unique indexed occurrence.
// ---------------------------------------------------------------------------

struct Rule;

struct Sym {
  Sym* next = nullptr;
  Sym* prev = nullptr;
  int32_t terminal = -1;     // >= 0 for terminals
  Rule* rule = nullptr;      // non-null for non-terminals
  Rule* guard_of = nullptr;  // non-null for a rule's guard node

  bool IsGuard() const { return guard_of != nullptr; }
  bool IsNonTerminal() const { return rule != nullptr; }
  bool IsTerminal() const { return terminal >= 0; }
};

struct Rule {
  Sym guard;
  size_t use_count = 0;   // number of non-terminal symbols referencing this
  uint64_t serial = 0;    // stable identity for digram hashing

  explicit Rule(uint64_t serial_number) : serial(serial_number) {
    guard.guard_of = this;
    guard.next = &guard;
    guard.prev = &guard;
  }

  Sym* first() { return guard.next; }
  Sym* last() { return guard.prev; }
  bool Empty() { return guard.next == &guard; }
};

class Inducer {
 public:
  // Note: root_ must be created in the body — NewRule() appends to
  // all_rules_, which is declared (and therefore constructed) after root_.
  Inducer() { root_ = NewRule(); }

  ~Inducer() {
    // Free every surviving symbol and rule.
    for (Rule* r : all_rules_) {
      if (r == nullptr) {
        continue;
      }
      Sym* s = r->first();
      while (!s->IsGuard()) {
        Sym* next = s->next;
        delete s;
        s = next;
      }
      delete r;
    }
  }

  Inducer(const Inducer&) = delete;
  Inducer& operator=(const Inducer&) = delete;

  void AppendTerminal(int32_t token) {
    Sym* s = new Sym();
    s->terminal = token;
    InsertAfter(root_->last(), s);
    Check(s->prev);
  }

  Rule* root() { return root_; }

  /// Extracts the final grammar (rule table + occurrence lists).
  Grammar Extract(size_t num_tokens);

 private:
  // --- identity & digram index -------------------------------------------

  static uint64_t IdOf(const Sym* s) {
    if (s->IsTerminal()) {
      return (static_cast<uint64_t>(s->terminal) << 1) | 1u;
    }
    GVA_DCHECK(s->IsNonTerminal());
    return s->rule->serial << 1;
  }

  static uint64_t DigramKey(const Sym* s) {
    // 64-bit mix of the two symbol identities.
    uint64_t a = IdOf(s);
    uint64_t b = IdOf(s->next);
    uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }

  void DeleteDigram(Sym* s) {
    if (s->IsGuard() || s->next->IsGuard()) {
      return;
    }
    auto it = digrams_.find(DigramKey(s));
    if (it == digrams_.end() || it->second != s) {
      return;
    }
    // Inside a run of >= 3 identical symbols ("x x x"), the digram starting
    // at s overlaps an identical digram starting at s->next that was never
    // indexed (Check skips overlapping occurrences). If that twin is still
    // live it inherits the index slot; dropping the entry outright would
    // leave a live digram invisible to future Check calls, which is how
    // duplicate digrams could survive. (If s->next itself is being deleted
    // by the enclosing operation, its own DeleteDigram runs right after and
    // erases the slot again.)
    Sym* twin = s->next;
    if (!twin->IsGuard() && !twin->next->IsGuard() &&
        IdOf(twin) == IdOf(s) && IdOf(twin->next) == IdOf(twin)) {
      it->second = twin;
    } else {
      digrams_.erase(it);
    }
  }

  void IndexDigram(Sym* s) {
    if (s->IsGuard() || s->next->IsGuard()) {
      return;
    }
    digrams_[DigramKey(s)] = s;
  }

  // --- linked-list surgery -------------------------------------------------

  /// Links left -> right, un-indexing the digram that previously started at
  /// `left`.
  void Join(Sym* left, Sym* right) {
    if (left->next != nullptr) {
      DeleteDigram(left);
    }
    left->next = right;
    right->prev = left;
  }

  void InsertAfter(Sym* s, Sym* y) {
    Join(y, s->next);
    Join(s, y);
  }

  /// Unlinks and frees `s`, maintaining the digram index and use counts.
  void DeleteSymbol(Sym* s) {
    GVA_DCHECK(!s->IsGuard());
    Join(s->prev, s->next);
    DeleteDigram(s);
    if (s->IsNonTerminal()) {
      Deuse(s->rule);
    }
    delete s;
  }

  // --- rules ---------------------------------------------------------------

  Rule* NewRule() {
    Rule* r = new Rule(next_serial_++);
    all_rules_.push_back(r);
    return r;
  }

  void Reuse(Rule* r) { ++r->use_count; }
  void Deuse(Rule* r) {
    GVA_DCHECK(r->use_count > 0);
    --r->use_count;
  }

  Sym* NewNonTerminal(Rule* r) {
    Sym* s = new Sym();
    s->rule = r;
    Reuse(r);
    return s;
  }

  Sym* CopyOf(const Sym* s) {
    if (s->IsNonTerminal()) {
      return NewNonTerminal(s->rule);
    }
    Sym* c = new Sym();
    c->terminal = s->terminal;
    return c;
  }

  // --- the Sequitur invariants --------------------------------------------

  /// Checks the digram starting at `s` against the index. Returns true when
  /// the digram was already present (and was dealt with by Match).
  bool Check(Sym* s) {
    if (s->IsGuard() || s->next->IsGuard()) {
      return false;
    }
    const uint64_t key = DigramKey(s);
    auto it = digrams_.find(key);
    if (it == digrams_.end()) {
      digrams_.emplace(key, s);
      return false;
    }
    Sym* found = it->second;
    if (found->next != s) {  // Overlapping occurrence (e.g. "aaa"): skip.
      Match(s, found);
    }
    return true;
  }

  /// Deals with a repeated digram: `ss` is the new occurrence, `found` the
  /// indexed one.
  void Match(Sym* ss, Sym* found) {
    Rule* r = nullptr;
    if (found->prev->IsGuard() && found->next->next->IsGuard()) {
      // `found` is the complete RHS of an existing rule: reuse it.
      r = found->prev->guard_of;
      Substitute(ss, r);
    } else {
      // Create a new rule from the digram's content.
      r = NewRule();
      InsertAfter(r->last(), CopyOf(ss));
      InsertAfter(r->last(), CopyOf(ss->next));
      Substitute(found, r);
      Substitute(ss, r);
      IndexDigram(r->first());
    }
    // Rule utility: inline any rule that is now referenced only once
    // (Nevill-Manning & Witten check the first RHS symbol here; the digram
    // that was just folded starts with it).
    if (r->first()->IsNonTerminal() && r->first()->rule->use_count == 1) {
      Expand(r->first());
    }
  }

  /// Replaces the digram starting at `s` with a non-terminal for `r`.
  void Substitute(Sym* s, Rule* r) {
    Sym* q = s->prev;
    DeleteSymbol(s->next);
    DeleteSymbol(s);
    InsertAfter(q, NewNonTerminal(r));
    if (!Check(q)) {
      Check(q->next);
    }
  }

  /// Inlines the contents of `s`'s rule (used exactly once) in place of `s`
  /// and deletes the rule.
  void Expand(Sym* s) {
    GVA_DCHECK(s->IsNonTerminal());
    Rule* q = s->rule;
    GVA_DCHECK(q->use_count == 1);
    GVA_DCHECK(!q->Empty());
    Sym* left = s->prev;
    Sym* right = s->next;
    Sym* f = q->first();
    Sym* l = q->last();

    DeleteDigram(s);  // un-index (s, right)
    Join(left, f);    // un-indexes (left, s)
    Join(l, right);

    // Detach the guard so the rule can be freed; its symbols now live in the
    // enclosing rule.
    q->guard.next = &q->guard;
    q->guard.prev = &q->guard;
    FreeRule(q);
    delete s;

    // The spliced-in boundary digram (l, right) may duplicate a digram that
    // already exists elsewhere in the grammar. Blindly indexing it (as the
    // reference implementation does) can orphan the other occurrence and
    // leave a repeated digram behind; running it through the normal check
    // folds the duplicate and keeps the uniqueness invariant intact.
    Check(l);
    if (!left->IsGuard()) {
      Check(left);
    }
  }

  void FreeRule(Rule* q) {
    for (Rule*& r : all_rules_) {
      if (r == q) {
        r = nullptr;
        break;
      }
    }
    delete q;
  }

  Rule* root_ = nullptr;
  uint64_t next_serial_ = 0;
  std::unordered_map<uint64_t, Sym*> digrams_;
  std::vector<Rule*> all_rules_;
};

Grammar Inducer::Extract(size_t num_tokens) {
  // Assign dense ids by first encounter in a pre-order walk from R0.
  std::unordered_map<const Rule*, int32_t> ids;
  std::vector<Rule*> ordered;
  ids.emplace(root_, 0);
  ordered.push_back(root_);
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (Sym* s = ordered[i]->first(); !s->IsGuard(); s = s->next) {
      if (s->IsNonTerminal() && !ids.contains(s->rule)) {
        ids.emplace(s->rule, static_cast<int32_t>(ordered.size()));
        ordered.push_back(s->rule);
      }
    }
  }

  std::vector<GrammarRule> rules(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    GrammarRule& out = rules[i];
    out.id = static_cast<int32_t>(i);
    out.use_count = ordered[i]->use_count;
    for (Sym* s = ordered[i]->first(); !s->IsGuard(); s = s->next) {
      if (s->IsTerminal()) {
        out.rhs.push_back(GrammarSymbol{true, s->terminal});
      } else {
        out.rhs.push_back(GrammarSymbol{false, ids.at(s->rule)});
      }
    }
  }

  // Expansion lengths, bottom-up via memoized resolution. Rules form a DAG
  // (a rule only references rules that exist when it is created, and
  // pre-order id assignment does not guarantee topological order), so use a
  // small fixpoint DFS.
  std::vector<size_t> lengths(rules.size(), 0);
  std::vector<int> state(rules.size(), 0);  // 0=unvisited 1=visiting 2=done
  struct LenFrame {
    size_t rule;
    size_t pos;
  };
  for (size_t start = 0; start < rules.size(); ++start) {
    if (state[start] == 2) {
      continue;
    }
    std::vector<LenFrame> stack{{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      LenFrame& top = stack.back();
      const GrammarRule& r = rules[top.rule];
      if (top.pos == r.rhs.size()) {
        size_t total = 0;
        for (const GrammarSymbol& sym : r.rhs) {
          total += sym.is_terminal
                       ? 1
                       : lengths[static_cast<size_t>(sym.id)];
        }
        lengths[top.rule] = total;
        state[top.rule] = 2;
        stack.pop_back();
        continue;
      }
      const GrammarSymbol& sym = r.rhs[top.pos];
      ++top.pos;
      if (!sym.is_terminal) {
        size_t child = static_cast<size_t>(sym.id);
        if (state[child] == 0) {
          state[child] = 1;
          stack.push_back({child, 0});
        } else {
          GVA_CHECK(state[child] == 2) << "cycle in Sequitur grammar";
        }
      }
    }
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    rules[i].expansion_tokens = lengths[i];
  }

  // Occurrences: single walk of R0's expansion recording the start token of
  // every non-terminal occurrence.
  struct OccFrame {
    size_t rule;
    size_t pos;
  };
  rules[0].occurrences.push_back(0);
  std::vector<OccFrame> stack{{0, 0}};
  size_t token_pos = 0;
  while (!stack.empty()) {
    OccFrame& top = stack.back();
    const GrammarRule& r = rules[top.rule];
    if (top.pos == r.rhs.size()) {
      stack.pop_back();
      continue;
    }
    const GrammarSymbol& sym = r.rhs[top.pos];
    ++top.pos;
    if (sym.is_terminal) {
      ++token_pos;
    } else {
      size_t child = static_cast<size_t>(sym.id);
      rules[child].occurrences.push_back(token_pos);
      stack.push_back({child, 0});
    }
  }
  GVA_CHECK_EQ(token_pos, num_tokens);

  return Grammar(std::move(rules), num_tokens);
}

}  // namespace

struct IncrementalSequitur::Impl {
  Inducer inducer;
#ifdef GVA_AUDIT
  // Audit builds keep a copy of the appended terminals so every extracted
  // snapshot can be round-trip checked against the exact input.
  std::vector<int32_t> appended;
#endif
};

IncrementalSequitur::IncrementalSequitur() : impl_(new Impl()) {}
IncrementalSequitur::~IncrementalSequitur() = default;
IncrementalSequitur::IncrementalSequitur(IncrementalSequitur&&) noexcept =
    default;
IncrementalSequitur& IncrementalSequitur::operator=(
    IncrementalSequitur&&) noexcept = default;

Status IncrementalSequitur::Append(int32_t token) {
  if (token < 0) {
    return Status::InvalidArgument("token ids must be non-negative");
  }
  impl_->inducer.AppendTerminal(token);
#ifdef GVA_AUDIT
  impl_->appended.push_back(token);
#endif
  ++num_tokens_;
  return Status::Ok();
}

Grammar IncrementalSequitur::ExtractGrammar() const {
  Grammar grammar = impl_->inducer.Extract(num_tokens_);
#ifdef GVA_AUDIT
  // Post-induction audit (GVA_AUDIT trees only): every snapshot handed to a
  // caller satisfies the Sequitur invariants and the density-curve
  // bookkeeping. GVA_DCHECK is always live under GVA_AUDIT (util/check.h).
  const Status audit = AuditGrammar(grammar, impl_->appended);
  GVA_DCHECK(audit.ok()) << audit.message();
#endif
  return grammar;
}

StatusOr<Grammar> InferGrammar(std::span<const int32_t> tokens) {
  GVA_OBS_SPAN("grammar.sequitur.induce");
  IncrementalSequitur sequitur;
  for (int32_t t : tokens) {
    GVA_RETURN_IF_ERROR(sequitur.Append(t));
  }
  return sequitur.ExtractGrammar();
}

StatusOr<WordGrammar> InferGrammarFromWords(
    const std::vector<std::string>& words) {
  WordGrammar result;
  std::unordered_map<std::string, int32_t> index;
  result.tokens.reserve(words.size());
  for (const std::string& w : words) {
    auto [it, inserted] =
        index.emplace(w, static_cast<int32_t>(result.vocabulary.size()));
    if (inserted) {
      result.vocabulary.push_back(w);
    }
    result.tokens.push_back(it->second);
  }
  GVA_ASSIGN_OR_RETURN(result.grammar, InferGrammar(result.tokens));
  return result;
}

}  // namespace gva
