#include "grammar/serialization.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace gva {

namespace {

constexpr char kMagic[] = "gva-grammar 1";

/// Recomputes the derived fields (expansion lengths, occurrences) of a rule
/// table whose rhs entries are already in place. Fails on reference cycles
/// or out-of-range ids.
Status RecomputeDerived(std::vector<GrammarRule>& rules, size_t* num_tokens) {
  const size_t n = rules.size();
  for (GrammarRule& rule : rules) {
    rule.occurrences.clear();
    rule.expansion_tokens = 0;
  }
  // Expansion lengths by DFS with cycle detection.
  std::vector<int> state(n, 0);
  struct Frame {
    size_t rule;
    size_t pos;
  };
  for (size_t start = 0; start < n; ++start) {
    if (state[start] == 2) {
      continue;
    }
    std::vector<Frame> stack{{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      Frame& top = stack.back();
      GrammarRule& rule = rules[top.rule];
      if (top.pos == rule.rhs.size()) {
        size_t total = 0;
        for (const GrammarSymbol& sym : rule.rhs) {
          total += sym.is_terminal
                       ? 1
                       : rules[static_cast<size_t>(sym.id)].expansion_tokens;
        }
        rule.expansion_tokens = total;
        state[top.rule] = 2;
        stack.pop_back();
        continue;
      }
      const GrammarSymbol& sym = rule.rhs[top.pos];
      ++top.pos;
      if (!sym.is_terminal) {
        if (sym.id < 0 || static_cast<size_t>(sym.id) >= n) {
          return Status::InvalidArgument(
              StrFormat("rule reference R%d out of range", sym.id));
        }
        const size_t child = static_cast<size_t>(sym.id);
        if (state[child] == 1) {
          return Status::InvalidArgument("grammar contains a rule cycle");
        }
        if (state[child] == 0) {
          state[child] = 1;
          stack.push_back({child, 0});
        }
      }
    }
  }
  // Occurrences by one walk of R0's expansion.
  rules[0].occurrences.push_back(0);
  std::vector<Frame> stack{{0, 0}};
  size_t pos = 0;
  while (!stack.empty()) {
    Frame& top = stack.back();
    const GrammarRule& rule = rules[top.rule];
    if (top.pos == rule.rhs.size()) {
      stack.pop_back();
      continue;
    }
    const GrammarSymbol& sym = rule.rhs[top.pos];
    ++top.pos;
    if (sym.is_terminal) {
      ++pos;
    } else {
      rules[static_cast<size_t>(sym.id)].occurrences.push_back(pos);
      stack.push_back({static_cast<size_t>(sym.id), 0});
    }
  }
  *num_tokens = pos;
  return Status::Ok();
}

}  // namespace

std::string SerializeGrammar(const WordGrammar& grammar) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "tokens " << grammar.tokens.size() << '\n';
  out << "vocab " << grammar.vocabulary.size() << '\n';
  for (const std::string& word : grammar.vocabulary) {
    out << "w " << word << '\n';
  }
  for (const GrammarRule& rule : grammar.grammar.rules()) {
    out << "rule " << rule.id << ' ' << rule.use_count << " :";
    for (const GrammarSymbol& sym : rule.rhs) {
      if (sym.is_terminal) {
        out << " t" << sym.id;
      } else {
        out << " R" << sym.id;
      }
    }
    out << '\n';
  }
  return out.str();
}

StatusOr<WordGrammar> DeserializeGrammar(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::InvalidArgument("missing gva-grammar header");
  }
  size_t declared_tokens = 0;
  size_t vocab_size = 0;
  WordGrammar grammar;
  std::vector<GrammarRule> rules;

  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) {
      continue;
    }
    std::istringstream fields{std::string(stripped)};
    std::string kind;
    fields >> kind;
    if (kind == "tokens") {
      fields >> declared_tokens;
    } else if (kind == "vocab") {
      fields >> vocab_size;
    } else if (kind == "w") {
      std::string word;
      fields >> word;
      if (word.empty()) {
        return Status::InvalidArgument("empty vocabulary word");
      }
      grammar.vocabulary.push_back(word);
    } else if (kind == "rule") {
      GrammarRule rule;
      long long id = 0;
      unsigned long long use = 0;
      std::string colon;
      fields >> id >> use >> colon;
      if (colon != ":" || id != static_cast<long long>(rules.size())) {
        return Status::InvalidArgument(
            StrFormat("malformed or out-of-order rule line: '%s'",
                      std::string(stripped).c_str()));
      }
      rule.id = static_cast<int32_t>(id);
      rule.use_count = static_cast<size_t>(use);
      std::string sym;
      while (fields >> sym) {
        if (sym.size() < 2 || (sym[0] != 't' && sym[0] != 'R')) {
          return Status::InvalidArgument("malformed symbol '" + sym + "'");
        }
        GrammarSymbol parsed;
        parsed.is_terminal = sym[0] == 't';
        parsed.id = static_cast<int32_t>(
            std::strtol(sym.c_str() + 1, nullptr, 10));
        rule.rhs.push_back(parsed);
      }
      rules.push_back(std::move(rule));
    } else {
      return Status::InvalidArgument("unknown line kind '" + kind + "'");
    }
  }

  if (rules.empty()) {
    return Status::InvalidArgument("grammar has no rules (R0 required)");
  }
  if (grammar.vocabulary.size() != vocab_size) {
    return Status::InvalidArgument("vocabulary size mismatch");
  }
  for (const GrammarRule& rule : rules) {
    for (const GrammarSymbol& sym : rule.rhs) {
      if (sym.is_terminal &&
          (sym.id < 0 ||
           static_cast<size_t>(sym.id) >= grammar.vocabulary.size())) {
        return Status::InvalidArgument(
            StrFormat("terminal t%d outside vocabulary", sym.id));
      }
    }
  }

  size_t num_tokens = 0;
  GVA_RETURN_IF_ERROR(RecomputeDerived(rules, &num_tokens));
  if (num_tokens != declared_tokens) {
    return Status::InvalidArgument(
        StrFormat("token count mismatch: declared %zu, expansion has %zu",
                  declared_tokens, num_tokens));
  }
  grammar.grammar = Grammar(std::move(rules), num_tokens);
  grammar.tokens = grammar.grammar.ExpandToTerminals(0);
  return grammar;
}

Status WriteGrammarFile(const std::string& path,
                        const WordGrammar& grammar) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << SerializeGrammar(grammar);
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

StatusOr<WordGrammar> ReadGrammarFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return DeserializeGrammar(contents);
}

}  // namespace gva
