#ifndef GVA_GRAMMAR_RULE_INTERVALS_H_
#define GVA_GRAMMAR_RULE_INTERVALS_H_

#include <cstdint>
#include <vector>

#include "grammar/grammar.h"
#include "sax/sax_transform.h"
#include "timeseries/interval.h"

namespace gva {

/// A grammar-rule occurrence mapped back onto the original time series
/// (paper Section 3.4): the subsequence spanned by the rule's SAX words.
struct RuleInterval {
  /// Rule index in the grammar; kGapRule for zero-coverage gap intervals.
  int32_t rule = 0;
  /// Number of occurrences of the rule in the grammar (0 for gaps).
  size_t rule_frequency = 0;
  /// Covered series positions, half-open.
  Interval span;

  static constexpr int32_t kGapRule = -1;
};

/// Maps every occurrence of every rule (except R0) onto the series: an
/// occurrence covering tokens [t0, t1] covers series positions
/// [offsets[t0], offsets[t1] + window), clamped to the series length.
std::vector<RuleInterval> MapRuleIntervals(const Grammar& grammar,
                                           const SaxRecords& records,
                                           size_t window,
                                           size_t series_length);

/// The rule density curve (paper Section 4.1): for every series point, the
/// number of rule intervals covering it. Computed with a difference array in
/// O(series_length + intervals).
std::vector<uint32_t> RuleDensityCurve(
    const std::vector<RuleInterval>& intervals, size_t series_length);

/// How each covering interval contributes to the weighted density curve —
/// the coverage-count strategies of the GrammarViz 2.0 UI.
enum class DensityWeighting {
  /// Each interval counts 1 (the paper's rule density curve).
  kOccurrence,
  /// Each interval counts its rule's occurrence frequency: points covered
  /// only by rare rules score lower than points covered by common ones.
  kRuleFrequency,
  /// Each interval counts 1 / interval-length: long, vague rules contribute
  /// less than short, specific ones.
  kInverseLength,
};

/// Weighted variant of the density curve. With kOccurrence it equals
/// RuleDensityCurve (as doubles).
std::vector<double> WeightedDensityCurve(
    const std::vector<RuleInterval>& intervals, size_t series_length,
    DensityWeighting weighting);

/// Maximal zero-density runs of the density curve — the candidate anomalies
/// the RRA algorithm adds as frequency-0 intervals ("continuous subsequences
/// of the discretized time series that do not form any rule"). Runs shorter
/// than `min_length` are dropped.
std::vector<RuleInterval> ZeroCoverageIntervals(
    const std::vector<uint32_t>& density, size_t min_length);

}  // namespace gva

#endif  // GVA_GRAMMAR_RULE_INTERVALS_H_
