#ifndef GVA_GRAMMAR_GRAMMAR_PRINTER_H_
#define GVA_GRAMMAR_GRAMMAR_PRINTER_H_

#include <string>

#include "grammar/sequitur.h"

namespace gva {

/// Renders one rule's right-hand side, e.g. "R2 cba" — non-terminals as
/// "R<id>", terminals as their vocabulary word.
std::string RuleRhsToString(const WordGrammar& wg, size_t rule_index);

/// Renders one rule's full expansion as space-separated words,
/// e.g. "abc abc cba".
std::string RuleExpansionToString(const WordGrammar& wg, size_t rule_index);

/// Renders the whole grammar in the paper's Section 3 table style:
///   R0 -> R1 xxx R1
///   R1 -> R2 cba
///   ...
/// with use counts and expansions when `verbose` is set.
std::string GrammarToString(const WordGrammar& wg, bool verbose = false);

}  // namespace gva

#endif  // GVA_GRAMMAR_GRAMMAR_PRINTER_H_
