#include "grammar/rule_intervals.h"

#include <algorithm>

#include "util/check.h"

namespace gva {

std::vector<RuleInterval> MapRuleIntervals(const Grammar& grammar,
                                           const SaxRecords& records,
                                           size_t window,
                                           size_t series_length) {
  GVA_CHECK_EQ(grammar.num_tokens(), records.size());
  std::vector<RuleInterval> intervals;
  for (size_t ri = 1; ri < grammar.size(); ++ri) {
    const GrammarRule& rule = grammar.rule(ri);
    GVA_DCHECK(rule.expansion_tokens > 0);
    // Frequency is the dynamic occurrence count in R0's expansion — the
    // quantity the RRA outer loop sorts by.
    const size_t frequency = rule.occurrences.size();
    for (size_t start_token : rule.occurrences) {
      const size_t last_token = start_token + rule.expansion_tokens - 1;
      GVA_DCHECK(last_token < records.size());
      const size_t start = records.offsets[start_token];
      const size_t end =
          std::min(series_length, records.offsets[last_token] + window);
      intervals.push_back(RuleInterval{
          static_cast<int32_t>(ri), frequency, Interval{start, end}});
    }
  }
  return intervals;
}

std::vector<uint32_t> RuleDensityCurve(
    const std::vector<RuleInterval>& intervals, size_t series_length) {
  std::vector<int64_t> diff(series_length + 1, 0);
  for (const RuleInterval& ri : intervals) {
    if (ri.span.empty() || ri.span.start >= series_length) {
      continue;
    }
    diff[ri.span.start] += 1;
    diff[std::min(ri.span.end, series_length)] -= 1;
  }
  std::vector<uint32_t> density(series_length, 0);
  int64_t running = 0;
  for (size_t i = 0; i < series_length; ++i) {
    running += diff[i];
    GVA_DCHECK(running >= 0);
    density[i] = static_cast<uint32_t>(running);
  }
  return density;
}

std::vector<double> WeightedDensityCurve(
    const std::vector<RuleInterval>& intervals, size_t series_length,
    DensityWeighting weighting) {
  std::vector<double> diff(series_length + 1, 0.0);
  for (const RuleInterval& ri : intervals) {
    if (ri.span.empty() || ri.span.start >= series_length) {
      continue;
    }
    double weight = 1.0;
    switch (weighting) {
      case DensityWeighting::kOccurrence:
        break;
      case DensityWeighting::kRuleFrequency:
        weight = static_cast<double>(ri.rule_frequency);
        break;
      case DensityWeighting::kInverseLength:
        weight = 1.0 / static_cast<double>(ri.span.length());
        break;
    }
    diff[ri.span.start] += weight;
    diff[std::min(ri.span.end, series_length)] -= weight;
  }
  std::vector<double> density(series_length, 0.0);
  double running = 0.0;
  for (size_t i = 0; i < series_length; ++i) {
    running += diff[i];
    density[i] = running < 0.0 ? 0.0 : running;  // clamp numerical noise
  }
  return density;
}

std::vector<RuleInterval> ZeroCoverageIntervals(
    const std::vector<uint32_t>& density, size_t min_length) {
  std::vector<RuleInterval> gaps;
  size_t i = 0;
  while (i < density.size()) {
    if (density[i] != 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < density.size() && density[j] == 0) {
      ++j;
    }
    if (j - i >= min_length) {
      gaps.push_back(
          RuleInterval{RuleInterval::kGapRule, 0, Interval{i, j}});
    }
    i = j;
  }
  return gaps;
}

}  // namespace gva
