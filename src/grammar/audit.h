#ifndef GVA_GRAMMAR_AUDIT_H_
#define GVA_GRAMMAR_AUDIT_H_

#include <cstdint>
#include <span>

#include "grammar/grammar.h"
#include "util/status.h"

namespace gva {

/// The grammar invariant auditor: checks that an extracted grammar holds
/// every property the anomaly detectors rely on. Sequitur's two induction
/// invariants (Nevill-Manning & Witten 1997) plus the bookkeeping the
/// rule-density pipeline consumes:
///
///  1. structure — rule ids are dense and match their index, every
///     non-terminal reference is in bounds, R0 is never referenced;
///  2. digram uniqueness — no pair of adjacent symbols occurs at two
///     non-overlapping positions across all right-hand sides (overlapping
///     repeats inside a run like "x x x" are the algorithm's documented
///     exception and are permitted);
///  3. rule utility — every rule other than R0 is referenced at least
///     twice, and the stored use_count equals the actual reference count;
///  4. round-trip — R0's expansion reproduces `tokens` exactly;
///  5. coverage partition — per rule, expansion_tokens matches the real
///     expansion length, occurrences are ascending / in-bounds / match the
///     input at their claimed positions, and the rule-occurrence difference
///     array equals the derivation-tree nesting depth at every token — the
///     property that makes RuleDensityCurve a partition of the derivation
///     rather than an approximation.
///
/// Returns OK when every invariant holds, otherwise FailedPrecondition
/// with a message naming the first violated invariant and its location.
///
/// Cost is O(total expansion size) — linear in the input for Sequitur-sized
/// grammars but far above the induction's constant factor, hence audits are
/// compiled into the extraction path only under -DGVA_AUDIT=ON (see the
/// root CMakeLists); tests may call this directly in any build.
Status AuditGrammar(const Grammar& grammar, std::span<const int32_t> tokens);

}  // namespace gva

#endif  // GVA_GRAMMAR_AUDIT_H_
