#ifndef GVA_GRAMMAR_SEQUITUR_H_
#define GVA_GRAMMAR_SEQUITUR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "grammar/grammar.h"
#include "util/statusor.h"

namespace gva {

/// Incremental Sequitur: tokens are appended one at a time and a grammar
/// snapshot can be extracted at any point — the induction is inherently
/// online (the paper's Section 7 points at real-time streams for exactly
/// this reason). InferGrammar() below is the batch convenience wrapper.
///
/// Move-only; the internal symbol graph is owned by the instance.
class IncrementalSequitur {
 public:
  IncrementalSequitur();
  ~IncrementalSequitur();
  IncrementalSequitur(IncrementalSequitur&&) noexcept;
  IncrementalSequitur& operator=(IncrementalSequitur&&) noexcept;
  IncrementalSequitur(const IncrementalSequitur&) = delete;
  IncrementalSequitur& operator=(const IncrementalSequitur&) = delete;

  /// Appends one terminal. Amortized O(1). Fails on negative ids.
  Status Append(int32_t token);

  /// Number of terminals appended so far.
  size_t num_tokens() const { return num_tokens_; }

  /// Extracts a snapshot of the current grammar (rule table, use counts,
  /// occurrences). O(grammar size + occurrences); the induction state is
  /// not disturbed and further Append calls are fine.
  Grammar ExtractGrammar() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  size_t num_tokens_ = 0;
};

/// Infers a context-free grammar from `tokens` with the Sequitur algorithm
/// (Nevill-Manning & Witten 1997). The algorithm processes the input left to
/// right in amortized linear time and space, maintaining two invariants:
///
///  * digram uniqueness — no pair of adjacent symbols appears more than once
///    in the grammar; a repeated digram is replaced by a non-terminal;
///  * rule utility — every rule other than R0 is used at least twice; a rule
///    whose use count drops to one is inlined and removed.
///
/// Token ids must be non-negative. An empty input produces a grammar with a
/// single empty R0.
StatusOr<Grammar> InferGrammar(std::span<const int32_t> tokens);

/// A grammar induced over a string vocabulary (e.g. SAX words): tokens are
/// vocabulary indices, `vocabulary[t]` is the word for terminal t.
struct WordGrammar {
  Grammar grammar;
  std::vector<std::string> vocabulary;
  std::vector<int32_t> tokens;

  /// The word for terminal token `t`.
  const std::string& WordOf(int32_t t) const {
    GVA_CHECK(t >= 0 && static_cast<size_t>(t) < vocabulary.size());
    return vocabulary[static_cast<size_t>(t)];
  }
};

/// Tokenizes `words` against a fresh vocabulary (first occurrence order) and
/// infers the grammar.
StatusOr<WordGrammar> InferGrammarFromWords(
    const std::vector<std::string>& words);

}  // namespace gva

#endif  // GVA_GRAMMAR_SEQUITUR_H_
