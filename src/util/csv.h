#ifndef GVA_UTIL_CSV_H_
#define GVA_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace gva {

/// Reads one numeric column (0-based index `column`) from a delimited text
/// file. Blank lines and lines starting with '#' are skipped; the first line
/// is skipped too if its requested field does not parse as a number (header
/// detection). Fails with IoError if the file cannot be opened and with
/// InvalidArgument on malformed numeric fields.
StatusOr<std::vector<double>> ReadCsvColumn(const std::string& path,
                                            size_t column = 0,
                                            char delimiter = ',');

/// Writes `values` as a single-column CSV. An optional header line is
/// emitted when `header` is non-empty.
Status WriteCsvColumn(const std::string& path,
                      const std::vector<double>& values,
                      std::string_view header = "");

/// Writes several equally sized columns side by side with the given header
/// names. All columns must have the same length.
Status WriteCsvColumns(const std::string& path,
                       const std::vector<std::string>& names,
                       const std::vector<std::vector<double>>& columns);

/// Parses one numeric field; empty input is invalid.
StatusOr<double> ParseDouble(std::string_view field);

}  // namespace gva

#endif  // GVA_UTIL_CSV_H_
