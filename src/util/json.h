#ifndef GVA_UTIL_JSON_H_
#define GVA_UTIL_JSON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace gva {

/// A parsed JSON document node. The server's request bodies are JSON and
/// the library takes no third-party dependencies, so this is the minimal
/// tree representation the daemons parse into: null / bool / number /
/// string / array / object, with objects kept as insertion-ordered
/// key-value vectors (deterministic iteration — no unordered containers
/// feeding output, per the project lint).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue Number(double value) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = value;
    return v;
  }
  static JsonValue String(std::string value) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one returns the type's zero value
  /// (callers validate with is_*() / Find() first).
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_number() const { return is_number() ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }

  /// Object members in insertion order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member with the given key, or nullptr. Linear scan: request
  /// bodies are a handful of keys.
  const JsonValue* Find(std::string_view key) const;

  /// Builder helpers for writers.
  void Append(JsonValue value) { items_.push_back(std::move(value)); }
  void Set(std::string key, JsonValue value) {
    members_.emplace_back(std::move(key), std::move(value));
  }

  /// Serializes back to compact JSON. Numbers render with %.17g so a
  /// parse → dump → parse round trip is bit-exact for doubles — the
  /// server's results must compare bit-identical to the CLI's.
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document. Strict: one top-level value, no
/// trailing garbage, no comments, no trailing commas; \uXXXX escapes are
/// decoded to UTF-8 (surrogate pairs included). Nesting is capped (64
/// levels) so a hostile body cannot blow the stack. InvalidArgument on
/// any violation, with a byte offset in the message.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string JsonEscape(std::string_view text);

/// Formats a double the way Dump() does: %.17g, with non-finite values
/// mapped to null (JSON has no NaN/Inf).
std::string JsonNumber(double value);

}  // namespace gva

#endif  // GVA_UTIL_JSON_H_
