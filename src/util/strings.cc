#include "util/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace gva {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      result.append(separator);
    }
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* kWhitespace = " \t\r\n\f\v";
  size_t begin = text.find_first_not_of(kWhitespace);
  if (begin == std::string_view::npos) {
    return std::string_view();
  }
  size_t end = text.find_last_not_of(kWhitespace);
  return text.substr(begin, end - begin + 1);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string FormatWithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3);
  size_t leading = digits.size() % 3;
  if (leading == 0) {
    leading = 3;
  }
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i == leading || (i > leading && (i - leading) % 3 == 0)) {
      result.push_back('\'');
    }
    result.push_back(digits[i]);
  }
  return result;
}

}  // namespace gva
