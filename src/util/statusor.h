#ifndef GVA_UTIL_STATUSOR_H_
#define GVA_UTIL_STATUSOR_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace gva {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing the value of a failed StatusOr aborts the process
/// (there are no exceptions in this library), so callers must check ok()
/// first or use GVA_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit on purpose, mirroring absl::StatusOr).
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    GVA_CHECK(!std::get<Status>(repr_).ok())
        << "StatusOr constructed from an OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the contained status: OK when a value is present.
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    GVA_CHECK(ok()) << "StatusOr::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    GVA_CHECK(ok()) << "StatusOr::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    GVA_CHECK(ok()) << "StatusOr::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `expr` (a StatusOr<T> expression); on error returns the status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define GVA_ASSIGN_OR_RETURN(lhs, expr)                    \
  GVA_ASSIGN_OR_RETURN_IMPL_(                              \
      GVA_STATUS_MACRO_CONCAT_(gva_statusor_, __LINE__), lhs, expr)

#define GVA_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define GVA_STATUS_MACRO_CONCAT_(x, y) GVA_STATUS_MACRO_CONCAT_INNER_(x, y)

#define GVA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

}  // namespace gva

#endif  // GVA_UTIL_STATUSOR_H_
