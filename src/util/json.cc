#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/strings.h"

namespace gva {

namespace {

constexpr size_t kMaxDepth = 64;

/// Recursive-descent parser over a string_view with a cursor. Errors carry
/// the byte offset so a malformed request body is diagnosable from the
/// 400 response alone.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    GVA_RETURN_IF_ERROR(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(size_t depth, JsonValue* out) {
    if (depth > kMaxDepth) {
      return Error("nesting deeper than 64 levels");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        GVA_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, JsonValue value, JsonValue* out) {
    const size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) {
      return Error(StrFormat("expected '%s'", word));
    }
    pos_ += len;
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    size_t digits = 0;
    while (pos_ < text_.size() &&
           text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return Error("expected a value");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++frac;
      }
      if (frac == 0) {
        return Error("digits required after decimal point");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++exp;
      }
      if (exp == 0) {
        return Error("digits required in exponent");
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number");
    }
    // Overflow to +-inf is accepted (strtod saturates); JSON itself has no
    // range limit and the callers validate ranges anyway.
    *out = JsonValue::Number(value);
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0u | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80u | (code_point & 0x3Fu)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0u | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80u | ((code_point >> 6) & 0x3Fu)));
      out->push_back(static_cast<char>(0x80u | (code_point & 0x3Fu)));
    } else {
      out->push_back(static_cast<char>(0xF0u | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80u | ((code_point >> 12) & 0x3Fu)));
      out->push_back(static_cast<char>(0x80u | ((code_point >> 6) & 0x3Fu)));
      out->push_back(static_cast<char>(0x80u | (code_point & 0x3Fu)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("truncated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code_point = 0;
          GVA_RETURN_IF_ERROR(ParseHex4(&code_point));
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("high surrogate without a low surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            GVA_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code_point, out);
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return Status::Ok();
    }
    while (true) {
      JsonValue element;
      GVA_RETURN_IF_ERROR(ParseValue(depth + 1, &element));
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) {
        return Status::Ok();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      GVA_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      JsonValue value;
      GVA_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return Status::Ok();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      return;
    case JsonValue::Type::kBool:
      out->append(value.as_bool() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber:
      out->append(JsonNumber(value.as_number()));
      return;
    case JsonValue::Type::kString:
      out->push_back('"');
      out->append(JsonEscape(value.as_string()));
      out->push_back('"');
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        DumpTo(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append(StrFormat("\\u%04x", static_cast<unsigned>(
                                              static_cast<unsigned char>(c))));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  return StrFormat("%.17g", value);
}

}  // namespace gva
