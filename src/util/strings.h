#ifndef GVA_UTIL_STRINGS_H_
#define GVA_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace gva {

/// Joins `parts` with `separator` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits `text` on `delimiter`, keeping empty fields. Splitting "" yields
/// one empty field, matching common CSV semantics.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a count with thousands separators (1234567 -> "1'234'567"),
/// matching the paper's table typography.
std::string FormatWithThousands(uint64_t value);

}  // namespace gva

#endif  // GVA_UTIL_STRINGS_H_
