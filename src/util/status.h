#ifndef GVA_UTIL_STATUS_H_
#define GVA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gva {

/// Canonical error codes, modeled after the usual database-engine set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kCancelled = 7,
  kResourceExhausted = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result used by every fallible operation in
/// the library. The library does not throw exceptions; functions that can
/// fail return a Status (or a StatusOr<T>, see statusor.h).
///
/// The OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define GVA_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::gva::Status gva_status_macro_tmp_ = (expr);   \
    if (!gva_status_macro_tmp_.ok()) {              \
      return gva_status_macro_tmp_;                 \
    }                                               \
  } while (false)

}  // namespace gva

#endif  // GVA_UTIL_STATUS_H_
