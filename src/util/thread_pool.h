#ifndef GVA_UTIL_THREAD_POOL_H_
#define GVA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gva {

/// Fixed-size worker pool for the parallel discord searches. A pool of
/// `num_threads` provides `num_threads` lanes of concurrency: it spawns
/// `num_threads - 1` workers and the calling thread contributes the last
/// lane inside ParallelFor, so ThreadPool(1) degenerates to plain inline
/// execution with no threads, no locks taken on the hot path, and
/// bit-identical behaviour to a hand-written loop.
///
/// The pool is reused across the rounds of a top-k search; workers park on a
/// condition variable between rounds.
class ThreadPool {
 public:
  /// `num_threads` == 0 means ResolveThreadCount(0) (hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of concurrency lanes (worker threads + the caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Splits [begin, end) into at most num_threads() contiguous chunks and
  /// runs `body(chunk_begin, chunk_end, chunk_index)` for each, the first
  /// chunk on the calling thread. Blocks until every chunk has finished
  /// (the join gives the caller a happens-before edge over all chunk
  /// writes). Chunk boundaries depend on the thread count, so callers that
  /// promise thread-count-invariant results must reduce chunk outputs with
  /// an order-independent rule (e.g. arg-max with a total-order tie-break).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t, size_t)>& body);

  /// Maps the user-facing `num_threads` knob to an actual lane count:
  /// 0 means "all hardware threads" (at least 1); other values are taken
  /// as-is up to kMaxLanes, beyond which they are clamped. The clamp keeps
  /// a garbage knob value (e.g. "-1" wrapped through an unsigned parse)
  /// from trying to spawn billions of workers; results are
  /// thread-count-invariant, so clamping never changes any answer.
  static size_t ResolveThreadCount(size_t requested);

  /// Upper bound on concurrency lanes; far above any plausible hardware.
  static constexpr size_t kMaxLanes = 256;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace gva

#endif  // GVA_UTIL_THREAD_POOL_H_
