#ifndef GVA_UTIL_THREAD_POOL_H_
#define GVA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace gva {

/// Fixed-size worker pool for the parallel discord searches. A pool of
/// `num_threads` provides `num_threads` lanes of concurrency: it spawns
/// `num_threads - 1` workers and the calling thread contributes the last
/// lane inside ParallelFor, so ThreadPool(1) degenerates to plain inline
/// execution with no threads, no locks taken on the hot path, and
/// bit-identical behaviour to a hand-written loop.
///
/// The pool is reused across the rounds of a top-k search; workers park on a
/// condition variable between rounds.
///
/// Exception safety: a chunk body that throws does not tear down the pool.
/// The exception is caught inside the task wrapper (so the worker loop
/// keeps draining and destruction joins deterministically), and the first
/// one caught is rethrown on the calling thread after every chunk of that
/// ParallelFor has finished. The pool remains usable afterwards.
class ThreadPool {
 public:
  /// Lifetime observability counters, readable at any time (relaxed
  /// atomics; totals are exact once the pool is idle).
  struct Stats {
    /// Chunk tasks handed to the queue by ParallelFor (excludes the chunk
    /// the caller runs inline).
    uint64_t tasks_submitted = 0;
    /// Queued tasks executed by worker threads.
    uint64_t tasks_executed = 0;
    /// Queued tasks the calling thread stole and ran while waiting for its
    /// ParallelFor to drain (work that would otherwise idle-block it).
    uint64_t tasks_stolen = 0;
    /// Chunks the caller ran inline (its own lane's chunk).
    uint64_t tasks_inline = 0;
    /// High-water mark of the task queue length.
    uint64_t max_queue_depth = 0;
    /// Total wall-clock microseconds spent inside queued tasks (worker +
    /// stolen), for mean task latency: task_us / (executed + stolen).
    uint64_t task_us = 0;
  };

  /// `num_threads` == 0 means ResolveThreadCount(0) (hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of concurrency lanes (worker threads + the caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Splits [begin, end) into at most num_threads() contiguous chunks and
  /// runs `body(chunk_begin, chunk_end, chunk_index)` for each, the first
  /// chunk on the calling thread. Blocks until every chunk has finished
  /// (the join gives the caller a happens-before edge over all chunk
  /// writes). Chunk boundaries depend on the thread count, so callers that
  /// promise thread-count-invariant results must reduce chunk outputs with
  /// an order-independent rule (e.g. arg-max with a total-order tie-break).
  /// If one or more chunk bodies throw, the first exception (in completion
  /// order) is rethrown here after all chunks have finished.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t, size_t)>& body);

  /// Point-in-time copy of the lifetime counters.
  Stats stats() const;

  /// Adds the lifetime counters to `registry` under `<prefix>.*` (e.g.
  /// `pool.tasks.executed`). Call when a search finishes; the counters in
  /// the registry then accumulate across pools.
  void ExportStats(obs::MetricsRegistry& registry,
                   std::string_view prefix = "pool") const;

  /// Maps the user-facing `num_threads` knob to an actual lane count:
  /// 0 means "all hardware threads" (at least 1); other values are taken
  /// as-is up to kMaxLanes, beyond which they are clamped. The clamp keeps
  /// a garbage knob value (e.g. "-1" wrapped through an unsigned parse)
  /// from trying to spawn billions of workers; results are
  /// thread-count-invariant, so clamping never changes any answer.
  static size_t ResolveThreadCount(size_t requested);

  /// Upper bound on concurrency lanes; far above any plausible hardware.
  static constexpr size_t kMaxLanes = 256;

 private:
  void WorkerLoop();

  /// Pops one queued task if available (mu_ must not be held).
  std::function<void()> TryPop();

  /// Runs one queued task, timing it into task_us_.
  void RunTimed(const std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable wake_;
  bool stop_ = false;

  // obs primitives: relaxed atomics in the default build, empty no-ops
  // (stats() then reads all zeros) when built with -DGVA_OBS=OFF.
  obs::Counter tasks_submitted_;
  obs::Counter tasks_executed_;
  obs::Counter tasks_stolen_;
  obs::Counter tasks_inline_;
  obs::Gauge max_queue_depth_;
  obs::Counter task_us_;

  // Live GlobalMetrics() handles (resolved once in the constructor), so a
  // telemetry scrape sees `threadpool.*` series move *while* a search
  // runs — ExportStats only lands when a pool user decides to flush.
  // Several pools share these: counters accumulate across pools and
  // `threadpool.queue.depth` is last-write-wins, which is the honest
  // reading for "what is the queue doing right now".
  obs::Gauge* global_queue_depth_;
  obs::Counter* global_tasks_submitted_;
  obs::Counter* global_tasks_executed_;
  obs::Gauge* global_pools_live_;
};

}  // namespace gva

#endif  // GVA_UTIL_THREAD_POOL_H_
