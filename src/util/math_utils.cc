#include "util/math_utils.h"

#include <cmath>

#include "util/check.h"

namespace gva {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double InverseNormalCdf(double p) {
  GVA_CHECK(p > 0.0 && p < 1.0) << "p=" << p;

  // Coefficients of Acklam's rational approximation.
  static constexpr double kA[] = {
      -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02,  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double kC[] = {
      -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double kLow = 0.02425;
  static constexpr double kHigh = 1.0 - kLow;

  double x = 0.0;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
         kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  } else if (p <= kHigh) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
         kA[5]) *
        q /
        (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
         1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
          kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }

  // One Halley refinement step pushes the error below 1e-9.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace gva
