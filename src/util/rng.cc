#include "util/rng.h"

#include <cmath>

namespace gva {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(sm);
  }
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  GVA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  GVA_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on (0, 1] uniforms.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace gva
