#ifndef GVA_UTIL_MATH_UTILS_H_
#define GVA_UTIL_MATH_UTILS_H_

#include <cstddef>

namespace gva {

/// Inverse of the standard normal cumulative distribution function
/// (the probit function), computed with Acklam's rational approximation
/// refined by one step of Halley's method. Absolute error is below 1e-9 on
/// (0, 1). `p` must lie strictly inside (0, 1).
double InverseNormalCdf(double p);

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Returns a divided by b, rounding up. Requires b > 0.
inline size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

}  // namespace gva

#endif  // GVA_UTIL_MATH_UTILS_H_
