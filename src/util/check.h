#ifndef GVA_UTIL_CHECK_H_
#define GVA_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace gva {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Created only on the failing path of GVA_CHECK, so callers can stream
/// extra context: GVA_CHECK(x > 0) << "x was " << x;
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "GVA_CHECK failure at " << file << ":" << line << ": "
            << condition << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace gva

/// Aborts the process with a diagnostic when `condition` is false. Used for
/// programmer errors (broken invariants, API misuse that cannot be reported
/// through Status). Enabled in all build types. Extra context may be
/// streamed: GVA_CHECK(i < n) << "i=" << i;
#define GVA_CHECK(condition)                                       \
  switch (0)                                                       \
  case 0:                                                          \
  default:                                                         \
    if (condition)                                                 \
      ;                                                            \
    else                                                           \
      ::gva::internal_check::CheckFailureStream(#condition,        \
                                                __FILE__, __LINE__)

#define GVA_CHECK_EQ(a, b) GVA_CHECK((a) == (b))
#define GVA_CHECK_NE(a, b) GVA_CHECK((a) != (b))
#define GVA_CHECK_LT(a, b) GVA_CHECK((a) < (b))
#define GVA_CHECK_LE(a, b) GVA_CHECK((a) <= (b))
#define GVA_CHECK_GT(a, b) GVA_CHECK((a) > (b))
#define GVA_CHECK_GE(a, b) GVA_CHECK((a) >= (b))

/// Debug-only variant; compiled out (but still type-checked) in NDEBUG
/// builds. An audit tree (-DGVA_AUDIT=ON) keeps it live even under NDEBUG,
/// so `ctest -L audit` enforces every debug invariant at Release
/// optimization levels.
#if defined(NDEBUG) && !defined(GVA_AUDIT)
#define GVA_DCHECK(condition) \
  while (false) GVA_CHECK(condition)
#else
#define GVA_DCHECK(condition) GVA_CHECK(condition)
#endif

#endif  // GVA_UTIL_CHECK_H_
