#include "util/thread_pool.h"

#include <algorithm>

namespace gva {

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) {
    return std::min(requested, kMaxLanes);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t lanes = ResolveThreadCount(num_threads);
  workers_.reserve(lanes - 1);
  for (size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  const size_t chunks = std::min(n, num_threads());
  if (chunks == 1) {
    body(begin, end, 0);
    return;
  }

  // Contiguous chunks, remainder spread over the leading chunks.
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  auto chunk_begin = [&](size_t c) {
    return begin + c * base + std::min(c, extra);
  };

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = chunks - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 1; c < chunks; ++c) {
      queue_.emplace_back([&, c] {
        body(chunk_begin(c), chunk_begin(c + 1), c);
        std::lock_guard<std::mutex> done_lock(done_mu);
        if (--remaining == 0) {
          done_cv.notify_one();
        }
      });
    }
  }
  wake_.notify_all();

  body(chunk_begin(0), chunk_begin(1), 0);

  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining == 0; });
}

}  // namespace gva
