#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>

namespace gva {

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) {
    return std::min(requested, kMaxLanes);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : global_queue_depth_(
          &obs::GlobalMetrics().gauge("threadpool.queue.depth")),
      global_tasks_submitted_(
          &obs::GlobalMetrics().counter("threadpool.tasks.submitted")),
      global_tasks_executed_(
          &obs::GlobalMetrics().counter("threadpool.tasks.executed")),
      global_pools_live_(&obs::GlobalMetrics().gauge("threadpool.pools.live")) {
  global_pools_live_->Add(1);
  const size_t lanes = ResolveThreadCount(num_threads);
  workers_.reserve(lanes - 1);
  for (size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  global_pools_live_->Add(-1);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      global_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    RunTimed(task);
    tasks_executed_.Add();
    global_tasks_executed_->Add();
  }
}

std::function<void()> ThreadPool::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return nullptr;
  }
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  global_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  return task;
}

void ThreadPool::RunTimed(const std::function<void()>& task) {
  if constexpr (obs::kEnabled) {
    const auto start = std::chrono::steady_clock::now();
    task();
    task_us_.Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  } else {
    task();
  }
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  const size_t chunks = std::min(n, num_threads());
  if (chunks == 1) {
    tasks_inline_.Add();
    body(begin, end, 0);  // single lane: exceptions propagate directly
    return;
  }

  // Contiguous chunks, remainder spread over the leading chunks.
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  auto chunk_begin = [&](size_t c) {
    return begin + c * base + std::min(c, extra);
  };

  // Per-ParallelFor completion state. Chunk tasks catch everything their
  // body throws: the worker loop must never unwind (that would strand the
  // queue and turn shutdown into std::terminate), so the first exception is
  // parked here and rethrown on the calling thread after the join.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = chunks - 1;
  std::exception_ptr first_error;
  auto finish_chunk = [&](std::exception_ptr error) {
    std::lock_guard<std::mutex> done_lock(done_mu);
    if (error != nullptr && first_error == nullptr) {
      first_error = error;
    }
    if (--remaining == 0) {
      done_cv.notify_one();
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 1; c < chunks; ++c) {
      queue_.emplace_back([&, c] {
        std::exception_ptr error;
        try {
          body(chunk_begin(c), chunk_begin(c + 1), c);
        } catch (...) {
          error = std::current_exception();
        }
        finish_chunk(error);
      });
    }
    tasks_submitted_.Add(chunks - 1);
    global_tasks_submitted_->Add(chunks - 1);
    max_queue_depth_.RaiseTo(static_cast<int64_t>(queue_.size()));
    global_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  wake_.notify_all();

  // The caller's lane: its own chunk first. Its exception must not skip the
  // join below — the queued chunks still reference this frame's state.
  std::exception_ptr caller_error;
  tasks_inline_.Add();
  try {
    body(chunk_begin(0), chunk_begin(1), 0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  // Instead of idle-blocking on the join, the caller steals queued tasks
  // and runs them itself. With chunks == lanes the queue is normally empty
  // by now, but if a worker was descheduled (or the pool is shared), the
  // steal keeps the caller productive and shortens the tail.
  for (;;) {
    {
      std::lock_guard<std::mutex> done_lock(done_mu);
      if (remaining == 0) {
        break;
      }
    }
    if (std::function<void()> task = TryPop()) {
      RunTimed(task);
      tasks_stolen_.Add();
      global_tasks_executed_->Add();  // a queued task ran, whoever ran it
      continue;
    }
    std::unique_lock<std::mutex> done_lock(done_mu);
    done_cv.wait(done_lock, [&] { return remaining == 0; });
    break;
  }

  if (caller_error != nullptr) {
    std::rethrow_exception(caller_error);
  }
  std::lock_guard<std::mutex> done_lock(done_mu);
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_submitted = tasks_submitted_.value();
  s.tasks_executed = tasks_executed_.value();
  s.tasks_stolen = tasks_stolen_.value();
  s.tasks_inline = tasks_inline_.value();
  s.max_queue_depth = static_cast<uint64_t>(max_queue_depth_.value());
  s.task_us = task_us_.value();
  return s;
}

void ThreadPool::ExportStats(obs::MetricsRegistry& registry,
                             std::string_view prefix) const {
  const Stats s = stats();
  const std::string p(prefix);
  registry.counter(p + ".tasks.submitted").Add(s.tasks_submitted);
  registry.counter(p + ".tasks.executed").Add(s.tasks_executed);
  registry.counter(p + ".tasks.stolen").Add(s.tasks_stolen);
  registry.counter(p + ".tasks.inline").Add(s.tasks_inline);
  registry.gauge(p + ".queue.max_depth")
      .RaiseTo(static_cast<int64_t>(s.max_queue_depth));
  registry.counter(p + ".tasks.us").Add(s.task_us);
}

}  // namespace gva
