#include "util/status.h"

namespace gva {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace gva
