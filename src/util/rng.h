#ifndef GVA_UTIL_RNG_H_
#define GVA_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace gva {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** 1.0, seeded through SplitMix64). Every randomized component
/// of the library (inner-loop shuffles, synthetic data generators) takes one
/// of these so that experiments and tests are reproducible.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce equal
  /// streams.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-seeds in place.
  void Reseed(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns an unbiased integer uniform on [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns an integer uniform on [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Returns a double uniform on [0, 1).
  double UniformDouble();

  /// Returns a standard normal deviate (Box-Muller; one value per call,
  /// the spare is cached).
  double Gaussian();

  /// Returns a normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) {
      return;
    }
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

 private:
  uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace gva

#endif  // GVA_UTIL_RNG_H_
