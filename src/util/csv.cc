#include "util/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "util/strings.h"

namespace gva {

StatusOr<double> ParseDouble(std::string_view field) {
  std::string_view stripped = StripWhitespace(field);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty numeric field");
  }
  std::string buffer(stripped);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed numeric field: '" + buffer +
                                   "'");
  }
  return value;
}

StatusOr<std::vector<double>> ReadCsvColumn(const std::string& path,
                                            size_t column, char delimiter) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::vector<double> values;
  std::string line;
  size_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    std::vector<std::string> fields = Split(stripped, delimiter);
    if (column >= fields.size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: requested column %zu but line has %zu fields",
                    path.c_str(), line_number, column, fields.size()));
    }
    StatusOr<double> parsed = ParseDouble(fields[column]);
    if (!parsed.ok()) {
      if (first_data_line) {
        // Tolerate one non-numeric first line as a header.
        first_data_line = false;
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path.c_str(), line_number,
                    parsed.status().message().c_str()));
    }
    first_data_line = false;
    values.push_back(*parsed);
  }
  return values;
}

Status WriteCsvColumn(const std::string& path,
                      const std::vector<double>& values,
                      std::string_view header) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (!header.empty()) {
    out << header << '\n';
  }
  for (double v : values) {
    out << StrFormat("%.17g", v) << '\n';
  }
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

Status WriteCsvColumns(const std::string& path,
                       const std::vector<std::string>& names,
                       const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size()) {
    return Status::InvalidArgument("names/columns size mismatch");
  }
  for (size_t i = 1; i < columns.size(); ++i) {
    if (columns[i].size() != columns[0].size()) {
      return Status::InvalidArgument("columns have different lengths");
    }
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << Join(names, ",") << '\n';
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) {
        out << ',';
      }
      out << StrFormat("%.17g", columns[c][r]);
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace gva
