#ifndef GVA_HILBERT_HILBERT_H_
#define GVA_HILBERT_HILBERT_H_

#include <cstdint>
#include <vector>

#include "util/statusor.h"

namespace gva {

/// Hilbert space-filling curve on a 2^order x 2^order grid (paper Section
/// 5.1, Figure 6). The curve visits every cell exactly once; consecutive
/// visit indices are always edge-adjacent cells, which is what preserves
/// spatial locality when a trajectory is flattened to a scalar series.
class HilbertCurve {
 public:
  /// `order` in [1, 16]: the grid is 2^order cells per side.
  explicit HilbertCurve(uint32_t order);

  uint32_t order() const { return order_; }
  /// Cells per side (2^order).
  uint64_t side() const { return side_; }
  /// Total number of cells (side^2).
  uint64_t num_cells() const { return side_ * side_; }

  /// Visit index of cell (x, y). Both must be < side().
  uint64_t XyToIndex(uint64_t x, uint64_t y) const;

  /// Cell coordinates of visit index d (< num_cells()).
  void IndexToXy(uint64_t d, uint64_t* x, uint64_t* y) const;

 private:
  uint32_t order_;
  uint64_t side_;
};

/// A planar point for trajectory conversion.
struct GeoPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Converts a trajectory to the sequence of Hilbert visit indices of the
/// enclosing grid cells (Figure 6's "{0,3,2,2,...}" example). Points are
/// scaled from the bounding box [min_x, max_x] x [min_y, max_y] onto the
/// grid; the box must be non-degenerate and contain every point.
StatusOr<std::vector<double>> TrajectoryToHilbertSeries(
    const std::vector<GeoPoint>& trajectory, const HilbertCurve& curve,
    double min_x, double max_x, double min_y, double max_y);

}  // namespace gva

#endif  // GVA_HILBERT_HILBERT_H_
