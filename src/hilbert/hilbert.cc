#include "hilbert/hilbert.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace gva {

namespace {

/// One quadrant rotation/reflection step of the classic iterative
/// Hilbert-curve algorithm.
void Rotate(uint64_t side, uint64_t* x, uint64_t* y, uint64_t rx,
            uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = side - 1 - *x;
      *y = side - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

}  // namespace

HilbertCurve::HilbertCurve(uint32_t order) : order_(order) {
  GVA_CHECK(order >= 1 && order <= 16) << "order=" << order;
  side_ = uint64_t{1} << order;
}

uint64_t HilbertCurve::XyToIndex(uint64_t x, uint64_t y) const {
  GVA_CHECK(x < side_ && y < side_)
      << "cell (" << x << ", " << y << ") outside " << side_ << "^2 grid";
  uint64_t d = 0;
  for (uint64_t s = side_ / 2; s > 0; s /= 2) {
    const uint64_t rx = (x & s) > 0 ? 1 : 0;
    const uint64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCurve::IndexToXy(uint64_t d, uint64_t* x, uint64_t* y) const {
  GVA_CHECK(d < num_cells()) << "index " << d << " outside curve";
  uint64_t t = d;
  *x = 0;
  *y = 0;
  for (uint64_t s = 1; s < side_; s *= 2) {
    const uint64_t rx = 1 & (t / 2);
    const uint64_t ry = 1 & (t ^ rx);
    Rotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

StatusOr<std::vector<double>> TrajectoryToHilbertSeries(
    const std::vector<GeoPoint>& trajectory, const HilbertCurve& curve,
    double min_x, double max_x, double min_y, double max_y) {
  if (max_x <= min_x || max_y <= min_y) {
    return Status::InvalidArgument("degenerate bounding box");
  }
  const double side = static_cast<double>(curve.side());
  std::vector<double> series;
  series.reserve(trajectory.size());
  for (const GeoPoint& p : trajectory) {
    if (p.x < min_x || p.x > max_x || p.y < min_y || p.y > max_y) {
      return Status::OutOfRange(
          StrFormat("point (%g, %g) outside bounding box", p.x, p.y));
    }
    double fx = (p.x - min_x) / (max_x - min_x) * side;
    double fy = (p.y - min_y) / (max_y - min_y) * side;
    uint64_t cx = std::min<uint64_t>(curve.side() - 1,
                                     static_cast<uint64_t>(fx));
    uint64_t cy = std::min<uint64_t>(curve.side() - 1,
                                     static_cast<uint64_t>(fy));
    series.push_back(static_cast<double>(curve.XyToIndex(cx, cy)));
  }
  return series;
}

}  // namespace gva
