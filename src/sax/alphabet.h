#ifndef GVA_SAX_ALPHABET_H_
#define GVA_SAX_ALPHABET_H_

#include <cstddef>
#include <vector>

namespace gva {

/// Smallest and largest supported SAX alphabet sizes. Letters are the
/// lowercase ASCII characters 'a', 'b', ...; 26 is the natural ceiling.
inline constexpr size_t kMinAlphabetSize = 2;
inline constexpr size_t kMaxAlphabetSize = 26;

/// Equiprobable discretization alphabet under the standard normal
/// distribution (paper Section 3.1). For an alphabet of size `a` the real
/// line is cut at a-1 breakpoints chosen so each of the `a` regions has
/// probability 1/a under N(0,1); a PAA mean is mapped to the letter of the
/// region it falls into.
class NormalAlphabet {
 public:
  /// Builds the breakpoint and MINDIST tables for the given size.
  /// `size` must lie in [kMinAlphabetSize, kMaxAlphabetSize].
  explicit NormalAlphabet(size_t size);

  size_t size() const { return size_; }

  /// The a-1 interior breakpoints, ascending.
  const std::vector<double>& breakpoints() const { return breakpoints_; }

  /// Maps a z-normalized value to its letter index in [0, size).
  size_t IndexOf(double value) const;

  /// Maps a z-normalized value to its letter ('a' + index).
  char LetterOf(double value) const { return IndexFor('a', IndexOf(value)); }

  /// Letter for a given index.
  static char IndexFor(char base, size_t index) {
    return static_cast<char>(static_cast<size_t>(base) + index);
  }

  /// Index of a letter produced by this alphabet.
  static size_t IndexOfLetter(char letter) {
    return static_cast<size_t>(letter - 'a');
  }

  /// The MINDIST cell distance between letter indices r and c: 0 when
  /// |r - c| <= 1, otherwise breakpoint[max(r,c)-1] - breakpoint[min(r,c)]
  /// (Lin et al. 2002). Symmetric.
  double CellDistance(size_t r, size_t c) const;

 private:
  size_t size_;
  std::vector<double> breakpoints_;
  std::vector<double> distance_table_;  // size_ x size_, row-major
};

}  // namespace gva

#endif  // GVA_SAX_ALPHABET_H_
