#include "sax/paa.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace gva {

void Paa(std::span<const double> values, size_t segments,
         std::vector<double>& out) {
  GVA_CHECK_GT(segments, 0u);
  const size_t n = values.size();
  out.assign(segments, 0.0);
  if (n == 0) {
    return;
  }
  if (n == segments) {
    std::copy(values.begin(), values.end(), out.begin());
    return;
  }
  if (n % segments == 0) {
    // Fast path: plain per-segment means.
    const size_t step = n / segments;
    for (size_t j = 0; j < segments; ++j) {
      double sum = 0.0;
      for (size_t i = j * step; i < (j + 1) * step; ++i) {
        sum += values[i];
      }
      out[j] = sum / static_cast<double>(step);
    }
    return;
  }
  // Exact fractional PAA: segment j is the mean over the real interval
  // [j*n/w, (j+1)*n/w); boundary samples contribute proportionally to their
  // overlap with the segment.
  const double w = static_cast<double>(segments);
  const double dn = static_cast<double>(n);
  for (size_t j = 0; j < segments; ++j) {
    const double lo = static_cast<double>(j) * dn / w;
    const double hi = static_cast<double>(j + 1) * dn / w;
    double sum = 0.0;
    size_t i0 = static_cast<size_t>(std::floor(lo));
    size_t i1 = std::min(n, static_cast<size_t>(std::ceil(hi)));
    for (size_t i = i0; i < i1; ++i) {
      const double overlap = std::min(hi, static_cast<double>(i + 1)) -
                             std::max(lo, static_cast<double>(i));
      if (overlap > 0.0) {
        sum += overlap * values[i];
      }
    }
    out[j] = sum / (hi - lo);
  }
}

std::vector<double> Paa(std::span<const double> values, size_t segments) {
  std::vector<double> out;
  Paa(values, segments, out);
  return out;
}

}  // namespace gva
