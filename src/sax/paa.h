#ifndef GVA_SAX_PAA_H_
#define GVA_SAX_PAA_H_

#include <span>
#include <vector>

namespace gva {

/// Piecewise Aggregate Approximation: reduces `values` (length n) to
/// `segments` means. When n is not divisible by `segments`, boundary points
/// are split fractionally between adjacent segments (the exact PAA used by
/// jmotif/GrammarViz), so the result equals the mean of each real-valued
/// segment [j*n/w, (j+1)*n/w). When segments >= n the input is returned
/// stretched (each value repeated fractionally reduces to the identity for
/// segments == n).
void Paa(std::span<const double> values, size_t segments,
         std::vector<double>& out);

/// Convenience overload returning a fresh vector.
std::vector<double> Paa(std::span<const double> values, size_t segments);

}  // namespace gva

#endif  // GVA_SAX_PAA_H_
