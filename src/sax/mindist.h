#ifndef GVA_SAX_MINDIST_H_
#define GVA_SAX_MINDIST_H_

#include <string_view>

#include "sax/alphabet.h"

namespace gva {

/// MINDIST lower bound between two SAX words of equal length w produced
/// from subsequences of original length n (Lin et al. 2002):
///   sqrt(n / w) * sqrt(sum_i cell_dist(a_i, b_i)^2)
/// It lower-bounds the Euclidean distance between the z-normalized
/// originals. Words must have equal length and letters valid for
/// `alphabet`.
double MinDist(std::string_view a, std::string_view b, size_t original_length,
               const NormalAlphabet& alphabet);

/// True when MINDIST is exactly zero, i.e. every letter pair differs by at
/// most one alphabet position. Used by NumerosityReduction::kMinDist.
bool MinDistIsZero(std::string_view a, std::string_view b,
                   const NormalAlphabet& alphabet);

}  // namespace gva

#endif  // GVA_SAX_MINDIST_H_
