#ifndef GVA_SAX_SAX_TRANSFORM_H_
#define GVA_SAX_SAX_TRANSFORM_H_

#include <span>
#include <string>
#include <vector>

#include "sax/alphabet.h"
#include "timeseries/znorm.h"
#include "util/status.h"
#include "util/statusor.h"

namespace gva {

/// How consecutive identical SAX words are collapsed (paper Section 3.2).
enum class NumerosityReduction {
  /// Keep every window's word.
  kNone,
  /// Record a word only when it differs from the previous recorded word
  /// (the paper's strategy).
  kExact,
  /// Record a word only when its MINDIST to the previous recorded word is
  /// non-zero (the looser option exposed by the GrammarViz 2.0 UI).
  kMinDist,
};

/// Discretization parameters shared by every SAX consumer in the library.
struct SaxOptions {
  /// Sliding window length (the "seed" size; discovered anomalies are not
  /// bounded by it).
  size_t window = 100;
  /// Number of PAA segments per window (word length).
  size_t paa_size = 4;
  /// Alphabet size in [2, 26].
  size_t alphabet_size = 4;
  /// Numerosity reduction strategy.
  NumerosityReduction numerosity = NumerosityReduction::kExact;
  /// Flat-window threshold for z-normalization.
  double znorm_epsilon = kDefaultZNormEpsilon;

  /// Validates ranges and window-vs-paa consistency.
  Status Validate() const;
};

/// Result of sliding-window discretization: a sequence of SAX words together
/// with the starting position of each word's window in the original series.
/// After numerosity reduction, words.size() == offsets.size() <= windows.
struct SaxRecords {
  std::vector<std::string> words;
  std::vector<size_t> offsets;

  size_t size() const { return words.size(); }
  bool empty() const { return words.empty(); }
};

/// Discretizes one z-normalized window into a SAX word of length
/// `opts.paa_size` using `alphabet` (must have size opts.alphabet_size).
std::string SaxWordForWindow(std::span<const double> window,
                             const SaxOptions& opts,
                             const NormalAlphabet& alphabet);

/// Full sliding-window discretization with the numerosity reduction from
/// `opts` (paper Sections 3.1-3.2). Fails when `opts` is invalid or the
/// series is shorter than the window.
StatusOr<SaxRecords> Discretize(std::span<const double> series,
                                const SaxOptions& opts);

/// Discretization of every window with no numerosity reduction — one word
/// per window position. Used by HOTSAX.
StatusOr<SaxRecords> DiscretizeAllWindows(std::span<const double> series,
                                          const SaxOptions& opts);

}  // namespace gva

#endif  // GVA_SAX_SAX_TRANSFORM_H_
