#ifndef GVA_SAX_SAX_TRANSFORM_H_
#define GVA_SAX_SAX_TRANSFORM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sax/alphabet.h"
#include "timeseries/znorm.h"
#include "util/status.h"
#include "util/statusor.h"

namespace gva {

class RollingStats;
class ThreadPool;

/// How consecutive identical SAX words are collapsed (paper Section 3.2).
enum class NumerosityReduction {
  /// Keep every window's word.
  kNone,
  /// Record a word only when it differs from the previous recorded word
  /// (the paper's strategy).
  kExact,
  /// Record a word only when its MINDIST to the previous recorded word is
  /// non-zero (the looser option exposed by the GrammarViz 2.0 UI).
  kMinDist,
};

/// Discretization parameters shared by every SAX consumer in the library.
struct SaxOptions {
  /// Sliding window length (the "seed" size; discovered anomalies are not
  /// bounded by it).
  size_t window = 100;
  /// Number of PAA segments per window (word length).
  size_t paa_size = 4;
  /// Alphabet size in [2, 26].
  size_t alphabet_size = 4;
  /// Numerosity reduction strategy.
  NumerosityReduction numerosity = NumerosityReduction::kExact;
  /// Flat-window threshold for z-normalization.
  double znorm_epsilon = kDefaultZNormEpsilon;

  /// Validates ranges and window-vs-paa consistency.
  Status Validate() const;
};

/// Result of sliding-window discretization: a sequence of SAX words together
/// with the starting position of each word's window in the original series.
/// After numerosity reduction, words.size() == offsets.size() <= windows.
struct SaxRecords {
  std::vector<std::string> words;
  std::vector<size_t> offsets;

  size_t size() const { return words.size(); }
  bool empty() const { return words.empty(); }
};

/// Discretizes one z-normalized window into a SAX word of length
/// `opts.paa_size` using `alphabet` (must have size opts.alphabet_size).
std::string SaxWordForWindow(std::span<const double> window,
                             const SaxOptions& opts,
                             const NormalAlphabet& alphabet);

/// Full sliding-window discretization with the numerosity reduction from
/// `opts` (paper Sections 3.1-3.2). Fails when `opts` is invalid or the
/// series is shorter than the window.
StatusOr<SaxRecords> Discretize(std::span<const double> series,
                                const SaxOptions& opts);

/// Discretization of every window with no numerosity reduction — one word
/// per window position. Used by HOTSAX.
StatusOr<SaxRecords> DiscretizeAllWindows(std::span<const double> series,
                                          const SaxOptions& opts);

/// The alphabet-independent half of sliding-window discretization: for every
/// window position, the z-space PAA values of the window's segments together
/// with the conservative error bounds the incremental kernel derives for
/// them. Depends only on (window, paa_size, znorm_epsilon) — NOT on the
/// alphabet — so one plane is reusable by every discretization that differs
/// only in alphabet size (the ensemble engine's cache key). Rows whose
/// flat-window decision fell inside its numerical guard carry no z values
/// and are marked `fallback`; consumers recompute those windows through the
/// reference path (SaxWordForWindow), exactly as Discretize() itself does.
struct SaxZPlane {
  size_t window = 0;
  size_t paa_size = 0;
  double znorm_epsilon = kDefaultZNormEpsilon;
  /// Number of sliding-window positions (rows).
  size_t positions = 0;
  /// positions x paa_size, row-major. Valid only where !fallback[row].
  std::vector<double> z;
  /// Conservative bound on each z value's divergence from the reference
  /// path's arithmetic; same layout as `z`.
  std::vector<double> z_err;
  /// 1 = the stats guard fired for this row; use the reference path.
  std::vector<uint8_t> fallback;
  /// Number of rows with fallback == 1 (diagnostic).
  size_t fallback_rows = 0;

  /// Whether this plane matches `opts`' alphabet-independent geometry.
  bool Matches(const SaxOptions& opts) const {
    return window == opts.window && paa_size == opts.paa_size &&
           znorm_epsilon == opts.znorm_epsilon;
  }
};

/// Computes the z-plane of `series` under `opts` (the alphabet_size field
/// is validated but otherwise unused). `shared_stats`, when non-null, must
/// be a RollingStats built over exactly `series`; passing it skips the
/// per-call prefix-sum build so many configs can share one table. `pool`,
/// when non-null, parallelizes the row loop (rows are independent pure
/// functions of the prefix sums, so the plane is bit-identical for every
/// thread count).
StatusOr<SaxZPlane> ComputeSaxZPlane(std::span<const double> series,
                                     const SaxOptions& opts,
                                     const RollingStats* shared_stats = nullptr,
                                     ThreadPool* pool = nullptr);

/// Sliding-window discretization that reads PAA z values from a
/// precomputed plane instead of recomputing them per window. Letter mapping
/// still guards against `opts`' alphabet breakpoints and falls back to the
/// reference path when a value is too close to a cut, so the output is
/// byte-identical to Discretize(series, opts) for every input. Fails when
/// the plane's geometry does not match `opts`.
StatusOr<SaxRecords> DiscretizeWithZPlane(std::span<const double> series,
                                          const SaxOptions& opts,
                                          const SaxZPlane& plane);

}  // namespace gva

#endif  // GVA_SAX_SAX_TRANSFORM_H_
