#ifndef GVA_SAX_SAX_TRANSFORM_H_
#define GVA_SAX_SAX_TRANSFORM_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sax/alphabet.h"
#include "timeseries/rolling_stats.h"
#include "timeseries/znorm.h"
#include "util/status.h"
#include "util/statusor.h"

namespace gva {

class ThreadPool;

namespace backend {
struct KernelBackend;
}  // namespace backend

/// How consecutive identical SAX words are collapsed (paper Section 3.2).
enum class NumerosityReduction {
  /// Keep every window's word.
  kNone,
  /// Record a word only when it differs from the previous recorded word
  /// (the paper's strategy).
  kExact,
  /// Record a word only when its MINDIST to the previous recorded word is
  /// non-zero (the looser option exposed by the GrammarViz 2.0 UI).
  kMinDist,
};

/// Discretization parameters shared by every SAX consumer in the library.
struct SaxOptions {
  /// Sliding window length (the "seed" size; discovered anomalies are not
  /// bounded by it).
  size_t window = 100;
  /// Number of PAA segments per window (word length).
  size_t paa_size = 4;
  /// Alphabet size in [2, 26].
  size_t alphabet_size = 4;
  /// Numerosity reduction strategy.
  NumerosityReduction numerosity = NumerosityReduction::kExact;
  /// Flat-window threshold for z-normalization.
  double znorm_epsilon = kDefaultZNormEpsilon;

  /// Validates ranges and window-vs-paa consistency.
  Status Validate() const;
};

/// Result of sliding-window discretization: a sequence of SAX words together
/// with the starting position of each word's window in the original series.
/// After numerosity reduction, words.size() == offsets.size() <= windows.
struct SaxRecords {
  std::vector<std::string> words;
  std::vector<size_t> offsets;

  size_t size() const { return words.size(); }
  bool empty() const { return words.empty(); }
};

/// Discretizes one z-normalized window into a SAX word of length
/// `opts.paa_size` using `alphabet` (must have size opts.alphabet_size).
std::string SaxWordForWindow(std::span<const double> window,
                             const SaxOptions& opts,
                             const NormalAlphabet& alphabet);

/// Full sliding-window discretization with the numerosity reduction from
/// `opts` (paper Sections 3.1-3.2). Fails when `opts` is invalid or the
/// series is shorter than the window.
StatusOr<SaxRecords> Discretize(std::span<const double> series,
                                const SaxOptions& opts);

/// Discretization of every window with no numerosity reduction — one word
/// per window position. Used by HOTSAX.
StatusOr<SaxRecords> DiscretizeAllWindows(std::span<const double> series,
                                          const SaxOptions& opts);

/// The alphabet-independent half of sliding-window discretization: for every
/// window position, the z-space PAA values of the window's segments together
/// with the conservative error bounds the incremental kernel derives for
/// them. Depends only on (window, paa_size, znorm_epsilon) — NOT on the
/// alphabet — so one plane is reusable by every discretization that differs
/// only in alphabet size (the ensemble engine's cache key). Rows whose
/// flat-window decision fell inside its numerical guard carry no z values
/// and are marked `fallback`; consumers recompute those windows through the
/// reference path (SaxWordForWindow), exactly as Discretize() itself does.
struct SaxZPlane {
  size_t window = 0;
  size_t paa_size = 0;
  double znorm_epsilon = kDefaultZNormEpsilon;
  /// Number of sliding-window positions (rows).
  size_t positions = 0;
  /// positions x paa_size, row-major. Valid only where !fallback[row].
  std::vector<double> z;
  /// Conservative bound on each z value's divergence from the reference
  /// path's arithmetic; same layout as `z`.
  std::vector<double> z_err;
  /// 1 = the stats guard fired for this row; use the reference path.
  std::vector<uint8_t> fallback;
  /// Number of rows with fallback == 1 (diagnostic).
  size_t fallback_rows = 0;

  /// Whether this plane matches `opts`' alphabet-independent geometry.
  bool Matches(const SaxOptions& opts) const {
    return window == opts.window && paa_size == opts.paa_size &&
           znorm_epsilon == opts.znorm_epsilon;
  }
};

/// Computes the z-plane of `series` under `opts` (the alphabet_size field
/// is validated but otherwise unused). `shared_stats`, when non-null, must
/// be a RollingStats built over exactly `series`; passing it skips the
/// per-call prefix-sum build so many configs can share one table. `pool`,
/// when non-null, parallelizes the row loop (rows are independent pure
/// functions of the prefix sums, so the plane is bit-identical for every
/// thread count).
StatusOr<SaxZPlane> ComputeSaxZPlane(std::span<const double> series,
                                     const SaxOptions& opts,
                                     const RollingStats* shared_stats = nullptr,
                                     ThreadPool* pool = nullptr);

/// Sliding-window discretization that reads PAA z values from a
/// precomputed plane instead of recomputing them per window. Letter mapping
/// still guards against `opts`' alphabet breakpoints and falls back to the
/// reference path when a value is too close to a cut, so the output is
/// byte-identical to Discretize(series, opts) for every input. Fails when
/// the plane's geometry does not match `opts`.
StatusOr<SaxRecords> DiscretizeWithZPlane(std::span<const double> series,
                                          const SaxOptions& opts,
                                          const SaxZPlane& plane);

/// Per-segment PAA geometry shared by the batch and online incremental
/// discretizers. Depends only on (window, paa_size) and is precomputed
/// once per discretizer.
struct SaxPaaGeometry {
  struct Segment {
    double lo;
    double hi;
    size_t first;  // floor(lo): index of the first (possibly partial) sample
    size_t last;   // floor(hi): index one past the last full sample
  };

  explicit SaxPaaGeometry(const SaxOptions& opts);

  size_t window;
  size_t paa;
  bool divisible;
  size_t step;
  std::vector<Segment> segments;  // only for the non-divisible case
};

/// Incremental per-window discretization kernel over a fully materialized
/// series: the series prefix sums plus the per-segment PAA geometry are
/// built once, then each window's SAX word costs O(paa_size).
///
/// The kernel computes each z-space PAA value algebraically from raw-value
/// range sums — for segment mean s, window mean mu and stddev sigma the
/// z-normalized PAA value is (s - mu) / sigma — instead of materializing
/// the z-normalized window and averaging it the way the reference path
/// (SaxWordForWindow) does. The two orderings agree only up to rounding
/// noise, so every *decision* (flat-vs-normalized window, value-vs-
/// breakpoint) is guarded by a conservative error bound; a window whose
/// decision falls inside the bound is recomputed through the reference
/// path. That keeps the output byte-identical to the reference for every
/// input while the guard virtually never fires on real data (the bound is
/// orders of magnitude below typical breakpoint clearances).
///
/// Holds references to `series`, `opts`, and `alphabet`; all three must
/// outlive the discretizer. For unbounded streams (no materialized series)
/// use OnlineSaxDiscretizer below.
class IncrementalDiscretizer {
 public:
  /// `shared_stats`, when non-null, must be a RollingStats over exactly
  /// `series`; the discretizer then skips its own prefix-sum build. The
  /// prefix arrays are deterministic functions of the series, so shared and
  /// owned tables yield bit-identical words. `kernel_backend` selects the
  /// backend whose PaaSegmentSums kernel batches the divisible-case segment
  /// sums (null = the process-wide backend::ActiveBackend()); that kernel
  /// is bit-exact in every backend, so the emitted words are byte-identical
  /// regardless of dispatch.
  IncrementalDiscretizer(std::span<const double> series,
                         const SaxOptions& opts,
                         const NormalAlphabet& alphabet,
                         const RollingStats* shared_stats = nullptr,
                         const backend::KernelBackend* kernel_backend =
                             nullptr);

  /// Computes the SAX word of the window at `pos` into `word` (which must
  /// have length paa_size). Falls back to the reference path internally
  /// when a guard fires, so the result is always byte-identical to
  /// SaxWordForWindow on the same window.
  void WordAt(size_t pos, std::string& word);

  /// The alphabet-independent half of the fast path: the z-space PAA values
  /// of the window at `pos` and their error bounds, written to z[0..paa)
  /// and err[0..paa). Returns false when the flat-window decision falls
  /// inside its numerical guard (the row must use the reference path).
  /// Const and writes only through the caller's pointers, so concurrent
  /// calls on one instance are race-free.
  bool ZRowAt(size_t pos, double* z, double* err) const;

 private:
  bool FastWordAt(size_t pos, std::string& word) const;

  std::span<const double> series_;
  std::optional<RollingStats> owned_stats_;
  const RollingStats* stats_;
  const SaxOptions& opts_;
  const NormalAlphabet& alphabet_;
  const backend::KernelBackend* backend_;
  SaxPaaGeometry geometry_;
};

/// Online (push-one-sample) incremental discretizer: the entry point the
/// streaming engine ingests through. Bounded O(window) memory — a ring of
/// the last `window` raw samples plus a ring of running prefix sums — and
/// O(paa_size) per completed window, with the same byte-exactness contract
/// as the batch kernel above: every emitted word is byte-identical to
/// SaxWordForWindow over the same samples, because every numerical decision
/// is guarded by a conservative error bound with fallback to the reference
/// path (the window is materialized from the ring only when a guard fires).
///
/// The prefix rings are rebased on a deterministic sample-count schedule so
/// their magnitude — and with it the error bound — stays proportional to
/// one window's worth of data instead of growing with the stream; the
/// emitted words do not depend on the rebase schedule (only which path
/// computes them does).
///
/// Owns copies of its options and alphabet, so instances are freely
/// movable and outlive any caller state.
class OnlineSaxDiscretizer {
 public:
  /// `opts` must already be validated (SaxOptions::Validate).
  explicit OnlineSaxDiscretizer(const SaxOptions& opts);

  /// Feeds one sample. When this sample completes a window (i.e. at least
  /// `window` samples have been pushed), writes that window's SAX word into
  /// `word`, its start index into `*pos`, and returns true.
  bool Push(double value, std::string& word, size_t* pos);

  size_t samples_seen() const { return pushed_; }
  const SaxOptions& options() const { return opts_; }
  const NormalAlphabet& alphabet() const { return alphabet_; }
  /// Windows that went through the reference path because a numerical
  /// guard fired (diagnostic; each costs O(window) instead of O(paa)).
  size_t fallback_words() const { return fallback_words_; }

 private:
  bool FastWordAt(size_t pos, std::string& word);

  SaxOptions opts_;
  NormalAlphabet alphabet_;
  SaxPaaGeometry geometry_;
  size_t pushed_ = 0;
  size_t rebase_period_;
  std::vector<double> ring_;     // last `window` raw samples
  std::vector<double> psum_;     // prefix sums over the stream, ring of w+1
  std::vector<double> psumsq_;   // prefix sums of squares, ring of w+1
  std::vector<double> scratch_;  // contiguous window copy for fallbacks
  std::vector<double> zrow_;
  std::vector<double> zerr_;
  size_t fallback_words_ = 0;
};

}  // namespace gva

#endif  // GVA_SAX_SAX_TRANSFORM_H_
