#include "sax/alphabet.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_utils.h"

namespace gva {

NormalAlphabet::NormalAlphabet(size_t size) : size_(size) {
  GVA_CHECK(size >= kMinAlphabetSize && size <= kMaxAlphabetSize)
      << "alphabet size " << size << " outside ["
      << kMinAlphabetSize << ", " << kMaxAlphabetSize << "]";
  breakpoints_.reserve(size - 1);
  for (size_t i = 1; i < size; ++i) {
    breakpoints_.push_back(
        InverseNormalCdf(static_cast<double>(i) / static_cast<double>(size)));
  }
  distance_table_.assign(size * size, 0.0);
  for (size_t r = 0; r < size; ++r) {
    for (size_t c = 0; c < size; ++c) {
      if (r > c + 1) {
        distance_table_[r * size + c] = breakpoints_[r - 1] - breakpoints_[c];
      } else if (c > r + 1) {
        distance_table_[r * size + c] = breakpoints_[c - 1] - breakpoints_[r];
      }
    }
  }
}

size_t NormalAlphabet::IndexOf(double value) const {
  // First breakpoint strictly greater than value; values on a breakpoint go
  // to the upper region, matching the SAX reference implementation.
  auto it = std::upper_bound(breakpoints_.begin(), breakpoints_.end(), value);
  return static_cast<size_t>(it - breakpoints_.begin());
}

double NormalAlphabet::CellDistance(size_t r, size_t c) const {
  GVA_DCHECK(r < size_ && c < size_);
  return distance_table_[r * size_ + c];
}

}  // namespace gva
