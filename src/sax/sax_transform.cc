#include "sax/sax_transform.h"

#include "sax/mindist.h"
#include "sax/paa.h"
#include "timeseries/sliding_window.h"
#include "util/strings.h"

namespace gva {

Status SaxOptions::Validate() const {
  if (window < 2) {
    return Status::InvalidArgument(
        StrFormat("window must be >= 2, got %zu", window));
  }
  if (paa_size < 1) {
    return Status::InvalidArgument("paa_size must be >= 1");
  }
  if (paa_size > window) {
    return Status::InvalidArgument(
        StrFormat("paa_size (%zu) must not exceed window (%zu)", paa_size,
                  window));
  }
  if (alphabet_size < kMinAlphabetSize || alphabet_size > kMaxAlphabetSize) {
    return Status::InvalidArgument(
        StrFormat("alphabet_size (%zu) outside [%zu, %zu]", alphabet_size,
                  kMinAlphabetSize, kMaxAlphabetSize));
  }
  if (znorm_epsilon < 0.0) {
    return Status::InvalidArgument("znorm_epsilon must be non-negative");
  }
  return Status::Ok();
}

std::string SaxWordForWindow(std::span<const double> window,
                             const SaxOptions& opts,
                             const NormalAlphabet& alphabet) {
  thread_local std::vector<double> normalized;
  thread_local std::vector<double> paa;
  ZNormalize(window, normalized, opts.znorm_epsilon);
  Paa(normalized, opts.paa_size, paa);
  std::string word(opts.paa_size, 'a');
  for (size_t i = 0; i < paa.size(); ++i) {
    word[i] = alphabet.LetterOf(paa[i]);
  }
  return word;
}

namespace {

StatusOr<SaxRecords> DiscretizeImpl(std::span<const double> series,
                                    const SaxOptions& opts,
                                    NumerosityReduction numerosity) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  const NormalAlphabet alphabet(opts.alphabet_size);
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  SaxRecords records;
  records.words.reserve(windows);
  records.offsets.reserve(windows);
  for (size_t pos = 0; pos < windows; ++pos) {
    std::string word =
        SaxWordForWindow(WindowAt(series, pos, opts.window), opts, alphabet);
    bool keep = true;
    if (!records.words.empty()) {
      const std::string& prev = records.words.back();
      switch (numerosity) {
        case NumerosityReduction::kNone:
          break;
        case NumerosityReduction::kExact:
          keep = (word != prev);
          break;
        case NumerosityReduction::kMinDist:
          keep = !MinDistIsZero(word, prev, alphabet);
          break;
      }
    }
    if (keep) {
      records.words.push_back(std::move(word));
      records.offsets.push_back(pos);
    }
  }
  return records;
}

}  // namespace

StatusOr<SaxRecords> Discretize(std::span<const double> series,
                                const SaxOptions& opts) {
  return DiscretizeImpl(series, opts, opts.numerosity);
}

StatusOr<SaxRecords> DiscretizeAllWindows(std::span<const double> series,
                                          const SaxOptions& opts) {
  return DiscretizeImpl(series, opts, NumerosityReduction::kNone);
}

}  // namespace gva
