#include "sax/sax_transform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "obs/trace.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "timeseries/rolling_stats.h"
#include "timeseries/sliding_window.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace gva {

Status SaxOptions::Validate() const {
  if (window < 2) {
    return Status::InvalidArgument(
        StrFormat("window must be >= 2, got %zu", window));
  }
  if (paa_size < 1) {
    return Status::InvalidArgument("paa_size must be >= 1");
  }
  if (paa_size > window) {
    return Status::InvalidArgument(
        StrFormat("paa_size (%zu) must not exceed window (%zu)", paa_size,
                  window));
  }
  if (alphabet_size < kMinAlphabetSize || alphabet_size > kMaxAlphabetSize) {
    return Status::InvalidArgument(
        StrFormat("alphabet_size (%zu) outside [%zu, %zu]", alphabet_size,
                  kMinAlphabetSize, kMaxAlphabetSize));
  }
  if (znorm_epsilon < 0.0) {
    return Status::InvalidArgument("znorm_epsilon must be non-negative");
  }
  return Status::Ok();
}

std::string SaxWordForWindow(std::span<const double> window,
                             const SaxOptions& opts,
                             const NormalAlphabet& alphabet) {
  thread_local std::vector<double> normalized;
  thread_local std::vector<double> paa;
  ZNormalize(window, normalized, opts.znorm_epsilon);
  Paa(normalized, opts.paa_size, paa);
  std::string word(opts.paa_size, 'a');
  for (size_t i = 0; i < paa.size(); ++i) {
    word[i] = alphabet.LetterOf(paa[i]);
  }
  return word;
}

namespace {

constexpr double kMachEps = std::numeric_limits<double>::epsilon();

/// Maps a row of z-space PAA values to letters under `alphabet`, guarding
/// each value against the breakpoints adjacent to its chosen region: the
/// reference path's value differs from z[j] by at most err[j], so a value
/// that close to a cut could land on the other side there. Returns false
/// when any guard fires (caller must use the reference path). Shared by the
/// inline fast path and the precomputed-plane path so their decisions are
/// identical by construction.
bool MapLettersFromZ(const double* z, const double* err, size_t paa,
                     const NormalAlphabet& alphabet, std::string& word) {
  const auto& cuts = alphabet.breakpoints();
  for (size_t j = 0; j < paa; ++j) {
    const size_t idx = alphabet.IndexOf(z[j]);
    if (idx > 0 && z[j] - cuts[idx - 1] <= err[j]) {
      return false;
    }
    if (idx < cuts.size() && cuts[idx] - z[j] <= err[j]) {
      return false;
    }
    word[j] = NormalAlphabet::IndexFor('a', idx);
  }
  return true;
}

/// Incremental per-window discretization state shared across all window
/// positions: the series prefix sums plus the per-segment PAA geometry,
/// which depends only on (window, paa_size) and is precomputed once.
///
/// The kernel computes each z-space PAA value algebraically from raw-value
/// range sums — for segment mean s, window mean mu and stddev sigma the
/// z-normalized PAA value is (s - mu) / sigma — instead of materializing
/// the z-normalized window and averaging it the way the reference path
/// (SaxWordForWindow) does. The two orderings agree only up to rounding
/// noise, so every *decision* (flat-vs-normalized window, value-vs-
/// breakpoint) is guarded by a conservative error bound; a window whose
/// decision falls inside the bound is recomputed through the reference
/// path. That keeps the output byte-identical to the reference for every
/// input while the guard virtually never fires on real data (the bound is
/// orders of magnitude below typical breakpoint clearances).
class IncrementalDiscretizer {
 public:
  /// `shared_stats`, when non-null, must be a RollingStats over exactly
  /// `series`; the discretizer then skips its own prefix-sum build. The
  /// prefix arrays are deterministic functions of the series, so shared and
  /// owned tables yield bit-identical words.
  IncrementalDiscretizer(std::span<const double> series,
                         const SaxOptions& opts,
                         const NormalAlphabet& alphabet,
                         const RollingStats* shared_stats = nullptr)
      : series_(series),
        owned_stats_(shared_stats == nullptr
                         ? std::optional<RollingStats>(std::in_place, series)
                         : std::nullopt),
        stats_(shared_stats != nullptr ? shared_stats : &*owned_stats_),
        opts_(opts),
        alphabet_(alphabet),
        window_(opts.window),
        paa_(opts.paa_size),
        divisible_(opts.window % opts.paa_size == 0),
        step_(opts.window / opts.paa_size) {
    if (!divisible_) {
      const double dn = static_cast<double>(window_);
      const double w = static_cast<double>(paa_);
      segments_.reserve(paa_);
      for (size_t j = 0; j < paa_; ++j) {
        Segment seg;
        seg.lo = static_cast<double>(j) * dn / w;
        seg.hi = static_cast<double>(j + 1) * dn / w;
        seg.first = static_cast<size_t>(std::floor(seg.lo));
        seg.last = static_cast<size_t>(std::floor(seg.hi));
        segments_.push_back(seg);
      }
    }
  }

  /// Computes the SAX word of the window at `pos` into `word` (which must
  /// have length paa_size). Falls back to the reference path internally
  /// when a guard fires, so the result is always byte-identical to
  /// SaxWordForWindow on the same window.
  void WordAt(size_t pos, std::string& word) {
    if (!FastWordAt(pos, word)) {
      word = SaxWordForWindow(WindowAt(series_, pos, window_), opts_,
                              alphabet_);
    }
  }

  /// The alphabet-independent half of the fast path: the z-space PAA values
  /// of the window at `pos` and their error bounds, written to z[0..paa)
  /// and err[0..paa). Returns false when the flat-window decision falls
  /// inside its numerical guard (the row must use the reference path).
  /// Const and writes only through the caller's pointers, so concurrent
  /// calls on one instance are race-free.
  bool ZRowAt(size_t pos, double* z, double* err) const {
    const double n = static_cast<double>(window_);
    const RollingStats::Moments m = stats_->MomentsOf(pos, window_);
    const double sd = std::sqrt(m.variance);

    // Error bounds for the prefix-derived window statistics versus the
    // reference's naive summation.
    const double mean_err = stats_->RangeSumErrorBound(pos, window_) / n;
    const double var_err = stats_->RangeSumSqErrorBound(pos, window_) / n +
                           (2.0 * std::abs(m.mean) + mean_err) * mean_err;
    const double sd_err =
        m.variance > var_err ? var_err / sd : std::sqrt(var_err);

    // Guard the flat-window decision itself.
    if (std::abs(sd - opts_.znorm_epsilon) <= sd_err) {
      return false;
    }
    const bool flat = sd < opts_.znorm_epsilon;
    const double inv = flat ? 1.0 : 1.0 / sd;
    // Relative error of `inv`, as an absolute error per unit of |z|.
    const double inv_rel_err = flat ? 0.0 : sd_err * inv;

    for (size_t j = 0; j < paa_; ++j) {
      double seg_mean;
      double seg_err;
      if (divisible_) {
        if (step_ == 1) {
          seg_mean = series_[pos + j];
          seg_err = 0.0;
        } else {
          const size_t seg_pos = pos + j * step_;
          seg_mean =
              stats_->Sum(seg_pos, step_) / static_cast<double>(step_);
          seg_err = stats_->RangeSumErrorBound(seg_pos, step_) /
                    static_cast<double>(step_);
        }
      } else {
        const Segment& seg = segments_[j];
        double sum_err = 0.0;
        seg_mean =
            FractionalSegmentSum(pos, seg, &sum_err) / (seg.hi - seg.lo);
        seg_err = sum_err / (seg.hi - seg.lo);
      }
      // The last term covers the reference path's own rounding: it sums up
      // to `window` z-space values per segment, each O(|z|).
      z[j] = (seg_mean - m.mean) * inv;
      err[j] = (seg_err + mean_err) * inv + std::abs(z[j]) * inv_rel_err +
               (16.0 + static_cast<double>(window_)) * kMachEps *
                   (1.0 + std::abs(z[j]));
    }
    return true;
  }

 private:
  struct Segment {
    double lo;
    double hi;
    size_t first;  // floor(lo): index of the first (possibly partial) sample
    size_t last;   // floor(hi): index one past the last full sample
  };

  /// Weighted raw-value sum of the fractional segment `seg` of the window
  /// at `pos`, mirroring the exact-PAA overlap weights of Paa(). `*err`
  /// receives a bound on the sum's divergence from naive summation, built
  /// from the prefix endpoints and boundary samples actually used.
  double FractionalSegmentSum(size_t pos, const Segment& seg,
                              double* err) const {
    const double x_first = series_[pos + seg.first];
    // Segment contained in a single sample.
    if (seg.last <= seg.first) {
      *err = 4.0 * kMachEps * std::abs(x_first);
      return (seg.hi - seg.lo) * x_first;
    }
    const double first_end =
        std::min(seg.hi, static_cast<double>(seg.first + 1));
    double sum = (first_end - seg.lo) * x_first;
    double bound = 4.0 * kMachEps * std::abs(x_first);
    const size_t full_begin = seg.first + 1;
    if (seg.last > full_begin) {
      sum += stats_->Sum(pos + full_begin, seg.last - full_begin);
      bound += stats_->RangeSumErrorBound(pos + full_begin,
                                          seg.last - full_begin);
    }
    const double frac = seg.hi - static_cast<double>(seg.last);
    if (frac > 0.0) {
      const double x_last = series_[pos + seg.last];
      sum += frac * x_last;
      bound += 4.0 * kMachEps * std::abs(x_last);
    }
    *err = bound;
    return sum;
  }

  /// The O(paa_size) fast path: z row + letter mapping. Returns false when
  /// any decision falls within its numerical guard and the caller must use
  /// the reference.
  bool FastWordAt(size_t pos, std::string& word) const {
    thread_local std::vector<double> z;
    thread_local std::vector<double> err;
    z.resize(paa_);
    err.resize(paa_);
    return ZRowAt(pos, z.data(), err.data()) &&
           MapLettersFromZ(z.data(), err.data(), paa_, alphabet_, word);
  }

  std::span<const double> series_;
  std::optional<RollingStats> owned_stats_;
  const RollingStats* stats_;
  const SaxOptions& opts_;
  const NormalAlphabet& alphabet_;
  size_t window_;
  size_t paa_;
  bool divisible_;
  size_t step_;
  std::vector<Segment> segments_;  // only for the non-divisible case
};

/// The numerosity-reduction decision (paper Section 3.2): whether `word`
/// is recorded given the previously recorded word. Shared by the inline
/// and precomputed-plane discretization loops.
bool KeepWord(const SaxRecords& records, const std::string& word,
              NumerosityReduction numerosity, const NormalAlphabet& alphabet) {
  if (records.words.empty()) {
    return true;
  }
  const std::string& prev = records.words.back();
  switch (numerosity) {
    case NumerosityReduction::kNone:
      return true;
    case NumerosityReduction::kExact:
      return word != prev;
    case NumerosityReduction::kMinDist:
      return !MinDistIsZero(word, prev, alphabet);
  }
  return true;
}

StatusOr<SaxRecords> DiscretizeImpl(std::span<const double> series,
                                    const SaxOptions& opts,
                                    NumerosityReduction numerosity) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  const NormalAlphabet alphabet(opts.alphabet_size);
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  // The discretizer's constructor builds the rolling-moment (z-norm) table;
  // the loop below is the word extraction proper. Separate spans let a
  // trace show where discretization time actually goes.
  auto discretizer = [&] {
    GVA_OBS_SPAN("sax.znorm_stats");
    return IncrementalDiscretizer(series, opts, alphabet);
  }();
  GVA_OBS_SPAN("sax.words");
  SaxRecords records;
  records.words.reserve(windows);
  records.offsets.reserve(windows);
  // One flat buffer reused for every window; only kept words are copied
  // into the records.
  std::string word(opts.paa_size, 'a');
  for (size_t pos = 0; pos < windows; ++pos) {
    discretizer.WordAt(pos, word);
    if (KeepWord(records, word, numerosity, alphabet)) {
      records.words.push_back(word);
      records.offsets.push_back(pos);
    }
  }
  return records;
}

}  // namespace

StatusOr<SaxRecords> Discretize(std::span<const double> series,
                                const SaxOptions& opts) {
  return DiscretizeImpl(series, opts, opts.numerosity);
}

StatusOr<SaxRecords> DiscretizeAllWindows(std::span<const double> series,
                                          const SaxOptions& opts) {
  return DiscretizeImpl(series, opts, NumerosityReduction::kNone);
}

StatusOr<SaxZPlane> ComputeSaxZPlane(std::span<const double> series,
                                     const SaxOptions& opts,
                                     const RollingStats* shared_stats,
                                     ThreadPool* pool) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  if (shared_stats != nullptr && shared_stats->size() != series.size()) {
    return Status::InvalidArgument(
        StrFormat("shared RollingStats covers %zu points, series has %zu",
                  shared_stats->size(), series.size()));
  }
  GVA_OBS_SPAN("sax.zplane");
  const NormalAlphabet alphabet(opts.alphabet_size);
  const IncrementalDiscretizer discretizer(series, opts, alphabet,
                                           shared_stats);
  SaxZPlane plane;
  plane.window = opts.window;
  plane.paa_size = opts.paa_size;
  plane.znorm_epsilon = opts.znorm_epsilon;
  plane.positions = NumSlidingWindows(series.size(), opts.window);
  plane.z.resize(plane.positions * plane.paa_size);
  plane.z_err.resize(plane.positions * plane.paa_size);
  plane.fallback.assign(plane.positions, 0);
  const auto rows = [&](size_t row_begin, size_t row_end, size_t /*chunk*/) {
    for (size_t pos = row_begin; pos < row_end; ++pos) {
      double* z = plane.z.data() + pos * plane.paa_size;
      double* err = plane.z_err.data() + pos * plane.paa_size;
      if (!discretizer.ZRowAt(pos, z, err)) {
        plane.fallback[pos] = 1;
      }
    }
  };
  if (pool != nullptr) {
    // Rows are independent pure functions of the prefix sums, so the plane
    // is bit-identical for every thread count.
    pool->ParallelFor(0, plane.positions, rows);
  } else {
    rows(0, plane.positions, 0);
  }
  for (const uint8_t f : plane.fallback) {
    plane.fallback_rows += f;
  }
  return plane;
}

StatusOr<SaxRecords> DiscretizeWithZPlane(std::span<const double> series,
                                          const SaxOptions& opts,
                                          const SaxZPlane& plane) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  if (!plane.Matches(opts) || plane.positions != windows) {
    return Status::InvalidArgument(StrFormat(
        "z-plane geometry (w=%zu paa=%zu eps=%g rows=%zu) does not match "
        "options (w=%zu paa=%zu eps=%g rows=%zu)",
        plane.window, plane.paa_size, plane.znorm_epsilon, plane.positions,
        opts.window, opts.paa_size, opts.znorm_epsilon, windows));
  }
  GVA_OBS_SPAN("sax.words");
  const NormalAlphabet alphabet(opts.alphabet_size);
  SaxRecords records;
  records.words.reserve(windows);
  records.offsets.reserve(windows);
  std::string word(opts.paa_size, 'a');
  for (size_t pos = 0; pos < windows; ++pos) {
    const bool fast =
        plane.fallback[pos] == 0 &&
        MapLettersFromZ(plane.z.data() + pos * plane.paa_size,
                        plane.z_err.data() + pos * plane.paa_size,
                        plane.paa_size, alphabet, word);
    if (!fast) {
      word = SaxWordForWindow(WindowAt(series, pos, opts.window), opts,
                              alphabet);
    }
    if (KeepWord(records, word, opts.numerosity, alphabet)) {
      records.words.push_back(word);
      records.offsets.push_back(pos);
    }
  }
  return records;
}

}  // namespace gva
