#include "sax/sax_transform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "backend/backend.h"
#include "obs/trace.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "timeseries/rolling_stats.h"
#include "timeseries/sliding_window.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace gva {

Status SaxOptions::Validate() const {
  if (window < 2) {
    return Status::InvalidArgument(
        StrFormat("window must be >= 2, got %zu", window));
  }
  if (paa_size < 1) {
    return Status::InvalidArgument("paa_size must be >= 1");
  }
  if (paa_size > window) {
    return Status::InvalidArgument(
        StrFormat("paa_size (%zu) must not exceed window (%zu)", paa_size,
                  window));
  }
  if (alphabet_size < kMinAlphabetSize || alphabet_size > kMaxAlphabetSize) {
    return Status::InvalidArgument(
        StrFormat("alphabet_size (%zu) outside [%zu, %zu]", alphabet_size,
                  kMinAlphabetSize, kMaxAlphabetSize));
  }
  if (znorm_epsilon < 0.0) {
    return Status::InvalidArgument("znorm_epsilon must be non-negative");
  }
  return Status::Ok();
}

std::string SaxWordForWindow(std::span<const double> window,
                             const SaxOptions& opts,
                             const NormalAlphabet& alphabet) {
  thread_local std::vector<double> normalized;
  thread_local std::vector<double> paa;
  ZNormalize(window, normalized, opts.znorm_epsilon);
  Paa(normalized, opts.paa_size, paa);
  std::string word(opts.paa_size, 'a');
  for (size_t i = 0; i < paa.size(); ++i) {
    word[i] = alphabet.LetterOf(paa[i]);
  }
  return word;
}

namespace {

constexpr double kMachEps = std::numeric_limits<double>::epsilon();

/// Maps a row of z-space PAA values to letters under `alphabet`, guarding
/// each value against the breakpoints adjacent to its chosen region: the
/// reference path's value differs from z[j] by at most err[j], so a value
/// that close to a cut could land on the other side there. Returns false
/// when any guard fires (caller must use the reference path). Shared by the
/// inline fast path and the precomputed-plane path so their decisions are
/// identical by construction.
bool MapLettersFromZ(const double* z, const double* err, size_t paa,
                     const NormalAlphabet& alphabet, std::string& word) {
  const auto& cuts = alphabet.breakpoints();
  for (size_t j = 0; j < paa; ++j) {
    const size_t idx = alphabet.IndexOf(z[j]);
    if (idx > 0 && z[j] - cuts[idx - 1] <= err[j]) {
      return false;
    }
    if (idx < cuts.size() && cuts[idx] - z[j] <= err[j]) {
      return false;
    }
    word[j] = NormalAlphabet::IndexFor('a', idx);
  }
  return true;
}

/// Weighted raw-value sum of the fractional segment `seg` of the window at
/// `pos`, mirroring the exact-PAA overlap weights of Paa(). `*err` receives
/// a bound on the sum's divergence from naive summation, built from the
/// prefix endpoints and boundary samples actually used. `Source` abstracts
/// where the samples and prefix sums live (a materialized span + RollingStats
/// for the batch kernels, bounded rings for the online one).
template <typename Source>
double FractionalSegmentSum(const Source& src, size_t pos,
                            const SaxPaaGeometry::Segment& seg, double* err) {
  const double x_first = src.Sample(pos + seg.first);
  // Segment contained in a single sample.
  if (seg.last <= seg.first) {
    *err = 4.0 * kMachEps * std::abs(x_first);
    return (seg.hi - seg.lo) * x_first;
  }
  const double first_end = std::min(seg.hi, static_cast<double>(seg.first + 1));
  double sum = (first_end - seg.lo) * x_first;
  double bound = 4.0 * kMachEps * std::abs(x_first);
  const size_t full_begin = seg.first + 1;
  if (seg.last > full_begin) {
    sum += src.Sum(pos + full_begin, seg.last - full_begin);
    bound += src.RangeSumErrorBound(pos + full_begin, seg.last - full_begin);
  }
  const double frac = seg.hi - static_cast<double>(seg.last);
  if (frac > 0.0) {
    const double x_last = src.Sample(pos + seg.last);
    sum += frac * x_last;
    bound += 4.0 * kMachEps * std::abs(x_last);
  }
  *err = bound;
  return sum;
}

/// The alphabet-independent fast path, shared verbatim by the batch
/// (IncrementalDiscretizer) and online (OnlineSaxDiscretizer) kernels so
/// their guard decisions and emitted z values use the same arithmetic.
/// Computes the z-space PAA values and conservative error bounds of the
/// window at `pos` into z[0..paa) / err[0..paa). Returns false when the
/// flat-window decision falls inside its numerical guard (the caller must
/// use the reference path).
template <typename Source>
bool ZRowFromSource(const Source& src, const SaxPaaGeometry& g,
                    double znorm_epsilon, size_t pos, double* z, double* err) {
  const double n = static_cast<double>(g.window);
  const double mean = src.Sum(pos, g.window) / n;
  double variance = src.SumSq(pos, g.window) / n - mean * mean;
  if (variance < 0.0) {  // numerical noise on near-constant ranges
    variance = 0.0;
  }
  const double sd = std::sqrt(variance);

  // Error bounds for the prefix-derived window statistics versus the
  // reference's naive summation.
  const double mean_err = src.RangeSumErrorBound(pos, g.window) / n;
  const double var_err = src.RangeSumSqErrorBound(pos, g.window) / n +
                         (2.0 * std::abs(mean) + mean_err) * mean_err;
  const double sd_err = variance > var_err ? var_err / sd : std::sqrt(var_err);

  // Guard the flat-window decision itself.
  if (std::abs(sd - znorm_epsilon) <= sd_err) {
    return false;
  }
  const bool flat = sd < znorm_epsilon;
  const double inv = flat ? 1.0 : 1.0 / sd;
  // Relative error of `inv`, as an absolute error per unit of |z|.
  const double inv_rel_err = flat ? 0.0 : sd_err * inv;

  // Segment-sum batching: when the source exposes the backend seam (a
  // contiguous prefix table), the divisible equal-step case hands all
  // `paa` range sums to the active backend's PaaSegmentSums kernel in one
  // call. Each output is the identical single prefix subtraction
  // src.Sum() performs, so the batched and per-segment paths are
  // bit-identical and the guard decisions are unaffected by dispatch. The
  // online ring source has no contiguous prefix and keeps the generic
  // path.
  constexpr size_t kMaxBatchedPaa = 64;
  double seg_sums[kMaxBatchedPaa];
  bool batched = false;
  if constexpr (requires { src.SegmentSums(pos, g.paa, g.step, seg_sums); }) {
    if (g.divisible && g.step > 1 && g.paa <= kMaxBatchedPaa) {
      src.SegmentSums(pos, g.paa, g.step, seg_sums);
      batched = true;
    }
  }

  for (size_t j = 0; j < g.paa; ++j) {
    double seg_mean;
    double seg_err;
    if (g.divisible) {
      if (g.step == 1) {
        seg_mean = src.Sample(pos + j);
        seg_err = 0.0;
      } else {
        const size_t seg_pos = pos + j * g.step;
        seg_mean = (batched ? seg_sums[j] : src.Sum(seg_pos, g.step)) /
                   static_cast<double>(g.step);
        seg_err = src.RangeSumErrorBound(seg_pos, g.step) /
                  static_cast<double>(g.step);
      }
    } else {
      const SaxPaaGeometry::Segment& seg = g.segments[j];
      double sum_err = 0.0;
      seg_mean = FractionalSegmentSum(src, pos, seg, &sum_err) /
                 (seg.hi - seg.lo);
      seg_err = sum_err / (seg.hi - seg.lo);
    }
    // The last term covers the reference path's own rounding: it sums up
    // to `window` z-space values per segment, each O(|z|).
    z[j] = (seg_mean - mean) * inv;
    err[j] = (seg_err + mean_err) * inv + std::abs(z[j]) * inv_rel_err +
             (16.0 + static_cast<double>(g.window)) * kMachEps *
                 (1.0 + std::abs(z[j]));
  }
  return true;
}

/// Source over a materialized series backed by RollingStats prefix sums.
/// Exposes the backend seam (SegmentSums) so the z-row kernel can batch
/// the divisible-case PAA sums through the dispatched kernel.
struct SpanSource {
  std::span<const double> series;
  const RollingStats* stats;
  const backend::KernelBackend* backend;

  double Sample(size_t i) const { return series[i]; }
  void SegmentSums(size_t pos, size_t count, size_t step, double* out) const {
    backend->paa_segment_sums(stats->PrefixSums().data() + pos, count, step,
                              out);
  }
  double Sum(size_t pos, size_t len) const { return stats->Sum(pos, len); }
  double SumSq(size_t pos, size_t len) const { return stats->SumSq(pos, len); }
  double RangeSumErrorBound(size_t pos, size_t len) const {
    return stats->RangeSumErrorBound(pos, len);
  }
  double RangeSumSqErrorBound(size_t pos, size_t len) const {
    return stats->RangeSumSqErrorBound(pos, len);
  }
};

/// Source over the online rings: sample i of the stream lives at
/// ring[i % window], prefix value P(i) at psum[i % (window + 1)]. Valid only
/// for indices inside the currently retained window, which is all the
/// geometry ever asks for. The error bounds reuse RollingStats' formula
/// (kRangeSumErrFactor over the larger prefix endpoint) so both layers
/// guard identically.
struct RingSource {
  const std::vector<double>* ring;
  const std::vector<double>* psum;
  const std::vector<double>* psumsq;
  size_t window;

  double Sample(size_t i) const { return (*ring)[i % window]; }
  double PrefixAt(const std::vector<double>& p, size_t i) const {
    return p[i % (window + 1)];
  }
  double Sum(size_t pos, size_t len) const {
    return PrefixAt(*psum, pos + len) - PrefixAt(*psum, pos);
  }
  double SumSq(size_t pos, size_t len) const {
    return PrefixAt(*psumsq, pos + len) - PrefixAt(*psumsq, pos);
  }
  double RangeSumErrorBound(size_t pos, size_t len) const {
    const double lo = std::abs(PrefixAt(*psum, pos));
    const double hi = std::abs(PrefixAt(*psum, pos + len));
    return kRangeSumErrFactor * std::max({1.0, lo, hi});
  }
  double RangeSumSqErrorBound(size_t pos, size_t len) const {
    const double lo = PrefixAt(*psumsq, pos);
    const double hi = PrefixAt(*psumsq, pos + len);
    return kRangeSumErrFactor * std::max({1.0, lo, hi});
  }
};

/// The numerosity-reduction decision (paper Section 3.2): whether `word`
/// is recorded given the previously recorded word. Shared by the inline
/// and precomputed-plane discretization loops.
bool KeepWord(const SaxRecords& records, const std::string& word,
              NumerosityReduction numerosity, const NormalAlphabet& alphabet) {
  if (records.words.empty()) {
    return true;
  }
  const std::string& prev = records.words.back();
  switch (numerosity) {
    case NumerosityReduction::kNone:
      return true;
    case NumerosityReduction::kExact:
      return word != prev;
    case NumerosityReduction::kMinDist:
      return !MinDistIsZero(word, prev, alphabet);
  }
  return true;
}

StatusOr<SaxRecords> DiscretizeImpl(std::span<const double> series,
                                    const SaxOptions& opts,
                                    NumerosityReduction numerosity) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  const NormalAlphabet alphabet(opts.alphabet_size);
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  // The discretizer's constructor builds the rolling-moment (z-norm) table;
  // the loop below is the word extraction proper. Separate spans let a
  // trace show where discretization time actually goes.
  auto discretizer = [&] {
    GVA_OBS_SPAN("sax.znorm_stats");
    return IncrementalDiscretizer(series, opts, alphabet);
  }();
  GVA_OBS_SPAN("sax.words");
  SaxRecords records;
  records.words.reserve(windows);
  records.offsets.reserve(windows);
  // One flat buffer reused for every window; only kept words are copied
  // into the records.
  std::string word(opts.paa_size, 'a');
  for (size_t pos = 0; pos < windows; ++pos) {
    discretizer.WordAt(pos, word);
    if (KeepWord(records, word, numerosity, alphabet)) {
      records.words.push_back(word);
      records.offsets.push_back(pos);
    }
  }
  return records;
}

}  // namespace

SaxPaaGeometry::SaxPaaGeometry(const SaxOptions& opts)
    : window(opts.window),
      paa(opts.paa_size),
      divisible(opts.window % opts.paa_size == 0),
      step(opts.window / opts.paa_size) {
  if (!divisible) {
    const double dn = static_cast<double>(window);
    const double w = static_cast<double>(paa);
    segments.reserve(paa);
    for (size_t j = 0; j < paa; ++j) {
      Segment seg;
      seg.lo = static_cast<double>(j) * dn / w;
      seg.hi = static_cast<double>(j + 1) * dn / w;
      seg.first = static_cast<size_t>(std::floor(seg.lo));
      seg.last = static_cast<size_t>(std::floor(seg.hi));
      segments.push_back(seg);
    }
  }
}

IncrementalDiscretizer::IncrementalDiscretizer(
    std::span<const double> series, const SaxOptions& opts,
    const NormalAlphabet& alphabet, const RollingStats* shared_stats,
    const backend::KernelBackend* kernel_backend)
    : series_(series),
      owned_stats_(shared_stats == nullptr
                       ? std::optional<RollingStats>(std::in_place, series)
                       : std::nullopt),
      stats_(shared_stats != nullptr ? shared_stats : &*owned_stats_),
      opts_(opts),
      alphabet_(alphabet),
      backend_(kernel_backend != nullptr ? kernel_backend
                                         : &backend::ActiveBackend()),
      geometry_(opts) {}

void IncrementalDiscretizer::WordAt(size_t pos, std::string& word) {
  if (!FastWordAt(pos, word)) {
    word = SaxWordForWindow(WindowAt(series_, pos, geometry_.window), opts_,
                            alphabet_);
  }
}

bool IncrementalDiscretizer::ZRowAt(size_t pos, double* z, double* err) const {
  const SpanSource src{series_, stats_, backend_};
  return ZRowFromSource(src, geometry_, opts_.znorm_epsilon, pos, z, err);
}

bool IncrementalDiscretizer::FastWordAt(size_t pos, std::string& word) const {
  thread_local std::vector<double> z;
  thread_local std::vector<double> err;
  z.resize(geometry_.paa);
  err.resize(geometry_.paa);
  return ZRowAt(pos, z.data(), err.data()) &&
         MapLettersFromZ(z.data(), err.data(), geometry_.paa, alphabet_, word);
}

OnlineSaxDiscretizer::OnlineSaxDiscretizer(const SaxOptions& opts)
    : opts_(opts),
      alphabet_(opts.alphabet_size),
      geometry_(opts),
      // Rebasing every 8 windows keeps the prefix magnitudes — and with
      // them the guard bounds — proportional to one window of data, at an
      // amortized rebuild cost of 1/8 of a sample per push.
      rebase_period_(8 * opts.window),
      ring_(opts.window, 0.0),
      psum_(opts.window + 1, 0.0),
      psumsq_(opts.window + 1, 0.0),
      scratch_(opts.window, 0.0),
      zrow_(opts.paa_size, 0.0),
      zerr_(opts.paa_size, 0.0) {}

bool OnlineSaxDiscretizer::Push(double value, std::string& word, size_t* pos) {
  const size_t w = opts_.window;
  const size_t m = w + 1;
  if (pushed_ >= w && pushed_ % rebase_period_ == 0) {
    // Rebase: rebuild the retained prefix entries from the ring so prefix
    // magnitudes restart from zero. Which window values the fast path sees
    // changes only within the guard bounds, so emitted words — always
    // byte-identical to the reference — do not depend on the rebase
    // schedule.
    const size_t base = pushed_ - w;
    psum_[base % m] = 0.0;
    psumsq_[base % m] = 0.0;
    for (size_t i = base; i < pushed_; ++i) {
      const double v = ring_[i % w];
      psum_[(i + 1) % m] = psum_[i % m] + v;
      psumsq_[(i + 1) % m] = psumsq_[i % m] + v * v;
    }
  }
  const size_t t = pushed_;
  ring_[t % w] = value;
  psum_[(t + 1) % m] = psum_[t % m] + value;
  psumsq_[(t + 1) % m] = psumsq_[t % m] + value * value;
  ++pushed_;
  if (pushed_ < w) {
    return false;
  }
  const size_t at = pushed_ - w;
  *pos = at;
  word.resize(opts_.paa_size);
  if (!FastWordAt(at, word)) {
    // Materialize the window from the ring for the reference path. The w
    // consecutive stream indices [at, at + w) occupy each ring slot
    // exactly once.
    for (size_t i = 0; i < w; ++i) {
      scratch_[i] = ring_[(at + i) % w];
    }
    word = SaxWordForWindow(scratch_, opts_, alphabet_);
    ++fallback_words_;
  }
  return true;
}

bool OnlineSaxDiscretizer::FastWordAt(size_t pos, std::string& word) {
  const RingSource src{&ring_, &psum_, &psumsq_, opts_.window};
  return ZRowFromSource(src, geometry_, opts_.znorm_epsilon, pos, zrow_.data(),
                        zerr_.data()) &&
         MapLettersFromZ(zrow_.data(), zerr_.data(), geometry_.paa, alphabet_,
                         word);
}

StatusOr<SaxRecords> Discretize(std::span<const double> series,
                                const SaxOptions& opts) {
  return DiscretizeImpl(series, opts, opts.numerosity);
}

StatusOr<SaxRecords> DiscretizeAllWindows(std::span<const double> series,
                                          const SaxOptions& opts) {
  return DiscretizeImpl(series, opts, NumerosityReduction::kNone);
}

StatusOr<SaxZPlane> ComputeSaxZPlane(std::span<const double> series,
                                     const SaxOptions& opts,
                                     const RollingStats* shared_stats,
                                     ThreadPool* pool) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  if (shared_stats != nullptr && shared_stats->size() != series.size()) {
    return Status::InvalidArgument(
        StrFormat("shared RollingStats covers %zu points, series has %zu",
                  shared_stats->size(), series.size()));
  }
  GVA_OBS_SPAN("sax.zplane");
  const NormalAlphabet alphabet(opts.alphabet_size);
  const IncrementalDiscretizer discretizer(series, opts, alphabet,
                                           shared_stats);
  SaxZPlane plane;
  plane.window = opts.window;
  plane.paa_size = opts.paa_size;
  plane.znorm_epsilon = opts.znorm_epsilon;
  plane.positions = NumSlidingWindows(series.size(), opts.window);
  plane.z.resize(plane.positions * plane.paa_size);
  plane.z_err.resize(plane.positions * plane.paa_size);
  plane.fallback.assign(plane.positions, 0);
  const auto rows = [&](size_t row_begin, size_t row_end, size_t /*chunk*/) {
    for (size_t pos = row_begin; pos < row_end; ++pos) {
      double* z = plane.z.data() + pos * plane.paa_size;
      double* err = plane.z_err.data() + pos * plane.paa_size;
      if (!discretizer.ZRowAt(pos, z, err)) {
        plane.fallback[pos] = 1;
      }
    }
  };
  if (pool != nullptr) {
    // Rows are independent pure functions of the prefix sums, so the plane
    // is bit-identical for every thread count.
    pool->ParallelFor(0, plane.positions, rows);
  } else {
    rows(0, plane.positions, 0);
  }
  for (const uint8_t f : plane.fallback) {
    plane.fallback_rows += f;
  }
  return plane;
}

StatusOr<SaxRecords> DiscretizeWithZPlane(std::span<const double> series,
                                          const SaxOptions& opts,
                                          const SaxZPlane& plane) {
  GVA_RETURN_IF_ERROR(opts.Validate());
  if (series.size() < opts.window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu shorter than window %zu", series.size(),
                  opts.window));
  }
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  if (!plane.Matches(opts) || plane.positions != windows) {
    return Status::InvalidArgument(StrFormat(
        "z-plane geometry (w=%zu paa=%zu eps=%g rows=%zu) does not match "
        "options (w=%zu paa=%zu eps=%g rows=%zu)",
        plane.window, plane.paa_size, plane.znorm_epsilon, plane.positions,
        opts.window, opts.paa_size, opts.znorm_epsilon, windows));
  }
  GVA_OBS_SPAN("sax.words");
  const NormalAlphabet alphabet(opts.alphabet_size);
  SaxRecords records;
  records.words.reserve(windows);
  records.offsets.reserve(windows);
  std::string word(opts.paa_size, 'a');
  for (size_t pos = 0; pos < windows; ++pos) {
    const bool fast =
        plane.fallback[pos] == 0 &&
        MapLettersFromZ(plane.z.data() + pos * plane.paa_size,
                        plane.z_err.data() + pos * plane.paa_size,
                        plane.paa_size, alphabet, word);
    if (!fast) {
      word = SaxWordForWindow(WindowAt(series, pos, opts.window), opts,
                              alphabet);
    }
    if (KeepWord(records, word, opts.numerosity, alphabet)) {
      records.words.push_back(word);
      records.offsets.push_back(pos);
    }
  }
  return records;
}

}  // namespace gva
