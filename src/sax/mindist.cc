#include "sax/mindist.h"

#include <cmath>

#include "util/check.h"

namespace gva {

double MinDist(std::string_view a, std::string_view b, size_t original_length,
               const NormalAlphabet& alphabet) {
  GVA_CHECK_EQ(a.size(), b.size());
  GVA_CHECK_GT(a.size(), 0u);
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = alphabet.CellDistance(NormalAlphabet::IndexOfLetter(a[i]),
                                           NormalAlphabet::IndexOfLetter(b[i]));
    sum_sq += d * d;
  }
  const double scale =
      std::sqrt(static_cast<double>(original_length) /
                static_cast<double>(a.size()));
  return scale * std::sqrt(sum_sq);
}

bool MinDistIsZero(std::string_view a, std::string_view b,
                   const NormalAlphabet& alphabet) {
  GVA_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (alphabet.CellDistance(NormalAlphabet::IndexOfLetter(a[i]),
                              NormalAlphabet::IndexOfLetter(b[i])) > 0.0) {
      return false;
    }
  }
  return true;
}

}  // namespace gva
