#include "discord/distance.h"

#include <cmath>

#include "timeseries/stats.h"
#include "util/check.h"

namespace gva {

namespace {

/// Writes the squared z-normalized differences of a[0..count) and
/// b[0..count) into out[0..count). Branch-free with independent iterations,
/// so the compiler can vectorize it; the caller folds `out` into its
/// running sum left-to-right, which keeps the overall summation order
/// identical to the scalar kernel's.
inline void SquaredDiffBlock(const double* a, const double* b, size_t count,
                             double mean_a, double inv_a, double mean_b,
                             double inv_b, double* out) {
  for (size_t i = 0; i < count; ++i) {
    const double va = (a[i] - mean_a) * inv_a;
    const double vb = (b[i] - mean_b) * inv_b;
    const double d = va - vb;
    out[i] = d * d;
  }
}

}  // namespace

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  GVA_CHECK_EQ(a.size(), b.size());
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq);
}

double ZNormEuclideanDistance(std::span<const double> a,
                              std::span<const double> b, double epsilon) {
  GVA_CHECK_EQ(a.size(), b.size());
  const double mean_a = Mean(a);
  const double sd_a = StdDev(a);
  const double mean_b = Mean(b);
  const double sd_b = StdDev(b);
  // Flat windows are only mean-centered; multiplying by exactly 1.0 keeps
  // the arithmetic identical to ZNormalize's centering-only branch.
  const double inv_a = sd_a < epsilon ? 1.0 : 1.0 / sd_a;
  const double inv_b = sd_b < epsilon ? 1.0 : 1.0 / sd_b;
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double va = (a[i] - mean_a) * inv_a;
    const double vb = (b[i] - mean_b) * inv_b;
    const double d = va - vb;
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq);
}

SubsequenceDistance::SubsequenceDistance(std::span<const double> series,
                                         double znorm_epsilon)
    : series_(series), epsilon_(znorm_epsilon), stats_(series) {}

SubsequenceDistance::MeanStd SubsequenceDistance::StatsOf(
    size_t pos, size_t length) const {
  GVA_DCHECK(length > 0);
  GVA_DCHECK(pos + length <= series_.size());
  const RollingStats::Moments m = stats_.MomentsOf(pos, length);
  const double sd = std::sqrt(m.variance);
  return MeanStd{m.mean, sd < epsilon_ ? 1.0 : 1.0 / sd};
}

double SubsequenceDistance::Distance(size_t p, size_t q, size_t length,
                                     double limit) const {
  GVA_DCHECK(p + length <= series_.size());
  GVA_DCHECK(q + length <= series_.size());
  const MeanStd sp = StatsOf(p, length);
  const MeanStd sq = StatsOf(q, length);
  const double* a = series_.data() + p;
  const double* b = series_.data() + q;
  double block[kBlock];
  double sum_sq = 0.0;
  size_t i = 0;

  if (limit == kInfinity) {
    // Full-length fast path: no abandon checks at all.
    for (; i + kBlock <= length; i += kBlock) {
      SquaredDiffBlock(a + i, b + i, kBlock, sp.mean, sp.inv_std, sq.mean,
                       sq.inv_std, block);
      for (size_t j = 0; j < kBlock; ++j) {
        sum_sq += block[j];
      }
    }
    const size_t tail = length - i;
    SquaredDiffBlock(a + i, b + i, tail, sp.mean, sp.inv_std, sq.mean,
                     sq.inv_std, block);
    for (size_t j = 0; j < tail; ++j) {
      sum_sq += block[j];
    }
    return Completed(std::sqrt(sum_sq));
  }

  // Abandoning path: the limit is checked once per block. The squared
  // terms are non-negative, so the running sum is monotone and the
  // block-granular check abandons exactly the calls a per-element check
  // would (possibly a few elements later).
  const double limit_sq = limit * limit;
  for (; i + kBlock <= length; i += kBlock) {
    SquaredDiffBlock(a + i, b + i, kBlock, sp.mean, sp.inv_std, sq.mean,
                     sq.inv_std, block);
    for (size_t j = 0; j < kBlock; ++j) {
      sum_sq += block[j];
    }
    if (sum_sq >= limit_sq) {
      abandoned_.Add();
      return kInfinity;
    }
  }
  const size_t tail = length - i;
  SquaredDiffBlock(a + i, b + i, tail, sp.mean, sp.inv_std, sq.mean,
                   sq.inv_std, block);
  for (size_t j = 0; j < tail; ++j) {
    sum_sq += block[j];
  }
  if (sum_sq >= limit_sq) {
    abandoned_.Add();
    return kInfinity;
  }
  return Completed(std::sqrt(sum_sq));
}

}  // namespace gva
