#include "discord/distance.h"

#include <cmath>

#include "backend/backend.h"
#include "timeseries/stats.h"
#include "util/check.h"

namespace gva {

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  GVA_CHECK_EQ(a.size(), b.size());
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq);
}

double ZNormEuclideanDistance(std::span<const double> a,
                              std::span<const double> b, double epsilon) {
  GVA_CHECK_EQ(a.size(), b.size());
  const double mean_a = Mean(a);
  const double sd_a = StdDev(a);
  const double mean_b = Mean(b);
  const double sd_b = StdDev(b);
  // Flat windows are only mean-centered; multiplying by exactly 1.0 keeps
  // the arithmetic identical to ZNormalize's centering-only branch.
  const double inv_a = sd_a < epsilon ? 1.0 : 1.0 / sd_a;
  const double inv_b = sd_b < epsilon ? 1.0 : 1.0 / sd_b;
  double sum_sq = 0.0;
  const bool completed = backend::ActiveBackend().znorm_distance_block(
      a.data(), b.data(), a.size(), mean_a, inv_a, mean_b, inv_b,
      SubsequenceDistance::kInfinity, &sum_sq);
  GVA_CHECK(completed);  // An infinite limit never abandons.
  return std::sqrt(sum_sq);
}

SubsequenceDistance::SubsequenceDistance(
    std::span<const double> series, double znorm_epsilon,
    const backend::KernelBackend* kernel_backend)
    : series_(series),
      epsilon_(znorm_epsilon),
      backend_(kernel_backend != nullptr ? kernel_backend
                                         : &backend::ActiveBackend()),
      stats_(series) {}

SubsequenceDistance::MeanStd SubsequenceDistance::StatsOf(
    size_t pos, size_t length) const {
  GVA_DCHECK(length > 0);
  GVA_DCHECK(pos + length <= series_.size());
  const RollingStats::Moments m = stats_.MomentsOf(pos, length);
  const double sd = std::sqrt(m.variance);
  return MeanStd{m.mean, sd < epsilon_ ? 1.0 : 1.0 / sd};
}

double SubsequenceDistance::Distance(size_t p, size_t q, size_t length,
                                     double limit) const {
  GVA_DCHECK(p + length <= series_.size());
  GVA_DCHECK(q + length <= series_.size());
  const MeanStd sp = StatsOf(p, length);
  const MeanStd sq = StatsOf(q, length);
  // kInfinity squared is kInfinity, so an unlimited call reaches the
  // backend's check-free full-length path without a special case here.
  const double limit_sq = limit == kInfinity ? kInfinity : limit * limit;
  double sum_sq = 0.0;
  const bool completed = backend_->znorm_distance_block(
      series_.data() + p, series_.data() + q, length, sp.mean, sp.inv_std,
      sq.mean, sq.inv_std, limit_sq, &sum_sq);
  if (!completed) {
    abandoned_.Add();
    return kInfinity;
  }
  return Completed(std::sqrt(sum_sq));
}

}  // namespace gva
