#include "discord/distance.h"

#include <cmath>

#include "util/check.h"

namespace gva {

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  GVA_CHECK_EQ(a.size(), b.size());
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq);
}

double ZNormEuclideanDistance(std::span<const double> a,
                              std::span<const double> b, double epsilon) {
  return EuclideanDistance(ZNormalized(a, epsilon), ZNormalized(b, epsilon));
}

SubsequenceDistance::SubsequenceDistance(std::span<const double> series,
                                         double znorm_epsilon)
    : series_(series), epsilon_(znorm_epsilon) {
  prefix_.resize(series.size() + 1);
  prefix_sq_.resize(series.size() + 1);
  prefix_[0] = 0.0;
  prefix_sq_[0] = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + series[i];
    prefix_sq_[i + 1] = prefix_sq_[i] + series[i] * series[i];
  }
}

SubsequenceDistance::MeanStd SubsequenceDistance::StatsOf(
    size_t pos, size_t length) const {
  GVA_DCHECK(length > 0);
  GVA_DCHECK(pos + length <= series_.size());
  const double n = static_cast<double>(length);
  const double sum = prefix_[pos + length] - prefix_[pos];
  const double sum_sq = prefix_sq_[pos + length] - prefix_sq_[pos];
  const double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  if (variance < 0.0) {  // numerical noise
    variance = 0.0;
  }
  const double sd = std::sqrt(variance);
  return MeanStd{mean, sd < epsilon_ ? 1.0 : 1.0 / sd};
}

double SubsequenceDistance::Distance(size_t p, size_t q, size_t length,
                                     double limit) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  GVA_DCHECK(p + length <= series_.size());
  GVA_DCHECK(q + length <= series_.size());
  const MeanStd sp = StatsOf(p, length);
  const MeanStd sq = StatsOf(q, length);
  const double limit_sq =
      limit == kInfinity ? kInfinity : limit * limit;
  double sum_sq = 0.0;
  const double* a = series_.data() + p;
  const double* b = series_.data() + q;
  for (size_t i = 0; i < length; ++i) {
    const double va = (a[i] - sp.mean) * sp.inv_std;
    const double vb = (b[i] - sq.mean) * sq.inv_std;
    const double d = va - vb;
    sum_sq += d * d;
    if (sum_sq >= limit_sq) {
      return kInfinity;
    }
  }
  return std::sqrt(sum_sq);
}

}  // namespace gva
