#ifndef GVA_DISCORD_BRUTE_FORCE_H_
#define GVA_DISCORD_BRUTE_FORCE_H_

#include <cstdint>
#include <span>

#include "discord/discord_record.h"
#include "util/statusor.h"

namespace gva {

/// Exact brute-force discord discovery (paper Section 6): for every
/// candidate subsequence of length `window`, computes the distance to every
/// non-self match and reports the `top_k` subsequences with the largest
/// nearest-neighbor distances (non-overlapping). O(m^2) distance calls.
///
/// Distances may early-abandon internally, but — matching the paper's
/// accounting — every non-self pair still costs one distance call, so the
/// reported call count equals BruteForceCallCount() for top_k == 1.
///
/// `num_threads` parallelizes the outer candidate loop (0 = all hardware
/// threads). Each candidate's nearest-neighbor scan is independent, so the
/// result — positions, distances, and the call count — is bit-identical
/// for every thread count.
StatusOr<DiscordResult> FindDiscordsBruteForce(std::span<const double> series,
                                               size_t window, size_t top_k,
                                               size_t num_threads = 1);

/// Exact number of distance calls the brute-force search spends on a series
/// of length `m` with window `n` (all ordered non-self pairs). The count is
/// deterministic, so for very long series Table 1 computes it analytically
/// instead of running the quadratic search.
uint64_t BruteForceCallCount(size_t m, size_t n);

}  // namespace gva

#endif  // GVA_DISCORD_BRUTE_FORCE_H_
