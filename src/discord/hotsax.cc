#include "discord/hotsax.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "discord/distance.h"
#include "discord/parallel_search.h"
#include "obs/trace.h"
#include "timeseries/sliding_window.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace gva {

namespace {

/// Per-round progress accounting, merged from chunk-local tallies after the
/// round joins (one cell per chunk, so totals are exact and, per chunk set,
/// independent of completion order).
struct RoundProgress {
  uint64_t visited = 0;
  uint64_t pruned = 0;
};

/// One discord search round over the allowed candidates, parallelized over
/// chunks of the outer ordering. Every candidate's inner scan is a prefix
/// of a fixed visit order (bucket siblings, then the shared shuffle), cut
/// short only by strict comparison against the shared best-so-far, so a
/// candidate that completes its scan always yields the same (distance,
/// neighbor) pair; the cross-chunk arg-max reduction then makes the round
/// winner identical for every thread count. Returns false when no candidate
/// has a finite nearest-neighbor distance.
bool FindBestDiscord(const SubsequenceDistance& dist, size_t window,
                     const std::vector<size_t>& outer_order,
                     const std::unordered_map<std::string,
                                              std::vector<size_t>>& buckets,
                     const std::vector<const std::string*>& word_of,
                     const std::vector<size_t>& inner_random,
                     const std::vector<char>& excluded, ThreadPool& pool,
                     obs::BestSoFarLog& trajectory, RoundProgress* progress,
                     DiscordRecord* best) {
  GVA_OBS_SPAN("search.hotsax.round");
  SharedBestDistance shared_best;
  std::vector<BestCandidate> chunk_best(pool.num_threads());
  std::vector<RoundProgress> chunk_progress(pool.num_threads());

  pool.ParallelFor(0, outer_order.size(), [&](size_t chunk_begin,
                                              size_t chunk_end,
                                              size_t chunk) {
    GVA_OBS_SPAN("search.hotsax.chunk");
    BestCandidate local;
    RoundProgress tally;
    for (size_t oi = chunk_begin; oi < chunk_end; ++oi) {
      const size_t p = outer_order[oi];
      if (excluded[p]) {
        continue;
      }
      ++tally.visited;
      double nn = SubsequenceDistance::kInfinity;
      size_t nn_q = 0;
      bool pruned = false;

      auto visit = [&](size_t q) {
        if (IsSelfMatch(p, q, window)) {
          return true;
        }
        const double d = dist.Distance(p, q, window, nn);
        if (d < nn) {
          nn = d;
          nn_q = q;
          if (nn < shared_best.load()) {
            pruned = true;  // p cannot beat the best-so-far discord
            return false;
          }
        }
        return true;
      };

      // Heuristic inner ordering: same-word positions first...
      const std::vector<size_t>& same_word = buckets.at(*word_of[p]);
      for (size_t q : same_word) {
        if (q != p && !visit(q)) {
          break;
        }
      }
      // ... then everything else in (pre-shuffled) random order.
      if (!pruned) {
        for (size_t q : inner_random) {
          if (*word_of[q] == *word_of[p]) {
            continue;  // already visited through the bucket
          }
          if (!visit(q)) {
            break;
          }
        }
      }

      if (pruned) {
        ++tally.pruned;
      } else if (nn != SubsequenceDistance::kInfinity) {
        local.Consider(BestCandidate{nn, p, window, nn_q, -2, true});
        if (shared_best.RaiseTo(nn)) {
          trajectory.Record(dist.calls(), nn);
        }
      }
    }
    chunk_best[chunk] = local;
    chunk_progress[chunk] = tally;
  });

  BestCandidate overall;
  for (const BestCandidate& candidate : chunk_best) {
    overall.Consider(candidate);
  }
  for (const RoundProgress& tally : chunk_progress) {
    progress->visited += tally.visited;
    progress->pruned += tally.pruned;
  }
  if (!overall.valid) {
    return false;
  }
  *best = DiscordRecord{overall.position, window, overall.distance,
                        overall.nn_position, -2};
  return true;
}

}  // namespace

StatusOr<DiscordResult> FindDiscordsHotSax(std::span<const double> series,
                                           const HotSaxOptions& options) {
  const size_t window = options.sax.window;
  if (series.size() < 2 * window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu too short for window %zu", series.size(),
                  window));
  }
  if (options.top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }

  // Discretize every window (no numerosity reduction).
  StatusOr<SaxRecords> discretized = [&] {
    GVA_OBS_SPAN("search.hotsax.discretize");
    return DiscretizeAllWindows(series, options.sax);
  }();
  GVA_ASSIGN_OR_RETURN(SaxRecords records, std::move(discretized));
  const size_t candidates = records.size();

  // Word buckets: word -> positions, in index order.
  std::unordered_map<std::string, std::vector<size_t>> buckets;
  buckets.reserve(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    buckets[records.words[i]].push_back(i);
  }
  std::vector<const std::string*> word_of(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    word_of[i] = &records.words[i];
  }

  Rng rng(options.seed);

  // Outer ordering: ascending bucket frequency; positions within the same
  // frequency tier are shuffled.
  std::vector<size_t> outer_order(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    outer_order[i] = i;
  }
  rng.Shuffle(outer_order);
  std::stable_sort(outer_order.begin(), outer_order.end(),
                   [&](size_t a, size_t b) {
                     return buckets.at(*word_of[a]).size() <
                            buckets.at(*word_of[b]).size();
                   });

  // Shared random inner ordering.
  std::vector<size_t> inner_random(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    inner_random[i] = i;
  }
  rng.Shuffle(inner_random);

  SubsequenceDistance dist(series);
  // Plain bytes instead of vector<bool>: chunk threads read it while only
  // the sequential between-round code writes it, and the byte vector keeps
  // those reads free of bit-packing proxies.
  std::vector<char> excluded(candidates, 0);
  ThreadPool pool(options.num_threads);

  DiscordResult result;
  obs::BestSoFarLog trajectory;
  RoundProgress progress;
  for (size_t k = 0; k < options.top_k; ++k) {
    DiscordRecord best;
    if (!FindBestDiscord(dist, window, outer_order, buckets, word_of,
                         inner_random, excluded, pool, trajectory, &progress,
                         &best)) {
      break;
    }
    result.discords.push_back(best);
    // Exclude the discord's self-match zone from future outer loops.
    for (size_t p = 0; p < candidates; ++p) {
      if (IsSelfMatch(p, best.position, window)) {
        excluded[p] = 1;
      }
    }
  }
  result.distance_calls = dist.calls();
  result.distance_calls_completed = dist.calls_completed();
  result.distance_calls_abandoned = dist.calls_abandoned();
  result.candidates_visited = progress.visited;
  result.candidates_pruned = progress.pruned;
  result.best_trajectory = trajectory.TakeSorted();
  AccumulateSearchMetrics(result, "hotsax", obs::GlobalMetrics());
  pool.ExportStats(obs::GlobalMetrics());
  return result;
}

}  // namespace gva
