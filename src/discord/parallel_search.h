#ifndef GVA_DISCORD_PARALLEL_SEARCH_H_
#define GVA_DISCORD_PARALLEL_SEARCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gva {

/// Monotonically increasing best-so-far discord distance shared by the
/// threads of a parallel discord search. Threads prune a candidate as soon
/// as its running nearest-neighbor distance drops strictly below the shared
/// value. Because every pruning comparison is strict and the shared value
/// never exceeds the round's final maximum, a candidate that ties or wins
/// the round can never be pruned — which is what makes the reduction below
/// thread-count-invariant.
class SharedBestDistance {
 public:
  explicit SharedBestDistance(double initial = -1.0) : value_(initial) {}

  double load() const { return value_.load(std::memory_order_relaxed); }

  /// Atomically raises the shared value to `candidate` if larger. Returns
  /// whether this call stored a new maximum — the searches sample their
  /// best-so-far trajectory (obs::BestSoFarLog) exactly on those raises.
  bool RaiseTo(double candidate) {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate > current) {
      if (value_.compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<double> value_;
};

/// Arg-max cell for the deterministic cross-chunk reduction of a search
/// round. `Beats` is a total order — distance descending, then start
/// position ascending, then length ascending — so folding any permutation
/// of per-chunk winners yields the same overall winner regardless of chunk
/// boundaries or completion order.
struct BestCandidate {
  double distance = -1.0;
  size_t position = 0;
  size_t length = 0;
  size_t nn_position = 0;
  int32_t rule = -2;
  bool valid = false;

  bool Beats(const BestCandidate& other) const {
    if (!valid || !other.valid) {
      return valid;
    }
    if (distance != other.distance) {
      return distance > other.distance;
    }
    if (position != other.position) {
      return position < other.position;
    }
    return length < other.length;
  }

  void Consider(const BestCandidate& other) {
    if (other.Beats(*this)) {
      *this = other;
    }
  }
};

}  // namespace gva

#endif  // GVA_DISCORD_PARALLEL_SEARCH_H_
