#ifndef GVA_DISCORD_DISCORD_RECORD_H_
#define GVA_DISCORD_DISCORD_RECORD_H_

#include <cstdint>
#include <vector>

#include "timeseries/interval.h"

namespace gva {

/// One discovered discord: the subsequence whose distance to its nearest
/// non-self match is (locally) the largest.
struct DiscordRecord {
  /// Start position in the series.
  size_t position = 0;
  /// Subsequence length. Fixed-length algorithms report the window size;
  /// RRA reports variable rule-interval lengths.
  size_t length = 0;
  /// Distance to the nearest non-self match. For RRA this is the
  /// length-normalized distance of paper Eq. (1).
  double distance = 0.0;
  /// Start position of the nearest non-self match.
  size_t nn_position = 0;
  /// Grammar rule the interval came from (RRA only); -1 for zero-coverage
  /// gap intervals, -2 when not applicable (HOTSAX / brute force).
  int32_t rule = -2;

  Interval span() const { return Interval{position, position + length}; }
};

/// Result of a discord search: ranked discords (best first) plus the number
/// of distance-function calls the search spent — the paper's efficiency
/// metric (Table 1).
struct DiscordResult {
  std::vector<DiscordRecord> discords;
  uint64_t distance_calls = 0;
};

}  // namespace gva

#endif  // GVA_DISCORD_DISCORD_RECORD_H_
