#ifndef GVA_DISCORD_DISCORD_RECORD_H_
#define GVA_DISCORD_DISCORD_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "timeseries/interval.h"

namespace gva {

/// One discovered discord: the subsequence whose distance to its nearest
/// non-self match is (locally) the largest.
struct DiscordRecord {
  /// Start position in the series.
  size_t position = 0;
  /// Subsequence length. Fixed-length algorithms report the window size;
  /// RRA reports variable rule-interval lengths.
  size_t length = 0;
  /// Distance to the nearest non-self match. For RRA this is the
  /// length-normalized distance of paper Eq. (1).
  double distance = 0.0;
  /// Start position of the nearest non-self match.
  size_t nn_position = 0;
  /// Grammar rule the interval came from (RRA only); -1 for zero-coverage
  /// gap intervals, -2 when not applicable (HOTSAX / brute force).
  int32_t rule = -2;

  Interval span() const { return Interval{position, position + length}; }
};

/// Result of a discord search: ranked discords (best first) plus the
/// search-progress accounting — the paper's efficiency metric (Table 1) and
/// its decomposition.
///
/// Determinism: discords and candidates_visited are bit-identical for every
/// thread count. The call split, candidates_pruned, and the trajectory
/// depend on where cross-thread pruning cut each losing scan, so for the
/// shared-best searches (HOTSAX, RRA) they are reproducible only at
/// num_threads == 1; brute force abandons against per-candidate state only,
/// so there every field is thread-count-invariant.
struct DiscordResult {
  std::vector<DiscordRecord> discords;
  /// Total distance-function calls (completed + abandoned).
  uint64_t distance_calls = 0;
  /// Calls whose scan ran to completion.
  uint64_t distance_calls_completed = 0;
  /// Calls cut short by the early-abandon limit.
  uint64_t distance_calls_abandoned = 0;
  /// Outer-loop candidates whose inner scan was started.
  uint64_t candidates_visited = 0;
  /// Candidates discarded because their running nearest-neighbor distance
  /// fell below the best-so-far discord (the outer-loop pruning of HOTSAX /
  /// RRA; always 0 for brute force).
  uint64_t candidates_pruned = 0;
  /// Best-so-far improvements in call-count order: the search's
  /// convergence trajectory.
  std::vector<obs::BestSoFarSample> best_trajectory;
};

/// Folds a finished search's accounting into `registry` under
/// `search.<algo>.*` — the bridge from per-search exact accounting to the
/// process-wide metrics exports. Called once per search (not per call), so
/// the map lookups are off the hot path.
inline void AccumulateSearchMetrics(const DiscordResult& result,
                                    std::string_view algo,
                                    obs::MetricsRegistry& registry) {
  const std::string prefix = "search." + std::string(algo);
  registry.counter(prefix + ".calls.completed")
      .Add(result.distance_calls_completed);
  registry.counter(prefix + ".calls.abandoned")
      .Add(result.distance_calls_abandoned);
  registry.counter(prefix + ".candidates.visited")
      .Add(result.candidates_visited);
  registry.counter(prefix + ".candidates.pruned")
      .Add(result.candidates_pruned);
  registry.counter(prefix + ".discords").Add(result.discords.size());
}

}  // namespace gva

#endif  // GVA_DISCORD_DISCORD_RECORD_H_
