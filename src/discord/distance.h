#ifndef GVA_DISCORD_DISTANCE_H_
#define GVA_DISCORD_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>

#include "backend/backend.h"
#include "obs/metrics.h"
#include "timeseries/rolling_stats.h"
#include "timeseries/znorm.h"

namespace gva {

/// Plain Euclidean distance between equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between the z-normalized forms of `a` and `b`.
/// Allocation-free: the z-normalized values are fused into the accumulation
/// loop instead of being materialized. The arithmetic — mean, standard
/// deviation, flat-window centering, per-element normalize-subtract-square
/// — is the ZNormalize + EuclideanDistance composition, dispatched through
/// the active kernel backend: bit-identical to that composition under the
/// scalar backend, within rounding tolerance under the SIMD backends (the
/// documented summation-order exception, DESIGN.md §11). Convenience
/// wrapper used by tests and diagnostics; the hot path lives in
/// SubsequenceDistance.
double ZNormEuclideanDistance(std::span<const double> a,
                              std::span<const double> b,
                              double epsilon = kDefaultZNormEpsilon);

/// Distance oracle over one time series. Window means and standard
/// deviations are derived from a shared RollingStats prefix-sum table in
/// O(1) per window, so a distance between any two equal-length subsequences
/// costs one fused normalize-and-accumulate pass with optional early
/// abandoning. Every call — abandoned or not — increments a call counter,
/// which is what the paper's Table 1 compares across algorithms ("number of
/// calls to the distance function"). The accounting is split by outcome
/// (relaxed atomics): calls_completed() scans that ran to the end,
/// calls_abandoned() scans the limit cut short — their sum is calls(), and
/// the ratio is a direct measure of pruning effectiveness. Because the
/// split is an algorithm *output* (the Table-1 quantity), the counters are
/// always-on BasicCounter<true>, not the GVA_OBS-gated obs::Counter: a
/// -DGVA_OBS=OFF build strips the telemetry but still reports exact call
/// counts. The optional distance histogram is telemetry and stays gated.
///
/// Kernel structure (see DESIGN.md §5c and §11): the fused pass runs
/// through a backend::KernelBackend table selected at construction
/// (defaulting to the process-wide active backend — scalar, AVX2, or NEON).
/// Every backend checks the abandon limit once per kBlock elements plus
/// once after the tail; squared terms are non-negative and the running sum
/// is monotone, so block-granular checking abandons exactly the calls a
/// per-element check of the same sums would. For a fixed backend, results
/// — values and abandon decisions both — are bit-reproducible across runs,
/// thread counts, and limited-vs-unlimited paths. Across backends,
/// completed distances agree bitwise when the backend advertises
/// bit_exact_distance and within rounding tolerance otherwise.
///
/// Thread safety: one instance may be shared by the parallel searches.
/// Distance() is const and touches only immutable state plus relaxed
/// atomics, so concurrent Distance() calls are race-free and the final
/// calls() total is exact for any thread count (the interleaving of
/// increments is not reproducible, but the sum is). ResetCalls() must not
/// race with in-flight Distance() calls.
class SubsequenceDistance {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Elements per abandon-check block. Wide enough to amortize the limit
  /// check and fill SIMD lanes, small enough that an abandoned call does
  /// at most kBlock - 1 elements of extra work versus a per-element check.
  static constexpr size_t kBlock = backend::kDistanceBlock;

  /// `kernel_backend` selects the kernel implementation; null means the
  /// process-wide backend::ActiveBackend() (GVA_BACKEND / --backend). Tests
  /// asserting bitwise agreement with a scalar reference pin
  /// backend::ScalarBackend() explicitly.
  explicit SubsequenceDistance(
      std::span<const double> series,
      double znorm_epsilon = kDefaultZNormEpsilon,
      const backend::KernelBackend* kernel_backend = nullptr);

  /// Euclidean distance between the z-normalized subsequences
  /// [p, p+length) and [q, q+length). If the running squared sum proves the
  /// distance >= `limit`, returns kInfinity (early abandon). Counted as one
  /// distance call either way.
  double Distance(size_t p, size_t q, size_t length,
                  double limit = kInfinity) const;

  /// Number of Distance() invocations so far (completed + abandoned).
  uint64_t calls() const {
    return completed_.value() + abandoned_.value();
  }
  /// Calls whose scan ran to the end and returned a real distance.
  uint64_t calls_completed() const { return completed_.value(); }
  /// Calls the abandon limit cut short (returned kInfinity).
  uint64_t calls_abandoned() const { return abandoned_.value(); }
  void ResetCalls() {
    completed_.Reset();
    abandoned_.Reset();
  }

  /// Attaches a histogram that records every *completed* call's distance
  /// value (abandoned calls have no value to record). Pass nullptr to
  /// detach. Opt-in because it adds a histogram update to the hot path.
  /// The slot is a relaxed atomic, so attaching or detaching while other
  /// threads are inside Distance() is race-free; in-flight calls may record
  /// into whichever histogram they loaded, so keep the histogram alive
  /// until every call that could have seen it has returned.
  void AttachDistanceHistogram(obs::Histogram* histogram) {
    distance_histogram_.store(histogram, std::memory_order_relaxed);
  }

  size_t series_length() const { return series_.size(); }

  /// The kernel backend this oracle dispatches through.
  const backend::KernelBackend& kernel_backend() const { return *backend_; }

 private:
  struct MeanStd {
    double mean;
    double inv_std;  // 1/std, or 1.0 for flat windows (mean-centering only)
  };

  MeanStd StatsOf(size_t pos, size_t length) const;

  /// Accounting tail of a completed scan: counts it and feeds the optional
  /// distance histogram.
  double Completed(double d) const {
    completed_.Add();
    obs::Histogram* h = distance_histogram_.load(std::memory_order_relaxed);
    if (h != nullptr) {
      h->Record(d);
    }
    return d;
  }

  std::span<const double> series_;
  double epsilon_;
  const backend::KernelBackend* backend_;
  RollingStats stats_;
  mutable obs::BasicCounter<true> completed_;
  mutable obs::BasicCounter<true> abandoned_;
  std::atomic<obs::Histogram*> distance_histogram_{nullptr};
};

}  // namespace gva

#endif  // GVA_DISCORD_DISTANCE_H_
