#ifndef GVA_DISCORD_DISTANCE_H_
#define GVA_DISCORD_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "timeseries/znorm.h"

namespace gva {

/// Plain Euclidean distance between equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between the z-normalized forms of `a` and `b`.
/// Convenience wrapper used by tests; the hot path lives in
/// SubsequenceDistance.
double ZNormEuclideanDistance(std::span<const double> a,
                              std::span<const double> b,
                              double epsilon = kDefaultZNormEpsilon);

/// Distance oracle over one time series. Window means and standard
/// deviations are derived from prefix sums in O(1) per window, so a distance
/// between any two equal-length subsequences costs one fused
/// normalize-and-accumulate loop with optional early abandoning. Every call
/// — abandoned or not — increments the call counter, which is what the
/// paper's Table 1 compares across algorithms ("number of calls to the
/// distance function").
///
/// Thread safety: one instance may be shared by the parallel searches.
/// Distance() is const and touches only immutable state plus the relaxed
/// atomic call counter, so concurrent Distance() calls are race-free and
/// the final calls() total is exact for any thread count (the interleaving
/// of increments is not reproducible, but the sum is). ResetCalls() must
/// not race with in-flight Distance() calls.
class SubsequenceDistance {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  explicit SubsequenceDistance(std::span<const double> series,
                               double znorm_epsilon = kDefaultZNormEpsilon);

  /// Euclidean distance between the z-normalized subsequences
  /// [p, p+length) and [q, q+length). If the running squared sum proves the
  /// distance >= `limit`, returns kInfinity (early abandon). Counted as one
  /// distance call either way.
  double Distance(size_t p, size_t q, size_t length,
                  double limit = kInfinity) const;

  /// Number of Distance() invocations so far.
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  void ResetCalls() { calls_.store(0, std::memory_order_relaxed); }

  size_t series_length() const { return series_.size(); }

 private:
  struct MeanStd {
    double mean;
    double inv_std;  // 1/std, or 1.0 for flat windows (mean-centering only)
  };

  MeanStd StatsOf(size_t pos, size_t length) const;

  std::span<const double> series_;
  double epsilon_;
  std::vector<double> prefix_;     // prefix_[i] = sum of series[0..i)
  std::vector<double> prefix_sq_;  // sums of squares
  mutable std::atomic<uint64_t> calls_{0};
};

}  // namespace gva

#endif  // GVA_DISCORD_DISTANCE_H_
