#include "discord/brute_force.h"

#include <algorithm>
#include <numeric>

#include "discord/distance.h"
#include "obs/trace.h"
#include "timeseries/sliding_window.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace gva {

uint64_t BruteForceCallCount(size_t m, size_t n) {
  if (n == 0 || m < n) {
    return 0;
  }
  const size_t candidates = NumSlidingWindows(m, n);
  uint64_t total = 0;
  for (size_t p = 0; p < candidates; ++p) {
    // Self-matches are the q with |p - q| < n.
    const size_t lo = p + 1 >= n ? p + 1 - n : 0;
    const size_t hi = std::min(candidates - 1, p + n - 1);
    const size_t self_zone = hi - lo + 1;
    total += candidates - self_zone;
  }
  return total;
}

StatusOr<DiscordResult> FindDiscordsBruteForce(std::span<const double> series,
                                               size_t window, size_t top_k,
                                               size_t num_threads) {
  if (window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (series.size() < 2 * window) {
    return Status::InvalidArgument(
        StrFormat("series length %zu too short for window %zu (need >= 2x)",
                  series.size(), window));
  }
  if (top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }

  const size_t candidates = NumSlidingWindows(series.size(), window);
  SubsequenceDistance dist(series);

  // One full pass computes every candidate's nearest non-self neighbor.
  // Candidates are independent (each scan abandons only against its own
  // running nearest neighbor, never a shared best), so the outer loop
  // parallelizes over disjoint slices of the result arrays and the output
  // is bit-identical for every thread count.
  std::vector<double> nn_dist(candidates,
                              SubsequenceDistance::kInfinity);
  std::vector<size_t> nn_pos(candidates, 0);
  ThreadPool pool(num_threads);
  {
    GVA_OBS_SPAN("search.brute.pass");
    pool.ParallelFor(0, candidates, [&](size_t chunk_begin, size_t chunk_end,
                                        size_t /*chunk*/) {
      GVA_OBS_SPAN("search.brute.chunk");
      for (size_t p = chunk_begin; p < chunk_end; ++p) {
        double best = SubsequenceDistance::kInfinity;
        size_t best_q = 0;
        for (size_t q = 0; q < candidates; ++q) {
          if (IsSelfMatch(p, q, window)) {
            continue;
          }
          const double d = dist.Distance(p, q, window, best);
          if (d < best) {
            best = d;
            best_q = q;
          }
        }
        nn_dist[p] = best;
        nn_pos[p] = best_q;
      }
    });
  }

  // Greedy top-k selection of non-overlapping discords, best first.
  std::vector<size_t> order(candidates);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return nn_dist[a] > nn_dist[b];
  });

  DiscordResult result;
  for (size_t p : order) {
    if (result.discords.size() >= top_k) {
      break;
    }
    if (nn_dist[p] == SubsequenceDistance::kInfinity) {
      continue;
    }
    bool overlaps = false;
    for (const DiscordRecord& d : result.discords) {
      if (IsSelfMatch(p, d.position, window)) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) {
      continue;
    }
    result.discords.push_back(
        DiscordRecord{p, window, nn_dist[p], nn_pos[p], -2});
  }
  result.distance_calls = dist.calls();
  result.distance_calls_completed = dist.calls_completed();
  result.distance_calls_abandoned = dist.calls_abandoned();
  // Every candidate's scan runs to its own conclusion; there is no shared
  // best-so-far, hence nothing is ever outer-loop pruned — which also makes
  // the call split thread-count-invariant here, unlike HOTSAX/RRA.
  result.candidates_visited = candidates;
  result.candidates_pruned = 0;
  AccumulateSearchMetrics(result, "brute", obs::GlobalMetrics());
  pool.ExportStats(obs::GlobalMetrics());
  return result;
}

}  // namespace gva
