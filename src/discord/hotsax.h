#ifndef GVA_DISCORD_HOTSAX_H_
#define GVA_DISCORD_HOTSAX_H_

#include <cstdint>
#include <span>

#include "discord/discord_record.h"
#include "sax/sax_transform.h"
#include "util/statusor.h"

namespace gva {

/// Parameters for the HOTSAX discord search (Keogh, Lin & Fu, ICDM'05).
struct HotSaxOptions {
  /// Discretization parameters. The numerosity field is ignored: HOTSAX
  /// keeps one SAX word per window position.
  SaxOptions sax;
  /// How many (non-overlapping) discords to report.
  size_t top_k = 1;
  /// Seed for the randomized portions of the outer/inner orderings.
  uint64_t seed = 0x5eedu;
  /// Concurrency lanes for the outer candidate loop; 0 means all hardware
  /// threads. Reported discords are bit-identical for every value; only
  /// the distance-call count varies (pruning happens at different points).
  size_t num_threads = 1;
};

/// HOTSAX fixed-length discord discovery — the paper's state-of-the-art
/// baseline. Every window is discretized to a SAX word; the outer loop
/// visits candidates in ascending word-bucket frequency (rare words first),
/// the inner loop visits same-word positions first and the rest in random
/// order, and the search early-abandons against the best-so-far discord
/// distance. Exact: returns the same discord as brute force, in far fewer
/// distance calls.
StatusOr<DiscordResult> FindDiscordsHotSax(std::span<const double> series,
                                           const HotSaxOptions& options);

}  // namespace gva

#endif  // GVA_DISCORD_HOTSAX_H_
