// Streaming-engine benchmark: amortized-O(1) ingestion throughput of
// StreamingAnomalyMonitor under unbounded and horizon-bounded operation,
// self-checked against the batch detector. Every configuration CHECKs the
// correctness contract before anything is timed:
//
//   * the final streaming report is identical (records, density curve,
//     ranked anomalies) to DetectDensityAnomalies over the same suffix;
//   * retained state stays horizon-bounded: the token count across live
//     generations never exceeds 4x the horizon worth of windows;
//   * reports drawn mid-stream at a coarse cadence match the final state
//     (the difference-updated density curve cannot drift).
//
// Timings are emitted as machine-readable JSON (default BENCH_stream.json)
// so later PRs have a perf trajectory. The headline acceptance gate is
// >= 1M points/s sustained ingestion on the horizon-bounded configuration
// (waived under sanitizer instrumentation, where wall-clock is meaningless).
//
//   stream_bench [--smoke] [--out PATH]
//
// --smoke runs a seconds-scale configuration and skips the JSON (unless
// --out is given): it is wired into ctest under the `perf-smoke` and
// `streaming` labels to assert the equivalence contract, not speed, so the
// binary cannot bit-rot.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/rule_density_detector.h"
#include "core/streaming.h"
#include "datasets/simple.h"
#include "util/strings.h"

namespace gva {
namespace {

/// Best-of-`reps` wall time of `fn`, in seconds (see kernel_bench.cc for
/// why best-of: single-CPU containers, scheduling noise).
double BestOf(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

struct StreamRow {
  std::string name;
  std::string detail;
  double seconds = 0.0;
  double points = 0.0;
  size_t max_retained_tokens = 0;
  size_t evictions = 0;

  double PointsPerSecond() const { return points / seconds; }
};

void PrintRow(const StreamRow& row) {
  std::printf(
      "%-24s %-44s %8.4fs  %10.0f pts/s  max_tokens=%zu  evicted=%zu\n",
      row.name.c_str(), row.detail.c_str(), row.seconds,
      row.PointsPerSecond(), row.max_retained_tokens, row.evictions);
}

std::string JsonRow(const StreamRow& row) {
  return StrFormat(
      "    {\"name\": \"%s\", \"detail\": \"%s\", \"seconds\": %.6f, "
      "\"points\": %.0f, \"points_per_s\": %.0f, "
      "\"max_retained_tokens\": %zu, \"evictions\": %zu}",
      row.name.c_str(), row.detail.c_str(), row.seconds, row.points,
      row.PointsPerSecond(), row.max_retained_tokens, row.evictions);
}

void ExpectIdenticalDetection(const std::string& name,
                              const DensityDetection& streaming,
                              const DensityDetection& batch) {
  bench::Check(streaming.decomposition.records.words ==
                       batch.decomposition.records.words &&
                   streaming.decomposition.records.offsets ==
                       batch.decomposition.records.offsets,
               name + ": streaming SAX records byte-identical to batch");
  bench::Check(streaming.decomposition.density == batch.decomposition.density,
               name + ": streaming density curve identical to batch");
  bool anomalies_equal = streaming.anomalies.size() == batch.anomalies.size();
  for (size_t i = 0; anomalies_equal && i < batch.anomalies.size(); ++i) {
    anomalies_equal = streaming.anomalies[i].span == batch.anomalies[i].span &&
                      streaming.anomalies[i].min_density ==
                          batch.anomalies[i].min_density &&
                      streaming.anomalies[i].rank == batch.anomalies[i].rank;
  }
  bench::Check(anomalies_equal,
               name + ": streaming anomaly ranking identical to batch");
}

/// One configuration: checked pass first (equivalence + memory bound +
/// cadence independence), then the timed ingestion-only passes.
StreamRow BenchStream(const std::string& name,
                      std::span<const double> series,
                      const StreamingOptions& options, size_t report_every,
                      int reps) {
  StreamRow row;
  row.name = "stream/" + name;
  row.detail = StrFormat("n=%zu w=%zu paa=%zu a=%zu horizon=%zu",
                         series.size(), options.sax.window,
                         options.sax.paa_size, options.sax.alphabet_size,
                         options.horizon);
  row.points = static_cast<double>(series.size());

  // --- Checked pass (untimed). ---
  auto monitor = StreamingAnomalyMonitor::Create(options);
  bench::Check(monitor.ok(), row.name + ": monitor created");
  if (!monitor.ok()) {
    row.seconds = 1.0;
    return row;
  }
  size_t max_retained = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    monitor->Push(series[i]);
    max_retained = std::max(max_retained, monitor->retained_tokens());
    if (report_every != 0 && (i + 1) % report_every == 0 &&
        i + 1 >= options.sax.window) {
      bench::Check(monitor->Report().ok(),
                   StrFormat("%s: mid-stream report at t=%zu",
                             row.name.c_str(), i + 1));
    }
  }
  row.max_retained_tokens = max_retained;
  row.evictions = monitor->generations_evicted();

  auto final_report = monitor->Report();
  bench::Check(final_report.ok(), row.name + ": final report");
  if (final_report.ok()) {
    std::span<const double> suffix =
        series.subspan(final_report->suffix_start, final_report->suffix_length);
    auto batch = DetectDensityAnomalies(suffix, options.sax, options.density);
    bench::Check(batch.ok(), row.name + ": batch detector on suffix");
    if (batch.ok()) {
      ExpectIdenticalDetection(row.name, final_report->detection, *batch);
    }
    if (options.horizon > 0) {
      // Each live generation covers < 2*horizon samples, at most one token
      // per sample, at most two generations live: 4*horizon bounds the
      // retained token count no matter how long the stream runs.
      bench::Check(max_retained <= 4 * options.horizon,
                   StrFormat("%s: retained tokens %zu <= 4*horizon %zu",
                             row.name.c_str(), max_retained,
                             4 * options.horizon));
      bench::Check(final_report->suffix_length >= options.horizon &&
                       final_report->suffix_length <= 2 * options.horizon,
                   row.name + ": report suffix within [horizon, 2*horizon]");
    } else {
      bench::Check(final_report->suffix_start == 0,
                   row.name + ": unbounded report covers the full prefix");
    }
  }

  // A second monitor with no mid-stream reports must land on the same final
  // report: difference-updated density cannot depend on the cadence.
  auto quiet = StreamingAnomalyMonitor::Create(options);
  if (quiet.ok() && final_report.ok()) {
    quiet->PushAll(series);
    auto quiet_report = quiet->Report();
    bench::Check(quiet_report.ok() &&
                     quiet_report->suffix_start == final_report->suffix_start,
                 row.name + ": cadence-independent suffix");
    if (quiet_report.ok()) {
      ExpectIdenticalDetection(row.name + " (quiet replay)",
                               quiet_report->detection,
                               final_report->detection);
    }
  }

  // --- Timed ingestion passes (fresh monitor per rep; reports at the
  // checked cadence so the timing covers the full operating loop). ---
  row.seconds = BestOf(reps, [&] {
    auto m = StreamingAnomalyMonitor::Create(options);
    if (!m.ok()) {
      std::abort();
    }
    for (size_t i = 0; i < series.size(); ++i) {
      m->Push(series[i]);
      if (report_every != 0 && (i + 1) % report_every == 0 &&
          i + 1 >= options.sax.window) {
        if (!m->Report().ok()) {
          std::abort();
        }
      }
    }
    if (m->samples_seen() != series.size()) {
      std::abort();  // keep the optimizer honest
    }
  });
  return row;
}

int Run(bool smoke, const std::string& out_path) {
  bench::Header(smoke ? "Stream bench (smoke)" : "Stream bench");

  StreamingOptions base;
  base.sax.window = 100;
  base.sax.paa_size = 5;
  base.sax.alphabet_size = 4;
  base.density.threshold_fraction = 0.05;

  std::vector<StreamRow> rows;
  if (smoke) {
    LabeledSeries data = MakeSineWithAnomaly(40000, 80.0, 0.04, 30000, 90, 7);
    StreamingOptions unbounded = base;
    rows.push_back(BenchStream("smoke_unbounded", data.series, unbounded,
                               /*report_every=*/8000, 1));
    StreamingOptions bounded = base;
    bounded.horizon = 8000;
    rows.push_back(BenchStream("smoke_horizon_8k", data.series, bounded,
                               /*report_every=*/8000, 1));
  } else {
    // The acceptance configuration: 2M points streamed through a 16k-sample
    // horizon, reports every 50k samples.
    LabeledSeries data =
        MakeSineWithAnomaly(2000000, 80.0, 0.04, 1990000, 90, 7);
    StreamingOptions bounded = base;
    bounded.horizon = 16000;
    rows.push_back(BenchStream("sine_2M_horizon_16k", data.series, bounded,
                               /*report_every=*/50000, 3));
    StreamingOptions wide = base;
    wide.horizon = 64000;
    rows.push_back(BenchStream("sine_2M_horizon_64k", data.series, wide,
                               /*report_every=*/50000, 3));
    StreamingOptions unbounded = base;
    rows.push_back(BenchStream("sine_1M_unbounded",
                               std::span<const double>(data.series.values())
                                   .first(1000000),
                               unbounded, /*report_every=*/0, 3));
  }

  std::printf("\n");
  for (const StreamRow& row : rows) {
    PrintRow(row);
  }

  // The headline acceptance number: sustained ingestion at >= 1M points/s
  // on the horizon-bounded configuration, reports included.
  if (!smoke) {
#ifdef GVA_SANITIZED
    bench::Check(true,
                 "ingestion throughput gate waived under sanitizer "
                 "instrumentation");
#else
    bench::Check(rows[0].PointsPerSecond() >= 1e6,
                 StrFormat("horizon-bounded ingestion %.0f points/s >= 1M",
                           rows[0].PointsPerSecond()));
#endif
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::string json = "{\n  \"bench\": \"stream_bench\",\n";
    json += StrFormat("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    json +=
        "  \"note\": \"StreamingAnomalyMonitor sustained ingestion; each "
        "row is best-of-N over the full stream with mid-stream reports at "
        "the checked cadence. Equivalence vs DetectDensityAnomalies and the "
        "4*horizon retained-token bound are CHECKed before timing.\",\n";
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      json += JsonRow(rows[i]);
      json += i + 1 < rows.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_stream.json";
  bool out_set = false;
  gva::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (gva::bench::ParseObsFlag(argv[i], &obs_flags)) {
      continue;
    }
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
      out_set = true;
    } else {
      std::printf(
          "usage: stream_bench [--smoke] [--out PATH] [--trace=PATH] "
          "[--metrics=PATH] [--quiet]\n");
      return 2;
    }
  }
  if (smoke && !out_set) {
    out_path.clear();  // smoke mode asserts equivalence; no JSON by default
  }
  auto session = gva::bench::MakeObsSession(obs_flags);
  return gva::Run(smoke, out_path);
}
