// Ensemble-engine benchmark: the shared-substrate batched path (one
// RollingStats prefix-sum per series, one SaxZPlane per distinct
// (window, paa) key reused across alphabets) measured against the naive
// path that runs every grid config through its own single-query pipeline.
// Correctness is CHECKed on every configuration — bit-identical ensemble
// scores, identical anomaly intervals, deterministic cache accounting —
// and the timings are emitted as machine-readable JSON (default
// BENCH_ensemble.json) so later PRs have a perf trajectory.
//
//   ensemble_bench [--smoke] [--out PATH] [--threads N]
//
// --smoke runs a seconds-scale configuration and skips the JSON (unless
// --out is given): it is wired into ctest under the `perf-smoke` and
// `ensemble` labels to assert exactness and cache accounting, not speed.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "datasets/simple.h"
#include "ensemble/ensemble.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace gva {
namespace {

double BestOf(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

struct EnsembleRow {
  std::string name;
  std::string detail;
  double naive_s = 0.0;
  double shared_s = 0.0;
  size_t configs = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  double Speedup() const { return naive_s / shared_s; }
};

void PrintRow(const EnsembleRow& row) {
  std::printf(
      "%-24s %-36s naive %8.4fs  shared %8.4fs  speedup %5.2fx  "
      "cache %llu/%llu\n",
      row.name.c_str(), row.detail.c_str(), row.naive_s, row.shared_s,
      row.Speedup(), static_cast<unsigned long long>(row.cache_hits),
      static_cast<unsigned long long>(row.cache_hits + row.cache_misses));
}

std::string JsonRow(const EnsembleRow& row) {
  return StrFormat(
      "    {\"name\": \"%s\", \"detail\": \"%s\", \"configs\": %zu, "
      "\"naive_s\": %.6f, \"shared_s\": %.6f, \"speedup\": %.3f, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu}",
      row.name.c_str(), row.detail.c_str(), row.configs, row.naive_s,
      row.shared_s, row.Speedup(),
      static_cast<unsigned long long>(row.cache_hits),
      static_cast<unsigned long long>(row.cache_misses));
}

bool SameDetection(const EnsembleDetection& a, const EnsembleDetection& b) {
  if (a.score != b.score || a.configs_used != b.configs_used ||
      a.anomalies.size() != b.anomalies.size()) {
    return false;
  }
  for (size_t i = 0; i < a.anomalies.size(); ++i) {
    if (!(a.anomalies[i].span == b.anomalies[i].span) ||
        a.anomalies[i].min_score != b.anomalies[i].min_score ||
        a.anomalies[i].mean_score != b.anomalies[i].mean_score) {
      return false;
    }
  }
  for (size_t i = 0; i < a.configs.size(); ++i) {
    if (a.configs[i].density != b.configs[i].density ||
        a.configs[i].ok != b.configs[i].ok) {
      return false;
    }
  }
  return true;
}

EnsembleRow BenchGrid(const std::string& name,
                      std::span<const double> series,
                      const std::vector<EnsembleConfig>& grid,
                      size_t num_threads, int reps) {
  EnsembleOptions shared;
  shared.configs = grid;
  shared.num_threads = num_threads;
  shared.share_substrate = true;
  EnsembleOptions naive = shared;
  naive.share_substrate = false;

  // Correctness first: the batched path must reproduce the naive path's
  // scores, per-config curves, and anomaly intervals bit for bit, and its
  // cache accounting must match the grid's key structure exactly.
  const uint64_t hits_before =
      obs::GlobalMetrics().counter("ensemble.cache.hit").value();
  const auto shared_run = RunEnsemble(series, shared);
  const auto naive_run = RunEnsemble(series, naive);
  bench::Check(shared_run.ok() && naive_run.ok(),
               name + ": both ensemble paths succeed");
  if (!shared_run.ok() || !naive_run.ok()) {
    return EnsembleRow{name, "failed", 1.0, 1.0, grid.size(), 0, 0};
  }
  bench::Check(SameDetection(*shared_run, *naive_run),
               name + ": shared-substrate results bit-identical to naive");

  // Recompute the grid's key structure the way the engine defines it: a
  // config is runnable iff its SaxOptions validate against this series.
  std::set<std::pair<size_t, size_t>> keys;
  size_t runnable = 0;
  for (const EnsembleConfig& c : grid) {
    if (shared.SaxFor(c).Validate().ok() && c.window <= series.size()) {
      keys.insert({c.window, c.paa_size});
      ++runnable;
    }
  }
  bench::Check(shared_run->cache_misses == keys.size(),
               StrFormat("%s: one z-plane miss per distinct (w, paa) key "
                         "(%llu misses, %zu keys)",
                         name.c_str(),
                         static_cast<unsigned long long>(
                             shared_run->cache_misses),
                         keys.size()));
  bench::Check(shared_run->cache_hits == runnable - keys.size(),
               StrFormat("%s: every other config is a cache hit (%llu)",
                         name.c_str(),
                         static_cast<unsigned long long>(
                             shared_run->cache_hits)));
  bench::Check(shared_run->cache_hits > 0,
               name + ": the grid exercises z-plane sharing (hits > 0)");
  bench::Check(naive_run->cache_hits == 0 && naive_run->cache_misses == 0,
               name + ": naive path touches no cache");
  if (obs::kEnabled) {  // the registry is compiled away under GVA_OBS=OFF
    const uint64_t hits_after =
        obs::GlobalMetrics().counter("ensemble.cache.hit").value();
    bench::Check(hits_after - hits_before == shared_run->cache_hits,
                 name + ": ensemble.cache.hit counter tracks the run");
  }

  EnsembleRow row;
  row.name = "ensemble/" + name;
  row.detail = StrFormat("n=%zu configs=%zu threads=%zu", series.size(),
                         grid.size(), num_threads);
  row.configs = grid.size();
  row.cache_hits = shared_run->cache_hits;
  row.cache_misses = shared_run->cache_misses;
  row.naive_s = BestOf(reps, [&] {
    const auto r = RunEnsemble(series, naive);
    if (!r.ok() || r->score.empty()) {
      std::abort();  // keep the optimizer honest
    }
  });
  row.shared_s = BestOf(reps, [&] {
    const auto r = RunEnsemble(series, shared);
    if (!r.ok() || r->score.empty()) {
      std::abort();
    }
  });
  return row;
}

int Run(bool smoke, const std::string& out_path, size_t num_threads) {
  bench::Header(smoke ? "Ensemble bench (smoke)" : "Ensemble bench");

  std::vector<EnsembleRow> rows;
  if (smoke) {
    const LabeledSeries ecg = MakeEcg();
    rows.push_back(BenchGrid(
        "ecg_alpha_sweep", ecg.series,
        MakeEnsembleGrid({80, 160}, {4}, {3, 4, 5}), num_threads, 1));
    rows.push_back(BenchGrid(
        "ecg_auto", ecg.series, AutoEnsembleGrid(ecg.series.size()),
        num_threads, 1));
  } else {
    const LabeledSeries sine =
        MakeSineWithAnomaly(50000, 250.0, 0.02, 25000, 120, 7);
    rows.push_back(BenchGrid(
        "sine_50k", sine.series,
        MakeEnsembleGrid({125, 250, 500}, {4, 8}, {3, 5, 7}), 1, 3));
    rows.push_back(BenchGrid(
        "sine_50k_mt", sine.series,
        MakeEnsembleGrid({125, 250, 500}, {4, 8}, {3, 5, 7}), 0, 3));

    EcgOptions ecg_opts;
    ecg_opts.num_beats = 180;
    const LabeledSeries ecg = MakeEcg(ecg_opts);
    rows.push_back(BenchGrid(
        "ecg_21k", ecg.series, MakeEnsembleGrid({60, 120, 240}, {4, 6},
                                                {3, 4, 5}),
        1, 3));

    const LabeledSeries power = MakePowerDemand();
    rows.push_back(BenchGrid(
        "power", power.series, AutoEnsembleGrid(power.series.size()), 1, 3));
  }

  std::printf("\n");
  for (const EnsembleRow& row : rows) {
    PrintRow(row);
  }

  if (!smoke) {
    // The headline acceptance number: on the alphabet-heavy grids the
    // shared substrate must beat per-config pipelines outright.
    bench::Check(rows[0].Speedup() > 1.0,
                 StrFormat("ensemble/sine_50k shared beats naive (%.2fx)",
                           rows[0].Speedup()));
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::string json = "{\n  \"bench\": \"ensemble_bench\",\n";
    json += StrFormat("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    json +=
        "  \"note\": \"naive = every grid config through its own "
        "discretize->Sequitur->density pipeline; shared = one RollingStats "
        "prefix-sum per series plus one SaxZPlane per distinct (window, "
        "paa) key reused across alphabet-only-differing configs. Results "
        "are CHECKed bit-identical. cache_hits + cache_misses = runnable "
        "configs.\",\n";
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      json += JsonRow(rows[i]);
      json += i + 1 < rows.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ensemble.json";
  bool out_set = false;
  size_t num_threads = 0;
  gva::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (gva::bench::ParseObsFlag(argv[i], &obs_flags)) {
      continue;
    }
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
      out_set = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::printf(
          "usage: ensemble_bench [--smoke] [--out PATH] [--threads N] "
          "[--trace=PATH] [--metrics=PATH] [--quiet]\n");
      return 2;
    }
  }
  if (smoke && !out_set) {
    out_path.clear();  // smoke mode asserts exactness; no JSON by default
  }
  auto session = gva::bench::MakeObsSession(obs_flags);
  return gva::Run(smoke, out_path, num_threads);
}
