// Reproduces Table 1: "Performance comparison for brute-force,
// state-of-the-art, and the proposed exact discord discovery algorithms" —
// distance-function call counts for brute force, HOTSAX and RRA on the
// synthetic stand-ins for the paper's fourteen datasets, the percentage
// reduction of RRA over HOTSAX, the two discord lengths, and their overlap.
//
// Brute force's call count is deterministic (every non-self pair), so it is
// computed analytically — identical to running the quadratic search (see
// BruteForceTest.ActualSearchSpendsExactlyTheAnalyticCount). HOTSAX and RRA
// are actually run. Dataset lengths for the two ~0.5M-point ECG records are
// scaled to 60k (documented in EXPERIMENTS.md); everything else matches the
// paper's order of magnitude.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "datasets/respiration.h"
#include "datasets/tek.h"
#include "datasets/trajectory.h"
#include "datasets/video.h"
#include "discord/brute_force.h"
#include "discord/hotsax.h"
#include "util/strings.h"

namespace gva {
namespace {

struct Row {
  std::string name;
  LabeledSeries data;
};

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  {
    TrajectoryOptions o;
    o.num_trips = 24;
    o.samples_per_trip = 700;
    TrajectoryData t = MakeTrajectory(o);
    t.labeled.recommended.window = 350;
    t.labeled.recommended.paa_size = 15;
    t.labeled.recommended.alphabet_size = 4;
    rows.push_back({"Daily commute (350,15,4)", std::move(t.labeled)});
  }
  {
    PowerDemandOptions o;  // 52 weeks x 672 = 34'944 points
    LabeledSeries d = MakePowerDemand(o);
    d.recommended.window = 672;
    d.recommended.paa_size = 6;
    d.recommended.alphabet_size = 3;
    rows.push_back({"Dutch power demand (672,6,3)", std::move(d)});
  }
  auto ecg = [](size_t beats, size_t anomaly_at, uint64_t seed) {
    EcgOptions o;
    o.num_beats = beats;
    o.anomalous_beats = {anomaly_at};
    o.seed = seed;
    LabeledSeries d = MakeEcg(o);
    d.recommended.window = 120;
    d.recommended.paa_size = 4;
    d.recommended.alphabet_size = 4;
    return d;
  };
  rows.push_back({"ECG 0606 (120,4,4)", ecg(19, 12, 606)});
  rows.push_back({"ECG 308 (120,4,4)", ecg(45, 30, 308)});
  rows.push_back({"ECG 15 (120,4,4)", ecg(125, 70, 15)});
  rows.push_back({"ECG 108 (120,4,4)", ecg(180, 111, 108)});
  rows.push_back({"ECG 300 (120,4,4) [scaled]", ecg(500, 333, 300)});
  rows.push_back({"ECG 318 (120,4,4) [scaled]", ecg(500, 123, 318)});
  {
    RespirationOptions o;
    o.length = 4000;
    o.seed = 43;
    LabeledSeries d = MakeRespiration(o);
    d.recommended.window = 128;
    d.recommended.paa_size = 5;
    d.recommended.alphabet_size = 4;
    rows.push_back({"Respiration NPRS 43 (128,5,4)", std::move(d)});
  }
  {
    RespirationOptions o;
    o.length = 24000;
    o.anomaly_start = 15000;
    o.anomaly_length = 400;
    o.seed = 44;
    LabeledSeries d = MakeRespiration(o);
    d.recommended.window = 128;
    d.recommended.paa_size = 5;
    d.recommended.alphabet_size = 4;
    rows.push_back({"Respiration NPRS 44 (128,5,4)", std::move(d)});
  }
  {
    VideoOptions o;
    o.num_cycles = 75;
    o.anomalous_cycles = {40};
    LabeledSeries d = MakeVideo(o);
    d.recommended.window = 150;
    d.recommended.paa_size = 5;
    d.recommended.alphabet_size = 3;
    rows.push_back({"Video dataset (gun) (150,5,3)", std::move(d)});
  }
  auto tek = [](size_t anomaly_at, uint64_t seed, const char* name) {
    TekOptions o;
    o.num_cycles = 20;
    o.cycle_length = 250;
    o.anomalous_cycles = {anomaly_at};
    o.seed = seed;
    LabeledSeries d = MakeTek(o);
    d.recommended.window = 128;
    d.recommended.paa_size = 4;
    d.recommended.alphabet_size = 4;
    return Row{name, std::move(d)};
  };
  rows.push_back(tek(11, 14, "Shuttle telemetry TEK14 (128,4,4)"));
  rows.push_back(tek(5, 16, "Shuttle telemetry TEK16 (128,4,4)"));
  rows.push_back(tek(15, 17, "Shuttle telemetry TEK17 (128,4,4)"));
  return rows;
}

/// Per-search call-outcome split collected while the main table runs.
struct OutcomeRow {
  std::string name;
  uint64_t hs_completed = 0, hs_abandoned = 0;
  uint64_t rra_completed = 0, rra_abandoned = 0;
};

int Run() {
  bench::Header(
      "Table 1: distance-function calls — brute force vs HOTSAX vs RRA");
  std::printf("%-34s %8s %16s %14s %12s %12s %8s  %-11s %8s %s\n",
              "Dataset (w,paa,a)", "Length", "BruteForce", "HOTSAX", "RRA~",
              "RRAx", "Red~", "HS/RRAx len", "Overlap", "Hit(HS/RRAx)");
  std::printf("(RRA~ = paper's interval-aligned inner loop; RRAx = this "
              "library's exact-NN extension)\n");

  size_t rra_wins = 0;
  size_t rows_count = 0;
  std::vector<OutcomeRow> outcomes;
  for (Row& row : MakeRows()) {
    const LabeledSeries& d = row.data;
    const size_t m = d.series.size();
    const size_t w = d.recommended.window;
    const uint64_t brute = BruteForceCallCount(m, w);

    HotSaxOptions hot_opts;
    hot_opts.sax = d.recommended;
    auto hot = FindDiscordsHotSax(d.series, hot_opts);
    RraOptions rra_opts;
    rra_opts.sax = d.recommended;
    rra_opts.exact_nearest_neighbor = false;  // the paper's configuration
    auto rra_approx = FindRraDiscords(d.series, rra_opts);
    rra_opts.exact_nearest_neighbor = true;
    auto rra_exact = FindRraDiscords(d.series, rra_opts);
    if (!hot.ok() || !rra_approx.ok() || !rra_exact.ok() ||
        hot->discords.empty() || rra_approx->result.discords.empty() ||
        rra_exact->result.discords.empty()) {
      std::printf("%-34s  <failed>\n", row.name.c_str());
      ++bench::g_check_failures;
      continue;
    }
    const DiscordRecord& hs = hot->discords[0];
    const DiscordRecord& rr = rra_exact->result.discords[0];
    const uint64_t approx_calls = rra_approx->result.distance_calls;
    const double reduction =
        100.0 * (1.0 - static_cast<double>(approx_calls) /
                           static_cast<double>(hot->distance_calls));
    const double overlap = 100.0 * OverlapFraction(rr.span(), hs.span());
    const bool hit_hs = HitsAnyTruth(hs.span(), d.anomalies, w);
    const bool hit_rr = HitsAnyTruth(rr.span(), d.anomalies, w);

    std::printf("%-34s %8zu %16s %14s %12s %12s %7.1f%%  %4zu / %-4zu "
                "%7.1f%%   %s / %s\n",
                row.name.c_str(), m, FormatWithThousands(brute).c_str(),
                FormatWithThousands(hot->distance_calls).c_str(),
                FormatWithThousands(approx_calls).c_str(),
                FormatWithThousands(rra_exact->result.distance_calls)
                    .c_str(),
                reduction, hs.length, rr.length, overlap,
                hit_hs ? "yes" : "NO", hit_rr ? "yes" : "NO");

    ++rows_count;
    if (approx_calls < hot->distance_calls) {
      ++rra_wins;
    }
    bench::Check(hot->distance_calls < brute / 10,
                 row.name + ": HOTSAX orders of magnitude below brute force");
    bench::Check(hit_rr, row.name + ": the exact RRA discord hits the "
                                    "planted anomaly");

    OutcomeRow outcome;
    outcome.name = row.name;
    outcome.hs_completed = hot->distance_calls_completed;
    outcome.hs_abandoned = hot->distance_calls_abandoned;
    outcome.rra_completed = rra_exact->result.distance_calls_completed;
    outcome.rra_abandoned = rra_exact->result.distance_calls_abandoned;
    bench::Check(outcome.hs_completed + outcome.hs_abandoned ==
                     hot->distance_calls,
                 row.name + ": HOTSAX completed + abandoned == total calls");
    bench::Check(outcome.rra_completed + outcome.rra_abandoned ==
                     rra_exact->result.distance_calls,
                 row.name + ": RRAx completed + abandoned == total calls");
    outcomes.push_back(std::move(outcome));
  }

  bench::Check(rra_wins == rows_count,
               "the paper-configuration RRA spends fewer distance calls "
               "than HOTSAX on every dataset");

  // Call outcomes: how much of each search's work the early-abandon check
  // cut short. Not a paper table, but the mechanism behind Table 1's gap.
  bench::Header("Call outcomes: completed vs early-abandoned");
  std::printf("%-34s %14s %14s %8s %12s %12s %8s\n", "Dataset (w,paa,a)",
              "HS compl", "HS aband", "HS ab%", "RRAx compl", "RRAx aband",
              "RRAx ab%");
  for (const OutcomeRow& o : outcomes) {
    const auto pct = [](uint64_t abandoned, uint64_t completed) {
      const uint64_t total = abandoned + completed;
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(abandoned) /
                              static_cast<double>(total);
    };
    std::printf("%-34s %14s %14s %7.1f%% %12s %12s %7.1f%%\n", o.name.c_str(),
                FormatWithThousands(o.hs_completed).c_str(),
                FormatWithThousands(o.hs_abandoned).c_str(),
                pct(o.hs_abandoned, o.hs_completed),
                FormatWithThousands(o.rra_completed).c_str(),
                FormatWithThousands(o.rra_abandoned).c_str(),
                pct(o.rra_abandoned, o.rra_completed));
  }
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main(int argc, char** argv) {
  gva::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (!gva::bench::ParseObsFlag(argv[i], &obs_flags)) {
      std::printf(
          "usage: table1_distance_calls [--trace=PATH] [--metrics=PATH] "
          "[--quiet]\n");
      return 2;
    }
  }
  auto session = gva::bench::MakeObsSession(obs_flags);
  return gva::Run();
}
