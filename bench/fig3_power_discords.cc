// Reproduces Figure 3: multiple discord discovery in the Dutch power demand
// data — 52 weeks of facility power demand with three planted holiday
// weeks; the rule density curve finds the best discord, and the RRA
// distances allow ranking all three.

#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/power_demand.h"
#include "viz/ascii_plot.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figure 3: multiple discords in the Dutch power demand data");

  PowerDemandOptions opts;  // 52 weeks, holidays on days 121 / 126 / 129
  LabeledSeries data = MakePowerDemand(opts);
  SaxOptions sax = data.recommended;  // one-week window

  std::printf("52 weeks of power demand (planted holidays marked '!'):\n");
  std::printf("%s\n", RenderSeries(data.series, data.anomalies, {}).c_str());

  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.15;
  auto density = DetectDensityAnomalies(data.series, sax, density_opts);
  if (!density.ok()) {
    std::printf("density failed: %s\n", density.status().ToString().c_str());
    return 1;
  }
  std::printf("Sequitur rule density (w=%zu, paa=%zu, a=%zu):\n", sax.window,
              sax.paa_size, sax.alphabet_size);
  std::printf("%s\n\n",
              RenderDensityShading(density->decomposition.density).c_str());

  std::vector<Interval> density_found;
  for (const DensityAnomaly& a : density->anomalies) {
    density_found.push_back(a.span);
  }
  bench::Check(!density->anomalies.empty() &&
                   HitsAnyTruth(density->anomalies[0].span, data.anomalies,
                                sax.window),
               "the rule density technique discovers the best discord");

  RraOptions rra_opts;
  rra_opts.sax = sax;
  rra_opts.top_k = 3;
  auto rra = FindRraDiscords(data.series, rra_opts);
  if (!rra.ok()) {
    std::printf("rra failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }
  std::printf("RRA discords (distance calls: %llu):\n",
              static_cast<unsigned long long>(rra->result.distance_calls));
  std::vector<Interval> rra_found;
  for (size_t i = 0; i < rra->result.discords.size(); ++i) {
    const DiscordRecord& d = rra->result.discords[i];
    std::printf("  #%zu  [%zu, %zu) len=%zu dist=%.4f\n", i, d.position,
                d.position + d.length, d.length, d.distance);
    rra_found.push_back(d.span());
  }
  std::printf("Planted holidays:");
  for (const Interval& t : data.anomalies) {
    std::printf("  [%zu, %zu)", t.start, t.end);
  }
  std::printf("\n\n");

  bench::Check(Recall(rra_found, data.anomalies, sax.window) == 1.0,
               "the three ranked RRA discords cover all three holiday weeks");

  // Graphical panels (written when GVA_FIGURES_DIR is set).
  SvgFigure figure("Figure 3: multiple discords in the power demand data");
  figure.AddSeriesPanel("52 weeks of power demand", data.series,
                        rra_found);
  figure.AddDensityPanel("Sequitur rule density",
                         density->decomposition.density);
  bench::MaybeWriteFigure(figure, "fig3_power");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
