// Reproduces Figure 5: the comparison of discord rankings by HOTSAX and RRA
// on a long ECG record. RRA normalizes distance by subsequence length
// (paper Eq. 1), so it may rank a shorter discord first even when HOTSAX
// (fixed-length, raw distance) orders them differently — the paper's ECG300
// footnote. The discord *sets* still cover the same anomalies.

#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "datasets/ecg.h"
#include "discord/hotsax.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figure 5: HOTSAX vs RRA discord ranking on a long ECG");

  EcgOptions opts;
  opts.num_beats = 300;  // scaled stand-in for the 0.5M-point record 300
  opts.anomalous_beats = {90, 170, 243};  // three anomalous beats
  opts.seed = 300;
  LabeledSeries data = MakeEcg(opts);
  SaxOptions sax = data.recommended;
  sax.paa_size = 6;

  HotSaxOptions hot_opts;
  hot_opts.sax = sax;
  hot_opts.top_k = 3;
  auto hot = FindDiscordsHotSax(data.series, hot_opts);
  RraOptions rra_opts;
  rra_opts.sax = sax;
  rra_opts.top_k = 3;
  auto rra = FindRraDiscords(data.series, rra_opts);
  if (!hot.ok() || !rra.ok()) {
    std::printf("search failed\n");
    return 1;
  }

  const char* kRanks[] = {"Best", "Second", "Third"};
  std::printf("%-8s  %-28s  %-28s\n", "Rank", "HOTSAX discord",
              "RRA discord");
  for (size_t i = 0; i < 3; ++i) {
    char hs[64] = "-";
    char rr[64] = "-";
    if (i < hot->discords.size()) {
      const DiscordRecord& d = hot->discords[i];
      std::snprintf(hs, sizeof(hs), "[%zu, %zu) len=%zu d=%.3f", d.position,
                    d.position + d.length, d.length, d.distance);
    }
    if (i < rra->result.discords.size()) {
      const DiscordRecord& d = rra->result.discords[i];
      std::snprintf(rr, sizeof(rr), "[%zu, %zu) len=%zu d=%.4f", d.position,
                    d.position + d.length, d.length, d.distance);
    }
    std::printf("%-8s  %-28s  %-28s\n", kRanks[i], hs, rr);
  }
  std::printf("\nPlanted anomalies:");
  for (const Interval& t : data.anomalies) {
    std::printf("  [%zu, %zu)", t.start, t.end);
  }
  std::printf("\n\n");

  // Shape checks: both top-3 sets cover the planted anomalies; the
  // *rankings* may legitimately differ (that is the figure's point).
  std::vector<Interval> hot_found;
  for (const DiscordRecord& d : hot->discords) {
    hot_found.push_back(d.span());
  }
  std::vector<Interval> rra_found;
  bool variable_lengths = false;
  for (const DiscordRecord& d : rra->result.discords) {
    rra_found.push_back(d.span());
    if (d.length != sax.window) {
      variable_lengths = true;
    }
  }
  bench::Check(Recall(hot_found, data.anomalies, sax.window) >= 2.0 / 3.0,
               "HOTSAX top-3 covers at least two of the three anomalies");
  bench::Check(Recall(rra_found, data.anomalies, sax.window) >= 2.0 / 3.0,
               "RRA top-3 covers at least two of the three anomalies");
  bench::Check(variable_lengths,
               "RRA reports variable-length discords (lengths differ from "
               "the seed window)");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
