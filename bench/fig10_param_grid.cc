// Reproduces Figure 10: the discretization-parameter robustness study. The
// paper samples (window, PAA, alphabet) combinations on the ECG0606 dataset
// and counts for how many of them each algorithm still finds the single
// true anomaly: the RRA success region is substantially larger than the
// rule-density success region (paper: 7100 vs 1460 combinations; the
// qualitative claim is the ratio, not the absolute counts).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figure 10: parameter-space robustness, density vs RRA");

  // A noisier, jitterier strip than the other figures: the point of this
  // experiment is that suboptimal discretization parameters lose the
  // regularities, and a too-clean signal survives every parameter choice.
  EcgOptions ecg;
  ecg.num_beats = 30;
  ecg.anomalous_beats = {18};
  ecg.noise = 0.03;
  ecg.length_jitter = 0.02;
  ecg.baseline_wander = 0.12;
  ecg.amplitude_modulation = 0.15;
  LabeledSeries data = MakeEcg(ecg);
  const Interval truth = data.anomalies[0];

  const std::vector<size_t> windows{40, 80, 120, 160, 240, 320};
  const std::vector<size_t> paas{3, 4, 6, 9, 12};
  const std::vector<size_t> alphabets{3, 4, 6, 9};

  size_t combos = 0;
  size_t density_hits = 0;
  size_t rra_hits = 0;        // paper-faithful approximate RRA
  size_t rra_exact_hits = 0;  // this library's exact variant
  for (size_t w : windows) {
    for (size_t p : paas) {
      for (size_t a : alphabets) {
        if (p > w) {
          continue;
        }
        ++combos;
        SaxOptions sax;
        sax.window = w;
        sax.paa_size = p;
        sax.alphabet_size = a;

        // Success criterion (both methods): the top-ranked report overlaps
        // the annotated beat with a small slack AND is a localized
        // detection — a report spanning a large fraction of the series
        // (which the density curve degenerates to when the discretization
        // destroys all regularity) does not count.
        const size_t slack = w / 4;
        const size_t max_report = 4 * truth.length();
        auto is_hit = [&](const Interval& report) {
          return report.length() <= max_report &&
                 HitsAnyTruth(report, {truth}, slack);
        };

        DensityAnomalyOptions density_opts;  // strictly global minima
        auto density = DetectDensityAnomalies(data.series, sax, density_opts);
        if (density.ok() && !density->anomalies.empty() &&
            is_hit(density->anomalies[0].span)) {
          ++density_hits;
        }

        RraOptions rra_opts;
        rra_opts.sax = sax;
        rra_opts.exact_nearest_neighbor = false;  // the paper's RRA
        auto rra = FindRraDiscords(data.series, rra_opts);
        if (rra.ok() && !rra->result.discords.empty() &&
            is_hit(rra->result.discords[0].span())) {
          ++rra_hits;
        }

        rra_opts.exact_nearest_neighbor = true;
        auto rra_exact = FindRraDiscords(data.series, rra_opts);
        if (rra_exact.ok() && !rra_exact->result.discords.empty() &&
            is_hit(rra_exact->result.discords[0].span())) {
          ++rra_exact_hits;
        }
      }
    }
  }

  std::printf("parameter combinations evaluated:  %zu\n", combos);
  std::printf("rule-density success area:         %zu combinations\n",
              density_hits);
  std::printf("RRA (paper, aligned nn) area:      %zu combinations\n",
              rra_hits);
  std::printf("RRA (exact nn extension) area:     %zu combinations\n",
              rra_exact_hits);
  std::printf("paper reports RRA ~4.9x the density count (7100 vs 1460); "
              "the qualitative claim is that the distance-verified RRA "
              "ranking is at least as robust as raw density minima.\n\n");

  bench::Check(density_hits > 0,
               "the density method succeeds on a non-trivial region");
  bench::Check(rra_hits >= combos / 3 && rra_exact_hits >= combos / 3,
               "both RRA variants find the true anomaly on a broad swath "
               "of the grid");
  bench::Check(std::max(rra_hits, rra_exact_hits) * 10 >= density_hits * 8,
               "the RRA success region is at least comparable to the "
               "density region (RRA robust to parameter choice)");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
