// Reproduces Figures 11-12: the GrammarViz 2.0 anomaly panes, as text. On
// the recorded-video stand-in dataset, Figure 11 is the ranked table of
// variable-length RRA discords (lengths vary although the window is fixed
// at 150), and Figure 12 is the rule-density shading whose white (blank)
// regions pinpoint the anomalies, plus the grammar-rule statistics pane.

#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/video.h"
#include "viz/ascii_plot.h"
#include "viz/report.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figures 11-12: GrammarViz 2.0 anomaly panes (text form)");

  VideoOptions opts;
  opts.num_cycles = 26;
  opts.anomalous_cycles = {8, 17};
  LabeledSeries data = MakeVideo(opts);
  SaxOptions sax = data.recommended;  // window 150, paa 5, alphabet 3

  RraOptions rra_opts;
  rra_opts.sax = sax;
  rra_opts.top_k = 5;
  auto rra = FindRraDiscords(data.series, rra_opts);
  if (!rra.ok()) {
    std::printf("rra failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 11 — ranked variable-length discords "
              "(window=%zu, paa=%zu, alphabet=%zu):\n\n%s\n",
              sax.window, sax.paa_size, sax.alphabet_size,
              DiscordTable(*rra).c_str());

  bool lengths_vary = false;
  for (const DiscordRecord& d : rra->result.discords) {
    for (const DiscordRecord& e : rra->result.discords) {
      if (d.length != e.length) {
        lengths_vary = true;
      }
    }
  }
  bench::Check(lengths_vary,
               "Fig 11: the candidate anomalies have different lengths");

  auto density = DetectDensityAnomalies(data.series, sax, {});
  if (!density.ok()) {
    std::printf("density failed\n");
    return 1;
  }
  std::printf("Figure 12 — rule density shading (white = candidate "
              "anomaly):\n%s\n\n",
              RenderDensityShading(density->decomposition.density).c_str());
  std::printf("Grammar rules pane:\n%s\n",
              RuleStatsTable(density->decomposition, 12).c_str());

  // The white (zero/low-density) regions must coincide with the planted
  // anomalies.
  std::vector<Interval> found;
  for (const DensityAnomaly& a : density->anomalies) {
    found.push_back(a.span);
  }
  bench::Check(Recall(found, data.anomalies, sax.window) == 1.0,
               "Fig 12: non-shaded intervals pinpoint the true anomalies");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
