// Ablation: what the grammar-derived orderings buy inside the RRA search
// (paper Section 4.2). The outer loop visits candidates in ascending
// rule-use frequency so true anomalies raise best_so_far early; the inner
// loop visits same-rule siblings first so normal candidates are abandoned
// after a handful of calls. This binary re-runs the search with randomized
// orderings (different seeds emulate losing the heuristics' head start) and
// with the exact-NN tail on/off, reporting the call counts.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "datasets/power_demand.h"
#include "discord/hotsax.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Ablation: RRA inner/outer orderings and exact-NN tail");

  PowerDemandOptions power;
  power.weeks = 30;
  power.holiday_days = {87};
  LabeledSeries data = MakePowerDemand(power);

  HotSaxOptions hot_opts;
  hot_opts.sax = data.recommended;
  auto hot = FindDiscordsHotSax(data.series, hot_opts);
  if (!hot.ok()) {
    std::printf("hotsax failed\n");
    return 1;
  }
  std::printf("HOTSAX baseline: %llu calls\n\n",
              static_cast<unsigned long long>(hot->distance_calls));

  std::printf("%-34s %14s %6s\n", "Configuration", "RRA calls", "Hit");
  uint64_t approx_calls = 0;
  uint64_t exact_calls = 0;
  for (bool exact : {false, true}) {
    RraOptions opts;
    opts.sax = data.recommended;
    opts.exact_nearest_neighbor = exact;
    auto rra = FindRraDiscords(data.series, opts);
    if (!rra.ok() || rra->result.discords.empty()) {
      std::printf("  <failed>\n");
      ++bench::g_check_failures;
      continue;
    }
    const bool hit = HitsAnyTruth(rra->result.discords[0].span(),
                                  data.anomalies, opts.sax.window);
    std::printf("%-34s %14llu %6s\n",
                exact ? "interval-aligned + exact tail"
                      : "interval-aligned only (paper)",
                static_cast<unsigned long long>(rra->result.distance_calls),
                hit ? "yes" : "NO");
    (exact ? exact_calls : approx_calls) = rra->result.distance_calls;
  }

  // Seed sensitivity: the randomized tails must not change the discovered
  // discord, only (mildly) the call count.
  std::printf("\nseed sensitivity (exact mode):\n");
  size_t positions_agree = 0;
  size_t first_position = 0;
  uint64_t min_calls = ~0ull;
  uint64_t max_calls = 0;
  for (uint64_t seed : {1ull, 77ull, 4242ull, 999983ull}) {
    RraOptions opts;
    opts.sax = data.recommended;
    opts.seed = seed;
    auto rra = FindRraDiscords(data.series, opts);
    if (!rra.ok() || rra->result.discords.empty()) {
      continue;
    }
    const DiscordRecord& d = rra->result.discords[0];
    if (positions_agree == 0) {
      first_position = d.position;
    }
    if (d.position == first_position) {
      ++positions_agree;
    }
    min_calls = std::min(min_calls, rra->result.distance_calls);
    max_calls = std::max(max_calls, rra->result.distance_calls);
    std::printf("  seed %-8llu -> discord [%zu, %zu), %llu calls\n",
                static_cast<unsigned long long>(seed), d.position,
                d.position + d.length,
                static_cast<unsigned long long>(rra->result.distance_calls));
  }
  std::printf("\n");

  bench::Check(approx_calls > 0 && approx_calls < hot->distance_calls,
               "grammar-guided RRA beats HOTSAX on distance calls");
  bench::Check(approx_calls < exact_calls,
               "the exact tail costs extra calls (accuracy/cost knob)");
  bench::Check(positions_agree == 4,
               "the discovered discord is invariant to the random seed");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
