// Ablation: what numerosity reduction buys (paper Section 3.2). Runs the
// grammar decomposition and RRA on the same series with reduction disabled,
// exact, and MINDIST-based, reporting token counts, grammar sizes, distance
// calls, and whether the planted anomaly is still found. The paper argues
// the reduction both shrinks the problem and *enables variable-length
// discovery*; without it every rule interval degenerates toward fixed
// spans.

#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "datasets/ecg.h"

namespace gva {
namespace {

const char* Name(NumerosityReduction numerosity) {
  switch (numerosity) {
    case NumerosityReduction::kNone:
      return "none";
    case NumerosityReduction::kExact:
      return "exact";
    case NumerosityReduction::kMinDist:
      return "mindist";
  }
  return "?";
}

int Run() {
  bench::Header("Ablation: numerosity reduction strategies");

  EcgOptions ecg;
  ecg.num_beats = 60;
  ecg.anomalous_beats = {35};
  LabeledSeries data = MakeEcg(ecg);

  std::printf("%-9s %10s %10s %12s %14s %8s\n", "Strategy", "Tokens",
              "Rules", "Intervals", "RRA calls", "Hit");

  size_t tokens_none = 0;
  size_t tokens_exact = 0;
  uint64_t calls_none = 0;
  uint64_t calls_exact = 0;
  for (NumerosityReduction numerosity :
       {NumerosityReduction::kNone, NumerosityReduction::kExact,
        NumerosityReduction::kMinDist}) {
    RraOptions opts;
    opts.sax = data.recommended;
    opts.sax.paa_size = 6;
    opts.sax.numerosity = numerosity;
    auto rra = FindRraDiscords(data.series, opts);
    if (!rra.ok() || rra->result.discords.empty()) {
      std::printf("%-9s  <failed>\n", Name(numerosity));
      ++bench::g_check_failures;
      continue;
    }
    const bool hit = HitsAnyTruth(rra->result.discords[0].span(),
                                  data.anomalies, opts.sax.window);
    std::printf("%-9s %10zu %10zu %12zu %14llu %8s\n", Name(numerosity),
                rra->decomposition.records.size(),
                rra->decomposition.grammar.grammar.size(),
                rra->decomposition.intervals.size(),
                static_cast<unsigned long long>(
                    rra->result.distance_calls),
                hit ? "yes" : "NO");
    if (numerosity == NumerosityReduction::kNone) {
      tokens_none = rra->decomposition.records.size();
      calls_none = rra->result.distance_calls;
    }
    if (numerosity == NumerosityReduction::kExact) {
      tokens_exact = rra->decomposition.records.size();
      calls_exact = rra->result.distance_calls;
    }
  }
  std::printf("\n");

  bench::Check(tokens_exact * 2 < tokens_none,
               "exact reduction collapses the token stream substantially");
  bench::Check(calls_exact < calls_none,
               "the reduced problem needs fewer distance calls");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
