// Reproduces Figure 1: the recorded-video time series (multiple anomalous
// events) with the rule density curve underneath — the curve's minima
// pinpoint the anomalies. Built in linear time and space.

#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rule_density_detector.h"
#include "datasets/video.h"
#include "viz/ascii_plot.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figure 1: multiple anomalies in the video dataset + rule "
                "density curve");

  VideoOptions opts;
  opts.num_cycles = 26;
  opts.anomalous_cycles = {8, 17};  // "multiple anomalous events"
  LabeledSeries data = MakeVideo(opts);

  SaxOptions sax = data.recommended;
  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.1;
  density_opts.max_anomalies = 4;
  auto detection = DetectDensityAnomalies(data.series, sax, density_opts);
  if (!detection.ok()) {
    std::printf("detection failed: %s\n",
                detection.status().ToString().c_str());
    return 1;
  }

  std::printf("Excerpt from the (synthetic) video dataset, planted "
              "anomalies marked with '!':\n");
  std::printf("%s\n",
              RenderSeries(data.series, data.anomalies, {}).c_str());
  std::printf("Grammar rules density (w=%zu, paa=%zu, a=%zu), dark = high:\n",
              sax.window, sax.paa_size, sax.alphabet_size);
  std::printf("%s\n\n",
              RenderDensityShading(detection->decomposition.density).c_str());

  std::printf("Low-density intervals reported (rank, interval, mean "
              "density):\n");
  std::vector<Interval> found;
  for (const DensityAnomaly& a : detection->anomalies) {
    std::printf("  #%zu  [%zu, %zu)  mean=%.2f min=%u\n", a.rank,
                a.span.start, a.span.end, a.mean_density, a.min_density);
    found.push_back(a.span);
  }
  std::printf("Planted anomalies:");
  for (const Interval& t : data.anomalies) {
    std::printf("  [%zu, %zu)", t.start, t.end);
  }
  std::printf("\n\n");

  bench::Check(Recall(found, data.anomalies, sax.window) == 1.0,
               "rule density minima pinpoint BOTH planted anomalous events");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
