#ifndef GVA_BENCH_BENCH_UTIL_H_
#define GVA_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction binaries. Each binary
// regenerates one table or figure of the paper (EDBT 2015, "Time series
// anomaly discovery with grammar-based compression") on the synthetic
// stand-in datasets and prints the same rows/series the paper reports,
// plus CHECK lines asserting the qualitative shape the paper claims.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "viz/svg.h"

namespace gva::bench {

inline int g_check_failures = 0;

/// Prints "CHECK ok: ..." / "CHECK FAILED: ..." and tracks failures so a
/// binary can exit non-zero when the paper's qualitative shape is violated.
inline void Check(bool condition, const std::string& what) {
  if (condition) {
    std::printf("CHECK ok: %s\n", what.c_str());
  } else {
    std::printf("CHECK FAILED: %s\n", what.c_str());
    ++g_check_failures;
  }
}

inline int CheckExitCode() { return g_check_failures == 0 ? 0 : 1; }

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// When the GVA_FIGURES_DIR environment variable is set, writes the figure
/// there as <name>.svg (the graphical counterpart of the text panels the
/// binaries print). Silent no-op otherwise, so plain bench runs stay pure.
inline void MaybeWriteFigure(const SvgFigure& figure,
                             const std::string& name) {
  const char* dir = std::getenv("GVA_FIGURES_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".svg";
  Status status = figure.WriteFile(path);
  if (status.ok()) {
    std::printf("figure written: %s\n", path.c_str());
  } else {
    std::printf("figure NOT written: %s\n", status.ToString().c_str());
  }
}

}  // namespace gva::bench

#endif  // GVA_BENCH_BENCH_UTIL_H_
