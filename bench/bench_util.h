#ifndef GVA_BENCH_BENCH_UTIL_H_
#define GVA_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction binaries. Each binary
// regenerates one table or figure of the paper (EDBT 2015, "Time series
// anomaly discovery with grammar-based compression") on the synthetic
// stand-in datasets and prints the same rows/series the paper reports,
// plus CHECK lines asserting the qualitative shape the paper claims.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "backend/backend.h"
#include "obs/recorder.h"
#include "obs/session.h"
#include "obs/telemetry_server.h"
#include "viz/svg.h"

namespace gva::bench {

inline int g_check_failures = 0;

/// Prints "CHECK ok: ..." / "CHECK FAILED: ..." and tracks failures so a
/// binary can exit non-zero when the paper's qualitative shape is violated.
inline void Check(bool condition, const std::string& what) {
  if (condition) {
    std::printf("CHECK ok: %s\n", what.c_str());
  } else {
    std::printf("CHECK FAILED: %s\n", what.c_str());
    ++g_check_failures;
  }
}

inline int CheckExitCode() { return g_check_failures == 0 ? 0 : 1; }

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// When the GVA_FIGURES_DIR environment variable is set, writes the figure
/// there as <name>.svg (the graphical counterpart of the text panels the
/// binaries print). Silent no-op otherwise, so plain bench runs stay pure.
inline void MaybeWriteFigure(const SvgFigure& figure,
                             const std::string& name) {
  const char* dir = std::getenv("GVA_FIGURES_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".svg";
  Status status = figure.WriteFile(path);
  if (status.ok()) {
    std::printf("figure written: %s\n", path.c_str());
  } else {
    std::printf("figure NOT written: %s\n", status.ToString().c_str());
  }
}

/// The flags every bench binary understands:
///   --trace=PATH     write a Chrome trace-event JSON capture
///   --metrics=PATH   write a metrics-registry JSON snapshot
///   --quiet          suppress informational chatter (announcements)
///   --backend=NAME   force the kernel backend (scalar|avx2|neon|auto);
///                    applied immediately, exits 2 on unknown/unavailable
///                    names so a bench never silently measures the wrong
///                    kernel
///   --telemetry-port=N  serve /metrics, /metrics.json, /healthz and
///                    /flightz on 127.0.0.1:N for the run's lifetime
///                    (0 = ephemeral port, printed on startup); applied
///                    immediately, exits 2 when the port cannot be bound
///                    so a scrape target never silently goes missing.
///                    Also installs the fatal-signal flight dump.
struct ObsFlags {
  std::string trace_path;
  std::string metrics_path;
  bool quiet = false;
};

/// Consumes one argv entry if it is a shared flag; returns whether it was
/// consumed. Binaries call this first in their argv loop so the shared
/// flags compose with their own options.
inline bool ParseObsFlag(const std::string& arg, ObsFlags* flags) {
  if (arg.rfind("--trace=", 0) == 0) {
    flags->trace_path = arg.substr(8);
    return true;
  }
  if (arg.rfind("--metrics=", 0) == 0) {
    flags->metrics_path = arg.substr(10);
    return true;
  }
  if (arg == "--quiet") {
    flags->quiet = true;
    return true;
  }
  if (arg.rfind("--backend=", 0) == 0) {
    const Status status = backend::SetActiveBackend(arg.substr(10));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
    return true;
  }
  if (arg.rfind("--telemetry-port=", 0) == 0) {
    obs::InstallFlightSignalHandler();
    obs::TelemetryServer::Options options;
    options.port = static_cast<uint16_t>(
        std::strtoul(arg.substr(17).c_str(), nullptr, 10));
    const Status status = obs::StartGlobalTelemetry(options);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
    std::printf("telemetry: http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(obs::GlobalTelemetry()->port()));
    return true;
  }
  return false;
}

/// Builds the capture session for the parsed flags — null when neither
/// export was requested, so plain bench runs stay capture-free. Keep the
/// returned session alive across the measured code; the files are written
/// when it is destroyed.
inline std::unique_ptr<obs::ObsSession> MakeObsSession(
    const ObsFlags& flags) {
  if (flags.trace_path.empty() && flags.metrics_path.empty()) {
    return nullptr;
  }
  obs::ObsSession::Options options;
  options.trace_path = flags.trace_path;
  options.metrics_path = flags.metrics_path;
  options.announce = !flags.quiet;
  auto session = std::make_unique<obs::ObsSession>(options);
  // The session constructor reset every gauge; restore the selection
  // record so the metrics export names the backend that ran.
  backend::AnnounceActiveBackend();
  return session;
}

}  // namespace gva::bench

#endif  // GVA_BENCH_BENCH_UTIL_H_
