// Hot-path kernel benchmark: incremental prefix-sum SAX discretization and
// the blocked-abandon distance kernel, each measured against an inline
// reimplementation of the pre-overhaul kernel (naive per-window
// z-normalize + PAA; scalar per-element-abandon distance loop), plus a
// per-backend matrix — one row per available kernel backend (scalar /
// AVX2 / NEON, see src/backend/) per case, with the scalar backend as the
// baseline column. Exactness is CHECKed on every configuration before any
// timing — byte-identical SAX records, matching distances and abandon
// decisions, and cross-backend agreement (bitwise where the backend
// advertises bit_exact_distance, within rounding tolerance otherwise) —
// and the timings are emitted as machine-readable JSON (default
// BENCH_kernels.json) so later PRs have a perf trajectory to compare
// against.
//
//   kernel_bench [--smoke] [--out PATH] [--backend=NAME]
//
// --smoke runs a seconds-scale configuration and skips the JSON (unless
// --out is given): it is wired into ctest under the `perf-smoke` label to
// assert exactness, not speed, so the binary cannot bit-rot.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "bench_util.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"
#include "discord/distance.h"
#include "obs/metrics.h"
#include "sax/mindist.h"
#include "sax/sax_transform.h"
#include "timeseries/sliding_window.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gva {
namespace {

// ---------------------------------------------------------------------------
// Pre-overhaul reference kernels ("before" side of the measurement).

/// The old Discretize: one full O(w) z-normalize + PAA per window.
SaxRecords NaiveDiscretize(std::span<const double> series,
                           const SaxOptions& opts,
                           NumerosityReduction numerosity) {
  const NormalAlphabet alphabet(opts.alphabet_size);
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  SaxRecords records;
  records.words.reserve(windows);
  records.offsets.reserve(windows);
  for (size_t pos = 0; pos < windows; ++pos) {
    std::string word =
        SaxWordForWindow(WindowAt(series, pos, opts.window), opts, alphabet);
    bool keep = true;
    if (!records.words.empty()) {
      const std::string& prev = records.words.back();
      switch (numerosity) {
        case NumerosityReduction::kNone:
          break;
        case NumerosityReduction::kExact:
          keep = (word != prev);
          break;
        case NumerosityReduction::kMinDist:
          keep = !MinDistIsZero(word, prev, alphabet);
          break;
      }
    }
    if (keep) {
      records.words.push_back(std::move(word));
      records.offsets.push_back(pos);
    }
  }
  return records;
}

/// The old SubsequenceDistance::Distance: scalar loop, per-element abandon.
class ScalarReferenceDistance {
 public:
  explicit ScalarReferenceDistance(std::span<const double> series,
                                   double epsilon = kDefaultZNormEpsilon)
      : series_(series), epsilon_(epsilon) {
    prefix_.resize(series.size() + 1);
    prefix_sq_.resize(series.size() + 1);
    prefix_[0] = 0.0;
    prefix_sq_[0] = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + series[i];
      prefix_sq_[i + 1] = prefix_sq_[i] + series[i] * series[i];
    }
  }

  double Distance(size_t p, size_t q, size_t length,
                  double limit = SubsequenceDistance::kInfinity) const {
    const auto [mean_p, inv_p] = StatsOf(p, length);
    const auto [mean_q, inv_q] = StatsOf(q, length);
    const double limit_sq =
        limit == SubsequenceDistance::kInfinity ? limit : limit * limit;
    double sum_sq = 0.0;
    for (size_t i = 0; i < length; ++i) {
      const double va = (series_[p + i] - mean_p) * inv_p;
      const double vb = (series_[q + i] - mean_q) * inv_q;
      const double d = va - vb;
      sum_sq += d * d;
      if (sum_sq >= limit_sq) {
        return SubsequenceDistance::kInfinity;
      }
    }
    return std::sqrt(sum_sq);
  }

 private:
  std::pair<double, double> StatsOf(size_t pos, size_t length) const {
    const double n = static_cast<double>(length);
    const double mean = (prefix_[pos + length] - prefix_[pos]) / n;
    double variance =
        (prefix_sq_[pos + length] - prefix_sq_[pos]) / n - mean * mean;
    if (variance < 0.0) {
      variance = 0.0;
    }
    const double sd = std::sqrt(variance);
    return {mean, sd < epsilon_ ? 1.0 : 1.0 / sd};
  }

  std::span<const double> series_;
  double epsilon_;
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
};

// ---------------------------------------------------------------------------
// Timing helpers.

/// Best-of-`reps` wall time of `fn`, in seconds. Best-of suppresses
/// scheduling noise, which matters on the single-CPU containers this runs
/// in.
double BestOf(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

struct KernelRow {
  std::string name;
  std::string detail;
  double baseline_s = 0.0;
  double kernel_s = 0.0;
  double units = 0.0;  // items processed per run (points or elements)

  double Speedup() const { return baseline_s / kernel_s; }
};

void PrintRow(const KernelRow& row) {
  std::printf("%-28s %-30s baseline %9.4fs  kernel %9.4fs  speedup %6.2fx\n",
              row.name.c_str(), row.detail.c_str(), row.baseline_s,
              row.kernel_s, row.Speedup());
}

std::string JsonRow(const KernelRow& row) {
  return StrFormat(
      "    {\"name\": \"%s\", \"detail\": \"%s\", \"baseline_s\": %.6f, "
      "\"kernel_s\": %.6f, \"speedup\": %.3f, \"baseline_items_per_s\": "
      "%.0f, \"kernel_items_per_s\": %.0f}",
      row.name.c_str(), row.detail.c_str(), row.baseline_s, row.kernel_s,
      row.Speedup(), row.units / row.baseline_s, row.units / row.kernel_s);
}

// ---------------------------------------------------------------------------
// Benchmark stages.

const KernelRow* FindRow(const std::vector<KernelRow>& rows,
                         const std::string& name) {
  for (const KernelRow& row : rows) {
    if (row.name == name) {
      return &row;
    }
  }
  return nullptr;
}

KernelRow BenchDiscretize(const std::string& name,
                          std::span<const double> series,
                          const SaxOptions& opts, int reps) {
  // Exactness first: the incremental kernel must be byte-identical to the
  // reference on this exact configuration.
  const SaxRecords naive = NaiveDiscretize(series, opts, opts.numerosity);
  const auto fast = Discretize(series, opts);
  bench::Check(fast.ok(), name + ": incremental Discretize succeeds");
  if (fast.ok()) {
    bench::Check(fast->words == naive.words && fast->offsets == naive.offsets,
                 name + ": SAX records byte-identical to naive reference");
  }

  KernelRow row;
  row.name = "discretize/" + name;
  row.detail = StrFormat("n=%zu w=%zu paa=%zu a=%zu", series.size(),
                         opts.window, opts.paa_size, opts.alphabet_size);
  row.units = static_cast<double>(series.size());
  row.baseline_s = BestOf(reps, [&] {
    const SaxRecords r = NaiveDiscretize(series, opts, opts.numerosity);
    if (r.words.empty()) {
      std::abort();  // keep the optimizer honest
    }
  });
  row.kernel_s = BestOf(reps, [&] {
    const auto r = Discretize(series, opts);
    if (!r.ok() || r->words.empty()) {
      std::abort();
    }
  });
  return row;
}

KernelRow BenchDistance(const std::string& name,
                        std::span<const double> series, size_t length,
                        size_t calls, bool abandoning, int reps) {
  // Pinned to the scalar backend: this row tracks "blocked kernel vs
  // pre-overhaul per-element kernel" across PRs, so its arithmetic (and
  // the bitwise abandon-decision CHECK below) must not drift with the
  // host's SIMD. The per-backend matrix rows measure dispatch.
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);

  // Pair list shared by both kernels; limits chosen from the true distance
  // so the abandoning variant abandons roughly half the calls.
  Rng rng(12345);
  std::vector<size_t> ps(calls);
  std::vector<size_t> qs(calls);
  std::vector<double> limits(calls, SubsequenceDistance::kInfinity);
  for (size_t i = 0; i < calls; ++i) {
    ps[i] = rng.UniformInt(series.size() - length + 1);
    qs[i] = rng.UniformInt(series.size() - length + 1);
    if (abandoning) {
      const double truth = ref.Distance(ps[i], qs[i], length);
      limits[i] = truth * (0.5 + rng.UniformDouble());
    }
  }

  // Exactness: identical values, identical abandon decisions.
  bool exact = true;
  for (size_t i = 0; i < calls; ++i) {
    const double a = dist.Distance(ps[i], qs[i], length, limits[i]);
    const double b = ref.Distance(ps[i], qs[i], length, limits[i]);
    if (a == SubsequenceDistance::kInfinity ||
        b == SubsequenceDistance::kInfinity) {
      exact = exact && (a == b);
    } else {
      exact = exact && std::abs(a - b) <= 1e-9;
    }
  }
  bench::Check(exact, name + ": blocked kernel matches scalar reference (" +
                          std::string(abandoning ? "abandoning" : "full") +
                          ")");

  KernelRow row;
  row.name = "distance/" + name;
  row.detail = StrFormat("len=%zu calls=%zu %s", length, calls,
                         abandoning ? "abandoning" : "full");
  row.units = static_cast<double>(calls) * static_cast<double>(length);
  double sink = 0.0;
  row.baseline_s = BestOf(reps, [&] {
    for (size_t i = 0; i < calls; ++i) {
      const double d = ref.Distance(ps[i], qs[i], length, limits[i]);
      if (d != SubsequenceDistance::kInfinity) {
        sink += d;
      }
    }
  });
  row.kernel_s = BestOf(reps, [&] {
    for (size_t i = 0; i < calls; ++i) {
      const double d = dist.Distance(ps[i], qs[i], length, limits[i]);
      if (d != SubsequenceDistance::kInfinity) {
        sink += d;
      }
    }
  });
  if (sink == 1e300) {  // never true; defeats dead-code elimination
    std::abort();
  }
  return row;
}

// ---------------------------------------------------------------------------
// Per-backend matrix (src/backend/ dispatch layer).

/// One row per available backend for a distance case. The scalar backend
/// is the baseline column of every row, so a row's speedup reads "this
/// backend vs scalar on identical work". Before any timing, every backend
/// is CHECKed against scalar over the full pair list: identical abandon
/// decisions, and completed distances bitwise equal when the backend
/// advertises bit_exact_distance, else within 1e-9 relative tolerance
/// (the documented SIMD summation-order exception, DESIGN.md §11).
void BenchDistanceBackends(const std::string& name,
                           std::span<const double> series, size_t length,
                           size_t calls, bool abandoning, int reps,
                           std::vector<KernelRow>* rows) {
  const std::vector<const backend::KernelBackend*> backends =
      backend::AvailableBackends();
  SubsequenceDistance scalar_dist(series, kDefaultZNormEpsilon,
                                  backend::ScalarBackend());

  // Abandon limits are sampled away from a narrow band around the true
  // distance: a limit within rounding noise of the distance would make the
  // abandon decision legitimately backend-dependent, which is exactly the
  // boundary the equality CHECK must not sit on.
  Rng rng(777);
  std::vector<size_t> ps(calls);
  std::vector<size_t> qs(calls);
  std::vector<double> limits(calls, SubsequenceDistance::kInfinity);
  for (size_t i = 0; i < calls; ++i) {
    ps[i] = rng.UniformInt(series.size() - length + 1);
    qs[i] = rng.UniformInt(series.size() - length + 1);
    if (abandoning) {
      const double truth = scalar_dist.Distance(ps[i], qs[i], length);
      double factor = 0.5 + 1.0 * rng.UniformDouble();
      if (factor > 0.999 && factor < 1.001) {
        factor = 1.01;
      }
      limits[i] = truth * factor;
    }
  }

  for (const backend::KernelBackend* b : backends) {
    if (b == backend::ScalarBackend()) {
      continue;
    }
    SubsequenceDistance dist(series, kDefaultZNormEpsilon, b);
    bool agree = true;
    for (size_t i = 0; i < calls; ++i) {
      const double got = dist.Distance(ps[i], qs[i], length, limits[i]);
      const double want = scalar_dist.Distance(ps[i], qs[i], length, limits[i]);
      if (got == SubsequenceDistance::kInfinity ||
          want == SubsequenceDistance::kInfinity) {
        agree = agree && (got == want);
      } else if (b->bit_exact_distance) {
        agree = agree && (got == want);
      } else {
        agree = agree && std::abs(got - want) <= 1e-9 * std::max(1.0, want);
      }
    }
    bench::Check(agree, "distance/" + name + "[" + b->name +
                            "]: matches scalar backend (" +
                            std::string(abandoning ? "abandoning" : "full") +
                            ")");
  }

  const std::string detail =
      StrFormat("len=%zu calls=%zu %s", length, calls,
                abandoning ? "abandoning" : "full");
  const double units =
      static_cast<double>(calls) * static_cast<double>(length);
  double sink = 0.0;
  const auto time_backend = [&](const backend::KernelBackend* b) {
    SubsequenceDistance dist(series, kDefaultZNormEpsilon, b);
    return BestOf(reps, [&] {
      for (size_t i = 0; i < calls; ++i) {
        const double d = dist.Distance(ps[i], qs[i], length, limits[i]);
        if (d != SubsequenceDistance::kInfinity) {
          sink += d;
        }
      }
    });
  };
  const double scalar_s = time_backend(backend::ScalarBackend());
  for (const backend::KernelBackend* b : backends) {
    KernelRow row;
    row.name = "distance/" + name + "[" + b->name + "]";
    row.detail = detail;
    row.units = units;
    row.baseline_s = scalar_s;
    row.kernel_s =
        b == backend::ScalarBackend() ? scalar_s : time_backend(b);
    rows->push_back(row);
  }
  if (sink == 1e300) {  // never true; defeats dead-code elimination
    std::abort();
  }
}

/// One row per available backend for a discretize case. Dispatch reaches
/// discretization only through the bit-exact PaaSegmentSums kernel, so the
/// CHECK here is byte-identical records for every backend, no tolerance.
void BenchDiscretizeBackends(const std::string& name,
                             std::span<const double> series,
                             const SaxOptions& opts, int reps,
                             std::vector<KernelRow>* rows) {
  const std::vector<const backend::KernelBackend*> backends =
      backend::AvailableBackends();
  const auto run_with = [&](const backend::KernelBackend* b) {
    const Status status = backend::SetActiveBackend(b->name);
    if (!status.ok()) {
      std::abort();
    }
    return Discretize(series, opts);
  };

  const auto reference = run_with(backend::ScalarBackend());
  bench::Check(reference.ok(),
               "discretize/" + name + "[scalar]: Discretize succeeds");
  const double scalar_s = BestOf(reps, [&] {
    const auto r = Discretize(series, opts);
    if (!r.ok() || r->words.empty()) {
      std::abort();
    }
  });

  for (const backend::KernelBackend* b : backends) {
    const auto records = run_with(b);  // leaves b active for the timing
    if (b != backend::ScalarBackend() && reference.ok() && records.ok()) {
      bench::Check(records->words == reference->words &&
                       records->offsets == reference->offsets,
                   "discretize/" + name + "[" + b->name +
                       "]: records byte-identical to scalar backend");
    }
    KernelRow row;
    row.name = "discretize/" + name + "[" + b->name + "]";
    row.detail = StrFormat("n=%zu w=%zu paa=%zu a=%zu", series.size(),
                           opts.window, opts.paa_size, opts.alphabet_size);
    row.units = static_cast<double>(series.size());
    row.baseline_s = scalar_s;
    if (b == backend::ScalarBackend()) {
      row.kernel_s = scalar_s;
    } else {
      row.kernel_s = BestOf(reps, [&] {
        const auto r = Discretize(series, opts);
        if (!r.ok() || r->words.empty()) {
          std::abort();
        }
      });
    }
    rows->push_back(row);
  }
  // Re-pin scalar so the legacy rows after this call keep their historical
  // arithmetic.
  if (!backend::SetActiveBackend("scalar").ok()) {
    std::abort();
  }
}

/// Measures the marginal cost of the per-distance-call metrics
/// instrumentation at realistic call granularity: the same distance-call
/// loop once feeding the disabled (no-op) counter primitive and once the
/// enabled (relaxed-atomic) one — exactly the delta the GVA_OBS switch
/// toggles at each instrumentation site. Both primitive variants are always
/// compiled (templates), so one binary measures both sides. Here "baseline"
/// is obs-disabled and "kernel" is obs-enabled: a speedup near 1.0 means
/// the instrumentation is free; the smoke CHECK bounds the regression.
KernelRow BenchObsOverhead(std::span<const double> series, size_t length,
                           size_t calls, int reps) {
  SubsequenceDistance dist(series);
  Rng rng(54321);
  std::vector<size_t> ps(calls);
  std::vector<size_t> qs(calls);
  for (size_t i = 0; i < calls; ++i) {
    ps[i] = rng.UniformInt(series.size() - length + 1);
    qs[i] = rng.UniformInt(series.size() - length + 1);
  }

  obs::BasicCounter<false> off;
  obs::BasicCounter<true> on;
  double sink = 0.0;
  KernelRow row;
  row.name = "obs/counter_overhead";
  row.detail = StrFormat("len=%zu calls=%zu", length, calls);
  row.units = static_cast<double>(calls) * static_cast<double>(length);
  // Interleave the two sides rep by rep (instead of two back-to-back
  // BestOf blocks) so a load spike during a parallel ctest run skews both
  // measurements alike rather than whichever side ran later.
  row.baseline_s = 1e300;
  row.kernel_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    row.baseline_s = std::min(row.baseline_s, BestOf(1, [&] {
                                for (size_t i = 0; i < calls; ++i) {
                                  sink += dist.Distance(ps[i], qs[i], length);
                                  off.Add();
                                }
                              }));
    row.kernel_s = std::min(row.kernel_s, BestOf(1, [&] {
                              for (size_t i = 0; i < calls; ++i) {
                                sink += dist.Distance(ps[i], qs[i], length);
                                on.Add();
                              }
                            }));
  }
  if (sink == 1e300) {  // never true; defeats dead-code elimination
    std::abort();
  }
  bench::Check(on.value() ==
                   static_cast<uint64_t>(calls) * static_cast<uint64_t>(reps),
               "obs overhead: enabled counter saw every call");
  bench::Check(off.value() == 0, "obs overhead: disabled counter stayed 0");
  return row;
}

int Run(bool smoke, const std::string& out_path) {
  bench::Header(smoke ? "Kernel bench (smoke)" : "Kernel bench");

  std::string backend_names;
  for (const backend::KernelBackend* b : backend::AvailableBackends()) {
    if (!backend_names.empty()) {
      backend_names += ", ";
    }
    backend_names += b->name;
  }
  std::printf("available backends: %s\n", backend_names.c_str());

  // The legacy rows (no [backend] suffix) track "current kernel vs
  // pre-overhaul naive reimplementation" under the scalar backend, so
  // their numbers and bitwise CHECKs stay comparable across PRs and
  // hosts. The matrix rows switch backends explicitly.
  if (!backend::SetActiveBackend("scalar").ok()) {
    std::abort();
  }

  std::vector<KernelRow> rows;
  if (smoke) {
    const std::vector<double> sine = MakeSine(3000, 50.0, 0.05, 3);
    SaxOptions opts;
    opts.window = 60;
    opts.paa_size = 5;
    opts.alphabet_size = 4;
    rows.push_back(BenchDiscretize("sine_3k", sine, opts, 1));
    SaxOptions ragged = opts;
    ragged.window = 37;  // non-divisible geometry
    ragged.paa_size = 5;
    rows.push_back(BenchDiscretize("sine_3k_ragged", sine, ragged, 1));
    rows.push_back(BenchDistance("sine_3k", sine, 64, 2000, false, 1));
    rows.push_back(BenchDistance("sine_3k", sine, 64, 2000, true, 1));

    // Backend matrix on the smoke cases: cheap, and it keeps the
    // cross-backend equality CHECKs inside the default ctest run on every
    // host (including non-x86 ones, where only scalar/neon exist).
    BenchDistanceBackends("sine_3k", sine, 64, 2000, false, 1, &rows);
    BenchDistanceBackends("sine_3k", sine, 64, 2000, true, 1, &rows);
    BenchDiscretizeBackends("sine_3k", sine, opts, 1, &rows);

    // The observability acceptance gate: per-call metrics must cost < 5%
    // on top of a realistic distance-call loop. Interleaved best-of-9 on a
    // ~ms-scale loop plus a small absolute epsilon keeps the check robust
    // to scheduler noise when ctest runs the suite in parallel.
    const KernelRow obs_row = BenchObsOverhead(sine, 120, 20000, 9);
#ifdef GVA_SANITIZED
    // Sanitizer instrumentation slows the obs-enabled side far more than
    // the disabled one (extra checks around every counter touch), so the
    // ratio no longer measures production overhead. The counter-correctness
    // checks inside BenchObsOverhead still ran; only the timing gate is
    // waived.
    bench::Check(true,
                 "obs overhead ratio waived under sanitizer instrumentation");
#else
    bench::Check(
        obs_row.kernel_s <= obs_row.baseline_s * 1.05 + 5e-4,
        StrFormat("obs-enabled distance loop within 5%% of disabled "
                  "(enabled %.4fms vs disabled %.4fms)",
                  obs_row.kernel_s * 1e3, obs_row.baseline_s * 1e3));
#endif
    rows.push_back(obs_row);
  } else {
    // The acceptance configuration: 100k points, w=180, paa=6, a=4.
    const std::vector<double> sine = MakeSine(100000, 200.0, 0.05, 3);
    SaxOptions opts;
    opts.window = 180;
    opts.paa_size = 6;
    opts.alphabet_size = 4;
    rows.push_back(BenchDiscretize("sine_100k", sine, opts, 3));

    SaxOptions all_windows = opts;
    all_windows.numerosity = NumerosityReduction::kNone;
    rows.push_back(BenchDiscretize("sine_100k_allwin", sine, all_windows, 3));

    EcgOptions ecg_opts;
    ecg_opts.num_beats = 180;  // ~21.6k points
    const LabeledSeries ecg = MakeEcg(ecg_opts);
    SaxOptions ecg_sax;
    ecg_sax.window = 120;
    ecg_sax.paa_size = 4;
    ecg_sax.alphabet_size = 4;
    rows.push_back(BenchDiscretize("ecg", ecg.series, ecg_sax, 3));

    rows.push_back(BenchDistance("sine_100k", sine, 180, 20000, false, 3));
    rows.push_back(BenchDistance("sine_100k", sine, 180, 20000, true, 3));
    rows.push_back(BenchDistance("sine_100k_long", sine, 1024, 5000, false, 3));
    rows.push_back(BenchDistance("ecg", ecg.series, 120, 20000, false, 3));

    BenchDistanceBackends("sine_100k", sine, 180, 20000, false, 3, &rows);
    BenchDistanceBackends("sine_100k", sine, 180, 20000, true, 3, &rows);
    BenchDistanceBackends("sine_100k_long", sine, 1024, 5000, false, 3, &rows);
    BenchDistanceBackends("ecg", ecg.series, 120, 20000, false, 3, &rows);
    BenchDiscretizeBackends("sine_100k", sine, opts, 3, &rows);
    BenchDiscretizeBackends("ecg", ecg.series, ecg_sax, 3, &rows);

    rows.push_back(BenchObsOverhead(sine, 180, 50000, 5));
  }

  std::printf("\n");
  for (const KernelRow& row : rows) {
    PrintRow(row);
  }

  // The headline acceptance number: incremental discretization must be at
  // least 3x the pre-overhaul implementation on the 100k configuration.
  if (!smoke) {
    bench::Check(rows[0].Speedup() >= 3.0,
                 StrFormat("discretize/sine_100k speedup %.2fx >= 3x",
                           rows[0].Speedup()));

    // The dispatch-layer acceptance gate: on an AVX2 host the AVX2 backend
    // must be >= 1.5x the scalar backend on the long-window distance case
    // (the configuration bounded by the scalar fold's FP-add latency
    // chain). Wall-clock ratios are meaningless under sanitizer
    // instrumentation, so the gate is waived there; the cross-backend
    // equality CHECKs above still ran.
    if (backend::Avx2Backend() != nullptr) {
      const KernelRow* scalar_row =
          FindRow(rows, "distance/sine_100k_long[scalar]");
      const KernelRow* avx2_row =
          FindRow(rows, "distance/sine_100k_long[avx2]");
#ifdef GVA_SANITIZED
      bench::Check(true,
                   "avx2-vs-scalar gate waived under sanitizer "
                   "instrumentation");
#else
      const double ratio =
          (scalar_row != nullptr && avx2_row != nullptr)
              ? scalar_row->kernel_s / avx2_row->kernel_s
              : 0.0;
      bench::Check(ratio >= 1.5,
                   StrFormat("distance/sine_100k_long avx2 backend %.2fx >= "
                             "1.5x scalar backend",
                             ratio));
#endif
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::string json = "{\n  \"bench\": \"kernel_bench\",\n";
    json += StrFormat("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    json += StrFormat("  \"block_size\": %zu,\n",
                      SubsequenceDistance::kBlock);
    json += "  \"backends\": [";
    {
      bool first = true;
      for (const backend::KernelBackend* b : backend::AvailableBackends()) {
        json += StrFormat("%s\"%s\"", first ? "" : ", ", b->name);
        first = false;
      }
    }
    json += "],\n";
    json +=
        "  \"note\": \"rows without a [backend] suffix: baseline = "
        "pre-overhaul kernels (naive per-window z-norm+PAA discretization; "
        "scalar per-element-abandon distance), reimplemented in-binary; "
        "kernel = incremental prefix-sum discretization / blocked-abandon "
        "distance under the scalar backend. rows with a [backend] suffix: "
        "baseline = the scalar backend, kernel = that backend, on identical "
        "work (the dispatch matrix, DESIGN.md \\u00a711). items = series "
        "points (discretize) or accumulated elements (distance).\",\n";
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      json += JsonRow(rows[i]);
      json += i + 1 < rows.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  bool out_set = false;
  gva::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (gva::bench::ParseObsFlag(argv[i], &obs_flags)) {
      continue;
    }
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
      out_set = true;
    } else {
      std::printf(
          "usage: kernel_bench [--smoke] [--out PATH] [--trace=PATH] "
          "[--metrics=PATH] [--backend=NAME] [--quiet]\n");
      return 2;
    }
  }
  if (smoke && !out_set) {
    out_path.clear();  // smoke mode asserts exactness; no JSON by default
  }
  auto session = gva::bench::MakeObsSession(obs_flags);
  return gva::Run(smoke, out_path);
}
