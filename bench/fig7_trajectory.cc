// Reproduces Figures 7-9: anomaly discovery in the Hilbert-SFC-transformed
// GPS commute track. The rule density curve's global minimum corresponds to
// the unique detour (Fig. 7, red segment); the best RRA discord corresponds
// to the trip travelled with a degraded GPS fix (blue segment); further RRA
// discords highlight other atypical traversals (Figs. 8-9).

#include <cstdio>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/trajectory.h"
#include "viz/ascii_plot.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figures 7-9: anomalies in the Hilbert-transformed GPS "
                "track");

  TrajectoryOptions opts;
  TrajectoryData data = MakeTrajectory(opts);
  const LabeledSeries& labeled = data.labeled;
  const Interval detour = labeled.anomalies[0];
  const Interval fix_loss = labeled.anomalies[1];
  SaxOptions sax = labeled.recommended;

  std::printf("Hilbert visit-order sequence of the GPS trail (detour and "
              "fix-loss marked '!'):\n");
  std::printf("%s\n",
              RenderSeries(labeled.series, labeled.anomalies, {}).c_str());

  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.05;
  auto density = DetectDensityAnomalies(labeled.series, sax, density_opts);
  if (!density.ok()) {
    std::printf("density failed: %s\n", density.status().ToString().c_str());
    return 1;
  }
  std::printf("Sequitur rule density (w=%zu, paa=%zu, a=%zu):\n", sax.window,
              sax.paa_size, sax.alphabet_size);
  std::printf("%s\n\n",
              RenderDensityShading(density->decomposition.density).c_str());

  std::vector<Interval> density_found;
  for (const DensityAnomaly& a : density->anomalies) {
    density_found.push_back(a.span);
  }
  bench::Check(!density_found.empty() &&
                   HitsAnyTruth(detour, density_found, sax.window),
               "Fig 7: the rule density minima capture the unique detour");

  RraOptions rra_opts;
  rra_opts.sax = sax;
  rra_opts.top_k = 3;
  auto rra = FindRraDiscords(labeled.series, rra_opts);
  if (!rra.ok()) {
    std::printf("rra failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }
  const char* kRanks[] = {"Best", "Second", "Third"};
  std::vector<Interval> rra_found;
  for (size_t i = 0; i < rra->result.discords.size(); ++i) {
    const DiscordRecord& d = rra->result.discords[i];
    const char* label = "other";
    if (d.span().Overlaps(fix_loss)) {
      label = "degraded-GPS-fix trip";
    } else if (d.span().Overlaps(detour)) {
      label = "detour";
    }
    std::printf("%s RRA discord: [%zu, %zu) len=%zu dist=%.4f -> %s\n",
                kRanks[i], d.position, d.position + d.length, d.length,
                d.distance, label);
    rra_found.push_back(d.span());
  }
  std::printf("detour truth [%zu, %zu), fix-loss truth [%zu, %zu)\n\n",
              detour.start, detour.end, fix_loss.start, fix_loss.end);

  bench::Check(!rra_found.empty() &&
                   HitsAnyTruth(fix_loss, rra_found, sax.window),
               "Fig 7: an RRA discord captures the degraded-fix trip");
  bench::Check(Recall(rra_found, labeled.anomalies, sax.window) > 0.0,
               "Figs 8-9: ranked RRA discords highlight atypical "
               "traversals");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
