// Cross-method comparison backing the paper's Section 6 positioning: on the
// same dataset, the grammar-driven detectors (rule density, RRA) against
// the related-work baselines implemented in this repository — rare-SAX-word
// frequency (VizTree / Chen et al. style) and compression scoring (WCAD
// style, with Sequitur as the compressor). The paper's argument: word
// counting throws away ordering and is bounded by the window length, and
// off-the-shelf compression scoring needs a segment size; the grammar
// methods get variable-length context for free.
//
// A second section sweeps the discord-search thread count on a ~20k-point
// ECG-like series: same discords at every thread count (the searches
// guarantee bit-identical results), wall-clock dropping with threads on
// multi-core hardware.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/compression_score.h"
#include "core/evaluate.h"
#include "core/frequency_detector.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/video.h"
#include "discord/brute_force.h"
#include "discord/hotsax.h"

namespace gva {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameDiscords(const DiscordResult& a, const DiscordResult& b) {
  if (a.discords.size() != b.discords.size()) {
    return false;
  }
  for (size_t i = 0; i < a.discords.size(); ++i) {
    if (a.discords[i].position != b.discords[i].position ||
        a.discords[i].length != b.discords[i].length ||
        a.discords[i].distance != b.discords[i].distance ||
        a.discords[i].nn_position != b.discords[i].nn_position) {
      return false;
    }
  }
  return true;
}

int RunThreadSweep() {
  bench::Header("Thread sweep: parallel discord search on ~20k-point ECG");

  EcgOptions ecg;
  ecg.num_beats = 167;  // ~167 x 120 samples ≈ 20k points
  ecg.anomalous_beats = {83};
  LabeledSeries data = MakeEcg(ecg);
  const size_t window = 120;
  std::printf("series length: %zu, window: %zu, hardware threads: %u\n\n",
              data.series.size(), window,
              std::thread::hardware_concurrency());

  const std::vector<size_t> thread_counts = {1, 2, 4};

  std::printf("%-28s %8s %12s %10s %14s\n", "Search", "threads", "seconds",
              "speedup", "dist. calls");
  double brute_base = 0.0;
  double brute_best_speedup = 1.0;
  bool brute_identical = true;
  DiscordResult brute_reference;
  for (size_t threads : thread_counts) {
    const auto start = std::chrono::steady_clock::now();
    auto result = FindDiscordsBruteForce(data.series, window, 1, threads);
    const double seconds = SecondsSince(start);
    if (!result.ok()) {
      std::printf("brute force failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) {
      brute_base = seconds;
      brute_reference = *result;
    } else {
      brute_identical = brute_identical && SameDiscords(brute_reference,
                                                       *result);
      brute_best_speedup = std::max(brute_best_speedup,
                                    brute_base / seconds);
    }
    std::printf("%-28s %8zu %12.3f %9.2fx %14llu\n", "brute force", threads,
                seconds, brute_base / seconds,
                static_cast<unsigned long long>(result->distance_calls));
  }

  bool hotsax_identical = true;
  DiscordResult hotsax_reference;
  for (size_t threads : thread_counts) {
    HotSaxOptions options;
    options.sax.window = window;
    options.sax.paa_size = 6;
    options.sax.alphabet_size = 4;
    options.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    auto result = FindDiscordsHotSax(data.series, options);
    const double seconds = SecondsSince(start);
    if (!result.ok()) {
      std::printf("hotsax failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) {
      hotsax_reference = *result;
    } else {
      hotsax_identical = hotsax_identical && SameDiscords(hotsax_reference,
                                                          *result);
    }
    std::printf("%-28s %8zu %12.3f %10s %14llu\n", "HOTSAX", threads,
                seconds, "",
                static_cast<unsigned long long>(result->distance_calls));
  }

  bool rra_identical = true;
  DiscordResult rra_reference;
  for (size_t threads : thread_counts) {
    RraOptions options;
    options.sax.window = window;
    options.sax.paa_size = 6;
    options.sax.alphabet_size = 4;
    options.top_k = 2;
    options.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    auto result = FindRraDiscords(data.series, options);
    const double seconds = SecondsSince(start);
    if (!result.ok()) {
      std::printf("rra failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) {
      rra_reference = result->result;
    } else {
      rra_identical = rra_identical && SameDiscords(rra_reference,
                                                    result->result);
    }
    std::printf("%-28s %8zu %12.3f %10s %14llu\n", "RRA", threads, seconds,
                "",
                static_cast<unsigned long long>(
                    result->result.distance_calls));
  }
  std::printf("\n");

  bench::Check(brute_identical,
               "brute force reports bit-identical discords at every thread "
               "count");
  bench::Check(hotsax_identical,
               "HOTSAX reports bit-identical discords at every thread count");
  bench::Check(rra_identical,
               "RRA reports bit-identical discords at every thread count");
  if (std::thread::hardware_concurrency() >= 4) {
    bench::Check(brute_best_speedup >= 2.0,
                 "brute force achieves >= 2x wall-clock speedup with threads");
  } else {
    std::printf("note: < 4 hardware threads available; skipping the speedup "
                "check (best observed %.2fx)\n",
                brute_best_speedup);
  }
  return 0;
}

int Run() {
  bench::Header("Baselines: grammar methods vs word frequency vs "
                "compression score");

  VideoOptions opts;
  opts.num_cycles = 26;
  opts.anomalous_cycles = {8, 17};
  LabeledSeries data = MakeVideo(opts);
  SaxOptions sax = data.recommended;
  const size_t slack = sax.window;

  std::printf("%-28s %-10s %-26s %s\n", "Method", "Hits", "Top-2 spans",
              "Notes");

  auto spans_to_string = [](const std::vector<Interval>& spans) {
    std::string out;
    for (size_t i = 0; i < spans.size() && i < 2; ++i) {
      out += '[';
      out += std::to_string(spans[i].start);
      out += ',';
      out += std::to_string(spans[i].end);
      out += ") ";
    }
    return out;
  };

  // Rule density.
  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.1;
  auto density = DetectDensityAnomalies(data.series, sax, density_opts);
  std::vector<Interval> density_spans;
  if (density.ok()) {
    for (const DensityAnomaly& a : density->anomalies) {
      density_spans.push_back(a.span);
    }
  }
  const double density_recall = Recall(density_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "rule density (paper)",
              density_recall, spans_to_string(density_spans).c_str(),
              "linear, no distances");

  // RRA.
  RraOptions rra_opts;
  rra_opts.sax = sax;
  rra_opts.top_k = 2;
  auto rra = FindRraDiscords(data.series, rra_opts);
  std::vector<Interval> rra_spans;
  if (rra.ok()) {
    for (const DiscordRecord& d : rra->result.discords) {
      rra_spans.push_back(d.span());
    }
  }
  const double rra_recall = Recall(rra_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "RRA (paper)", rra_recall,
              spans_to_string(rra_spans).c_str(),
              "exact, variable-length");

  // Rare-word frequency.
  FrequencyAnomalyOptions freq_opts;
  freq_opts.sax = sax;
  freq_opts.threshold_fraction = 0.05;
  auto freq = DetectRareWordAnomalies(data.series, freq_opts);
  std::vector<Interval> freq_spans;
  if (freq.ok()) {
    for (const FrequencyAnomaly& a : freq->anomalies) {
      freq_spans.push_back(a.span);
    }
  }
  const double freq_recall = Recall(freq_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "rare SAX word (VizTree)",
              freq_recall, spans_to_string(freq_spans).c_str(),
              "no ordering info");

  // Compression score.
  CompressionScoreOptions comp_opts;
  comp_opts.sax = sax;
  comp_opts.segment_tokens = 6;
  auto comp = DetectCompressionAnomalies(data.series, comp_opts);
  std::vector<Interval> comp_spans;
  if (comp.ok()) {
    for (const SegmentScore& s : comp->anomalies) {
      comp_spans.push_back(s.span);
    }
  }
  const double comp_recall = Recall(comp_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "compression score (WCAD)",
              comp_recall, spans_to_string(comp_spans).c_str(),
              "segment-size bound");
  std::printf("\nplanted anomalies: [%zu, %zu) and [%zu, %zu)\n\n",
              data.anomalies[0].start, data.anomalies[0].end,
              data.anomalies[1].start, data.anomalies[1].end);

  bench::Check(density_recall == 1.0 && rra_recall == 1.0,
               "both grammar-driven methods find both planted anomalies");
  bench::Check(freq_recall > 0.0 && comp_recall > 0.0,
               "the baselines find at least one anomaly (they are real "
               "methods, just weaker)");
  if (int sweep = RunThreadSweep(); sweep != 0) {
    return sweep;
  }
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
