// Cross-method comparison backing the paper's Section 6 positioning: on the
// same dataset, the grammar-driven detectors (rule density, RRA) against
// the related-work baselines implemented in this repository — rare-SAX-word
// frequency (VizTree / Chen et al. style) and compression scoring (WCAD
// style, with Sequitur as the compressor). The paper's argument: word
// counting throws away ordering and is bounded by the window length, and
// off-the-shelf compression scoring needs a segment size; the grammar
// methods get variable-length context for free.

#include <cstdio>

#include "bench_util.h"
#include "core/compression_score.h"
#include "core/evaluate.h"
#include "core/frequency_detector.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/video.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Baselines: grammar methods vs word frequency vs "
                "compression score");

  VideoOptions opts;
  opts.num_cycles = 26;
  opts.anomalous_cycles = {8, 17};
  LabeledSeries data = MakeVideo(opts);
  SaxOptions sax = data.recommended;
  const size_t slack = sax.window;

  std::printf("%-28s %-10s %-26s %s\n", "Method", "Hits", "Top-2 spans",
              "Notes");

  auto spans_to_string = [](const std::vector<Interval>& spans) {
    std::string out;
    for (size_t i = 0; i < spans.size() && i < 2; ++i) {
      out += "[" + std::to_string(spans[i].start) + "," +
             std::to_string(spans[i].end) + ") ";
    }
    return out;
  };

  // Rule density.
  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.1;
  auto density = DetectDensityAnomalies(data.series, sax, density_opts);
  std::vector<Interval> density_spans;
  if (density.ok()) {
    for (const DensityAnomaly& a : density->anomalies) {
      density_spans.push_back(a.span);
    }
  }
  const double density_recall = Recall(density_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "rule density (paper)",
              density_recall, spans_to_string(density_spans).c_str(),
              "linear, no distances");

  // RRA.
  RraOptions rra_opts;
  rra_opts.sax = sax;
  rra_opts.top_k = 2;
  auto rra = FindRraDiscords(data.series, rra_opts);
  std::vector<Interval> rra_spans;
  if (rra.ok()) {
    for (const DiscordRecord& d : rra->result.discords) {
      rra_spans.push_back(d.span());
    }
  }
  const double rra_recall = Recall(rra_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "RRA (paper)", rra_recall,
              spans_to_string(rra_spans).c_str(),
              "exact, variable-length");

  // Rare-word frequency.
  FrequencyAnomalyOptions freq_opts;
  freq_opts.sax = sax;
  freq_opts.threshold_fraction = 0.05;
  auto freq = DetectRareWordAnomalies(data.series, freq_opts);
  std::vector<Interval> freq_spans;
  if (freq.ok()) {
    for (const FrequencyAnomaly& a : freq->anomalies) {
      freq_spans.push_back(a.span);
    }
  }
  const double freq_recall = Recall(freq_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "rare SAX word (VizTree)",
              freq_recall, spans_to_string(freq_spans).c_str(),
              "no ordering info");

  // Compression score.
  CompressionScoreOptions comp_opts;
  comp_opts.sax = sax;
  comp_opts.segment_tokens = 6;
  auto comp = DetectCompressionAnomalies(data.series, comp_opts);
  std::vector<Interval> comp_spans;
  if (comp.ok()) {
    for (const SegmentScore& s : comp->anomalies) {
      comp_spans.push_back(s.span);
    }
  }
  const double comp_recall = Recall(comp_spans, data.anomalies, slack);
  std::printf("%-28s %-10.2f %-26s %s\n", "compression score (WCAD)",
              comp_recall, spans_to_string(comp_spans).c_str(),
              "segment-size bound");
  std::printf("\nplanted anomalies: [%zu, %zu) and [%zu, %zu)\n\n",
              data.anomalies[0].start, data.anomalies[0].end,
              data.anomalies[1].start, data.anomalies[1].end);

  bench::Check(density_recall == 1.0 && rra_recall == 1.0,
               "both grammar-driven methods find both planted anomalies");
  bench::Check(freq_recall > 0.0 && comp_recall > 0.0,
               "the baselines find at least one anomaly (they are real "
               "methods, just weaker)");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
