// Reproduces Figure 2: anomaly discovery in the ECG dataset. Three panels:
// the series with the anomalous heartbeat, the Sequitur rule density curve
// (global minimum at the true anomaly), and the non-self nearest-neighbor
// distances of the rule-corresponding subsequences (largest at the RRA
// discord).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "timeseries/stats.h"
#include "viz/ascii_plot.h"

namespace gva {
namespace {

int Run() {
  bench::Header("Figure 2: anomaly discovery in the ECG dataset");

  EcgOptions opts;
  opts.num_beats = 60;
  opts.anomalous_beats = {35};
  LabeledSeries data = MakeEcg(opts);
  SaxOptions sax = data.recommended;
  sax.paa_size = 6;

  std::printf("Synthetic ECG (60 beats, one PVC-like beat marked '!'):\n");
  std::printf("%s\n", RenderSeries(data.series, data.anomalies, {}).c_str());

  auto density = DetectDensityAnomalies(data.series, sax, {});
  if (!density.ok()) {
    std::printf("density detection failed\n");
    return 1;
  }
  std::printf("Sequitur grammar rule density (w=%zu, paa=%zu, a=%zu):\n",
              sax.window, sax.paa_size, sax.alphabet_size);
  std::printf("%s\n\n",
              RenderDensityShading(density->decomposition.density).c_str());

  // Panel 2 check: the density global minimum falls inside the annotated
  // anomaly (paper: "in perfect alignment with the ground truth").
  const Interval truth = data.anomalies[0];
  const auto& curve = density->decomposition.density;
  uint32_t min_inside = ~0u;
  uint32_t min_outside = ~0u;
  for (size_t i = sax.window; i + sax.window < curve.size(); ++i) {
    if (i >= truth.start && i < truth.end) {
      min_inside = std::min(min_inside, curve[i]);
    } else {
      min_outside = std::min(min_outside, curve[i]);
    }
  }
  std::printf("density minimum inside anomaly: %u, elsewhere: %u\n",
              min_inside, min_outside);
  bench::Check(min_inside < min_outside,
               "rule density global minimum identifies the true anomaly");

  // Panel 3: per-interval nearest-neighbor distances.
  RraOptions rra_opts;
  rra_opts.sax = sax;
  auto rra = FindRraDiscords(data.series, rra_opts);
  if (!rra.ok() || rra->result.discords.empty()) {
    std::printf("RRA failed\n");
    return 1;
  }
  const auto& intervals = rra->decomposition.intervals;
  std::vector<double> nn = IntervalNnDistances(data.series, intervals);
  // Render the NN-distance panel as a per-position profile.
  std::vector<double> profile(data.series.size(), 0.0);
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (std::isfinite(nn[i])) {
      profile[intervals[i].span.start] =
          std::max(profile[intervals[i].span.start], nn[i]);
    }
  }
  std::printf("\nNon-self NN distance of each rule interval (spikes):\n");
  std::printf("%s\n", RenderSeries(profile, {truth}, {}).c_str());

  const DiscordRecord& best = rra->result.discords[0];
  std::printf("best RRA discord: [%zu, %zu) dist=%.4f (truth [%zu, %zu))\n",
              best.position, best.position + best.length, best.distance,
              truth.start, truth.end);

  // Graphical version of the three panels (written when GVA_FIGURES_DIR is
  // set).
  SvgFigure figure("Figure 2: anomaly discovery in the ECG dataset");
  figure.AddSeriesPanel("ECG with annotated anomaly", data.series,
                        {truth});
  figure.AddDensityPanel("Sequitur rule density",
                         density->decomposition.density);
  std::vector<size_t> stem_positions;
  std::vector<double> stem_heights;
  for (size_t i = 0; i < intervals.size(); ++i) {
    stem_positions.push_back(intervals[i].span.start);
    stem_heights.push_back(nn[i]);
  }
  figure.AddStemPanel("NN distance per rule interval", stem_positions,
                      stem_heights, data.series.size());
  bench::MaybeWriteFigure(figure, "fig2_ecg");
  const Interval widened{truth.start >= sax.window ? truth.start - sax.window
                                                   : 0,
                         truth.end + sax.window};
  bench::Check(best.span().Overlaps(widened),
               "the RRA discord has the largest distance to its nearest "
               "non-self match at the true anomaly");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
