// Reproduces Figure 6: first- and second-order Hilbert space-filling curve
// approximations and the trajectory-to-cell-id conversion example — the
// trajectory in the right panel converts to the sequence
// {0,3,2,2,2,7,7,8,11,13,13,2,1,1} by mapping each recorded position to the
// enclosing Hilbert cell id.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hilbert/hilbert.h"

namespace gva {
namespace {

void PrintCurveGrid(const HilbertCurve& curve) {
  // y grows upward, matching the figure.
  for (size_t row = 0; row < curve.side(); ++row) {
    const uint64_t y = curve.side() - 1 - row;
    for (uint64_t x = 0; x < curve.side(); ++x) {
      std::printf("%4llu",
                  static_cast<unsigned long long>(curve.XyToIndex(x, y)));
    }
    std::printf("\n");
  }
}

int Run() {
  bench::Header("Figure 6: Hilbert curve approximations + trajectory "
                "conversion");

  HilbertCurve order1(1);
  HilbertCurve order2(2);
  std::printf("First order (2x2 grid, visit indices):\n");
  PrintCurveGrid(order1);
  std::printf("\nSecond order (4x4 grid):\n");
  PrintCurveGrid(order2);

  // Adjacency: the defining locality property.
  bool adjacent = true;
  for (uint64_t d = 1; d < order2.num_cells(); ++d) {
    uint64_t x0, y0, x1, y1;
    order2.IndexToXy(d - 1, &x0, &y0);
    order2.IndexToXy(d, &x1, &y1);
    const uint64_t manhattan = (x1 > x0 ? x1 - x0 : x0 - x1) +
                               (y1 > y0 ? y1 - y0 : y0 - y1);
    adjacent = adjacent && manhattan == 1;
  }
  bench::Check(adjacent,
               "consecutive visit-order cells always share a common edge");

  // The figure's example trajectory over the order-2 grid. Points are cell
  // centers (x, y) in grid coordinates; the expected id sequence is printed
  // in the caption.
  const std::vector<std::pair<uint64_t, uint64_t>> trajectory_cells{
      {0, 0}, {1, 0}, {1, 1}, {1, 1}, {1, 1}, {2, 1}, {2, 1},
      {2, 0}, {3, 1}, {3, 2}, {3, 2}, {1, 1}, {0, 1}, {0, 1}};
  std::printf("\nTrajectory cells -> Hilbert ids: ");
  std::vector<uint64_t> ids;
  for (const auto& [x, y] : trajectory_cells) {
    ids.push_back(order2.XyToIndex(x, y));
    std::printf("%llu ", static_cast<unsigned long long>(ids.back()));
  }
  std::printf("\n");

  // Structural checks on the sequence: it starts in cell 0, repeated
  // positions produce repeated ids (the redundancy numerosity reduction
  // exploits), and every id is within the 16-cell curve.
  bench::Check(ids.front() == 0, "trajectory starts at visit index 0");
  bench::Check(ids[2] == ids[3] && ids[3] == ids[4],
               "dwelling in one cell repeats the same id");
  bool in_range = true;
  for (uint64_t id : ids) {
    in_range = in_range && id < order2.num_cells();
  }
  bench::Check(in_range, "all ids lie on the order-2 curve");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
