// Micro-benchmarks for the pipeline stages (google-benchmark): SAX
// discretization, Sequitur induction, the rule density curve, and the
// distance kernel. The linear-complexity stages (Section 4.1 claims the
// whole rule-density technique is linear time and space) are swept over
// series length so the scaling is visible in the report.

#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "core/rule_density_detector.h"
#include "datasets/simple.h"
#include "discord/distance.h"
#include "grammar/rule_intervals.h"
#include "grammar/sequitur.h"
#include "sax/paa.h"
#include "sax/sax_transform.h"
#include "timeseries/znorm.h"
#include "util/rng.h"

namespace gva {
namespace {

// google-benchmark ranges are int64_t; the library API is size_t-typed.
size_t N(const benchmark::State& state) {
  return static_cast<size_t>(state.range(0));
}

SaxOptions DefaultSax() {
  SaxOptions sax;
  sax.window = 100;
  sax.paa_size = 5;
  sax.alphabet_size = 4;
  return sax;
}

void BM_ZNormalize(benchmark::State& state) {
  std::vector<double> window = MakeSine(N(state), 25.0, 0.1, 1);
  std::vector<double> out;
  for (auto _ : state) {
    ZNormalize(window, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZNormalize)->Arg(128)->Arg(1024)->Arg(8192);

void BM_Paa(benchmark::State& state) {
  std::vector<double> window = MakeSine(N(state), 25.0, 0.1, 2);
  std::vector<double> out;
  for (auto _ : state) {
    Paa(window, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Paa)->Arg(128)->Arg(1024)->Arg(8192);

void BM_SaxDiscretize(benchmark::State& state) {
  std::vector<double> series = MakeSine(N(state), 50.0, 0.05, 3);
  const SaxOptions sax = DefaultSax();
  for (auto _ : state) {
    auto records = Discretize(series, sax);
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SaxDiscretize)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_Sequitur(benchmark::State& state) {
  // Token stream with motif structure, the shape SAX words have.
  Rng rng(4);
  std::vector<int32_t> tokens;
  std::vector<int32_t> motif{1, 5, 2, 9, 2, 7};
  while (tokens.size() < N(state)) {
    if (rng.UniformDouble() < 0.7) {
      tokens.insert(tokens.end(), motif.begin(), motif.end());
    } else {
      tokens.push_back(static_cast<int32_t>(rng.UniformInt(64)));
    }
  }
  tokens.resize(N(state));
  for (auto _ : state) {
    auto grammar = InferGrammar(tokens);
    benchmark::DoNotOptimize(grammar);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Sequitur)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oN);

void BM_DensityCurve(benchmark::State& state) {
  LabeledSeries data = MakeSineWithAnomaly(N(state), 50.0, 0.05,
                                           N(state) / 2, 60, 5);
  auto decomposition = DecomposeSeries(data.series, DefaultSax()).value();
  for (auto _ : state) {
    auto density =
        RuleDensityCurve(decomposition.intervals, data.series.size());
    benchmark::DoNotOptimize(density.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DensityCurve)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18)
    ->Complexity(benchmark::oN);

void BM_FullDensityDetection(benchmark::State& state) {
  LabeledSeries data = MakeSineWithAnomaly(N(state), 50.0, 0.05,
                                           N(state) / 2, 60, 6);
  const SaxOptions sax = DefaultSax();
  for (auto _ : state) {
    auto detection = DetectDensityAnomalies(data.series, sax, {});
    benchmark::DoNotOptimize(detection);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullDensityDetection)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_DistanceKernel(benchmark::State& state) {
  std::vector<double> series = MakeSine(1 << 16, 100.0, 0.1, 7);
  SubsequenceDistance dist(series);
  Rng rng(8);
  const size_t len = N(state);
  for (auto _ : state) {
    const size_t p = rng.UniformInt(series.size() - len);
    const size_t q = rng.UniformInt(series.size() - len);
    benchmark::DoNotOptimize(dist.Distance(p, q, len));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(len));
}
BENCHMARK(BM_DistanceKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_DistanceKernelEarlyAbandon(benchmark::State& state) {
  std::vector<double> series = MakeSine(1 << 16, 100.0, 0.1, 7);
  SubsequenceDistance dist(series);
  Rng rng(9);
  const size_t len = N(state);
  for (auto _ : state) {
    const size_t p = rng.UniformInt(series.size() - len);
    const size_t q = rng.UniformInt(series.size() - len);
    benchmark::DoNotOptimize(dist.Distance(p, q, len, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(len));
}
BENCHMARK(BM_DistanceKernelEarlyAbandon)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace gva

BENCHMARK_MAIN();
