// Reproduces Figure 4: the detailed view of the RRA-ranked variable-length
// discords in the power demand data — each discord highlights a week whose
// typical weekday pattern is interrupted by a state holiday. For every
// discord we print the containing week, the offending day-of-week, and an
// ASCII comparison against a typical week.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/rra.h"
#include "datasets/power_demand.h"
#include "viz/ascii_plot.h"

namespace gva {
namespace {

const char* kDayNames[] = {"Monday",   "Tuesday", "Wednesday", "Thursday",
                           "Friday",   "Saturday", "Sunday"};

int Run() {
  bench::Header("Figure 4: detailed view of the power-demand discords");

  PowerDemandOptions opts;
  LabeledSeries data = MakePowerDemand(opts);
  const size_t day = opts.samples_per_day;
  const size_t week = 7 * day;

  RraOptions rra_opts;
  rra_opts.sax = data.recommended;
  rra_opts.top_k = 3;
  auto rra = FindRraDiscords(data.series, rra_opts);
  if (!rra.ok()) {
    std::printf("rra failed\n");
    return 1;
  }

  AsciiPlotOptions plot;
  plot.width = 84;  // 12 columns per day
  plot.height = 7;
  std::printf("Typical week (week 2):\n%s\n",
              RenderSeries(data.series.Subsequence(2 * week, week), {}, plot)
                  .c_str());

  size_t holiday_hits = 0;
  const char* kRanks[] = {"Best", "Second", "Third"};
  for (size_t i = 0; i < rra->result.discords.size() && i < 3; ++i) {
    const DiscordRecord& d = rra->result.discords[i];
    const size_t mid = d.position + d.length / 2;
    const size_t week_index = mid / week;
    // Which planted holiday (if any) does this discord cover?
    std::string holiday = "(none)";
    for (size_t h : opts.holiday_days) {
      Interval day_span{h * day, (h + 1) * day};
      if (d.span().Overlaps(day_span)) {
        holiday = std::string(kDayNames[h % 7]) + ", day " +
                  std::to_string(h) + " of the year";
        ++holiday_hits;
        break;
      }
    }
    std::printf("%s discord: [%zu, %zu) len=%zu dist=%.4f -> week %zu, "
                "holiday: %s\n",
                kRanks[i], d.position, d.position + d.length, d.length,
                d.distance, week_index, holiday.c_str());
    const size_t week_start = week_index * week;
    if (week_start + week <= data.series.size()) {
      const size_t hi_start =
          d.position > week_start ? d.position - week_start : 0;
      std::printf("%s\n",
                  RenderSeries(data.series.Subsequence(week_start, week),
                               {Interval{hi_start, hi_start + d.length}},
                               plot)
                      .c_str());
    }
  }

  bench::Check(holiday_hits == 3,
               "all three discords highlight weeks interrupted by state "
               "holidays");
  return bench::CheckExitCode();
}

}  // namespace
}  // namespace gva

int main() { return gva::Run(); }
