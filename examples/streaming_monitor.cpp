// Streaming scenario (paper Section 7, future work): samples arrive one at
// a time — telemetry from a live sensor — and the monitor re-reports the
// current anomaly picture every few hundred samples. Demonstrates (a) the
// incremental Sequitur core, (b) that a planted fault becomes visible in
// the report shortly after it streams past, and (c) the data-driven
// parameter suggestion used to configure the monitor.
//
//   ./build/examples/streaming_monitor

#include <cstdio>

#include "core/evaluate.h"
#include "core/parameter_profile.h"
#include "core/streaming.h"
#include "datasets/tek.h"
#include "viz/ascii_plot.h"

int main() {
  using namespace gva;

  TekOptions options;  // valve telemetry with one mid-plateau glitch
  options.num_cycles = 24;
  options.anomalous_cycles = {15};
  LabeledSeries data = MakeTek(options);
  const Interval truth = data.anomalies[0];
  std::printf("valve telemetry, %zu samples; fault planted at [%zu, %zu)\n",
              data.series.size(), truth.start, truth.end);

  // Pick discretization parameters from a calibration prefix (the first
  // few healthy cycles), as an operator would.
  const size_t calibration = 6 * options.cycle_length;
  auto suggested = SuggestParameters(
      std::span<const double>(data.series.values().data(), calibration));
  if (!suggested.ok()) {
    std::printf("parameter suggestion failed: %s\n",
                suggested.status().ToString().c_str());
    return 1;
  }
  std::printf("suggested parameters from the first %zu samples: window=%zu "
              "paa=%zu alphabet=%zu\n\n",
              calibration, suggested->window, suggested->paa_size,
              suggested->alphabet_size);

  StreamingOptions stream_options;
  stream_options.sax = *suggested;
  stream_options.density.threshold_fraction = 0.05;
  auto monitor = StreamingAnomalyMonitor::Create(stream_options);
  if (!monitor.ok()) {
    std::printf("monitor creation failed\n");
    return 1;
  }

  // Stream the data, reporting every two cycles.
  const size_t report_every = 2 * options.cycle_length;
  size_t first_detection = 0;
  for (size_t i = 0; i < data.series.size(); ++i) {
    monitor->Push(data.series[i]);
    if ((i + 1) % report_every != 0) {
      continue;
    }
    auto report = monitor->Report();
    if (!report.ok()) {
      // Only "not enough data yet" is expected this early in the stream;
      // anything else is a real failure and must not be swallowed.
      if (report.status().code() == StatusCode::kFailedPrecondition) {
        continue;
      }
      std::printf("report failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    bool fault_visible = false;
    for (const DensityAnomaly& a : report->detection.anomalies) {
      if (HitsAnyTruth(a.span, {truth}, stream_options.sax.window)) {
        fault_visible = true;
      }
    }
    std::printf("t=%6zu  tokens=%5zu  anomalies=%zu  fault visible: %s\n",
                i + 1, monitor->tokens_emitted(),
                report->detection.anomalies.size(),
                fault_visible ? "YES" : "no");
    if (fault_visible && first_detection == 0) {
      first_detection = i + 1;
    }
  }

  if (first_detection > 0) {
    std::printf("\nfault (ends at %zu) first reported at t=%zu — %zd "
                "samples after it completed\n",
                truth.end, first_detection,
                static_cast<ptrdiff_t>(first_detection) -
                    static_cast<ptrdiff_t>(truth.end));
  } else {
    std::printf("\nfault was not detected (tune the parameters?)\n");
  }
  return first_detection > 0 ? 0 : 1;
}
