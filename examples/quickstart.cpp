// Quickstart: the whole library in ~60 lines.
//
// Generates a noisy periodic signal with one planted anomaly, then finds it
// twice — with the linear-time rule-density detector and with the exact RRA
// discord search — and prints both results.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/simple.h"
#include "viz/ascii_plot.h"

int main() {
  using namespace gva;

  // A 2000-point sine with the oscillation flat-lining for 120 points.
  LabeledSeries data =
      MakeSineWithAnomaly(/*length=*/2000, /*period=*/100.0, /*noise=*/0.02,
                          /*anomaly_start=*/1000, /*anomaly_length=*/120,
                          /*seed=*/42);
  std::printf("input series (planted anomaly marked '!'):\n%s\n",
              RenderSeries(data.series, data.anomalies).c_str());

  // Discretization parameters: the window is only a seed size; reported
  // anomalies may be shorter or longer.
  SaxOptions sax;
  sax.window = 200;
  sax.paa_size = 4;
  sax.alphabet_size = 3;

  // 1) Rule-density detection: linear time, no distance computations.
  StatusOr<DensityDetection> density =
      DetectDensityAnomalies(data.series, sax, {});
  if (!density.ok()) {
    std::printf("density detection failed: %s\n",
                density.status().ToString().c_str());
    return 1;
  }
  std::printf("rule density curve (blank = algorithmically anomalous):\n%s\n",
              RenderDensityShading(density->decomposition.density).c_str());
  for (const DensityAnomaly& a : density->anomalies) {
    std::printf("density anomaly #%zu: [%zu, %zu), mean density %.2f\n",
                a.rank, a.span.start, a.span.end, a.mean_density);
  }

  // 2) RRA: exact variable-length discord discovery.
  RraOptions rra_options;
  rra_options.sax = sax;
  rra_options.top_k = 1;
  StatusOr<RraDetection> rra = FindRraDiscords(data.series, rra_options);
  if (!rra.ok()) {
    std::printf("RRA failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }
  for (const DiscordRecord& d : rra->result.discords) {
    std::printf("RRA discord: [%zu, %zu), length %zu, normalized distance "
                "%.4f (%llu distance calls)\n",
                d.position, d.position + d.length, d.length, d.distance,
                static_cast<unsigned long long>(rra->result.distance_calls));
  }
  std::printf("planted anomaly was [%zu, %zu)\n", data.anomalies[0].start,
              data.anomalies[0].end);
  return 0;
}
