// Spatial-trajectory scenario (paper Section 5.1, Figures 6-9): GPS commute
// trips are flattened to a scalar series through a Hilbert space-filling
// curve, then both detectors look for atypical trips. The planted anomalies
// are (a) a unique detour through otherwise unvisited space and (b) a trip
// travelled with a degraded GPS fix.
//
//   ./build/examples/trajectory_anomaly

#include <cstdio>
#include <vector>

#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/trajectory.h"
#include "hilbert/hilbert.h"
#include "viz/ascii_plot.h"

namespace {

// Renders the planar track on a character grid; points inside `mark` are
// drawn with '*'.
void PrintTrack(const std::vector<gva::GeoPoint>& points,
                const gva::Interval& mark) {
  constexpr size_t kW = 64;
  constexpr size_t kH = 24;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t x = std::min(kW - 1, static_cast<size_t>(points[i].x * kW));
    const size_t y = std::min(kH - 1, static_cast<size_t>(points[i].y * kH));
    char& cell = grid[kH - 1 - y][x];
    if (mark.Contains(i)) {
      cell = '*';
    } else if (cell == ' ') {
      cell = '.';
    }
  }
  for (const std::string& row : grid) {
    std::printf("%s\n", row.c_str());
  }
}

}  // namespace

int main() {
  using namespace gva;

  TrajectoryOptions options;  // 24 trips, detour on #12, fix loss on #18
  TrajectoryData data = MakeTrajectory(options);
  const LabeledSeries& labeled = data.labeled;

  std::printf("commute track (%zu GPS points, %zu trips). '.' = habitual "
              "routes:\n\n",
              data.points.size(), options.num_trips);
  PrintTrack(data.points, Interval{0, 0});

  std::printf("\nHilbert-transformed series (order %u curve):\n%s\n",
              options.hilbert_order,
              RenderSeries(labeled.series, labeled.anomalies).c_str());

  SaxOptions sax = labeled.recommended;

  // Rule-density: finds the algorithmically unique detour.
  DensityAnomalyOptions density_options;
  density_options.threshold_fraction = 0.05;
  auto density = DetectDensityAnomalies(labeled.series, sax, density_options);
  if (density.ok() && !density->anomalies.empty()) {
    const Interval top = density->anomalies[0].span;
    std::printf("density detector: lowest-density interval [%zu, %zu)\n",
                top.start, top.end);
    std::printf("the corresponding path segment ('*'):\n\n");
    PrintTrack(data.points, top);
  }

  // RRA: ranks whole atypical traversals by discordance.
  RraOptions rra_options;
  rra_options.sax = sax;
  rra_options.top_k = 3;
  auto rra = FindRraDiscords(labeled.series, rra_options);
  if (!rra.ok()) {
    std::printf("RRA failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRRA discords:\n");
  for (size_t i = 0; i < rra->result.discords.size(); ++i) {
    const DiscordRecord& d = rra->result.discords[i];
    const char* what = "other";
    if (d.span().Overlaps(labeled.anomalies[1])) {
      what = "degraded-GPS-fix trip";
    } else if (d.span().Overlaps(labeled.anomalies[0])) {
      what = "detour";
    }
    std::printf("  #%zu [%zu, %zu) len=%zu dist=%.4f — %s\n", i, d.position,
                d.position + d.length, d.length, d.distance, what);
  }
  if (!rra->result.discords.empty()) {
    std::printf("\nbest RRA discord's path segment ('*'):\n\n");
    PrintTrack(data.points, rra->result.discords[0].span());
  }
  return 0;
}
