// gva_cli — command-line front end for the library.
//
//   gva_cli density  <series.csv> [options]  rule-density anomaly discovery
//   gva_cli rra      <series.csv> [options]  RRA variable-length discords
//   gva_cli ensemble <series.csv> [options]  multi-config ensemble scoring
//   gva_cli profile  <series.csv> [options]  parameter-grid profiling
//   gva_cli stream   <series.csv|-> [options] streaming monitor replay
//
// The input may be a CSV path or one of the built-in synthetic datasets
// ("demo:ecg", "demo:power"), which makes the CLI runnable with no files.
// The stream command additionally accepts "-" to consume whitespace-
// separated samples from stdin (live ingestion: nothing is materialized,
// memory stays bounded by --horizon).
//
// Common options (--flag value and --flag=value are both accepted):
//   --column N      CSV column to read (default 0)
//   --window N      sliding window  (default: suggested from the data)
//   --paa N         PAA segments    (default: suggested)
//   --alphabet N    alphabet size   (default: suggested)
//   --top N         anomalies/discords to report (default 3)
//   --threshold F   density threshold fraction (default 0.05)
//   --approx        rra: paper's interval-aligned inner loop (no exact tail)
//   --threads N     rra/ensemble: worker threads (0 = all cores; default 1);
//                   results are identical for every value
//   --csv-out PATH  write the density curve next to the series as CSV
//
// Stream options:
//   --horizon N       eviction horizon in samples; reports cover the last
//                     [horizon, 2*horizon) samples and older state is
//                     dropped (0 = keep everything; default 0). Must be 0
//                     or >= window.
//   --report-every N  draw an incremental report every N samples (0 = only
//                     the final report; default 0). Reports print absolute
//                     stream positions. The `stream.*` counters (samples,
//                     tokens, evictions, reports) show under --metrics.
//
// Ensemble options (also reachable as `density --ensemble`):
//   --grid SPEC     configuration grid, e.g. --grid w:80,160,paa:4,8,a:3,6
//                   (groups: w/window, paa, a/alphabet; a missing group
//                   falls back to the resolved single value). Without
//                   --grid and without explicit --window/--paa/--alphabet,
//                   an automatic grid around the suggested window is used.
//   --no-share      disable substrate sharing (per-config pipelines; same
//                   results, used for benchmarking the shared path)
//
// Observability (see DESIGN.md §6 and §12):
//   --trace PATH    capture a Chrome trace-event JSON (chrome://tracing)
//   --metrics PATH  write the metrics-registry snapshot as JSON and print
//                   the per-stage timing summary
//   --telemetry-port N  serve live telemetry over HTTP on 127.0.0.1:N for
//                   the process lifetime (0 = ephemeral port, printed at
//                   startup): /metrics (Prometheus), /metrics.json,
//                   /healthz, /flightz (flight-recorder Chrome trace)
//   --quiet         suppress informational chatter (loaded/suggested/wrote
//                   lines and the metrics summary); result tables only
//
// Kernel dispatch (see DESIGN.md §11):
//   --backend NAME  force the kernel backend (scalar|avx2|neon|auto);
//                   default is the GVA_BACKEND environment variable, then
//                   auto-selection (fastest available). Search results are
//                   backend-independent up to floating-point rounding.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "core/parameter_profile.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "core/streaming.h"
#include "datasets/ecg.h"
#include "ensemble/ensemble.h"
#include "datasets/power_demand.h"
#include "obs/recorder.h"
#include "obs/session.h"
#include "obs/telemetry_server.h"
#include "timeseries/io.h"
#include "util/csv.h"
#include "viz/ascii_plot.h"
#include "viz/report.h"

namespace {

using namespace gva;

struct Args {
  std::string command;
  std::string csv_path;
  std::map<std::string, std::string> options;
  bool has_flag(const std::string& name) const {
    return options.count(name) > 0;
  }
  size_t get_size(const std::string& name, size_t fallback) const {
    auto it = options.find(name);
    return it == options.end()
               ? fallback
               : std::strtoul(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: gva_cli <density|rra|ensemble|profile|stream> "
               "<series.csv|demo:ecg|demo:power|-> "
               "[--window N --paa N --alphabet N --column N --top N "
               "--threshold F --approx --threads N --csv-out PATH "
               "--ensemble --grid SPEC --no-share "
               "--horizon N --report-every N "
               "--backend scalar|avx2|neon|auto "
               "--trace PATH --metrics PATH --telemetry-port N --quiet]\n");
  return 2;
}

bool IsBooleanFlag(const std::string& flag) {
  return flag == "approx" || flag == "quiet" || flag == "ensemble" ||
         flag == "no-share";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) {
    return false;
  }
  args->command = argv[1];
  args->csv_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return false;
    }
    flag = flag.substr(2);
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      // --flag=value spelling.
      const std::string value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      if (IsBooleanFlag(flag)) {
        return false;
      }
      args->options[flag] = value;
    } else if (IsBooleanFlag(flag)) {
      args->options[flag] = "1";
    } else if (i + 1 < argc) {
      args->options[flag] = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

/// Resolves the input argument: "demo:<name>" builds one of the synthetic
/// datasets in-process, anything else is read as a CSV path.
StatusOr<TimeSeries> LoadInput(const Args& args) {
  if (args.csv_path == "demo:ecg") {
    return MakeEcg().series;
  }
  if (args.csv_path == "demo:power") {
    return MakePowerDemand().series;
  }
  if (args.csv_path.rfind("demo:", 0) == 0) {
    return Status::NotFound("unknown demo dataset '" + args.csv_path +
                            "' (have demo:ecg, demo:power)");
  }
  return ReadTimeSeriesCsv(args.csv_path, args.get_size("column", 0));
}

/// Resolves the SAX options: explicit flags win; missing pieces come from
/// the data-driven suggestion.
StatusOr<SaxOptions> ResolveSax(const Args& args, const TimeSeries& series) {
  SaxOptions sax;
  const bool all_given = args.has_flag("window") && args.has_flag("paa") &&
                         args.has_flag("alphabet");
  if (!all_given) {
    StatusOr<SaxOptions> suggested = SuggestParameters(series);
    if (suggested.ok()) {
      sax = *suggested;
      if (!args.has_flag("quiet")) {
        std::printf("suggested parameters: window=%zu paa=%zu alphabet=%zu\n",
                    sax.window, sax.paa_size, sax.alphabet_size);
      }
    } else if (!args.has_flag("quiet")) {
      std::printf("parameter suggestion failed (%s); using defaults\n",
                  suggested.status().ToString().c_str());
    }
  }
  sax.window = args.get_size("window", sax.window);
  sax.paa_size = args.get_size("paa", sax.paa_size);
  sax.alphabet_size = args.get_size("alphabet", sax.alphabet_size);
  GVA_RETURN_IF_ERROR(sax.Validate());
  return sax;
}

int RunDensity(const Args& args, const TimeSeries& series) {
  StatusOr<SaxOptions> sax = ResolveSax(args, series);
  if (!sax.ok()) {
    std::fprintf(stderr, "%s\n", sax.status().ToString().c_str());
    return 1;
  }
  DensityAnomalyOptions options;
  options.threshold_fraction = args.get_double("threshold", 0.05);
  options.max_anomalies = args.get_size("top", 3);
  auto detection = DetectDensityAnomalies(series, *sax, options);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              RenderDensityShading(detection->decomposition.density).c_str());
  std::printf("%s", DensityAnomalyTable(*detection).c_str());
  if (args.has_flag("csv-out")) {
    std::vector<double> density(detection->decomposition.density.begin(),
                                detection->decomposition.density.end());
    Status written = WriteCsvColumns(args.options.at("csv-out"),
                                     {"value", "rule_density"},
                                     {series.values(), density});
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    if (!args.has_flag("quiet")) {
      std::printf("wrote %s\n", args.options.at("csv-out").c_str());
    }
  }
  return 0;
}

int RunRra(const Args& args, const TimeSeries& series) {
  StatusOr<SaxOptions> sax = ResolveSax(args, series);
  if (!sax.ok()) {
    std::fprintf(stderr, "%s\n", sax.status().ToString().c_str());
    return 1;
  }
  RraOptions options;
  options.sax = *sax;
  options.top_k = args.get_size("top", 3);
  options.exact_nearest_neighbor = !args.has_flag("approx");
  options.num_threads = args.get_size("threads", 1);
  auto detection = FindRraDiscords(series, options);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", DiscordTable(*detection).c_str());
  return 0;
}

/// Parses a --grid spec of the form `w:80,160,paa:4,8,a:3,6`. A comma
/// token containing ':' opens a new group (w/window, paa/p, a/alphabet);
/// the values after it belong to that group until the next key. Groups the
/// spec leaves out are filled from `fallback` so e.g. `--grid a:3,4,5`
/// sweeps only the alphabet. Returns false on a malformed spec.
bool ParseGridSpec(const std::string& spec, const SaxOptions& fallback,
                   std::vector<EnsembleConfig>* grid) {
  std::vector<size_t> windows;
  std::vector<size_t> paas;
  std::vector<size_t> alphabets;
  std::vector<size_t>* current = nullptr;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) {
      continue;
    }
    if (const size_t colon = token.find(':'); colon != std::string::npos) {
      const std::string key = token.substr(0, colon);
      if (key == "w" || key == "window") {
        current = &windows;
      } else if (key == "paa" || key == "p") {
        current = &paas;
      } else if (key == "a" || key == "alphabet") {
        current = &alphabets;
      } else {
        return false;
      }
      token = token.substr(colon + 1);
      if (token.empty()) {
        continue;
      }
    }
    if (current == nullptr) {
      return false;
    }
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || value == 0) {
      return false;
    }
    current->push_back(static_cast<size_t>(value));
  }
  if (windows.empty()) {
    windows.push_back(fallback.window);
  }
  if (paas.empty()) {
    paas.push_back(fallback.paa_size);
  }
  if (alphabets.empty()) {
    alphabets.push_back(fallback.alphabet_size);
  }
  *grid = MakeEnsembleGrid(windows, paas, alphabets);
  return true;
}

int RunEnsembleCommand(const Args& args, const TimeSeries& series) {
  const bool quiet = args.has_flag("quiet");
  EnsembleOptions options;
  options.anomaly.threshold_fraction = args.get_double("threshold", 0.05);
  options.anomaly.max_anomalies = args.get_size("top", 3);
  options.num_threads = args.get_size("threads", 1);
  options.share_substrate = !args.has_flag("no-share");

  const bool single_config_flags = args.has_flag("window") ||
                                   args.has_flag("paa") ||
                                   args.has_flag("alphabet");
  if (args.has_flag("grid")) {
    StatusOr<SaxOptions> fallback = ResolveSax(args, series);
    if (!fallback.ok()) {
      std::fprintf(stderr, "%s\n", fallback.status().ToString().c_str());
      return 1;
    }
    if (!ParseGridSpec(args.options.at("grid"), *fallback,
                       &options.configs)) {
      std::fprintf(stderr,
                   "malformed --grid spec '%s' (expected e.g. "
                   "w:80,160,paa:4,8,a:3,6)\n",
                   args.options.at("grid").c_str());
      return 1;
    }
  } else if (single_config_flags) {
    StatusOr<SaxOptions> sax = ResolveSax(args, series);
    if (!sax.ok()) {
      std::fprintf(stderr, "%s\n", sax.status().ToString().c_str());
      return 1;
    }
    options.configs.push_back(
        EnsembleConfig{sax->window, sax->paa_size, sax->alphabet_size});
  }
  // else: leave configs empty -> AutoEnsembleGrid inside RunEnsemble.

  auto detection = RunEnsemble(series, options);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::vector<Interval> highlights;
    for (const EnsembleAnomaly& a : detection->anomalies) {
      highlights.push_back(a.span);
    }
    std::printf("%s\n", RenderSeries(series, highlights).c_str());
    std::printf("%s\n", EnsembleConfigTable(*detection).c_str());
  }
  std::printf("%s", EnsembleAnomalyTable(*detection).c_str());
  if (args.has_flag("csv-out")) {
    Status written =
        WriteCsvColumns(args.options.at("csv-out"),
                        {"value", "ensemble_score"},
                        {series.values(), detection->score});
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("wrote %s\n", args.options.at("csv-out").c_str());
    }
  }
  return 0;
}

/// Prints one streaming report. Anomaly positions are translated from
/// suffix-relative to absolute stream coordinates.
void PrintStreamReport(const StreamingReport& report, size_t samples_seen,
                       size_t tokens, size_t evicted) {
  std::printf("t=%zu  suffix=[%zu, %zu)  tokens=%zu  evicted=%zu  "
              "anomalies=%zu\n",
              samples_seen, report.suffix_start,
              report.suffix_start + report.suffix_length, tokens, evicted,
              report.detection.anomalies.size());
  for (const DensityAnomaly& a : report.detection.anomalies) {
    std::printf("  #%zu  [%zu, %zu)  min_density=%u  mean_density=%.2f\n",
                a.rank, report.suffix_start + a.span.start,
                report.suffix_start + a.span.end, a.min_density,
                a.mean_density);
  }
}

int RunStream(const Args& args) {
  const bool quiet = args.has_flag("quiet");
  const bool from_stdin = args.csv_path == "-";

  std::optional<TimeSeries> series;
  StreamingOptions options;
  if (from_stdin) {
    // No data to suggest parameters from: flags with library defaults.
    options.sax.window = args.get_size("window", options.sax.window);
    options.sax.paa_size = args.get_size("paa", options.sax.paa_size);
    options.sax.alphabet_size =
        args.get_size("alphabet", options.sax.alphabet_size);
    if (!quiet) {
      std::printf("streaming from stdin: window=%zu paa=%zu alphabet=%zu\n",
                  options.sax.window, options.sax.paa_size,
                  options.sax.alphabet_size);
    }
  } else {
    StatusOr<TimeSeries> loaded = LoadInput(args);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", args.csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    series = std::move(*loaded);
    if (!quiet) {
      std::printf("replaying %zu points from %s\n", series->size(),
                  args.csv_path.c_str());
    }
    StatusOr<SaxOptions> sax = ResolveSax(args, *series);
    if (!sax.ok()) {
      std::fprintf(stderr, "%s\n", sax.status().ToString().c_str());
      return 1;
    }
    options.sax = *sax;
  }
  options.density.threshold_fraction = args.get_double("threshold", 0.05);
  options.density.max_anomalies = args.get_size("top", 3);
  options.horizon = args.get_size("horizon", 0);

  auto monitor = StreamingAnomalyMonitor::Create(options);
  if (!monitor.ok()) {
    std::fprintf(stderr, "%s\n", monitor.status().ToString().c_str());
    return 1;
  }

  const size_t report_every = args.get_size("report-every", 0);

  // Report latency is measured out here, not inside the monitor: the
  // streaming core is clock-free by policy (determinism lint), while the
  // CLI is where wall time is an honest health signal. A telemetry scrape
  // mid-run sees the last latency as a gauge and the distribution as a
  // base-2 histogram.
  obs::Gauge& last_report_us = obs::GlobalMetrics().gauge(
      "stream.last_report.us");
  obs::Histogram& report_latency_us = obs::GlobalMetrics().histogram(
      "stream.report.latency.us");
  auto timed_report = [&]() {
    const auto start = std::chrono::steady_clock::now();
    auto report = monitor->Report();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    last_report_us.Set(static_cast<int64_t>(us));
    report_latency_us.Record(static_cast<double>(us));
    return report;
  };

  bool failed = false;
  auto feed = [&](double value) -> bool {  // false stops the stream
    monitor->Push(value);
    if (report_every == 0 || monitor->samples_seen() % report_every != 0) {
      return true;
    }
    auto report = timed_report();
    if (!report.ok()) {
      // "Not enough data yet" is expected near the stream head; anything
      // else is a real failure.
      if (report.status().code() == StatusCode::kFailedPrecondition) {
        return true;
      }
      std::fprintf(stderr, "report failed: %s\n",
                   report.status().ToString().c_str());
      failed = true;
      return false;
    }
    PrintStreamReport(*report, monitor->samples_seen(),
                      monitor->tokens_emitted(),
                      monitor->generations_evicted());
    return true;
  };

  if (from_stdin) {
    double value = 0.0;
    while (std::scanf("%lf", &value) == 1) {
      if (!feed(value)) {
        break;
      }
    }
  } else {
    for (size_t i = 0; i < series->size(); ++i) {
      if (!feed((*series)[i])) {
        break;
      }
    }
  }
  if (failed) {
    return 1;
  }

  auto final_report = timed_report();
  if (!final_report.ok()) {
    std::fprintf(stderr, "final report failed: %s\n",
                 final_report.status().ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("--- final report ---\n");
  }
  PrintStreamReport(*final_report, monitor->samples_seen(),
                    monitor->tokens_emitted(),
                    monitor->generations_evicted());
  return 0;
}

int RunProfile(const Args& args, const TimeSeries& series) {
  (void)args;
  auto profiles = SweepParameterGrid(series, {});
  if (!profiles.ok()) {
    std::fprintf(stderr, "%s\n", profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("%-8s %-5s %-9s %9s %8s %8s %13s %8s\n", "window", "paa",
              "alphabet", "tokens", "rules", "grammar", "approx.error",
              "score");
  for (const GrammarProfile& p : *profiles) {
    std::printf("%-8zu %-5zu %-9zu %9zu %8zu %8zu %13.4f %8.4f\n",
                p.sax.window, p.sax.paa_size, p.sax.alphabet_size, p.tokens,
                p.rules, p.grammar_size, p.approximation_error, p.score);
  }
  auto suggested = SuggestParameters(series);
  if (suggested.ok()) {
    std::printf("\nsuggestion: --window %zu --paa %zu --alphabet %zu\n",
                suggested->window, suggested->paa_size,
                suggested->alphabet_size);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }
  const bool quiet = args.has_flag("quiet");

  // Backend selection happens before any oracle is constructed; the flag
  // wins over the GVA_BACKEND environment variable.
  if (args.has_flag("backend")) {
    const Status status = backend::SetActiveBackend(args.options.at("backend"));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
  }
  if (!quiet) {
    std::printf("backend: %s\n", backend::ActiveBackend().name);
  }

  // Always-on post-mortem: a fatal signal dumps the span flight recorder
  // to ./gva_flight.json before the process dies.
  obs::InstallFlightSignalHandler();

  if (args.has_flag("telemetry-port")) {
    obs::TelemetryServer::Options telemetry;
    telemetry.port =
        static_cast<uint16_t>(args.get_size("telemetry-port", 0));
    const Status status = obs::StartGlobalTelemetry(telemetry);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
    if (!quiet) {
      std::printf("telemetry: http://127.0.0.1:%u/metrics\n",
                  static_cast<unsigned>(obs::GlobalTelemetry()->port()));
    }
  }

  // The capture session spans input loading too, so I/O shows in the trace.
  std::optional<obs::ObsSession> session;
  if (args.has_flag("trace") || args.has_flag("metrics")) {
    obs::ObsSession::Options obs_options;
    if (args.has_flag("trace")) {
      obs_options.trace_path = args.options.at("trace");
    }
    if (args.has_flag("metrics")) {
      obs_options.metrics_path = args.options.at("metrics");
    }
    obs_options.announce = !quiet;
    session.emplace(std::move(obs_options));
    // The session constructor reset every gauge; restore the selection
    // record so the metrics export names the backend that ran.
    backend::AnnounceActiveBackend();
  }

  // Stream handles its own input (it accepts "-" for stdin, which LoadInput
  // cannot), so dispatch before the batch loading path.
  if (args.command == "stream") {
    int exit_code = RunStream(args);
    if (session.has_value() && session->metrics() && !quiet) {
      std::printf("\n--- per-stage metrics ---\n%s",
                  MetricsSummaryTable(obs::GlobalMetrics()).c_str());
    }
    return exit_code;
  }

  StatusOr<TimeSeries> series = LoadInput(args);
  if (!series.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", args.csv_path.c_str(),
                 series.status().ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("loaded %zu points from %s\n", series->size(),
                args.csv_path.c_str());
  }

  int exit_code = 1;
  if (args.command == "ensemble" ||
      (args.command == "density" && args.has_flag("ensemble"))) {
    exit_code = RunEnsembleCommand(args, *series);
  } else if (args.command == "density") {
    exit_code = RunDensity(args, *series);
  } else if (args.command == "rra") {
    exit_code = RunRra(args, *series);
  } else if (args.command == "profile") {
    exit_code = RunProfile(args, *series);
  } else {
    return Usage();
  }

  if (session.has_value() && session->metrics() && !quiet) {
    std::printf("\n--- per-stage metrics ---\n%s",
                MetricsSummaryTable(obs::GlobalMetrics()).c_str());
  }
  return exit_code;
}
