// gva_cli — command-line front end for the library.
//
//   gva_cli density <series.csv> [options]   rule-density anomaly discovery
//   gva_cli rra     <series.csv> [options]   RRA variable-length discords
//   gva_cli profile <series.csv> [options]   parameter-grid profiling
//
// Common options:
//   --column N      CSV column to read (default 0)
//   --window N      sliding window  (default: suggested from the data)
//   --paa N         PAA segments    (default: suggested)
//   --alphabet N    alphabet size   (default: suggested)
//   --top N         anomalies/discords to report (default 3)
//   --threshold F   density threshold fraction (default 0.05)
//   --approx        rra: paper's interval-aligned inner loop (no exact tail)
//   --threads N     rra: search threads (0 = all cores; default 1);
//                   discords are identical for every value
//   --csv-out PATH  write the density curve next to the series as CSV

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/parameter_profile.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "timeseries/io.h"
#include "util/csv.h"
#include "viz/ascii_plot.h"
#include "viz/report.h"

namespace {

using namespace gva;

struct Args {
  std::string command;
  std::string csv_path;
  std::map<std::string, std::string> options;
  bool has_flag(const std::string& name) const {
    return options.count(name) > 0;
  }
  size_t get_size(const std::string& name, size_t fallback) const {
    auto it = options.find(name);
    return it == options.end()
               ? fallback
               : std::strtoul(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: gva_cli <density|rra|profile> <series.csv> "
               "[--window N --paa N --alphabet N --column N --top N "
               "--threshold F --approx --threads N --csv-out PATH]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) {
    return false;
  }
  args->command = argv[1];
  args->csv_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return false;
    }
    flag = flag.substr(2);
    if (flag == "approx") {  // boolean flags
      args->options[flag] = "1";
    } else if (i + 1 < argc) {
      args->options[flag] = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

/// Resolves the SAX options: explicit flags win; missing pieces come from
/// the data-driven suggestion.
StatusOr<SaxOptions> ResolveSax(const Args& args, const TimeSeries& series) {
  SaxOptions sax;
  const bool all_given = args.has_flag("window") && args.has_flag("paa") &&
                         args.has_flag("alphabet");
  if (!all_given) {
    StatusOr<SaxOptions> suggested = SuggestParameters(series);
    if (suggested.ok()) {
      sax = *suggested;
      std::printf("suggested parameters: window=%zu paa=%zu alphabet=%zu\n",
                  sax.window, sax.paa_size, sax.alphabet_size);
    } else if (!all_given) {
      std::printf("parameter suggestion failed (%s); using defaults\n",
                  suggested.status().ToString().c_str());
    }
  }
  sax.window = args.get_size("window", sax.window);
  sax.paa_size = args.get_size("paa", sax.paa_size);
  sax.alphabet_size = args.get_size("alphabet", sax.alphabet_size);
  GVA_RETURN_IF_ERROR(sax.Validate());
  return sax;
}

int RunDensity(const Args& args, const TimeSeries& series) {
  StatusOr<SaxOptions> sax = ResolveSax(args, series);
  if (!sax.ok()) {
    std::fprintf(stderr, "%s\n", sax.status().ToString().c_str());
    return 1;
  }
  DensityAnomalyOptions options;
  options.threshold_fraction = args.get_double("threshold", 0.05);
  options.max_anomalies = args.get_size("top", 3);
  auto detection = DetectDensityAnomalies(series, *sax, options);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              RenderDensityShading(detection->decomposition.density).c_str());
  std::printf("%s", DensityAnomalyTable(*detection).c_str());
  if (args.has_flag("csv-out")) {
    std::vector<double> density(detection->decomposition.density.begin(),
                                detection->decomposition.density.end());
    Status written = WriteCsvColumns(args.options.at("csv-out"),
                                     {"value", "rule_density"},
                                     {series.values(), density});
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.options.at("csv-out").c_str());
  }
  return 0;
}

int RunRra(const Args& args, const TimeSeries& series) {
  StatusOr<SaxOptions> sax = ResolveSax(args, series);
  if (!sax.ok()) {
    std::fprintf(stderr, "%s\n", sax.status().ToString().c_str());
    return 1;
  }
  RraOptions options;
  options.sax = *sax;
  options.top_k = args.get_size("top", 3);
  options.exact_nearest_neighbor = !args.has_flag("approx");
  options.num_threads = args.get_size("threads", 1);
  auto detection = FindRraDiscords(series, options);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", DiscordTable(*detection).c_str());
  return 0;
}

int RunProfile(const Args& args, const TimeSeries& series) {
  (void)args;
  auto profiles = SweepParameterGrid(series, {});
  if (!profiles.ok()) {
    std::fprintf(stderr, "%s\n", profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("%-8s %-5s %-9s %9s %8s %8s %13s %8s\n", "window", "paa",
              "alphabet", "tokens", "rules", "grammar", "approx.error",
              "score");
  for (const GrammarProfile& p : *profiles) {
    std::printf("%-8zu %-5zu %-9zu %9zu %8zu %8zu %13.4f %8.4f\n",
                p.sax.window, p.sax.paa_size, p.sax.alphabet_size, p.tokens,
                p.rules, p.grammar_size, p.approximation_error, p.score);
  }
  auto suggested = SuggestParameters(series);
  if (suggested.ok()) {
    std::printf("\nsuggestion: --window %zu --paa %zu --alphabet %zu\n",
                suggested->window, suggested->paa_size,
                suggested->alphabet_size);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }
  StatusOr<TimeSeries> series =
      ReadTimeSeriesCsv(args.csv_path, args.get_size("column", 0));
  if (!series.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", args.csv_path.c_str(),
                 series.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu points from %s\n", series->size(),
              args.csv_path.c_str());

  if (args.command == "density") {
    return RunDensity(args, *series);
  }
  if (args.command == "rra") {
    return RunRra(args, *series);
  }
  if (args.command == "profile") {
    return RunProfile(args, *series);
  }
  return Usage();
}
