// Industry scenario (paper Figures 3-4): a year of facility power demand in
// which three weekdays behave like weekend days (state holidays). The
// detectors are given a one-week seed window and no hint about how many
// anomalies exist or how long they are.
//
//   ./build/examples/power_demand

#include <cstdio>

#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/power_demand.h"
#include "viz/ascii_plot.h"

int main() {
  using namespace gva;

  PowerDemandOptions options;  // 52 weeks, 96 readings/day, 3 holidays
  LabeledSeries data = MakePowerDemand(options);
  const size_t day = options.samples_per_day;

  static const char* kDayNames[] = {"Monday",   "Tuesday",  "Wednesday",
                                    "Thursday", "Friday",   "Saturday",
                                    "Sunday"};
  std::printf("one year of power demand (%zu points). Planted holidays:\n",
              data.series.size());
  for (size_t h : options.holiday_days) {
    std::printf("  day %zu (%s of week %zu)\n", h, kDayNames[h % 7], h / 7);
  }
  std::printf("\n%s\n", RenderSeries(data.series, data.anomalies).c_str());

  SaxOptions sax = data.recommended;  // one-week window

  RraOptions rra_options;
  rra_options.sax = sax;
  rra_options.top_k = 3;
  StatusOr<RraDetection> rra = FindRraDiscords(data.series, rra_options);
  if (!rra.ok()) {
    std::printf("RRA failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }

  std::printf("RRA found %zu discords (%llu distance calls):\n",
              rra->result.discords.size(),
              static_cast<unsigned long long>(rra->result.distance_calls));
  for (size_t i = 0; i < rra->result.discords.size(); ++i) {
    const DiscordRecord& d = rra->result.discords[i];
    const size_t mid_day = (d.position + d.length / 2) / day;
    std::printf("  #%zu [%zu, %zu) len=%zu dist=%.4f — around %s, week %zu\n",
                i, d.position, d.position + d.length, d.length, d.distance,
                kDayNames[mid_day % 7], mid_day / 7);
  }

  // Zoom into the week of the best discord.
  const DiscordRecord& best = rra->result.discords[0];
  const size_t week = 7 * day;
  const size_t week_start = (best.position / week) * week;
  if (week_start + week <= data.series.size()) {
    AsciiPlotOptions plot;
    plot.width = 84;
    plot.height = 8;
    const size_t hi =
        best.position > week_start ? best.position - week_start : 0;
    std::printf("\nweek containing the best discord:\n%s\n",
                RenderSeries(data.series.Subsequence(week_start, week),
                             {Interval{hi, hi + best.length}}, plot)
                    .c_str());
  }
  return 0;
}
