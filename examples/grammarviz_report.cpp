// GrammarViz-style analysis report (paper Figures 11-12), batch form: reads
// a univariate CSV time series (or generates the video demo data when no
// path is given), runs the full grammar decomposition and both detectors,
// and prints the panes of the GrammarViz 2.0 GUI as text — the grammar,
// per-rule statistics, the density shading, and the ranked discord table.
//
//   ./build/examples/grammarviz_report [series.csv [window paa alphabet]]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/motif.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/video.h"
#include "grammar/grammar_printer.h"
#include "timeseries/io.h"
#include "viz/ascii_plot.h"
#include "viz/report.h"

int main(int argc, char** argv) {
  using namespace gva;

  TimeSeries series;
  SaxOptions sax;
  if (argc > 1) {
    StatusOr<TimeSeries> loaded = ReadTimeSeriesCsv(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    series = std::move(loaded).value();
    sax.window = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
    sax.paa_size = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 5;
    sax.alphabet_size = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 4;
  } else {
    VideoOptions options;
    options.num_cycles = 26;
    options.anomalous_cycles = {8, 17};
    LabeledSeries demo = MakeVideo(options);
    series = demo.series;
    sax = demo.recommended;
    std::printf("(no CSV given — using the synthetic video demo dataset)\n");
  }

  std::printf("series: %s, %zu points; SAX window=%zu paa=%zu alphabet=%zu\n\n",
              series.name().c_str(), series.size(), sax.window, sax.paa_size,
              sax.alphabet_size);
  std::printf("%s\n", RenderSeries(series).c_str());

  RraOptions rra_options;
  rra_options.sax = sax;
  rra_options.top_k = 5;
  StatusOr<RraDetection> rra = FindRraDiscords(series, rra_options);
  if (!rra.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 rra.status().ToString().c_str());
    return 1;
  }
  const GrammarDecomposition& decomposition = rra->decomposition;

  std::printf("--- grammar (first 15 rules) "
              "-------------------------------------\n");
  const size_t rules = decomposition.grammar.grammar.size();
  for (size_t r = 0; r < rules && r < 15; ++r) {
    std::printf("R%-3zu -> %s\n", r,
                RuleRhsToString(decomposition.grammar, r).c_str());
  }
  if (rules > 15) {
    std::printf("... (%zu more rules)\n", rules - 15);
  }

  std::printf("\n--- rule statistics "
              "--------------------------------------------\n%s",
              RuleStatsTable(decomposition, 12).c_str());

  std::printf("\n--- rule density shading (white = candidate anomaly) "
              "-------\n%s\n",
              RenderDensityShading(decomposition.density).c_str());

  std::printf("\n--- GrammarViz anomalies (ranked discords) "
              "-----------------\n%s",
              DiscordTable(*rra).c_str());

  // The inverse view: the most recurrent variable-length patterns.
  MotifOptions motif_options;
  motif_options.sax = sax;
  motif_options.max_motifs = 5;
  StatusOr<MotifDetection> motifs = FindMotifs(series, motif_options);
  if (motifs.ok() && !motifs->motifs.empty()) {
    std::printf("\n--- motifs (most recurrent patterns) "
                "------------------------\n");
    std::printf("%-5s %-6s %-6s %-12s %s\n", "Rank", "Rule", "Freq",
                "Len(min-max)", "RHS");
    for (const Motif& m : motifs->motifs) {
      std::printf("%-5zu R%-5d %-6zu %zu-%-10zu %s\n", m.rank, m.rule,
                  m.frequency, m.min_length, m.max_length, m.rhs.c_str());
    }
  }
  return 0;
}
