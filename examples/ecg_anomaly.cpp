// Health-care scenario (paper Figure 2): find one subtly abnormal heartbeat
// in an ECG strip without telling the detector how long a heartbeat is.
//
// The example walks through the full decomposition so the intermediate
// artifacts (SAX words, grammar, rule intervals, density curve) are visible,
// then runs both detectors and compares them against the annotation.
//
//   ./build/examples/ecg_anomaly

#include <cstdio>

#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "grammar/grammar_printer.h"
#include "viz/ascii_plot.h"
#include "viz/report.h"

int main() {
  using namespace gva;

  EcgOptions options;
  options.num_beats = 60;
  options.anomalous_beats = {35};  // one PVC-like beat
  LabeledSeries data = MakeEcg(options);
  const Interval truth = data.anomalies[0];

  std::printf("synthetic ECG, %zu points, annotated anomaly [%zu, %zu):\n%s\n",
              data.series.size(), truth.start, truth.end,
              RenderSeries(data.series, data.anomalies).c_str());

  SaxOptions sax = data.recommended;  // window = one beat, paa 4, alphabet 4
  sax.paa_size = 6;

  // --- the grammar decomposition, step by step ---------------------------
  StatusOr<GrammarDecomposition> decomposition =
      DecomposeSeries(data.series, sax);
  if (!decomposition.ok()) {
    std::printf("decomposition failed: %s\n",
                decomposition.status().ToString().c_str());
    return 1;
  }
  std::printf("SAX words after numerosity reduction: %zu (from %zu windows)\n",
              decomposition->records.size(),
              data.series.size() - sax.window + 1);
  std::printf("Sequitur rules: %zu; rule intervals: %zu\n",
              decomposition->grammar.grammar.size(),
              decomposition->intervals.size());
  std::printf("\nfirst rules of the grammar:\n");
  const size_t show =
      decomposition->grammar.grammar.size() < 6
          ? decomposition->grammar.grammar.size()
          : 6;
  for (size_t r = 0; r < show; ++r) {
    std::printf("  R%zu -> %s\n", r,
                RuleRhsToString(decomposition->grammar, r).c_str());
  }

  std::printf("\nrule density curve:\n%s\n\n",
              RenderDensityShading(decomposition->density).c_str());

  // --- detector 1: rule density ------------------------------------------
  DensityAnomalyOptions density_options;
  StatusOr<DensityDetection> density =
      DetectDensityAnomalies(data.series, sax, density_options);
  if (density.ok() && !density->anomalies.empty()) {
    const DensityAnomaly& top = density->anomalies[0];
    std::printf("density detector: top anomaly [%zu, %zu)  %s\n",
                top.span.start, top.span.end,
                HitsAnyTruth(top.span, data.anomalies, sax.window)
                    ? "(matches annotation)"
                    : "(MISSES annotation)");
  }

  // --- detector 2: RRA -----------------------------------------------------
  RraOptions rra_options;
  rra_options.sax = sax;
  rra_options.top_k = 3;
  StatusOr<RraDetection> rra = FindRraDiscords(data.series, rra_options);
  if (!rra.ok()) {
    std::printf("RRA failed: %s\n", rra.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRRA ranked discords:\n%s", DiscordTable(*rra).c_str());
  const DiscordRecord& best = rra->result.discords[0];
  std::printf("best discord %s the annotated beat\n",
              HitsAnyTruth(best.span(), data.anomalies, sax.window)
                  ? "matches"
                  : "does NOT match");
  return 0;
}
