// Golden regression suite: the top anomaly intervals for the two built-in
// demo datasets, under a fixed single configuration and under an ensemble
// grid, pinned to the values the engine produces today.
//
// Comparator and tolerance: intervals are compared per rank by Jaccard
// overlap >= 0.7 (and the interval count exactly). The ensemble score is
// bit-for-bit deterministic — thread count, config order, and substrate
// sharing provably cannot move these intervals — so the slack is NOT for
// run-to-run noise. It absorbs small boundary drift from *intentional*
// numeric changes (e.g. a different normalization epsilon or a retuned
// dataset generator) while still failing loudly when an anomaly moves,
// changes rank, or disappears. If a deliberate algorithm change shifts an
// interval beyond the slack, rerun the binaries and update the constants
// here — the git diff of the goldens then documents the behavior change.

#include <gtest/gtest.h>

#include <vector>

#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "ensemble/ensemble.h"

namespace gva {
namespace {

constexpr double kMinJaccard = 0.7;

void ExpectGoldenIntervals(const std::vector<Interval>& actual,
                           const std::vector<Interval>& golden) {
  ASSERT_EQ(actual.size(), golden.size());
  for (size_t rank = 0; rank < golden.size(); ++rank) {
    EXPECT_GE(actual[rank].Jaccard(golden[rank]), kMinJaccard)
        << "rank " << rank << ": got " << actual[rank] << ", golden "
        << golden[rank];
  }
}

bool OverlapsAnyLabel(const Interval& span, const LabeledSeries& data) {
  for (const Interval& truth : data.anomalies) {
    if (span.Overlaps(truth)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// demo:ecg — one anomalous beat planted at beat 40 (samples ~4800-4920).

TEST(GoldenEcg, FixedConfigDensityDetector) {
  const LabeledSeries data = MakeEcg();
  SaxOptions sax;
  sax.window = 120;
  sax.paa_size = 4;
  sax.alphabet_size = 4;
  DensityAnomalyOptions options;
  options.threshold_fraction = 0.05;
  options.max_anomalies = 3;
  const auto detection = DetectDensityAnomalies(data.series, sax, options);
  ASSERT_TRUE(detection.ok()) << detection.status();

  std::vector<Interval> actual;
  for (const DensityAnomaly& a : detection->anomalies) {
    actual.push_back(a.span);
  }
  ExpectGoldenIntervals(actual, {Interval{4848, 4890}});
  EXPECT_TRUE(OverlapsAnyLabel(actual[0], data));
}

TEST(GoldenEcg, EnsembleGrid) {
  const LabeledSeries data = MakeEcg();
  EnsembleOptions options;
  options.configs = MakeEnsembleGrid({80, 160}, {4, 8}, {3, 6});
  options.anomaly.threshold_fraction = 0.05;
  options.anomaly.max_anomalies = 3;
  const auto detection = RunEnsemble(data.series, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->configs_used, 8u);

  std::vector<Interval> actual;
  for (const EnsembleAnomaly& a : detection->anomalies) {
    actual.push_back(a.span);
  }
  ExpectGoldenIntervals(actual,
                        {Interval{4830, 4903}, Interval{4827, 4829}});
  // The headline regression: the ensemble's top interval must keep hitting
  // the planted anomalous beat.
  EXPECT_TRUE(OverlapsAnyLabel(actual[0], data));
}

// ---------------------------------------------------------------------------
// demo:power — weekday-profile year with holidays at days 121, 126, 129
// (96 samples per day; day 129 spans [12384, 12480)).

TEST(GoldenPower, FixedConfigDensityDetector) {
  const LabeledSeries data = MakePowerDemand();
  SaxOptions sax;
  sax.window = 96;
  sax.paa_size = 4;
  sax.alphabet_size = 4;
  DensityAnomalyOptions options;
  options.threshold_fraction = 0.05;
  options.max_anomalies = 3;
  const auto detection = DetectDensityAnomalies(data.series, sax, options);
  ASSERT_TRUE(detection.ok()) << detection.status();

  std::vector<Interval> actual;
  for (const DensityAnomaly& a : detection->anomalies) {
    actual.push_back(a.span);
  }
  // The day-length single config ranks two low-density troughs elsewhere in
  // the year — a known weakness of one fixed parameter set on this signal
  // (the ensemble below does better); pinned as-is for regression.
  ExpectGoldenIntervals(actual,
                        {Interval{26704, 26714}, Interval{34293, 34295}});
}

TEST(GoldenPower, EnsembleGrid) {
  const LabeledSeries data = MakePowerDemand();
  EnsembleOptions options;
  options.configs = MakeEnsembleGrid({96, 192, 288}, {4, 6}, {3, 4, 5});
  options.anomaly.threshold_fraction = 0.05;
  options.anomaly.max_anomalies = 3;
  const auto detection = RunEnsemble(data.series, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->configs_used, 18u);

  std::vector<Interval> actual;
  for (const EnsembleAnomaly& a : detection->anomalies) {
    actual.push_back(a.span);
  }
  ExpectGoldenIntervals(actual, {Interval{12507, 12531},
                                 Interval{12431, 12449},
                                 Interval{12536, 12541}});
  // All three intervals sit in the holiday-129 neighborhood; rank 1 lands
  // inside the labeled day itself.
  EXPECT_TRUE(OverlapsAnyLabel(actual[1], data));
}

}  // namespace
}  // namespace gva
