// Property suite for the ensemble engine. The engine's contract is built
// around three invariances — single-config transparency, config-order
// permutation invariance, and substrate/thread-count independence — and
// every one of them is bit-for-bit, so the tests compare with == and not
// tolerances.

#include "ensemble/ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"

namespace gva {
namespace {

LabeledSeries TestSeries() {
  return MakeSineWithAnomaly(3000, 120.0, 0.05, 1500, 100, 13);
}

std::vector<EnsembleConfig> TestGrid() {
  return MakeEnsembleGrid({80, 120}, {4, 6}, {3, 4, 5});
}

void ExpectSameDetection(const EnsembleDetection& a,
                         const EnsembleDetection& b) {
  EXPECT_EQ(a.score, b.score);  // bit-for-bit
  EXPECT_EQ(a.configs_used, b.configs_used);
  EXPECT_EQ(a.max_window, b.max_window);
  ASSERT_EQ(a.anomalies.size(), b.anomalies.size());
  for (size_t i = 0; i < a.anomalies.size(); ++i) {
    EXPECT_EQ(a.anomalies[i].span, b.anomalies[i].span);
    EXPECT_EQ(a.anomalies[i].min_score, b.anomalies[i].min_score);
    EXPECT_EQ(a.anomalies[i].mean_score, b.anomalies[i].mean_score);
    EXPECT_EQ(a.anomalies[i].rank, b.anomalies[i].rank);
  }
}

// ---------------------------------------------------------------------------
// Single-config transparency: an ensemble of one is the plain rule-density
// detector seen through min-max normalization.

TEST(EnsembleSingleConfig, DensityCurveIsBitIdenticalToPipeline) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = {EnsembleConfig{120, 4, 4}};
  const auto ensemble = RunEnsemble(data.series, options);
  ASSERT_TRUE(ensemble.ok()) << ensemble.status();

  const auto plain =
      DetectDensityAnomalies(data.series, options.SaxFor(options.configs[0]),
                             options.anomaly);
  ASSERT_TRUE(plain.ok()) << plain.status();

  ASSERT_EQ(ensemble->configs.size(), 1u);
  EXPECT_TRUE(ensemble->configs[0].ok);
  EXPECT_FALSE(ensemble->configs[0].cache_hit);  // nothing to share with
  EXPECT_EQ(ensemble->configs[0].density, plain->decomposition.density);
  EXPECT_EQ(ensemble->score, NormalizeDensity(plain->decomposition.density));
}

TEST(EnsembleSingleConfig, AnomalyIntervalsMatchPlainDetectorAtThresholdZero) {
  // At threshold_fraction == 0 the detector keeps exactly the global
  // minima, and min-max normalization maps the density minimum to exactly
  // 0.0 — an order-preserving affine transform — so the extracted interval
  // set is identical, not merely close.
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = {EnsembleConfig{120, 4, 4}};
  options.anomaly.threshold_fraction = 0.0;
  options.anomaly.max_anomalies = 5;
  const auto ensemble = RunEnsemble(data.series, options);
  ASSERT_TRUE(ensemble.ok()) << ensemble.status();

  const auto plain =
      DetectDensityAnomalies(data.series, options.SaxFor(options.configs[0]),
                             options.anomaly);
  ASSERT_TRUE(plain.ok()) << plain.status();

  ASSERT_EQ(ensemble->anomalies.size(), plain->anomalies.size());
  for (size_t i = 0; i < ensemble->anomalies.size(); ++i) {
    EXPECT_EQ(ensemble->anomalies[i].span, plain->anomalies[i].span);
    EXPECT_EQ(ensemble->anomalies[i].rank, plain->anomalies[i].rank);
  }
}

// ---------------------------------------------------------------------------
// Permutation invariance: aggregation walks the canonical config order, so
// the caller's list order is immaterial down to the last bit.

TEST(EnsembleInvariance, ScoreIsPermutationInvariant) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = TestGrid();
  const auto forward = RunEnsemble(data.series, options);
  ASSERT_TRUE(forward.ok()) << forward.status();

  std::reverse(options.configs.begin(), options.configs.end());
  const auto reversed = RunEnsemble(data.series, options);
  ASSERT_TRUE(reversed.ok()) << reversed.status();
  ExpectSameDetection(*forward, *reversed);

  // An "interleaved" permutation as well — reversal alone would also pass
  // under pairwise-commutative-by-luck summation.
  std::vector<EnsembleConfig> shuffled;
  for (size_t i = 0; i < forward->configs.size(); i += 2) {
    shuffled.push_back(forward->configs[i].config);
  }
  for (size_t i = 1; i < forward->configs.size(); i += 2) {
    shuffled.push_back(forward->configs[i].config);
  }
  options.configs = shuffled;
  const auto interleaved = RunEnsemble(data.series, options);
  ASSERT_TRUE(interleaved.ok()) << interleaved.status();
  ExpectSameDetection(*forward, *interleaved);
}

TEST(EnsembleInvariance, SharedSubstrateMatchesNaivePipelines) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = TestGrid();
  options.share_substrate = true;
  const auto shared = RunEnsemble(data.series, options);
  ASSERT_TRUE(shared.ok()) << shared.status();

  options.share_substrate = false;
  const auto naive = RunEnsemble(data.series, options);
  ASSERT_TRUE(naive.ok()) << naive.status();

  ExpectSameDetection(*shared, *naive);
  ASSERT_EQ(shared->configs.size(), naive->configs.size());
  for (size_t i = 0; i < shared->configs.size(); ++i) {
    EXPECT_EQ(shared->configs[i].density, naive->configs[i].density);
  }
  EXPECT_GT(shared->cache_hits, 0u);
  EXPECT_EQ(naive->cache_hits, 0u);
  EXPECT_EQ(naive->cache_misses, 0u);
}

TEST(EnsembleInvariance, ThreadCountDoesNotChangeAnyBit) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = TestGrid();
  options.num_threads = 1;
  const auto serial = RunEnsemble(data.series, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t threads : {size_t{4}, size_t{0}}) {
    options.num_threads = threads;
    const auto parallel = RunEnsemble(data.series, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameDetection(*serial, *parallel);
    for (size_t i = 0; i < serial->configs.size(); ++i) {
      EXPECT_EQ(serial->configs[i].density, parallel->configs[i].density)
          << "config " << i << " at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Cache accounting and failure handling.

TEST(EnsembleCache, OneMissPerDistinctWindowPaaKey) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = MakeEnsembleGrid({64, 128}, {4}, {3, 5});  // 2 keys
  const auto detection = RunEnsemble(data.series, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->cache_misses, 2u);
  EXPECT_EQ(detection->cache_hits, 2u);
  // The canonically-first config per key owns the miss: (64,4,3) and
  // (128,4,3) computed, (64,4,5) and (128,4,5) served from the plane.
  for (const EnsembleConfigResult& c : detection->configs) {
    EXPECT_EQ(c.cache_hit, c.config.alphabet_size == 5)
        << "w=" << c.config.window << " a=" << c.config.alphabet_size;
  }
}

TEST(EnsembleCache, MissOwnershipIgnoresCallerOrder) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = {EnsembleConfig{64, 4, 5}, EnsembleConfig{64, 4, 3}};
  const auto detection = RunEnsemble(data.series, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  // Canonical order sorts (64,4,3) first even though the caller listed it
  // second, so the miss belongs to it deterministically.
  EXPECT_TRUE(detection->configs[0].cache_hit);
  EXPECT_FALSE(detection->configs[1].cache_hit);
}

TEST(EnsembleRobustness, OversizedWindowIsSkippedNotFatal) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = {EnsembleConfig{120, 4, 4},
                     EnsembleConfig{data.series.size() + 1, 4, 4}};
  const auto detection = RunEnsemble(data.series, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->configs_used, 1u);
  EXPECT_TRUE(detection->configs[0].ok);
  EXPECT_FALSE(detection->configs[1].ok);
  EXPECT_FALSE(detection->configs[1].error.empty());
  EXPECT_EQ(detection->max_window, 120u);
}

TEST(EnsembleRobustness, AllConfigsUnrunnableIsAnError) {
  const LabeledSeries data = TestSeries();
  EnsembleOptions options;
  options.configs = {EnsembleConfig{data.series.size() + 1, 4, 4}};
  const auto detection = RunEnsemble(data.series, options);
  EXPECT_FALSE(detection.ok());
}

TEST(EnsembleRobustness, EmptySeriesIsAnError) {
  EnsembleOptions options;
  options.configs = TestGrid();
  const auto detection =
      RunEnsemble(std::span<const double>{}, options);
  EXPECT_FALSE(detection.ok());
}

// ---------------------------------------------------------------------------
// The aggregation building blocks.

TEST(EnsembleScoring, NormalizeDensityMapsRangeToUnitInterval) {
  const std::vector<uint32_t> density = {2, 6, 4, 2, 10};
  const std::vector<double> normalized = NormalizeDensity(density);
  const std::vector<double> expected = {0.0, 0.5, 0.25, 0.0, 1.0};
  EXPECT_EQ(normalized, expected);
}

TEST(EnsembleScoring, NormalizeConstantCurveIsAllZeros) {
  const std::vector<uint32_t> density(16, 7);
  const std::vector<double> normalized = NormalizeDensity(density);
  EXPECT_EQ(normalized, std::vector<double>(16, 0.0));
}

TEST(EnsembleScoring, FindLowScoreIntervalsMirrorsDensityExtraction) {
  // Same curve fed to both extractors (as uint32 densities and as scaled
  // doubles) must produce the same interval set and ranking.
  const std::vector<uint32_t> density = {9, 9, 1, 1, 9, 9, 0, 0, 0, 9,
                                         9, 9, 2, 9, 9, 9};
  std::vector<double> score(density.size());
  for (size_t i = 0; i < density.size(); ++i) {
    score[i] = static_cast<double>(density[i]) / 9.0;
  }
  DensityAnomalyOptions options;
  options.threshold_fraction = 0.25;
  options.exclude_edges = false;
  options.max_anomalies = 10;
  const auto expected = FindLowDensityIntervals(density, 0, options);
  const auto actual = FindLowScoreIntervals(score, 0, options);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].span, expected[i].span);
    EXPECT_EQ(actual[i].rank, expected[i].rank);
  }
}

TEST(EnsembleScoring, AutoGridCoversMultipleWindowsAndAlphabets) {
  const std::vector<EnsembleConfig> grid = AutoEnsembleGrid(3000);
  EXPECT_EQ(grid.size(), 18u);
  std::vector<size_t> windows;
  for (const EnsembleConfig& c : grid) {
    if (std::find(windows.begin(), windows.end(), c.window) ==
        windows.end()) {
      windows.push_back(c.window);
    }
    EXPECT_LE(c.window, 3000u);
  }
  EXPECT_EQ(windows.size(), 3u);
  EXPECT_TRUE(AutoEnsembleGrid(0).empty());
}

}  // namespace
}  // namespace gva
