// Byte-exactness property tests for the incremental (prefix-sum) SAX
// kernel: Discretize / DiscretizeAllWindows must produce exactly the
// records a naive per-window SaxWordForWindow loop produces, across a grid
// of (window, paa_size, alphabet_size, numerosity mode) and series shapes
// — including the shapes designed to stress the kernel's numerical guards
// (flat plateaus, sub-epsilon noise, large offsets that inflate the prefix
// sums, and non-divisible window/paa geometry).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "sax/mindist.h"
#include "sax/sax_transform.h"
#include "timeseries/sliding_window.h"
#include "util/rng.h"

namespace gva {
namespace {

/// The pre-kernel-overhaul implementation: one full z-normalize + PAA per
/// window through the reference path, with the numerosity reduction applied
/// on the fly. The incremental kernel's contract is byte-identical output.
SaxRecords ReferenceDiscretize(std::span<const double> series,
                               const SaxOptions& opts,
                               NumerosityReduction numerosity) {
  const NormalAlphabet alphabet(opts.alphabet_size);
  const size_t windows = NumSlidingWindows(series.size(), opts.window);
  SaxRecords records;
  for (size_t pos = 0; pos < windows; ++pos) {
    std::string word =
        SaxWordForWindow(WindowAt(series, pos, opts.window), opts, alphabet);
    bool keep = true;
    if (!records.words.empty()) {
      const std::string& prev = records.words.back();
      switch (numerosity) {
        case NumerosityReduction::kNone:
          break;
        case NumerosityReduction::kExact:
          keep = (word != prev);
          break;
        case NumerosityReduction::kMinDist:
          keep = !MinDistIsZero(word, prev, alphabet);
          break;
      }
    }
    if (keep) {
      records.words.push_back(std::move(word));
      records.offsets.push_back(pos);
    }
  }
  return records;
}

struct NamedSeries {
  std::string name;
  std::vector<double> values;
};

std::vector<NamedSeries> TestSeries() {
  std::vector<NamedSeries> all;
  all.push_back({"flat", std::vector<double>(400, 3.25)});

  std::vector<double> plateaus(400);
  for (size_t i = 0; i < plateaus.size(); ++i) {
    plateaus[i] = (i / 80) % 2 == 0 ? 1.0 : 4.5;  // flat windows + steps
  }
  all.push_back({"plateaus", plateaus});

  Rng rng(1234);
  std::vector<double> near_flat(400);
  for (double& v : near_flat) {
    v = -2.0 + 0.001 * rng.Gaussian();  // sub-epsilon noise: centering only
  }
  all.push_back({"near_flat", near_flat});

  all.push_back({"sine", MakeSine(500, 37.0, 0.0, 7)});
  all.push_back({"noisy_sine", MakeSine(500, 23.0, 0.2, 11)});
  all.push_back({"random_walk", MakeRandomWalk(500, 1.0, 5)});

  // Large offset: the prefix sums grow to ~5e8, which is exactly the
  // regime where prefix-difference rounding is worst relative to the
  // window-local values; the kernel's guards must still keep the output
  // byte-identical (by falling back where needed).
  std::vector<double> offset = MakeSine(500, 29.0, 0.1, 13);
  for (double& v : offset) {
    v += 1e6;
  }
  all.push_back({"large_offset", offset});

  std::vector<double> spikes = MakeSine(500, 31.0, 0.05, 17);
  for (size_t i = 50; i < spikes.size(); i += 97) {
    spikes[i] += 40.0;  // rare large values, heavy per-window variance swings
  }
  all.push_back({"spiky", spikes});
  return all;
}

TEST(IncrementalSaxPropertyTest, ByteIdenticalToReferenceAcrossGrid) {
  const std::vector<NamedSeries> series_set = TestSeries();
  // (window, paa) pairs cover divisible, non-divisible, step == 1, and
  // paa == 1 geometry.
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {30, 5}, {30, 4}, {7, 3}, {16, 16}, {25, 1}, {64, 8}, {41, 6}};
  const std::vector<size_t> alphabets = {2, 4, 5, 26};
  const std::vector<NumerosityReduction> modes = {
      NumerosityReduction::kNone, NumerosityReduction::kExact,
      NumerosityReduction::kMinDist};

  for (const NamedSeries& s : series_set) {
    for (const auto& [window, paa] : shapes) {
      for (size_t alpha : alphabets) {
        for (NumerosityReduction mode : modes) {
          SaxOptions opts;
          opts.window = window;
          opts.paa_size = paa;
          opts.alphabet_size = alpha;
          opts.numerosity = mode;
          auto fast = Discretize(s.values, opts);
          ASSERT_TRUE(fast.ok());
          SaxRecords ref = ReferenceDiscretize(s.values, opts, mode);
          EXPECT_EQ(fast->words, ref.words)
              << s.name << " w=" << window << " paa=" << paa
              << " a=" << alpha << " mode=" << static_cast<int>(mode);
          EXPECT_EQ(fast->offsets, ref.offsets)
              << s.name << " w=" << window << " paa=" << paa
              << " a=" << alpha << " mode=" << static_cast<int>(mode);
        }
      }
    }
  }
}

TEST(IncrementalSaxPropertyTest, AllWindowsIsByteIdenticalToo) {
  const std::vector<NamedSeries> series_set = TestSeries();
  for (const NamedSeries& s : series_set) {
    SaxOptions opts;
    opts.window = 48;
    opts.paa_size = 6;
    opts.alphabet_size = 4;
    auto fast = DiscretizeAllWindows(s.values, opts);
    ASSERT_TRUE(fast.ok());
    SaxRecords ref =
        ReferenceDiscretize(s.values, opts, NumerosityReduction::kNone);
    EXPECT_EQ(fast->words, ref.words) << s.name;
    EXPECT_EQ(fast->offsets, ref.offsets) << s.name;
  }
}

TEST(IncrementalSaxPropertyTest, CustomEpsilonStillByteIdentical) {
  // Epsilon sits inside the data's noise band, so the flat-vs-normalized
  // decision flips from window to window — the hardest case for the
  // kernel's flat-decision guard.
  Rng rng(7);
  std::vector<double> v(600);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 5.0 + 0.05 * rng.Gaussian() +
           (i % 120 < 60 ? 0.0 : 0.2 * std::sin(0.4 * static_cast<double>(i)));
  }
  for (double eps : {0.0, 0.01, 0.09, 1.0}) {
    SaxOptions opts;
    opts.window = 36;
    opts.paa_size = 4;
    opts.alphabet_size = 5;
    opts.znorm_epsilon = eps;
    auto fast = Discretize(v, opts);
    ASSERT_TRUE(fast.ok());
    SaxRecords ref = ReferenceDiscretize(v, opts, opts.numerosity);
    EXPECT_EQ(fast->words, ref.words) << "eps=" << eps;
    EXPECT_EQ(fast->offsets, ref.offsets) << "eps=" << eps;
  }
}

}  // namespace
}  // namespace gva
