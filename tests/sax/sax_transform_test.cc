#include "sax/sax_transform.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "timeseries/sliding_window.h"

namespace gva {
namespace {

SaxOptions Opts(size_t window, size_t paa, size_t alpha,
                NumerosityReduction nr = NumerosityReduction::kExact) {
  SaxOptions o;
  o.window = window;
  o.paa_size = paa;
  o.alphabet_size = alpha;
  o.numerosity = nr;
  return o;
}

TEST(SaxOptionsTest, ValidationCatchesBadParameters) {
  EXPECT_TRUE(Opts(16, 4, 4).Validate().ok());
  EXPECT_FALSE(Opts(1, 1, 4).Validate().ok());    // window too small
  EXPECT_FALSE(Opts(16, 0, 4).Validate().ok());   // paa zero
  EXPECT_FALSE(Opts(16, 17, 4).Validate().ok());  // paa > window
  EXPECT_FALSE(Opts(16, 4, 1).Validate().ok());   // alphabet too small
  EXPECT_FALSE(Opts(16, 4, 27).Validate().ok());  // alphabet too large
  SaxOptions bad = Opts(16, 4, 4);
  bad.znorm_epsilon = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SaxWordTest, RampMapsToAscendingLetters) {
  std::vector<double> ramp;
  for (int i = 0; i < 40; ++i) {
    ramp.push_back(static_cast<double>(i));
  }
  NormalAlphabet alphabet(4);
  std::string word = SaxWordForWindow(ramp, Opts(40, 4, 4), alphabet);
  EXPECT_EQ(word, "abcd");
}

TEST(SaxWordTest, DescendingRampReverses) {
  std::vector<double> ramp;
  for (int i = 40; i > 0; --i) {
    ramp.push_back(static_cast<double>(i));
  }
  NormalAlphabet alphabet(4);
  EXPECT_EQ(SaxWordForWindow(ramp, Opts(40, 4, 4), alphabet), "dcba");
}

TEST(SaxWordTest, FlatWindowIsAllMidLetters) {
  std::vector<double> flat(24, 5.0);
  NormalAlphabet alphabet(4);
  // Mean-centered zeros land in the upper-middle region ('c' for size 4
  // since 0 sits on the middle breakpoint).
  EXPECT_EQ(SaxWordForWindow(flat, Opts(24, 4, 4), alphabet), "cccc");
}

TEST(SaxWordTest, ShapeInvariantToScaleAndOffset) {
  std::vector<double> base;
  for (int i = 0; i < 60; ++i) {
    base.push_back(std::sin(0.3 * i));
  }
  std::vector<double> scaled;
  for (double v : base) {
    scaled.push_back(250.0 * v - 77.0);
  }
  NormalAlphabet alphabet(5);
  EXPECT_EQ(SaxWordForWindow(base, Opts(60, 6, 5), alphabet),
            SaxWordForWindow(scaled, Opts(60, 6, 5), alphabet));
}

TEST(DiscretizeTest, FailsWhenSeriesShorterThanWindow) {
  std::vector<double> v(10, 0.0);
  EXPECT_FALSE(Discretize(v, Opts(20, 4, 4)).ok());
}

TEST(DiscretizeTest, AllWindowsKeepsEveryPosition) {
  std::vector<double> v = MakeSine(200, 25.0, 0.05, 1);
  auto records = DiscretizeAllWindows(v, Opts(50, 5, 4));
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), NumSlidingWindows(200, 50));
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(records->offsets[i], i);
  }
}

TEST(DiscretizeTest, ExactReductionDropsConsecutiveDuplicates) {
  std::vector<double> v = MakeSine(400, 40.0, 0.0, 2);
  auto all = DiscretizeAllWindows(v, Opts(40, 4, 4));
  auto reduced = Discretize(v, Opts(40, 4, 4));
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_LT(reduced->size(), all->size());
  // No two consecutive kept words are equal.
  for (size_t i = 1; i < reduced->size(); ++i) {
    EXPECT_NE(reduced->words[i], reduced->words[i - 1]);
  }
  // Offsets are strictly increasing and within range.
  for (size_t i = 1; i < reduced->size(); ++i) {
    EXPECT_LT(reduced->offsets[i - 1], reduced->offsets[i]);
  }
  EXPECT_EQ(reduced->offsets.front(), 0u);
}

TEST(DiscretizeTest, ReducedIsSubsequenceOfAll) {
  std::vector<double> v = MakeSine(300, 30.0, 0.02, 3);
  auto all = DiscretizeAllWindows(v, Opts(30, 5, 5));
  auto reduced = Discretize(v, Opts(30, 5, 5));
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(reduced.ok());
  for (size_t i = 0; i < reduced->size(); ++i) {
    const size_t pos = reduced->offsets[i];
    EXPECT_EQ(reduced->words[i], all->words[pos]);
  }
}

TEST(DiscretizeTest, FirstKeptWordIsFirstWindow) {
  std::vector<double> v = MakeSine(100, 20.0, 0.0, 4);
  auto reduced = Discretize(v, Opts(20, 4, 3));
  ASSERT_TRUE(reduced.ok());
  ASSERT_FALSE(reduced->empty());
  EXPECT_EQ(reduced->offsets[0], 0u);
}

TEST(DiscretizeTest, MinDistReductionDropsAtLeastAsMuchAsExact) {
  std::vector<double> v = MakeSine(500, 50.0, 0.05, 5);
  auto exact = Discretize(v, Opts(50, 6, 6, NumerosityReduction::kExact));
  auto mindist = Discretize(v, Opts(50, 6, 6, NumerosityReduction::kMinDist));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(mindist.ok());
  EXPECT_LE(mindist->size(), exact->size());
}

TEST(DiscretizeTest, NoneReductionEqualsAllWindows) {
  std::vector<double> v = MakeSine(150, 25.0, 0.05, 6);
  auto none = Discretize(v, Opts(25, 4, 4, NumerosityReduction::kNone));
  auto all = DiscretizeAllWindows(v, Opts(25, 4, 4));
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(none->words, all->words);
  EXPECT_EQ(none->offsets, all->offsets);
}

TEST(DiscretizeTest, ConstantSeriesCollapsesToOneWord) {
  std::vector<double> v(200, 1.0);
  auto reduced = Discretize(v, Opts(20, 4, 4));
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->size(), 1u);
}

// The paper's motivating property: numerosity reduction converts the smooth
// sliding-window redundancy into a compact word sequence whose length tracks
// the number of distinct shapes, not the series length.
TEST(DiscretizeTest, PeriodicSeriesReductionIsSubstantial) {
  std::vector<double> v = MakeSine(2000, 100.0, 0.0, 7);
  auto reduced = Discretize(v, Opts(100, 4, 4));
  ASSERT_TRUE(reduced.ok());
  EXPECT_LT(reduced->size(), NumSlidingWindows(2000, 100) / 3);
}

}  // namespace
}  // namespace gva
