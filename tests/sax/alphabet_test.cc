#include "sax/alphabet.h"

#include <gtest/gtest.h>

#include "util/math_utils.h"

namespace gva {
namespace {

TEST(AlphabetTest, Size4HasClassicBreakpoints) {
  NormalAlphabet a(4);
  ASSERT_EQ(a.breakpoints().size(), 3u);
  EXPECT_NEAR(a.breakpoints()[0], -0.6745, 1e-3);
  EXPECT_NEAR(a.breakpoints()[1], 0.0, 1e-9);
  EXPECT_NEAR(a.breakpoints()[2], 0.6745, 1e-3);
}

TEST(AlphabetTest, Size3HasClassicBreakpoints) {
  NormalAlphabet a(3);
  ASSERT_EQ(a.breakpoints().size(), 2u);
  EXPECT_NEAR(a.breakpoints()[0], -0.4307, 1e-3);
  EXPECT_NEAR(a.breakpoints()[1], 0.4307, 1e-3);
}

TEST(AlphabetTest, BreakpointsAscendAndAreEquiprobable) {
  for (size_t size = kMinAlphabetSize; size <= kMaxAlphabetSize; ++size) {
    NormalAlphabet a(size);
    ASSERT_EQ(a.breakpoints().size(), size - 1);
    for (size_t i = 0; i < a.breakpoints().size(); ++i) {
      if (i > 0) {
        EXPECT_LT(a.breakpoints()[i - 1], a.breakpoints()[i]);
      }
      // Each region has probability 1/size.
      EXPECT_NEAR(NormalCdf(a.breakpoints()[i]),
                  static_cast<double>(i + 1) / static_cast<double>(size),
                  1e-7);
    }
  }
}

TEST(AlphabetTest, IndexOfMapsToEquiprobableRegions) {
  NormalAlphabet a(4);
  EXPECT_EQ(a.IndexOf(-10.0), 0u);
  EXPECT_EQ(a.IndexOf(-0.7), 0u);
  EXPECT_EQ(a.IndexOf(-0.5), 1u);
  EXPECT_EQ(a.IndexOf(0.5), 2u);
  EXPECT_EQ(a.IndexOf(0.7), 3u);
  EXPECT_EQ(a.IndexOf(10.0), 3u);
}

TEST(AlphabetTest, ValueOnBreakpointGoesUp) {
  NormalAlphabet a(4);
  EXPECT_EQ(a.IndexOf(0.0), 2u);  // middle breakpoint -> upper region
}

TEST(AlphabetTest, LetterOf) {
  NormalAlphabet a(4);
  EXPECT_EQ(a.LetterOf(-10.0), 'a');
  EXPECT_EQ(a.LetterOf(-0.3), 'b');
  EXPECT_EQ(a.LetterOf(0.3), 'c');
  EXPECT_EQ(a.LetterOf(10.0), 'd');
  EXPECT_EQ(NormalAlphabet::IndexOfLetter('c'), 2u);
}

TEST(AlphabetTest, CellDistanceZeroForAdjacentLetters) {
  NormalAlphabet a(5);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      const double d = a.CellDistance(r, c);
      if (r == c || r + 1 == c || c + 1 == r) {
        EXPECT_DOUBLE_EQ(d, 0.0);
      } else {
        EXPECT_GT(d, 0.0);
      }
      EXPECT_DOUBLE_EQ(d, a.CellDistance(c, r)) << "symmetry";
    }
  }
}

TEST(AlphabetTest, CellDistanceMatchesBreakpointGap) {
  NormalAlphabet a(4);
  // dist(a, d) = breakpoint[2] - breakpoint[0].
  EXPECT_NEAR(a.CellDistance(0, 3),
              a.breakpoints()[2] - a.breakpoints()[0], 1e-12);
  EXPECT_NEAR(a.CellDistance(0, 2),
              a.breakpoints()[1] - a.breakpoints()[0], 1e-12);
}

TEST(AlphabetDeathTest, RejectsBadSizes) {
  EXPECT_DEATH(NormalAlphabet a(1), "alphabet size");
  EXPECT_DEATH(NormalAlphabet a(27), "alphabet size");
}

}  // namespace
}  // namespace gva
