#include "sax/mindist.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "discord/distance.h"
#include "sax/paa.h"
#include "sax/sax_transform.h"
#include "timeseries/znorm.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(MinDistTest, IdenticalWordsAreZero) {
  NormalAlphabet a(4);
  EXPECT_DOUBLE_EQ(MinDist("abcd", "abcd", 64, a), 0.0);
}

TEST(MinDistTest, AdjacentLettersAreZero) {
  NormalAlphabet a(4);
  EXPECT_DOUBLE_EQ(MinDist("abba", "baab", 64, a), 0.0);
  EXPECT_TRUE(MinDistIsZero("abba", "baab", a));
}

TEST(MinDistTest, FarLettersArePositive) {
  NormalAlphabet a(4);
  EXPECT_GT(MinDist("aaaa", "dddd", 64, a), 0.0);
  EXPECT_FALSE(MinDistIsZero("aaaa", "dddd", a));
}

TEST(MinDistTest, ScalesWithSqrtCompressionRatio) {
  NormalAlphabet a(4);
  const double d64 = MinDist("aacc", "ccaa", 64, a);
  const double d256 = MinDist("aacc", "ccaa", 256, a);
  EXPECT_NEAR(d256 / d64, 2.0, 1e-9);
}

TEST(MinDistTest, Symmetric) {
  NormalAlphabet a(6);
  EXPECT_DOUBLE_EQ(MinDist("afcdbe", "cbafed", 60, a),
                   MinDist("cbafed", "afcdbe", 60, a));
}

// The defining SAX property: MINDIST lower-bounds the Euclidean distance
// between the z-normalized subsequences. Swept over alphabet and word sizes.
class MinDistLowerBoundTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MinDistLowerBoundTest, LowerBoundsTrueDistance) {
  const auto [alpha, paa] = GetParam();
  const size_t n = 120;
  Rng rng(alpha * 100 + paa);
  NormalAlphabet alphabet(alpha);
  SaxOptions opts;
  opts.window = n;
  opts.paa_size = paa;
  opts.alphabet_size = alpha;

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> x;
    std::vector<double> y;
    double vx = 0.0;
    double vy = 0.0;
    for (size_t i = 0; i < n; ++i) {
      vx += rng.Gaussian();
      vy += rng.Gaussian();
      x.push_back(vx);
      y.push_back(vy);
    }
    const std::vector<double> zx = ZNormalized(x);
    const std::vector<double> zy = ZNormalized(y);
    const double true_dist = EuclideanDistance(zx, zy);
    const std::string wx = SaxWordForWindow(x, opts, alphabet);
    const std::string wy = SaxWordForWindow(y, opts, alphabet);
    const double lower = MinDist(wx, wy, n, alphabet);
    EXPECT_LE(lower, true_dist + 1e-9)
        << "alpha=" << alpha << " paa=" << paa << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinDistLowerBoundTest,
    ::testing::Combine(::testing::Values<size_t>(3, 4, 5, 8, 10),
                       ::testing::Values<size_t>(2, 4, 6, 8)));

}  // namespace
}  // namespace gva
