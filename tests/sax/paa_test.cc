#include "sax/paa.h"

#include <vector>

#include <gtest/gtest.h>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(PaaTest, EvenDivisionIsPlainMeans) {
  std::vector<double> v{1, 1, 2, 2, 3, 3, 4, 4};
  std::vector<double> out = Paa(v, 4);
  EXPECT_EQ(out, (std::vector<double>{1, 2, 3, 4}));
}

TEST(PaaTest, SingleSegmentIsGlobalMean) {
  std::vector<double> v{1, 2, 3, 4, 5};
  std::vector<double> out = Paa(v, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(PaaTest, IdentityWhenSegmentsEqualLength) {
  std::vector<double> v{3.5, -1.0, 2.0};
  EXPECT_EQ(Paa(v, 3), v);
}

TEST(PaaTest, FractionalBoundariesExact) {
  // 3 points -> 2 segments: segment 0 covers [0, 1.5) = v0 + half of v1,
  // segment 1 covers [1.5, 3) = half of v1 + v2.
  std::vector<double> v{0.0, 2.0, 4.0};
  std::vector<double> out = Paa(v, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], (0.0 + 1.0) / 1.5);
  EXPECT_DOUBLE_EQ(out[1], (1.0 + 4.0) / 1.5);
}

TEST(PaaTest, UpsamplingRepeatsValuesFractionally) {
  // 2 points -> 4 segments: each input value covers two segments.
  std::vector<double> v{1.0, 3.0};
  std::vector<double> out = Paa(v, 4);
  EXPECT_EQ(out, (std::vector<double>{1.0, 1.0, 3.0, 3.0}));
}

TEST(PaaTest, EmptyInputYieldsZeros) {
  std::vector<double> out = Paa(std::vector<double>{}, 3);
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(PaaTest, ConstantSignalStaysConstant) {
  std::vector<double> v(17, 2.5);
  for (size_t w : {1u, 2u, 3u, 5u, 16u, 17u}) {
    for (double s : Paa(v, w)) {
      EXPECT_DOUBLE_EQ(s, 2.5);
    }
  }
}

// Property: the weighted mean of PAA segments equals the input mean for any
// length/segment combination (total mass is preserved).
class PaaMassPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(PaaMassPropertyTest, SegmentMeanEqualsInputMean) {
  const auto [n, w] = GetParam();
  Rng rng(n * 1000 + w);
  std::vector<double> v;
  for (size_t i = 0; i < n; ++i) {
    v.push_back(rng.Gaussian());
  }
  std::vector<double> out = Paa(v, w);
  ASSERT_EQ(out.size(), w);
  // Every segment has equal real-valued width n/w, so the plain mean of the
  // segment means equals the input mean.
  EXPECT_NEAR(Mean(out), Mean(v), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaaMassPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(5, 7, 12, 30, 100, 128, 777),
                       ::testing::Values<size_t>(1, 2, 3, 4, 5, 9, 20)));

// Property: PAA of a linear ramp is increasing.
TEST(PaaTest, MonotonePreservedOnRamp) {
  std::vector<double> v;
  for (int i = 0; i < 103; ++i) {
    v.push_back(0.37 * i);
  }
  std::vector<double> out = Paa(v, 9);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i], out[i - 1]);
  }
}

}  // namespace
}  // namespace gva
