#include "hilbert/hilbert.h"

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(HilbertTest, FirstOrderCurveMatchesFigure6) {
  // Figure 6 left panel: a 2x2 grid visited 0 -> 1 -> 2 -> 3 in a U shape.
  HilbertCurve curve(1);
  EXPECT_EQ(curve.side(), 2u);
  EXPECT_EQ(curve.num_cells(), 4u);
  EXPECT_EQ(curve.XyToIndex(0, 0), 0u);
  EXPECT_EQ(curve.XyToIndex(0, 1), 1u);
  EXPECT_EQ(curve.XyToIndex(1, 1), 2u);
  EXPECT_EQ(curve.XyToIndex(1, 0), 3u);
}

class HilbertOrderTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HilbertOrderTest, BijectionOverEveryCell) {
  HilbertCurve curve(GetParam());
  std::set<uint64_t> seen;
  for (uint64_t x = 0; x < curve.side(); ++x) {
    for (uint64_t y = 0; y < curve.side(); ++y) {
      const uint64_t d = curve.XyToIndex(x, y);
      EXPECT_LT(d, curve.num_cells());
      EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
      uint64_t rx = 0;
      uint64_t ry = 0;
      curve.IndexToXy(d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), curve.num_cells());
}

TEST_P(HilbertOrderTest, ConsecutiveIndicesAreEdgeAdjacent) {
  // The locality property the paper relies on: consecutive visit order
  // cells always share an edge.
  HilbertCurve curve(GetParam());
  uint64_t px = 0;
  uint64_t py = 0;
  curve.IndexToXy(0, &px, &py);
  for (uint64_t d = 1; d < curve.num_cells(); ++d) {
    uint64_t x = 0;
    uint64_t y = 0;
    curve.IndexToXy(d, &x, &y);
    const uint64_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "order " << GetParam() << " index " << d;
    px = x;
    py = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrderTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(HilbertTest, HighOrderRoundTripSamples) {
  HilbertCurve curve(16);
  for (uint64_t d :
       {uint64_t{0}, uint64_t{1}, uint64_t{12345678}, curve.num_cells() - 1}) {
    uint64_t x = 0;
    uint64_t y = 0;
    curve.IndexToXy(d, &x, &y);
    EXPECT_EQ(curve.XyToIndex(x, y), d);
  }
}

TEST(HilbertDeathTest, RejectsOutOfRange) {
  HilbertCurve curve(2);
  EXPECT_DEATH((void)curve.XyToIndex(4, 0), "outside");
  uint64_t x = 0;
  uint64_t y = 0;
  EXPECT_DEATH(curve.IndexToXy(16, &x, &y), "outside");
  EXPECT_DEATH(HilbertCurve bad(0), "order");
  EXPECT_DEATH(HilbertCurve bad(17), "order");
}

TEST(TrajectoryToSeriesTest, MapsCornersOfBoundingBox) {
  HilbertCurve curve(3);
  std::vector<GeoPoint> points{{0.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  auto series = TrajectoryToHilbertSeries(points, curve, 0, 10, 0, 10);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  EXPECT_DOUBLE_EQ((*series)[0],
                   static_cast<double>(curve.XyToIndex(0, 0)));
  EXPECT_DOUBLE_EQ((*series)[1],
                   static_cast<double>(curve.XyToIndex(7, 7)));
  EXPECT_DOUBLE_EQ((*series)[2],
                   static_cast<double>(curve.XyToIndex(0, 7)));
}

TEST(TrajectoryToSeriesTest, RejectsBadBoxAndOutliers) {
  HilbertCurve curve(3);
  std::vector<GeoPoint> points{{0.5, 0.5}};
  EXPECT_FALSE(TrajectoryToHilbertSeries(points, curve, 0, 0, 0, 1).ok());
  EXPECT_FALSE(
      TrajectoryToHilbertSeries({{2.0, 0.5}}, curve, 0, 1, 0, 1).ok());
}

TEST(TrajectoryToSeriesTest, NearbyPointsGetNearbyIndicesMostly) {
  // Statistical locality: a short step in space should usually be a small
  // step in Hilbert index. (Not always — the curve has long jumps — but the
  // median must be small.)
  HilbertCurve curve(8);
  std::vector<double> jumps;
  for (int i = 0; i < 200; ++i) {
    const double t = i / 200.0;
    auto s = TrajectoryToHilbertSeries(
        {{t, 0.5}, {t + 0.004, 0.5}}, curve, 0, 1.01, 0, 1.01);
    ASSERT_TRUE(s.ok());
    jumps.push_back(std::abs((*s)[1] - (*s)[0]));
  }
  std::sort(jumps.begin(), jumps.end());
  EXPECT_LT(jumps[jumps.size() / 2], 16.0);
}

}  // namespace
}  // namespace gva
