#include "grammar/rule_intervals.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datasets/simple.h"
#include "grammar/sequitur.h"

namespace gva {
namespace {

// Builds a small hand-made decomposition: words at known offsets with a
// known grammar, so the interval mapping can be verified exactly.
TEST(RuleIntervalsTest, MapsOccurrencesThroughOffsets) {
  // Input words: A B x y A B (after numerosity reduction) with offsets
  // chosen unevenly, window 10, series length 100.
  std::vector<std::string> words{"A", "B", "x", "y", "A", "B"};
  auto wg = InferGrammarFromWords(words);
  ASSERT_TRUE(wg.ok());
  ASSERT_EQ(wg->grammar.size(), 2u);  // R1 = A B used twice

  SaxRecords records;
  records.words = words;
  records.offsets = {0, 5, 17, 30, 42, 60};

  std::vector<RuleInterval> intervals =
      MapRuleIntervals(wg->grammar, records, 10, 100);
  ASSERT_EQ(intervals.size(), 2u);
  // Occurrence 1: tokens [0, 1] -> series [0, 5 + 10).
  EXPECT_EQ(intervals[0].rule, 1);
  EXPECT_EQ(intervals[0].span, (Interval{0, 15}));
  EXPECT_EQ(intervals[0].rule_frequency, 2u);
  // Occurrence 2: tokens [4, 5] -> series [42, 60 + 10).
  EXPECT_EQ(intervals[1].span, (Interval{42, 70}));
}

TEST(RuleIntervalsTest, ClampsAtSeriesEnd) {
  std::vector<std::string> words{"A", "B", "A", "B"};
  auto wg = InferGrammarFromWords(words);
  ASSERT_TRUE(wg.ok());
  SaxRecords records;
  records.words = words;
  records.offsets = {0, 3, 80, 95};
  std::vector<RuleInterval> intervals =
      MapRuleIntervals(wg->grammar, records, 10, 100);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[1].span, (Interval{80, 100}));  // 95 + 10 clamped
}

TEST(DensityCurveTest, MatchesNaiveCounting) {
  std::vector<RuleInterval> intervals{
      {1, 2, {0, 10}}, {1, 2, {5, 15}}, {2, 3, {8, 12}}, {3, 2, {90, 100}}};
  const size_t m = 100;
  std::vector<uint32_t> density = RuleDensityCurve(intervals, m);
  ASSERT_EQ(density.size(), m);
  for (size_t i = 0; i < m; ++i) {
    uint32_t expected = 0;
    for (const RuleInterval& ri : intervals) {
      if (ri.span.Contains(i)) {
        ++expected;
      }
    }
    EXPECT_EQ(density[i], expected) << "i=" << i;
  }
}

TEST(DensityCurveTest, EmptyIntervals) {
  std::vector<uint32_t> density = RuleDensityCurve({}, 10);
  for (uint32_t d : density) {
    EXPECT_EQ(d, 0u);
  }
}

TEST(DensityCurveTest, IntervalBeyondSeriesIsClamped) {
  std::vector<RuleInterval> intervals{{1, 2, {8, 25}}};
  std::vector<uint32_t> density = RuleDensityCurve(intervals, 10);
  EXPECT_EQ(density[7], 0u);
  EXPECT_EQ(density[8], 1u);
  EXPECT_EQ(density[9], 1u);
}

TEST(ZeroCoverageTest, FindsGapsBetweenIntervals) {
  std::vector<uint32_t> density{1, 1, 0, 0, 0, 2, 0, 1, 0, 0};
  std::vector<RuleInterval> gaps = ZeroCoverageIntervals(density, 2);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0].span, (Interval{2, 5}));
  EXPECT_EQ(gaps[1].span, (Interval{8, 10}));
  EXPECT_EQ(gaps[0].rule, RuleInterval::kGapRule);
  EXPECT_EQ(gaps[0].rule_frequency, 0u);
}

TEST(ZeroCoverageTest, MinLengthFiltersShortGaps) {
  std::vector<uint32_t> density{0, 1, 0, 0, 1, 0, 0, 0};
  EXPECT_EQ(ZeroCoverageIntervals(density, 3).size(), 1u);
  EXPECT_EQ(ZeroCoverageIntervals(density, 1).size(), 3u);
}

TEST(ZeroCoverageTest, AllZeroIsOneGap) {
  std::vector<uint32_t> density(20, 0);
  std::vector<RuleInterval> gaps = ZeroCoverageIntervals(density, 1);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].span, (Interval{0, 20}));
}

// End-to-end consistency on a real decomposition: the density curve computed
// from mapped intervals must equal naive recounting, and every interval must
// sit inside the series.
TEST(DecompositionConsistencyTest, IntervalsAndDensityAgree) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.02, 600, 80, 5);
  SaxOptions sax;
  sax.window = 120;
  sax.paa_size = 4;
  sax.alphabet_size = 4;
  auto decomposition = DecomposeSeries(data.series, sax);
  ASSERT_TRUE(decomposition.ok());
  const auto& d = *decomposition;
  EXPECT_EQ(d.density.size(), data.series.size());
  for (const RuleInterval& ri : d.intervals) {
    EXPECT_LE(ri.span.end, data.series.size());
    EXPECT_GT(ri.span.length(), 0u);
    EXPECT_GE(ri.rule, 1);
    EXPECT_GE(ri.rule_frequency, 2u);
  }
  std::vector<uint32_t> recount(data.series.size(), 0);
  for (const RuleInterval& ri : d.intervals) {
    for (size_t i = ri.span.start; i < ri.span.end; ++i) {
      ++recount[i];
    }
  }
  EXPECT_EQ(d.density, recount);
}

}  // namespace
}  // namespace gva
