#include "grammar/audit.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "grammar/sequitur.h"
#include "util/rng.h"

namespace gva {
namespace {

std::vector<int32_t> Tokens(std::initializer_list<int32_t> list) {
  return std::vector<int32_t>(list);
}

Grammar Induce(const std::vector<int32_t>& tokens) {
  auto g = InferGrammar(tokens);
  EXPECT_TRUE(g.ok()) << g.status();
  return *g;
}

// --- clean grammars pass -----------------------------------------------------

TEST(AuditGrammarTest, EmptyInputPasses) {
  const auto tokens = Tokens({});
  EXPECT_TRUE(AuditGrammar(Induce(tokens), tokens).ok());
}

TEST(AuditGrammarTest, NoRepetitionPasses) {
  const auto tokens = Tokens({1, 2, 3, 4, 5});
  EXPECT_TRUE(AuditGrammar(Induce(tokens), tokens).ok());
}

TEST(AuditGrammarTest, ClassicSequiturExamplePasses) {
  // "abcabcabc" — nested rule structure.
  const auto tokens = Tokens({0, 1, 2, 0, 1, 2, 0, 1, 2});
  EXPECT_TRUE(AuditGrammar(Induce(tokens), tokens).ok());
}

TEST(AuditGrammarTest, OverlappingRunsPass) {
  // Runs of identical symbols exercise the overlapping-digram exception.
  for (size_t run = 2; run <= 9; ++run) {
    std::vector<int32_t> tokens(run, 7);
    const Status status = AuditGrammar(Induce(tokens), tokens);
    EXPECT_TRUE(status.ok()) << "run of " << run << ": " << status;
  }
}

TEST(AuditGrammarTest, RandomStringsPass) {
  Rng rng(20250809);
  for (int alphabet : {2, 4, 8}) {
    for (size_t length : {1u, 13u, 200u, 1500u}) {
      std::vector<int32_t> tokens;
      tokens.reserve(length);
      for (size_t i = 0; i < length; ++i) {
        tokens.push_back(static_cast<int32_t>(
            rng.UniformInt(static_cast<uint64_t>(alphabet))));
      }
      const Status status = AuditGrammar(Induce(tokens), tokens);
      EXPECT_TRUE(status.ok())
          << "alphabet=" << alphabet << " length=" << length << ": "
          << status;
    }
  }
}

TEST(AuditGrammarTest, IncrementalSnapshotsPassMidStream) {
  // The auditor must accept every snapshot, not just the final grammar —
  // the streaming engine extracts mid-stream.
  IncrementalSequitur sequitur;
  std::vector<int32_t> appended;
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const auto token = static_cast<int32_t>(rng.UniformInt(5));
    ASSERT_TRUE(sequitur.Append(token).ok());
    appended.push_back(token);
    if (i % 37 == 0) {
      const Status status =
          AuditGrammar(sequitur.ExtractGrammar(), appended);
      EXPECT_TRUE(status.ok()) << "after " << i + 1 << " tokens: " << status;
    }
  }
}

TEST(AuditGrammarTest, WordGrammarPasses) {
  const std::vector<std::string> words = {"aab", "abc", "aab", "abc", "aab",
                                          "abc", "bbb", "aab", "abc"};
  auto wg = InferGrammarFromWords(words);
  ASSERT_TRUE(wg.ok());
  EXPECT_TRUE(AuditGrammar(wg->grammar, wg->tokens).ok());
}

// --- corrupted grammars fail with the right diagnosis ------------------------

// A hand-built valid grammar the corruption tests start from:
//   R0 -> R1 R1 3        (tokens 0 1 0 1 3)
//   R1 -> 0 1
Grammar ValidFixture() {
  GrammarRule r0;
  r0.id = 0;
  r0.rhs = {{false, 1}, {false, 1}, {true, 3}};
  r0.use_count = 0;
  r0.expansion_tokens = 5;
  r0.occurrences = {0};
  GrammarRule r1;
  r1.id = 1;
  r1.rhs = {{true, 0}, {true, 1}};
  r1.use_count = 2;
  r1.expansion_tokens = 2;
  r1.occurrences = {0, 2};
  return Grammar({r0, r1}, 5);
}

const std::vector<int32_t> kFixtureTokens = {0, 1, 0, 1, 3};

TEST(AuditGrammarTest, ValidFixturePasses) {
  EXPECT_TRUE(AuditGrammar(ValidFixture(), kFixtureTokens).ok());
}

void ExpectAuditFails(const Grammar& grammar, const std::string& fragment) {
  const Status status = AuditGrammar(grammar, kFixtureTokens);
  ASSERT_FALSE(status.ok()) << "corruption was not detected";
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find(fragment), std::string::npos)
      << "diagnosis was: " << status.message();
}

TEST(AuditGrammarTest, DetectsNonDenseRuleIds) {
  auto rules = ValidFixture().rules();
  rules[1].id = 7;
  ExpectAuditFails(Grammar(rules, 5), "ids must be dense");
}

TEST(AuditGrammarTest, DetectsOutOfRangeReference) {
  auto rules = ValidFixture().rules();
  rules[0].rhs[0].id = 9;
  ExpectAuditFails(Grammar(rules, 5), "out of range");
}

TEST(AuditGrammarTest, DetectsReferenceToStartRule) {
  auto rules = ValidFixture().rules();
  rules[0].rhs[1] = {false, 0};
  ExpectAuditFails(Grammar(rules, 5), "start rule");
}

TEST(AuditGrammarTest, DetectsDuplicateDigram) {
  // R0 -> R1 R1 3 / R1 -> 0 1, with R0 grown to repeat the digram "0 1"
  // explicitly: R0 -> R1 R1 3 0 1 ... the pair (0,1) now appears in both
  // R0 and R1 without overlap.
  auto rules = ValidFixture().rules();
  rules[0].rhs.push_back({true, 0});
  rules[0].rhs.push_back({true, 1});
  rules[0].expansion_tokens = 7;
  ExpectAuditFails(Grammar(rules, 5), "digram uniqueness");
}

TEST(AuditGrammarTest, DetectsOnceUsedRule) {
  // Drop R0's second reference to R1: utility now 1.
  auto rules = ValidFixture().rules();
  rules[0].rhs[1] = {true, 5};
  rules[0].expansion_tokens = 4;
  rules[1].use_count = 1;
  rules[1].occurrences = {0};
  ExpectAuditFails(Grammar(rules, 5), "rule utility");
}

TEST(AuditGrammarTest, DetectsStaleUseCount) {
  auto rules = ValidFixture().rules();
  rules[1].use_count = 3;
  ExpectAuditFails(Grammar(rules, 5), "use_count");
}

TEST(AuditGrammarTest, DetectsRoundTripMismatch) {
  auto rules = ValidFixture().rules();
  rules[1].rhs[1] = {true, 2};  // expansion now 0 2 0 2 3 != input
  ExpectAuditFails(Grammar(rules, 5), "round-trip");
}

TEST(AuditGrammarTest, DetectsWrongExpansionLength) {
  auto rules = ValidFixture().rules();
  rules[1].expansion_tokens = 3;
  ExpectAuditFails(Grammar(rules, 5), "expansion token");
}

TEST(AuditGrammarTest, DetectsUnsortedOccurrences) {
  auto rules = ValidFixture().rules();
  rules[1].occurrences = {2, 0};
  ExpectAuditFails(Grammar(rules, 5), "ascending");
}

TEST(AuditGrammarTest, DetectsOccurrenceOverrun) {
  auto rules = ValidFixture().rules();
  rules[1].occurrences = {0, 4};  // 4 + 2 > 5
  ExpectAuditFails(Grammar(rules, 5), "overruns");
}

TEST(AuditGrammarTest, DetectsOccurrenceInputMismatch) {
  auto rules = ValidFixture().rules();
  rules[1].occurrences = {0, 3};  // tokens[3..4] == 1 3, not 0 1
  ExpectAuditFails(Grammar(rules, 5), "does not match the input");
}

TEST(AuditGrammarTest, DetectsCoveragePartitionDrift) {
  // Keep per-occurrence slices valid but drop one occurrence entirely: the
  // difference array then under-covers tokens 2..3 relative to the
  // derivation depth.
  auto rules = ValidFixture().rules();
  rules[1].occurrences = {0};
  ExpectAuditFails(Grammar(rules, 5), "coverage partition");
}

}  // namespace
}  // namespace gva
