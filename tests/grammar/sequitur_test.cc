#include "grammar/sequitur.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gva {
namespace {

std::vector<int32_t> Tokens(std::initializer_list<int32_t> list) {
  return std::vector<int32_t>(list);
}

// --- structural invariant checkers -----------------------------------------

// Every rule except R0 is referenced at least twice, and use_count matches
// the actual number of references (Sequitur's *utility* constraint).
void CheckRuleUtility(const Grammar& g) {
  std::vector<size_t> references(g.size(), 0);
  for (const GrammarRule& rule : g.rules()) {
    for (const GrammarSymbol& sym : rule.rhs) {
      if (!sym.is_terminal) {
        ++references[static_cast<size_t>(sym.id)];
      }
    }
  }
  EXPECT_EQ(references[0], 0u) << "R0 must never be referenced";
  for (size_t r = 1; r < g.size(); ++r) {
    EXPECT_GE(references[r], 2u) << "rule utility violated for R" << r;
    EXPECT_EQ(references[r], g.rule(r).use_count) << "R" << r;
    EXPECT_GE(g.rule(r).rhs.size(), 2u)
        << "R" << r << " has a degenerate right-hand side";
  }
}

// No digram appears twice without overlap anywhere in the grammar
// (Sequitur's *uniqueness* constraint).
void CheckDigramUniqueness(const Grammar& g) {
  struct Occurrence {
    size_t rule;
    size_t index;
  };
  std::map<std::pair<std::pair<bool, int32_t>, std::pair<bool, int32_t>>,
           std::vector<Occurrence>>
      digrams;
  for (size_t r = 0; r < g.size(); ++r) {
    const auto& rhs = g.rule(r).rhs;
    for (size_t i = 0; i + 1 < rhs.size(); ++i) {
      digrams[{{rhs[i].is_terminal, rhs[i].id},
               {rhs[i + 1].is_terminal, rhs[i + 1].id}}]
          .push_back({r, i});
    }
  }
  for (const auto& [key, occurrences] : digrams) {
    if (occurrences.size() == 1) {
      continue;
    }
    // Multiple occurrences are only legal when they overlap (a run like
    // "x x x" inside one rule): same rule, adjacent indices.
    ASSERT_EQ(occurrences.size(), 2u)
        << "digram appears " << occurrences.size() << " times";
    EXPECT_EQ(occurrences[0].rule, occurrences[1].rule);
    EXPECT_EQ(occurrences[0].index + 1, occurrences[1].index)
        << "non-overlapping duplicate digram";
  }
}

// Every recorded occurrence of every rule expands to exactly the input
// slice it claims to cover.
void CheckOccurrences(const Grammar& g, const std::vector<int32_t>& input) {
  for (size_t r = 0; r < g.size(); ++r) {
    const GrammarRule& rule = g.rule(r);
    const std::vector<int32_t> expansion = g.ExpandToTerminals(r);
    EXPECT_EQ(expansion.size(), rule.expansion_tokens) << "R" << r;
    if (r == 0) {
      EXPECT_EQ(rule.occurrences, std::vector<size_t>{0});
      continue;
    }
    EXPECT_EQ(rule.occurrences.size(), 0u == rule.use_count
                                           ? 0u
                                           : rule.occurrences.size());
    EXPECT_GE(rule.occurrences.size(), rule.use_count);
    for (size_t start : rule.occurrences) {
      ASSERT_LE(start + expansion.size(), input.size());
      for (size_t i = 0; i < expansion.size(); ++i) {
        EXPECT_EQ(expansion[i], input[start + i])
            << "R" << r << " occurrence at " << start << " position " << i;
      }
    }
    // Occurrences ascend.
    for (size_t i = 1; i < rule.occurrences.size(); ++i) {
      EXPECT_LT(rule.occurrences[i - 1], rule.occurrences[i]);
    }
  }
}

void CheckAllInvariants(const Grammar& g, const std::vector<int32_t>& input) {
  EXPECT_EQ(g.ExpandToTerminals(0), input) << "round trip failed";
  EXPECT_EQ(g.num_tokens(), input.size());
  CheckRuleUtility(g);
  CheckDigramUniqueness(g);
  CheckOccurrences(g, input);
}

// --- basic cases ------------------------------------------------------------

TEST(SequiturTest, EmptyInput) {
  auto g = InferGrammar(std::vector<int32_t>{});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->size(), 1u);
  EXPECT_TRUE(g->rule(0).rhs.empty());
  EXPECT_TRUE(g->ExpandToTerminals(0).empty());
}

TEST(SequiturTest, SingleToken) {
  auto g = InferGrammar(Tokens({7}));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->size(), 1u);
  CheckAllInvariants(*g, {7});
}

TEST(SequiturTest, NoRepetitionYieldsFlatGrammar) {
  std::vector<int32_t> input{1, 2, 3, 4, 5};
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->size(), 1u);  // nothing to compress
  CheckAllInvariants(*g, input);
}

TEST(SequiturTest, SimpleRepeatCreatesOneRule) {
  // "abab" -> R0: R1 R1, R1: a b.
  std::vector<int32_t> input{0, 1, 0, 1};
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->size(), 2u);
  EXPECT_EQ(g->rule(0).rhs.size(), 2u);
  EXPECT_EQ(g->rule(1).rhs.size(), 2u);
  EXPECT_EQ(g->rule(1).use_count, 2u);
  EXPECT_EQ(g->rule(1).occurrences, (std::vector<size_t>{0, 2}));
  CheckAllInvariants(*g, input);
}

TEST(SequiturTest, RunsOfOneSymbol) {
  for (size_t len : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 15u, 16u, 17u, 100u}) {
    std::vector<int32_t> input(len, 3);
    auto g = InferGrammar(input);
    ASSERT_TRUE(g.ok()) << "len=" << len;
    CheckAllInvariants(*g, input);
  }
}

TEST(SequiturTest, NegativeTokensRejected) {
  EXPECT_FALSE(InferGrammar(Tokens({1, -1, 2})).ok());
}

TEST(SequiturTest, NestedRepetition) {
  // "abab abab" should produce hierarchy: R1 = ab used inside R2 = R1 R1.
  std::vector<int32_t> input{0, 1, 0, 1, 0, 1, 0, 1};
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  EXPECT_GE(g->size(), 3u) << "expected hierarchical compression";
  CheckAllInvariants(*g, input);
}

// --- the paper's Section 3 worked example -----------------------------------

TEST(SequiturTest, PaperSectionThreeExample) {
  // S = abc abc cba xxx abc abc cba
  std::vector<std::string> words{"abc", "abc", "cba", "xxx",
                                 "abc", "abc", "cba"};
  auto wg = InferGrammarFromWords(words);
  ASSERT_TRUE(wg.ok());
  const Grammar& g = wg->grammar;
  CheckAllInvariants(g, wg->tokens);

  // The repeated block "abc abc cba" is compressed into a rule used twice,
  // with xxx left bare in R0: R0 -> R? xxx R?.
  ASSERT_EQ(g.rule(0).rhs.size(), 3u);
  EXPECT_FALSE(g.rule(0).rhs[0].is_terminal);
  EXPECT_TRUE(g.rule(0).rhs[1].is_terminal);
  EXPECT_EQ(wg->WordOf(g.rule(0).rhs[1].id), "xxx");
  EXPECT_FALSE(g.rule(0).rhs[2].is_terminal);
  EXPECT_EQ(g.rule(0).rhs[0].id, g.rule(0).rhs[2].id);

  // Per-token rule coverage (the paper's subscript annotation): the xxx
  // token is covered by no rule — algorithmically incompressible — while
  // every other token is covered by at least one rule.
  std::vector<int> coverage(wg->tokens.size(), 0);
  for (size_t r = 1; r < g.size(); ++r) {
    for (size_t start : g.rule(r).occurrences) {
      for (size_t i = 0; i < g.rule(r).expansion_tokens; ++i) {
        ++coverage[start + i];
      }
    }
  }
  EXPECT_EQ(coverage[3], 0) << "xxx must be rule-free";
  for (size_t i = 0; i < coverage.size(); ++i) {
    if (i != 3) {
      EXPECT_GE(coverage[i], 1) << "token " << i;
    }
  }
}

TEST(SequiturTest, PaperSectionThreeOneWordGrammar) {
  // S1 (reduced) = aac abc abb acd aac abc; the paper's grammar has a
  // single rule R1 = aac abc used twice, at token offsets 0 and 4.
  std::vector<std::string> words{"aac", "abc", "abb", "acd", "aac", "abc"};
  auto wg = InferGrammarFromWords(words);
  ASSERT_TRUE(wg.ok());
  const Grammar& g = wg->grammar;
  CheckAllInvariants(g, wg->tokens);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.rule(1).occurrences, (std::vector<size_t>{0, 4}));
  EXPECT_EQ(g.rule(1).expansion_tokens, 2u);
  // R0 -> R1 abb acd R1.
  ASSERT_EQ(g.rule(0).rhs.size(), 4u);
  EXPECT_FALSE(g.rule(0).rhs[0].is_terminal);
  EXPECT_EQ(wg->WordOf(g.rule(0).rhs[1].id), "abb");
  EXPECT_EQ(wg->WordOf(g.rule(0).rhs[2].id), "acd");
  EXPECT_FALSE(g.rule(0).rhs[3].is_terminal);
}

// --- compression sanity -------------------------------------------------

TEST(SequiturTest, PeriodicInputCompressesLogarithmically) {
  // 2^k copies of "ab" should give a grammar with O(k) rules whose total
  // right-hand-side size is far below the input size.
  std::vector<int32_t> input;
  for (int i = 0; i < 512; ++i) {
    input.push_back(0);
    input.push_back(1);
  }
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  size_t grammar_size = 0;
  for (const GrammarRule& r : g->rules()) {
    grammar_size += r.rhs.size();
  }
  EXPECT_LT(grammar_size, 64u) << "expected strong compression";
  CheckAllInvariants(*g, input);
}

TEST(SequiturTest, RandomNoiseBarelyCompresses) {
  Rng rng(99);
  std::vector<int32_t> input;
  for (int i = 0; i < 500; ++i) {
    input.push_back(static_cast<int32_t>(rng.UniformInt(1000)));
  }
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  CheckAllInvariants(*g, input);
  // With 1000 distinct symbols over 500 draws, repeats are rare.
  EXPECT_LE(g->size(), 12u);
}

// --- regression corpus ------------------------------------------------------
// Minimized inputs that broke earlier revisions of the digram-index
// maintenance (found by fuzzing): runs of identical symbols whose indexed
// digram was destroyed while an overlapping twin survived unindexed, and
// rule inlining whose spliced boundary digram duplicated an existing one.

TEST(SequiturRegressionTest, OverlappingDigramLosesIndexEntry) {
  // "0 0 0 1 1 1 0 0 0 1 0 1 1 1": the (1,1) digram's index entry used to
  // vanish when its first occurrence was folded, leaving a later (1,1)
  // unfolded — a digram-uniqueness violation.
  std::vector<int32_t> input{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1};
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  CheckAllInvariants(*g, input);
}

TEST(SequiturRegressionTest, ExpandBoundaryDigramDuplicates) {
  // "4 16 16 16 4 16 9 16 16": inlining an underused rule spliced a
  // boundary digram identical to one already present; blind re-indexing
  // (as in the reference implementation) orphaned the other occurrence.
  std::vector<int32_t> input{4, 16, 16, 16, 4, 16, 9, 16, 16};
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  CheckAllInvariants(*g, input);
}

TEST(SequiturRegressionTest, LongRunsMixedWithMotifs) {
  // Runs of length 3-6 interleaved with repeated pairs stress the
  // twin-inheritance path in DeleteDigram.
  std::vector<int32_t> input;
  for (int block = 0; block < 20; ++block) {
    for (int i = 0; i < 3 + block % 4; ++i) {
      input.push_back(7);
    }
    input.push_back(block % 3);
    input.push_back((block + 1) % 3);
  }
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  CheckAllInvariants(*g, input);
}

// --- randomized property sweep ----------------------------------------------

class SequiturPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, size_t, uint64_t>> {};

TEST_P(SequiturPropertyTest, InvariantsHoldOnRandomStrings) {
  const auto [alphabet, length, seed] = GetParam();
  Rng rng(seed);
  std::vector<int32_t> input;
  input.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    input.push_back(static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(alphabet))));
  }
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  CheckAllInvariants(*g, input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SequiturPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 8, 26),
                       ::testing::Values<size_t>(2, 3, 7, 50, 300, 1500),
                       ::testing::Values<uint64_t>(1, 2, 3, 4)));

// Structured random strings: repeated motifs embedded in noise, closer to
// the SAX-word sequences the detectors feed in.
class SequiturMotifPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SequiturMotifPropertyTest, InvariantsHoldOnMotifStrings) {
  Rng rng(GetParam());
  std::vector<int32_t> motif;
  for (int i = 0; i < 8; ++i) {
    motif.push_back(static_cast<int32_t>(rng.UniformInt(5)));
  }
  std::vector<int32_t> input;
  for (int block = 0; block < 60; ++block) {
    if (rng.UniformDouble() < 0.7) {
      input.insert(input.end(), motif.begin(), motif.end());
    } else {
      for (int i = 0; i < 5; ++i) {
        input.push_back(static_cast<int32_t>(rng.UniformInt(50)) + 10);
      }
    }
  }
  auto g = InferGrammar(input);
  ASSERT_TRUE(g.ok());
  CheckAllInvariants(*g, input);
  EXPECT_GT(g->size(), 1u) << "motifs must produce rules";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequiturMotifPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// --- word-level wrapper ------------------------------------------------------

TEST(WordGrammarTest, VocabularyInFirstOccurrenceOrder) {
  auto wg = InferGrammarFromWords({"x", "y", "x", "z"});
  ASSERT_TRUE(wg.ok());
  EXPECT_EQ(wg->vocabulary, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(wg->tokens, (std::vector<int32_t>{0, 1, 0, 2}));
  EXPECT_EQ(wg->WordOf(2), "z");
}

TEST(WordGrammarTest, EmptyWordList) {
  auto wg = InferGrammarFromWords({});
  ASSERT_TRUE(wg.ok());
  EXPECT_TRUE(wg->vocabulary.empty());
  EXPECT_EQ(wg->grammar.size(), 1u);
}

}  // namespace
}  // namespace gva
