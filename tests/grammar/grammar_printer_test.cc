#include "grammar/grammar_printer.h"

#include <string>

#include <gtest/gtest.h>

namespace gva {
namespace {

WordGrammar PaperGrammar() {
  auto wg = InferGrammarFromWords(
      {"abc", "abc", "cba", "xxx", "abc", "abc", "cba"});
  EXPECT_TRUE(wg.ok());
  return std::move(wg).value();
}

TEST(GrammarPrinterTest, RhsRendersTerminalsAndNonTerminals) {
  WordGrammar wg = PaperGrammar();
  const std::string r0 = RuleRhsToString(wg, 0);
  EXPECT_NE(r0.find("xxx"), std::string::npos);
  EXPECT_NE(r0.find("R"), std::string::npos);
}

TEST(GrammarPrinterTest, ExpansionReconstructsWords) {
  WordGrammar wg = PaperGrammar();
  EXPECT_EQ(RuleExpansionToString(wg, 0),
            "abc abc cba xxx abc abc cba");
}

TEST(GrammarPrinterTest, GrammarToStringListsEveryRule) {
  WordGrammar wg = PaperGrammar();
  const std::string text = GrammarToString(wg);
  for (size_t i = 0; i < wg.grammar.size(); ++i) {
    // Appended piecewise: gcc 12 mis-fires -Wrestrict on chained string
    // operator+ at -O2 (PR105651).
    std::string header = "R";
    header += std::to_string(i);
    header += " ->";
    EXPECT_NE(text.find(header), std::string::npos);
  }
}

TEST(GrammarPrinterTest, VerboseIncludesUseCounts) {
  WordGrammar wg = PaperGrammar();
  const std::string text = GrammarToString(wg, /*verbose=*/true);
  EXPECT_NE(text.find("use="), std::string::npos);
  EXPECT_NE(text.find("tokens="), std::string::npos);
}

TEST(GrammarPrinterTest, SingleRuleGrammar) {
  auto wg = InferGrammarFromWords({"a", "b", "c"});
  ASSERT_TRUE(wg.ok());
  EXPECT_EQ(RuleRhsToString(*wg, 0), "a b c");
  EXPECT_EQ(RuleExpansionToString(*wg, 0), "a b c");
}

}  // namespace
}  // namespace gva
