#include <gtest/gtest.h>

#include "grammar/sequitur.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(IncrementalSequiturTest, RejectsNegativeTokens) {
  IncrementalSequitur s;
  EXPECT_TRUE(s.Append(0).ok());
  EXPECT_FALSE(s.Append(-1).ok());
}

TEST(IncrementalSequiturTest, SnapshotEqualsBatchAtEveryPrefix) {
  Rng rng(21);
  std::vector<int32_t> tokens;
  for (int i = 0; i < 200; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.UniformInt(4)));
  }
  IncrementalSequitur incremental;
  for (size_t n = 0; n < tokens.size(); ++n) {
    ASSERT_TRUE(incremental.Append(tokens[n]).ok());
    if (n % 17 != 0) {  // sample a few prefixes
      continue;
    }
    Grammar snapshot = incremental.ExtractGrammar();
    auto batch = InferGrammar(
        std::span<const int32_t>(tokens.data(), n + 1));
    ASSERT_TRUE(batch.ok());
    // Same rule structure: Sequitur is deterministic, and snapshotting must
    // not disturb the induction.
    ASSERT_EQ(snapshot.size(), batch->size()) << "prefix " << n + 1;
    for (size_t r = 0; r < snapshot.size(); ++r) {
      EXPECT_EQ(snapshot.rule(r).rhs, batch->rule(r).rhs);
      EXPECT_EQ(snapshot.rule(r).occurrences, batch->rule(r).occurrences);
    }
  }
}

TEST(IncrementalSequiturTest, AppendContinuesAfterSnapshot) {
  IncrementalSequitur s;
  for (int32_t t : {0, 1, 0, 1}) {
    ASSERT_TRUE(s.Append(t).ok());
  }
  Grammar first = s.ExtractGrammar();
  EXPECT_EQ(first.num_tokens(), 4u);
  for (int32_t t : {0, 1, 0, 1}) {
    ASSERT_TRUE(s.Append(t).ok());
  }
  Grammar second = s.ExtractGrammar();
  EXPECT_EQ(second.num_tokens(), 8u);
  EXPECT_EQ(second.ExpandToTerminals(0),
            (std::vector<int32_t>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(IncrementalSequiturTest, MoveTransfersState) {
  IncrementalSequitur a;
  for (int32_t t : {5, 6, 5, 6}) {
    ASSERT_TRUE(a.Append(t).ok());
  }
  IncrementalSequitur b = std::move(a);
  EXPECT_EQ(b.num_tokens(), 4u);
  EXPECT_EQ(b.ExtractGrammar().ExpandToTerminals(0),
            (std::vector<int32_t>{5, 6, 5, 6}));
}

}  // namespace
}  // namespace gva
