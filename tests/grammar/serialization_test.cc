#include "grammar/serialization.h"

#include <cstdio>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gva {
namespace {

WordGrammar Demo() {
  auto wg = InferGrammarFromWords(
      {"abc", "abc", "cba", "xxx", "abc", "abc", "cba"});
  EXPECT_TRUE(wg.ok());
  return std::move(wg).value();
}

void ExpectEqualGrammars(const WordGrammar& a, const WordGrammar& b) {
  EXPECT_EQ(a.vocabulary, b.vocabulary);
  EXPECT_EQ(a.tokens, b.tokens);
  ASSERT_EQ(a.grammar.size(), b.grammar.size());
  EXPECT_EQ(a.grammar.num_tokens(), b.grammar.num_tokens());
  for (size_t r = 0; r < a.grammar.size(); ++r) {
    EXPECT_EQ(a.grammar.rule(r).rhs, b.grammar.rule(r).rhs) << "R" << r;
    EXPECT_EQ(a.grammar.rule(r).use_count, b.grammar.rule(r).use_count);
    EXPECT_EQ(a.grammar.rule(r).occurrences, b.grammar.rule(r).occurrences);
    EXPECT_EQ(a.grammar.rule(r).expansion_tokens,
              b.grammar.rule(r).expansion_tokens);
  }
}

TEST(GrammarSerializationTest, RoundTrip) {
  WordGrammar original = Demo();
  auto restored = DeserializeGrammar(SerializeGrammar(original));
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectEqualGrammars(original, *restored);
}

TEST(GrammarSerializationTest, RoundTripRandomGrammars) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::string> words;
    for (int i = 0; i < 200; ++i) {
      // Appended piecewise: gcc 12 mis-fires -Wrestrict on chained
      // string operator+ at -O2 (PR105651).
      std::string word = "w";
      word += std::to_string(rng.UniformInt(6));
      words.push_back(std::move(word));
    }
    auto wg = InferGrammarFromWords(words);
    ASSERT_TRUE(wg.ok());
    auto restored = DeserializeGrammar(SerializeGrammar(*wg));
    ASSERT_TRUE(restored.ok()) << trial;
    ExpectEqualGrammars(*wg, *restored);
  }
}

TEST(GrammarSerializationTest, FormatIsHumanReadable) {
  const std::string text = SerializeGrammar(Demo());
  EXPECT_NE(text.find("gva-grammar 1"), std::string::npos);
  EXPECT_NE(text.find("w abc"), std::string::npos);
  EXPECT_NE(text.find("rule 0"), std::string::npos);
}

TEST(GrammarSerializationTest, RejectsMalformedInputs) {
  EXPECT_FALSE(DeserializeGrammar("").ok());
  EXPECT_FALSE(DeserializeGrammar("not a grammar\n").ok());
  // Missing rules.
  EXPECT_FALSE(
      DeserializeGrammar("gva-grammar 1\ntokens 0\nvocab 0\n").ok());
  // Out-of-range rule reference.
  EXPECT_FALSE(DeserializeGrammar("gva-grammar 1\ntokens 1\nvocab 1\n"
                                  "w a\nrule 0 0 : R7\n")
                   .ok());
  // Out-of-range terminal.
  EXPECT_FALSE(DeserializeGrammar("gva-grammar 1\ntokens 1\nvocab 1\n"
                                  "w a\nrule 0 0 : t9\n")
                   .ok());
  // Token-count mismatch.
  EXPECT_FALSE(DeserializeGrammar("gva-grammar 1\ntokens 5\nvocab 1\n"
                                  "w a\nrule 0 0 : t0 t0\n")
                   .ok());
  // Rule cycle.
  EXPECT_FALSE(DeserializeGrammar("gva-grammar 1\ntokens 0\nvocab 0\n"
                                  "rule 0 0 : R1\nrule 1 2 : R1\n")
                   .ok());
}

TEST(GrammarSerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gva_grammar_test.txt";
  WordGrammar original = Demo();
  ASSERT_TRUE(WriteGrammarFile(path, original).ok());
  auto restored = ReadGrammarFile(path);
  ASSERT_TRUE(restored.ok());
  ExpectEqualGrammars(original, *restored);
  std::remove(path.c_str());
}

TEST(GrammarSerializationTest, MissingFileFails) {
  EXPECT_FALSE(ReadGrammarFile("/no/such/grammar.txt").ok());
}

}  // namespace
}  // namespace gva
