#include "backend/backend.h"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/rng.h"

namespace gva::backend {
namespace {

TEST(BackendRegistryTest, ScalarIsAlwaysAvailable) {
  const KernelBackend* scalar = ScalarBackend();
  ASSERT_NE(scalar, nullptr);
  EXPECT_STREQ(scalar->name, "scalar");
  EXPECT_EQ(scalar->id, BackendId::kScalar);
  EXPECT_EQ(scalar->lanes, 1u);
  EXPECT_TRUE(scalar->bit_exact_distance);
  EXPECT_NE(scalar->znorm_distance_block, nullptr);
  EXPECT_NE(scalar->paa_segment_sums, nullptr);
}

TEST(BackendRegistryTest, AvailableBackendsEndsWithScalarAndIsComplete) {
  const std::vector<const KernelBackend*> backends = AvailableBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.back(), ScalarBackend());
  // Every advertised backend has a well-formed table.
  for (const KernelBackend* b : backends) {
    EXPECT_NE(b->name, nullptr);
    EXPECT_NE(b->znorm_distance_block, nullptr);
    EXPECT_NE(b->paa_segment_sums, nullptr);
    EXPECT_GE(b->lanes, 1u);
  }
  // SIMD backends that the registry hands out must also be findable by
  // name, and vice versa.
  if (const KernelBackend* avx2 = Avx2Backend()) {
    EXPECT_EQ(FindBackend("avx2"), avx2);
    EXPECT_FALSE(avx2->bit_exact_distance);
    EXPECT_EQ(avx2->lanes, 4u);
  }
  if (const KernelBackend* neon = NeonBackend()) {
    EXPECT_EQ(FindBackend("neon"), neon);
    EXPECT_FALSE(neon->bit_exact_distance);
    EXPECT_EQ(neon->lanes, 2u);
  }
}

TEST(BackendRegistryTest, FindBackendResolvesNamesAndAuto) {
  EXPECT_EQ(FindBackend("scalar"), ScalarBackend());
  // auto = first entry of the preference-ordered list (fastest available).
  EXPECT_EQ(FindBackend("auto"), AvailableBackends().front());
  EXPECT_EQ(FindBackend("opencl"), nullptr);
  EXPECT_EQ(FindBackend(""), nullptr);
}

TEST(BackendRegistryTest, SetActiveBackendAppliesAndRejects) {
  ASSERT_TRUE(SetActiveBackend("scalar").ok());
  EXPECT_EQ(&ActiveBackend(), ScalarBackend());

  const Status bad = SetActiveBackend("no-such-backend");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  // A failed set leaves the previous selection in place.
  EXPECT_EQ(&ActiveBackend(), ScalarBackend());

  ASSERT_TRUE(SetActiveBackend("auto").ok());
  EXPECT_EQ(&ActiveBackend(), AvailableBackends().front());
}

TEST(BackendRegistryTest, AnnounceSurvivesMetricsReset) {
  // obs::ObsSession's constructor resets every gauge, erasing the
  // backend.selected record made at selection time; AnnounceActiveBackend
  // is the documented way to restore it (gva_cli and MakeObsSession call
  // it right after starting a session).
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "metrics compiled out";
  }
  ASSERT_TRUE(SetActiveBackend("scalar").ok());
  obs::GlobalMetrics().Reset();
  EXPECT_EQ(obs::GlobalMetrics().gauge("backend.selected").value(), 0);
  AnnounceActiveBackend();
  EXPECT_EQ(obs::GlobalMetrics().gauge("backend.selected").value(),
            static_cast<int64_t>(BackendId::kScalar));
  ASSERT_TRUE(SetActiveBackend("auto").ok());
  EXPECT_EQ(obs::GlobalMetrics().gauge("backend.selected").value(),
            static_cast<int64_t>(ActiveBackend().id));
}

TEST(BackendPaaSegmentSumsTest, BitIdenticalToScalarOnEveryBackend) {
  // The PAA kernel's contract is bit-exactness: each output is the single
  // IEEE subtraction out[j] = prefix[(j+1)*step] - prefix[j*step], so the
  // SAX guarded-fallback layer may ignore dispatch entirely. Cover lane
  // tails (segments not a multiple of 4), step 1, and large magnitudes.
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t segments = 1 + rng.UniformInt(33);  // 1..33
    const size_t step = 1 + rng.UniformInt(64);      // 1..64
    std::vector<double> prefix(segments * step + 1);
    double acc = 0.0;
    for (double& p : prefix) {
      p = acc;
      acc += (rng.UniformDouble() - 0.5) * 2000.0;
    }
    std::vector<double> want(segments);
    ScalarBackend()->paa_segment_sums(prefix.data(), segments, step,
                                      want.data());
    for (const KernelBackend* b : AvailableBackends()) {
      std::vector<double> got(segments, -1.0);
      b->paa_segment_sums(prefix.data(), segments, step, got.data());
      for (size_t j = 0; j < segments; ++j) {
        EXPECT_EQ(got[j], want[j])
            << b->name << " trial=" << trial << " j=" << j
            << " segments=" << segments << " step=" << step;
      }
    }
  }
}

TEST(BackendDistanceKernelTest, InfiniteLimitNeverAbandons) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Rng rng(7);
  std::vector<double> a(300);
  std::vector<double> b(300);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  for (const KernelBackend* backend : AvailableBackends()) {
    double sum_sq = -1.0;
    EXPECT_TRUE(backend->znorm_distance_block(a.data(), b.data(), a.size(),
                                              0.0, 1.0, 0.0, 1.0, kInf,
                                              &sum_sq))
        << backend->name;
    EXPECT_GE(sum_sq, 0.0) << backend->name;
  }
}

}  // namespace
}  // namespace gva::backend
