// Backend differential suite: every backend this host can run, validated
// against the portable scalar backend — the kernel level (randomized
// lengths 2..1024 with non-lane-multiple tails, flat windows, abandon and
// no-abandon limits), the discretization level (byte-identical SAX
// records), and the search level (brute force / HOTSAX / RRA return the
// same discords under GVA_BACKEND=scalar and auto, at 1 and 4 threads).
//
// Agreement contract (DESIGN.md §11): abandon decisions are identical for
// limits away from the rounding boundary; completed distances are bitwise
// equal when the backend advertises bit_exact_distance and within 1e-9
// relative tolerance otherwise (the SIMD summation-order exception); and
// lengths below one abandon block never enter a vector loop, so they are
// bitwise equal on every backend. On hosts with no SIMD backend the suite
// degenerates to scalar-vs-scalar and passes trivially.

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.h"
#include "core/rra.h"
#include "datasets/simple.h"
#include "discord/brute_force.h"
#include "discord/distance.h"
#include "discord/hotsax.h"
#include "sax/sax_transform.h"
#include "util/rng.h"

namespace gva {
namespace {

using backend::AvailableBackends;
using backend::KernelBackend;
using backend::ScalarBackend;

/// A series with oscillating stretches, exactly-flat and sub-epsilon-noise
/// stretches (to hit the centering-only windows), and random-walk tails.
std::vector<double> MakeMixedSeries(size_t n, uint64_t seed) {
  std::vector<double> series(n);
  Rng rng(seed);
  double walk = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t phase = (i / 97) % 4;
    switch (phase) {
      case 0:
        series[i] = std::sin(0.21 * static_cast<double>(i));
        break;
      case 1:
        series[i] = 2.5;  // exactly flat
        break;
      case 2:
        series[i] = -1.0 + 1e-4 * rng.Gaussian();  // flat up to sub-eps noise
        break;
      default:
        walk += 0.1 * rng.Gaussian();
        series[i] = walk;
        break;
    }
  }
  return series;
}

void ExpectDistanceAgreement(const KernelBackend* b, double got, double want,
                             size_t length, const std::string& where) {
  if (got == SubsequenceDistance::kInfinity ||
      want == SubsequenceDistance::kInfinity) {
    EXPECT_EQ(got, want) << b->name << " abandon decision diverged " << where;
  } else if (b->bit_exact_distance || length < SubsequenceDistance::kBlock) {
    EXPECT_EQ(got, want) << b->name << " not bit-exact " << where;
  } else {
    EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, want))
        << b->name << " outside tolerance " << where;
  }
}

TEST(BackendDifferentialTest, RandomizedLengthsAgainstScalar) {
  const std::vector<double> series = MakeMixedSeries(4096, 99);
  SubsequenceDistance scalar_dist(series, kDefaultZNormEpsilon,
                                  ScalarBackend());
  Rng rng(31337);

  for (int trial = 0; trial < 400; ++trial) {
    // 2..1024, biased toward small lengths so tails and sub-block cases
    // (including every residue mod the lane widths) are well covered.
    const size_t length =
        trial % 2 == 0 ? 2 + rng.UniformInt(63) : 2 + rng.UniformInt(1023);
    const size_t p = rng.UniformInt(series.size() - length + 1);
    const size_t q = rng.UniformInt(series.size() - length + 1);
    const double truth = scalar_dist.Distance(p, q, length);

    // Limits: no limit, a clearly-losing limit (abandons), a clearly-
    // winning limit (completes). Factors keep the limit away from the
    // rounding boundary at the true distance.
    const double limits[] = {SubsequenceDistance::kInfinity,
                             truth * 0.6 + 1e-6, truth * 1.7 + 1e-6};
    for (const KernelBackend* b : AvailableBackends()) {
      SubsequenceDistance dist(series, kDefaultZNormEpsilon, b);
      for (const double limit : limits) {
        const double got = dist.Distance(p, q, length, limit);
        const double want = scalar_dist.Distance(p, q, length, limit);
        ExpectDistanceAgreement(
            b, got, want, length,
            "p=" + std::to_string(p) + " q=" + std::to_string(q) +
                " len=" + std::to_string(length));
      }
    }
  }
}

TEST(BackendDifferentialTest, LimitedPathAgreesWithFullPathPerBackend) {
  // Within one backend, a limit that never trips must return the same bits
  // as the unlimited fast path — the two paths share their accumulation
  // structure by contract, on every backend.
  const std::vector<double> series = MakeMixedSeries(2048, 7);
  Rng rng(11);
  for (const KernelBackend* b : AvailableBackends()) {
    SubsequenceDistance dist(series, kDefaultZNormEpsilon, b);
    for (int trial = 0; trial < 100; ++trial) {
      const size_t length = 2 + rng.UniformInt(1023);
      const size_t p = rng.UniformInt(series.size() - length + 1);
      const size_t q = rng.UniformInt(series.size() - length + 1);
      const double full = dist.Distance(p, q, length);
      EXPECT_EQ(dist.Distance(p, q, length, full * 2.0 + 1.0), full)
          << b->name << " len=" << length;
    }
  }
}

TEST(BackendDifferentialTest, FlatWindowsAgreeBitwiseOnEveryBackend) {
  // Identical flat windows give zero in every lane, and zero sums are
  // exact — the distance must be exactly 0.0, not merely small, on every
  // backend.
  std::vector<double> series(600, 4.0);
  for (size_t i = 300; i < 600; ++i) {
    series[i] = -2.0;
  }
  for (const KernelBackend* b : AvailableBackends()) {
    SubsequenceDistance dist(series, kDefaultZNormEpsilon, b);
    EXPECT_EQ(dist.Distance(0, 100, 150), 0.0) << b->name;
    EXPECT_EQ(dist.Distance(310, 400, 100), 0.0) << b->name;
  }
}

TEST(BackendDifferentialTest, DiscretizeIsByteIdenticalUnderEveryBackend) {
  // Dispatch reaches SAX only through PaaSegmentSums, which is bit-exact
  // everywhere, so the words and offsets must match byte for byte — both
  // for divisible geometry (the batched backend path) and non-divisible
  // geometry (the generic fractional path).
  const std::vector<double> series = MakeMixedSeries(5000, 5);
  for (const size_t window : {120u, 97u}) {  // divisible and ragged vs paa=6
    SaxOptions opts;
    opts.window = window;
    opts.paa_size = 6;
    opts.alphabet_size = 5;

    ASSERT_TRUE(backend::SetActiveBackend("scalar").ok());
    const auto reference = Discretize(series, opts);
    ASSERT_TRUE(reference.ok()) << reference.status();

    for (const KernelBackend* b : AvailableBackends()) {
      ASSERT_TRUE(backend::SetActiveBackend(b->name).ok());
      const auto got = Discretize(series, opts);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got->words, reference->words) << b->name << " w=" << window;
      EXPECT_EQ(got->offsets, reference->offsets)
          << b->name << " w=" << window;
    }
    ASSERT_TRUE(backend::SetActiveBackend("auto").ok());
  }
}

// ---------------------------------------------------------------------------
// Search-level: dispatch must never change reported discords.

class BackendSearchDifferentialTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t threads() const { return GetParam(); }

  /// Runs `fn` once under the scalar backend and once under auto, restores
  /// auto, and returns the two results.
  template <typename Fn>
  auto UnderBothBackends(Fn&& fn) {
    EXPECT_TRUE(backend::SetActiveBackend("scalar").ok());
    auto scalar_result = fn();
    EXPECT_TRUE(backend::SetActiveBackend("auto").ok());
    auto auto_result = fn();
    return std::make_pair(std::move(scalar_result), std::move(auto_result));
  }
};

INSTANTIATE_TEST_SUITE_P(Threads, BackendSearchDifferentialTest,
                         ::testing::Values(1u, 4u),
                         [](const auto& param_info) {
                           return "threads_" + std::to_string(param_info.param);
                         });

void ExpectSameDiscords(const DiscordResult& scalar_result,
                        const DiscordResult& auto_result) {
  ASSERT_EQ(scalar_result.discords.size(), auto_result.discords.size());
  for (size_t k = 0; k < scalar_result.discords.size(); ++k) {
    EXPECT_EQ(auto_result.discords[k].position,
              scalar_result.discords[k].position)
        << "rank " << k;
    EXPECT_EQ(auto_result.discords[k].length,
              scalar_result.discords[k].length)
        << "rank " << k;
    EXPECT_NEAR(auto_result.discords[k].distance,
                scalar_result.discords[k].distance,
                1e-9 * std::max(1.0, scalar_result.discords[k].distance))
        << "rank " << k;
  }
}

TEST_P(BackendSearchDifferentialTest, BruteForceInvariantUnderDispatch) {
  const LabeledSeries data = MakeSineWithAnomaly(900, 60.0, 0.04, 450, 50, 11);
  auto [scalar_result, auto_result] = UnderBothBackends([&] {
    auto r = FindDiscordsBruteForce(data.series, 60, 3, threads());
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(*r);
  });
  ExpectSameDiscords(scalar_result, auto_result);
}

TEST_P(BackendSearchDifferentialTest, HotSaxInvariantUnderDispatch) {
  const LabeledSeries data = MakeSineWithAnomaly(900, 60.0, 0.04, 450, 50, 11);
  HotSaxOptions options;
  options.sax.window = 60;
  options.top_k = 3;
  options.num_threads = threads();
  auto [scalar_result, auto_result] = UnderBothBackends([&] {
    auto r = FindDiscordsHotSax(data.series, options);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(*r);
  });
  ExpectSameDiscords(scalar_result, auto_result);
}

TEST_P(BackendSearchDifferentialTest, RraInvariantUnderDispatch) {
  const LabeledSeries data = MakeSineWithAnomaly(1200, 80.0, 0.05, 600, 60, 3);
  RraOptions options;
  options.sax.window = 80;
  options.sax.paa_size = 4;
  options.sax.alphabet_size = 4;
  options.top_k = 2;
  options.num_threads = threads();
  auto [scalar_result, auto_result] = UnderBothBackends([&] {
    auto r = FindRraDiscords(data.series, options);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r->result);
  });
  ExpectSameDiscords(scalar_result, auto_result);
}

}  // namespace
}  // namespace gva
