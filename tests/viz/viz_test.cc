#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "viz/ascii_plot.h"
#include "viz/report.h"

namespace gva {
namespace {

TEST(AsciiPlotTest, DimensionsMatchOptions) {
  std::vector<double> v = MakeSine(500, 50.0, 0.0, 1);
  AsciiPlotOptions opts;
  opts.width = 60;
  opts.height = 8;
  std::string chart = RenderSeries(v, {}, opts);
  // height rows + separator + marker row, each 60 chars + newline.
  size_t lines = 0;
  for (char c : chart) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, opts.height + 2);
  EXPECT_EQ(chart.find('\n'), opts.width);
}

TEST(AsciiPlotTest, EmptyInput) {
  EXPECT_EQ(RenderSeries(std::vector<double>{}), "");
}

TEST(AsciiPlotTest, HighlightsMarkColumns) {
  std::vector<double> v = MakeSine(100, 20.0, 0.0, 2);
  AsciiPlotOptions opts;
  opts.width = 50;
  opts.height = 5;
  std::string plain = RenderSeries(v, {}, opts);
  std::string marked = RenderSeries(v, {Interval{40, 60}}, opts);
  EXPECT_EQ(plain.find('!'), std::string::npos);
  EXPECT_NE(marked.find('!'), std::string::npos);
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotCrash) {
  std::vector<double> v(100, 3.0);
  std::string chart = RenderSeries(v);
  EXPECT_FALSE(chart.empty());
}

TEST(DensityShadingTest, ZeroDensityIsBlank) {
  std::vector<uint32_t> d(100, 0);
  std::string shading = RenderDensityShading(d, 50);
  EXPECT_EQ(shading, std::string(50, ' '));
}

TEST(DensityShadingTest, HighDensityIsDarkest) {
  std::vector<uint32_t> d(100, 10);
  d[50] = 0;
  std::string shading = RenderDensityShading(d, 100);
  EXPECT_EQ(shading[10], '@');
  EXPECT_EQ(shading[50], ' ');
}

TEST(DensityShadingTest, MonotoneInDensity) {
  std::vector<uint32_t> d;
  for (uint32_t i = 0; i < 100; ++i) {
    d.push_back(i);
  }
  std::string shading = RenderDensityShading(d, 10);
  static const std::string kShades = " .:-=+*#%@";
  for (size_t i = 1; i < shading.size(); ++i) {
    EXPECT_LE(kShades.find(shading[i - 1]), kShades.find(shading[i]));
  }
}

TEST(ReportTest, DiscordTableListsRanks) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.03, 600, 80, 4);
  RraOptions opts;
  opts.sax.window = 120;
  opts.top_k = 2;
  auto detection = FindRraDiscords(data.series, opts);
  ASSERT_TRUE(detection.ok());
  std::string table = DiscordTable(*detection);
  EXPECT_NE(table.find("Rank"), std::string::npos);
  EXPECT_NE(table.find("distance calls"), std::string::npos);
}

TEST(ReportTest, DensityTableAndRuleStats) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.03, 600, 80, 4);
  SaxOptions sax;
  sax.window = 120;
  auto detection = DetectDensityAnomalies(data.series, sax, {});
  ASSERT_TRUE(detection.ok());
  EXPECT_NE(DensityAnomalyTable(*detection).find("Rank"), std::string::npos);
  std::string stats = RuleStatsTable(detection->decomposition);
  EXPECT_NE(stats.find("Rule"), std::string::npos);
  EXPECT_NE(stats.find("R1"), std::string::npos);
}

}  // namespace
}  // namespace gva
