#include "viz/svg.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "datasets/simple.h"

namespace gva {
namespace {

TEST(SvgTest, EmptyFigureIsValidSvg) {
  SvgFigure figure("empty");
  const std::string svg = figure.ToSvg();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("empty"), std::string::npos);
}

TEST(SvgTest, SeriesPanelContainsPolylineAndHighlight) {
  SvgFigure figure("demo");
  std::vector<double> values = MakeSine(500, 50.0, 0.05, 1);
  figure.AddSeriesPanel("series", values, {Interval{100, 150}});
  EXPECT_EQ(figure.panels(), 1u);
  const std::string svg = figure.ToSvg();
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("series"), std::string::npos);
}

TEST(SvgTest, DensityPanelContainsPolygon) {
  SvgFigure figure("demo");
  std::vector<uint32_t> density(300, 5);
  density[150] = 0;
  figure.AddDensityPanel("density", density);
  EXPECT_NE(figure.ToSvg().find("<polygon"), std::string::npos);
}

TEST(SvgTest, StemPanelDrawsLines) {
  SvgFigure figure("demo");
  figure.AddStemPanel("nn", {10, 50, 90}, {1.0, 2.5, 0.5}, 100);
  const std::string svg = figure.ToSvg();
  EXPECT_NE(svg.find("<line"), std::string::npos);
}

TEST(SvgTest, StemPanelSkipsNonFinite) {
  SvgFigure figure("demo");
  figure.AddStemPanel(
      "nn", {10, 50},
      {std::numeric_limits<double>::infinity(), 1.0}, 100);
  const std::string svg = figure.ToSvg();
  // Exactly one stem line (plus no inf coordinates anywhere).
  EXPECT_EQ(svg.find("inf"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgTest, MismatchedStemInputsYieldEmptyPanel) {
  SvgFigure figure("demo");
  figure.AddStemPanel("nn", {1, 2, 3}, {1.0}, 100);
  EXPECT_EQ(figure.panels(), 1u);
  EXPECT_EQ(figure.ToSvg().find("<line"), std::string::npos);
}

TEST(SvgTest, FlatSeriesDoesNotDivideByZero) {
  SvgFigure figure("demo");
  std::vector<double> flat(100, 3.0);
  figure.AddSeriesPanel("flat", flat);
  const std::string svg = figure.ToSvg();
  EXPECT_EQ(svg.find("inf"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gva_svg_test.svg";
  SvgFigure figure("file test");
  figure.AddSeriesPanel("s", MakeSine(200, 25.0, 0.0, 2));
  ASSERT_TRUE(figure.WriteFile(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, figure.ToSvg());
  std::remove(path.c_str());
}

TEST(SvgTest, WriteFileToBadPathFails) {
  SvgFigure figure("x");
  EXPECT_FALSE(figure.WriteFile("/nonexistent/dir/f.svg").ok());
}

TEST(SvgTest, LongSeriesIsDecimated) {
  // 200k points must not produce 200k polyline vertices.
  SvgFigure figure("big", 960);
  std::vector<double> values = MakeSine(200000, 500.0, 0.0, 3);
  figure.AddSeriesPanel("s", values);
  const std::string svg = figure.ToSvg();
  size_t commas = 0;
  for (char c : svg) {
    if (c == ',') {
      ++commas;
    }
  }
  EXPECT_LT(commas, 10000u);
}

}  // namespace
}  // namespace gva
