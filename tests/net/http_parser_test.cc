#include "net/http.h"

#include <string>

#include <gtest/gtest.h>

namespace gva::net {
namespace {

using State = HttpParser::State;

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_EQ(parser.request().query, "");
  EXPECT_TRUE(parser.request().body.empty());
  const std::string* host = parser.request().FindHeader("host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(*host, "localhost");
  parser.ConsumeRequest();
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpParser parser;
  parser.Feed(
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
  ASSERT_EQ(parser.Parse(), State::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "hello world");
}

// The poll() loop delivers bytes in whatever fragments the kernel hands
// out. Feeding the request one byte at a time must produce exactly the
// same parse as one contiguous read.
TEST(HttpParserTest, SurvivesTornReadsByteByByte) {
  const std::string raw =
      "POST /v1/jobs?tenant=acme HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Gva-Tenant: acme\r\n"
      "Content-Length: 9\r\n"
      "\r\n"
      "{\"a\": 1}\n";
  HttpParser parser;
  for (size_t i = 0; i < raw.size(); ++i) {
    parser.Feed(std::string_view(&raw[i], 1));
    const State state = parser.Parse();
    if (i + 1 < raw.size()) {
      ASSERT_EQ(state, State::kNeedMore) << "at byte " << i;
    } else {
      ASSERT_EQ(state, State::kComplete);
    }
  }
  EXPECT_EQ(parser.request().path, "/v1/jobs");
  EXPECT_EQ(parser.request().query, "tenant=acme");
  EXPECT_EQ(parser.request().body, "{\"a\": 1}\n");
  const std::string* tenant = parser.request().FindHeader("x-gva-tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(*tenant, "acme");
}

// A body split across an arbitrary boundary must stitch back together.
TEST(HttpParserTest, SurvivesTornReadsAtEveryBoundary) {
  const std::string raw =
      "PUT /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  for (size_t split = 1; split < raw.size(); ++split) {
    HttpParser parser;
    parser.Feed(std::string_view(raw).substr(0, split));
    parser.Parse();  // kNeedMore or (never) kComplete before full input
    parser.Feed(std::string_view(raw).substr(split));
    ASSERT_EQ(parser.Parse(), State::kComplete) << "split at " << split;
    EXPECT_EQ(parser.request().body, "abcd");
  }
}

// Two requests in one read: the first parses, ConsumeRequest() keeps the
// second, and the parser re-arms.
TEST(HttpParserTest, HandlesPipelinedRequests) {
  HttpParser parser;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  parser.ConsumeRequest();
  ASSERT_EQ(parser.Parse(), State::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.request().body, "hi");
  parser.ConsumeRequest();
  ASSERT_EQ(parser.Parse(), State::kComplete);
  EXPECT_EQ(parser.request().path, "/c");
  parser.ConsumeRequest();
  EXPECT_EQ(parser.Parse(), State::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, AcceptsBareLfLineEndings) {
  HttpParser parser;
  parser.Feed("GET /healthz HTTP/1.1\nHost: x\n\n");
  ASSERT_EQ(parser.Parse(), State::kComplete);
  EXPECT_EQ(parser.request().path, "/healthz");
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'a') +
              "\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

// Headers that never terminate must trip the limit without waiting for a
// blank line that will never come.
TEST(HttpParserTest, UnterminatedHeadersTrip431BeforeBlankLine) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 64;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Drip: ");
  EXPECT_EQ(parser.Parse(), State::kNeedMore);
  parser.Feed(std::string(200, 'a'));  // still no blank line
  ASSERT_EQ(parser.Parse(), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, DeclaredBodyOverLimitIs413) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  parser.Feed("POST /v1/jobs HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, MalformedContentLengthIs400) {
  for (const char* bad : {"abc", "-1", "1.5", "1 2", "0x10", "", "+3"}) {
    HttpParser parser;
    parser.Feed(std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
                "\r\n\r\n");
    ASSERT_EQ(parser.Parse(), State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(HttpParserTest, ConflictingContentLengthFieldsAre400) {
  HttpParser parser;
  parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, TransferEncodingIs400) {
  HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, MalformedRequestLinesAre400) {
  const char* bad_requests[] = {
      "GET\r\n\r\n",                       // no target
      "GET /\r\n\r\n",                     // no version
      " GET / HTTP/1.1\r\n\r\n",           // leading space
      "GET / SPDY/3\r\n\r\n",              // wrong protocol
      "GET / HTTP/2\r\n\r\n",              // unsupported major version
      "GET nothing HTTP/1.1\r\n\r\n",      // target not absolute
      "GET / HTTP/1.1\r\nbad header\r\n\r\n",   // header without colon
      "GET / HTTP/1.1\r\n: empty\r\n\r\n",      // empty header name
      "GET / HTTP/1.1\r\na b: split\r\n\r\n",   // space in header name
  };
  for (const char* raw : bad_requests) {
    HttpParser parser;
    parser.Feed(raw);
    ASSERT_EQ(parser.Parse(), State::kError) << raw;
    EXPECT_EQ(parser.error_status(), 400) << raw;
  }
}

TEST(HttpParserTest, ErrorStateIsSticky) {
  HttpParser parser;
  parser.Feed("BROKEN\r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kError);
  parser.Feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.Parse(), State::kError);  // still poisoned: close it
}

TEST(HttpParserTest, HeaderNamesLowercasedValuesTrimmed) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nX-GVA-Tenant:   Acme-1  \r\n\r\n");
  ASSERT_EQ(parser.Parse(), State::kComplete);
  const std::string* tenant = parser.request().FindHeader("x-gva-tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(*tenant, "Acme-1");  // value case preserved, whitespace trimmed
}

// The query-string normalization regression (satellite fix): a target with
// a query or fragment routes on the bare path, with the query split out.
TEST(NormalizeTargetTest, SplitsQueryAndDropsFragment) {
  std::string path;
  std::string query;
  NormalizeTarget("/metrics?x=1&y=2", &path, &query);
  EXPECT_EQ(path, "/metrics");
  EXPECT_EQ(query, "x=1&y=2");
  NormalizeTarget("/healthz#frag", &path, &query);
  EXPECT_EQ(path, "/healthz");
  EXPECT_EQ(query, "");
  NormalizeTarget("/v1/jobs?tenant=a#b", &path, &query);
  EXPECT_EQ(path, "/v1/jobs");
  EXPECT_EQ(query, "tenant=a");
  NormalizeTarget("/plain", &path, &query);
  EXPECT_EQ(path, "/plain");
  EXPECT_EQ(query, "");
}

TEST(NormalizeTargetTest, ParserAppliesNormalization) {
  HttpParser parser;
  parser.Feed("GET /v1/jobs?tenant=acme&limit=5#top HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.Parse(), HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/v1/jobs?tenant=acme&limit=5#top");
  EXPECT_EQ(parser.request().path, "/v1/jobs");
  EXPECT_EQ(parser.request().query, "tenant=acme&limit=5");
}

TEST(QueryParamTest, ExtractsValues) {
  EXPECT_EQ(QueryParam("tenant=acme&limit=5", "tenant"), "acme");
  EXPECT_EQ(QueryParam("tenant=acme&limit=5", "limit"), "5");
  EXPECT_EQ(QueryParam("tenant=acme", "missing"), "");
  EXPECT_EQ(QueryParam("", "tenant"), "");
  EXPECT_EQ(QueryParam("flag&tenant=x", "flag"), "");   // valueless key
  EXPECT_EQ(QueryParam("flag&tenant=x", "tenant"), "x");
  EXPECT_EQ(QueryParam("a=1&a=2", "a"), "1");           // first wins
  EXPECT_EQ(QueryParam("ab=1", "a"), "");               // no prefix match
}

TEST(SerializeResponseTest, EmitsStatusLineHeadersAndBody) {
  HttpResponse response;
  response.status = 429;
  response.content_type = "application/json";
  response.body = "{}";
  response.extra_headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n\r\n{}"), std::string::npos);
}

TEST(SerializeResponseTest, KeepAliveHeaderTracksFlag) {
  HttpResponse response;
  response.keep_alive = true;
  EXPECT_NE(SerializeResponse(response).find("Connection: keep-alive"),
            std::string::npos);
}

}  // namespace
}  // namespace gva::net
