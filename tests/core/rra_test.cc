#include "core/rra.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"
#include "datasets/tek.h"
#include "discord/brute_force.h"
#include "discord/hotsax.h"

namespace gva {
namespace {

RraOptions Opts(size_t window, size_t paa = 4, size_t alpha = 4,
                size_t top_k = 1) {
  RraOptions o;
  o.sax.window = window;
  o.sax.paa_size = paa;
  o.sax.alphabet_size = alpha;
  o.top_k = top_k;
  return o;
}

TEST(RraTest, FindsPlantedSineAnomaly) {
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 120, 3);
  auto detection = FindRraDiscords(data.series, Opts(200));
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->result.discords.empty());
  const DiscordRecord& best = detection->result.discords[0];
  EXPECT_TRUE(HitsAnyTruth(best.span(), data.anomalies, 200))
      << "best discord at [" << best.position << ", "
      << best.position + best.length << ")";
}

TEST(RraTest, FindsPlantedEcgAnomaly) {
  EcgOptions ecg;
  ecg.num_beats = 60;
  ecg.anomalous_beats = {35};
  LabeledSeries data = MakeEcg(ecg);
  RraOptions opts = Opts(120, 6, 4);
  auto detection = FindRraDiscords(data.series, opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->result.discords.empty());
  EXPECT_TRUE(HitsAnyTruth(detection->result.discords[0].span(),
                           data.anomalies, 120));
}

TEST(RraTest, UsesFarFewerCallsThanHotSax) {
  EcgOptions ecg;
  ecg.num_beats = 80;
  LabeledSeries data = MakeEcg(ecg);

  HotSaxOptions hot_opts;
  hot_opts.sax = Opts(120, 6, 4).sax;
  auto hot = FindDiscordsHotSax(data.series, hot_opts);
  auto rra = FindRraDiscords(data.series, Opts(120, 6, 4));
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(rra.ok());
  EXPECT_LT(rra->result.distance_calls, hot->distance_calls)
      << "RRA operates on numerosity-reduced intervals and must spend fewer"
         " distance calls (paper Table 1)";
}

TEST(RraTest, DiscordOverlapsHotSaxDiscord) {
  // Table 1's last column: the RRA discord covers the HOTSAX discord.
  EcgOptions ecg;
  ecg.num_beats = 60;
  ecg.anomalous_beats = {30};
  LabeledSeries data = MakeEcg(ecg);
  HotSaxOptions hot_opts;
  hot_opts.sax = Opts(120, 6, 4).sax;
  auto hot = FindDiscordsHotSax(data.series, hot_opts);
  auto rra = FindRraDiscords(data.series, Opts(120, 6, 4));
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(rra.ok());
  ASSERT_FALSE(hot->discords.empty());
  ASSERT_FALSE(rra->result.discords.empty());
  EXPECT_GT(OverlapFraction(rra->result.discords[0].span(),
                            hot->discords[0].span()),
            0.0);
}

TEST(RraTest, ReportsVariableLengths) {
  TekOptions tek;
  tek.num_cycles = 24;
  LabeledSeries data = MakeTek(tek);
  RraOptions opts = Opts(125, 5, 4, 4);
  auto detection = FindRraDiscords(data.series, opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_GE(detection->result.discords.size(), 2u);
  // Discord lengths are not all equal to the seed window — they follow the
  // grammar-rule intervals.
  bool any_nonwindow = false;
  for (const DiscordRecord& d : detection->result.discords) {
    if (d.length != opts.sax.window) {
      any_nonwindow = true;
    }
  }
  EXPECT_TRUE(any_nonwindow);
}

TEST(RraTest, TopKDiscordsDoNotOverlap) {
  LabeledSeries data = MakeSineWithAnomaly(3000, 100.0, 0.03, 1500, 120, 5);
  auto detection = FindRraDiscords(data.series, Opts(200, 4, 4, 3));
  ASSERT_TRUE(detection.ok());
  const auto& discords = detection->result.discords;
  for (size_t i = 0; i < discords.size(); ++i) {
    for (size_t j = i + 1; j < discords.size(); ++j) {
      EXPECT_FALSE(discords[i].span().Overlaps(discords[j].span()))
          << i << " vs " << j;
    }
  }
}

TEST(RraTest, DeterministicForFixedSeed) {
  LabeledSeries data = MakeSineWithAnomaly(1500, 75.0, 0.05, 700, 90, 8);
  auto a = FindRraDiscords(data.series, Opts(150));
  auto b = FindRraDiscords(data.series, Opts(150));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->result.distance_calls, b->result.distance_calls);
  ASSERT_EQ(a->result.discords.size(), b->result.discords.size());
  for (size_t i = 0; i < a->result.discords.size(); ++i) {
    EXPECT_EQ(a->result.discords[i].position,
              b->result.discords[i].position);
    EXPECT_EQ(a->result.discords[i].length, b->result.discords[i].length);
  }
}

TEST(RraTest, GapIntervalsEnableRuleFreeAnomalies) {
  // An anomaly so unusual that it never enters a rule should surface as a
  // frequency-0 gap candidate (rule == kGapRule == -1).
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.01, 1000, 130, 4);
  auto detection = FindRraDiscords(data.series, Opts(200, 5, 5, 2));
  ASSERT_TRUE(detection.ok());
  bool saw_candidate_types = false;
  for (const DiscordRecord& d : detection->result.discords) {
    if (d.rule == -1 || d.rule >= 1) {
      saw_candidate_types = true;
    }
  }
  EXPECT_TRUE(saw_candidate_types);
}

TEST(RraTest, NormalizedDistanceFavorsShorterDiscords) {
  // With normalization off, longer intervals (more accumulated terms) tend
  // to dominate; verify the switch changes the objective (raw >= normalized
  // for the same discord since length >= 1).
  LabeledSeries data = MakeSineWithAnomaly(1500, 60.0, 0.05, 700, 80, 12);
  RraOptions norm = Opts(120);
  RraOptions raw = Opts(120);
  raw.normalize_by_length = false;
  auto with_norm = FindRraDiscords(data.series, norm);
  auto without_norm = FindRraDiscords(data.series, raw);
  ASSERT_TRUE(with_norm.ok());
  ASSERT_TRUE(without_norm.ok());
  ASSERT_FALSE(with_norm->result.discords.empty());
  ASSERT_FALSE(without_norm->result.discords.empty());
  EXPECT_GT(without_norm->result.discords[0].distance,
            with_norm->result.discords[0].distance);
}

TEST(RraTest, RejectsBadArguments) {
  std::vector<double> v(500, 0.0);
  RraOptions zero_k = Opts(50);
  zero_k.top_k = 0;
  EXPECT_FALSE(FindRraDiscords(v, zero_k).ok());
  RraOptions bad_sax = Opts(0);
  EXPECT_FALSE(FindRraDiscords(v, bad_sax).ok());
}

TEST(RraTest, DecompositionMismatchRejected) {
  LabeledSeries data = MakeSineWithAnomaly(1000, 50.0, 0.05, 500, 60, 2);
  auto detection = FindRraDiscords(data.series, Opts(100));
  ASSERT_TRUE(detection.ok());
  std::vector<double> other(999, 0.0);
  EXPECT_FALSE(FindRraDiscordsInDecomposition(other,
                                              detection->decomposition,
                                              Opts(100))
                   .ok());
}

TEST(IntervalNnDistancesTest, MatchesDefinitionOnSmallCase) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.03, 600, 70, 6);
  auto detection = FindRraDiscords(data.series, Opts(120));
  ASSERT_TRUE(detection.ok());
  const auto& intervals = detection->decomposition.intervals;
  ASSERT_FALSE(intervals.empty());
  std::vector<double> nn =
      IntervalNnDistances(data.series, intervals);
  ASSERT_EQ(nn.size(), intervals.size());
  // Each finite nn distance must be achievable: non-negative.
  for (double d : nn) {
    if (std::isfinite(d)) {
      EXPECT_GE(d, 0.0);
    }
  }
}

}  // namespace
}  // namespace gva
