// Differential correctness suite for the streaming engine: the streaming
// report must be bit-for-bit identical to the batch detector run over the
// same suffix/horizon, at every report cadence, with the batch side
// computed through the parallel z-plane substrate (so the ThreadPool is
// exercised and the suite runs under tsan via the `concurrency` label).
// Streaming changes *when* work happens, never the result.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/rule_density_detector.h"
#include "core/streaming.h"
#include "datasets/simple.h"
#include "sax/sax_transform.h"
#include "util/thread_pool.h"

namespace gva {
namespace {

/// Batch detection over `suffix` computed through the threaded substrate:
/// parallel z-plane -> guarded letter mapping -> decomposition tail ->
/// anomaly extraction. By the z-plane's byte-exactness contract this equals
/// DetectDensityAnomalies(suffix, sax, density) for every thread count.
DensityDetection BatchDetect(std::span<const double> suffix,
                             const SaxOptions& sax,
                             const DensityAnomalyOptions& density,
                             ThreadPool* pool) {
  auto plane = ComputeSaxZPlane(suffix, sax, nullptr, pool);
  EXPECT_TRUE(plane.ok()) << plane.status().ToString();
  auto records = DiscretizeWithZPlane(suffix, sax, *plane);
  EXPECT_TRUE(records.ok()) << records.status().ToString();
  auto decomposition =
      DecomposeSeriesWithRecords(suffix, sax, std::move(*records));
  EXPECT_TRUE(decomposition.ok()) << decomposition.status().ToString();
  DensityDetection detection;
  detection.decomposition = std::move(*decomposition);
  detection.anomalies = FindLowDensityIntervals(
      detection.decomposition.density, sax.window, density);
  return detection;
}

void ExpectIdentical(const DensityDetection& streaming,
                     const DensityDetection& batch) {
  ASSERT_EQ(streaming.decomposition.records.words,
            batch.decomposition.records.words);
  ASSERT_EQ(streaming.decomposition.records.offsets,
            batch.decomposition.records.offsets);
  ASSERT_EQ(streaming.decomposition.density, batch.decomposition.density);
  ASSERT_EQ(streaming.anomalies.size(), batch.anomalies.size());
  for (size_t i = 0; i < batch.anomalies.size(); ++i) {
    EXPECT_EQ(streaming.anomalies[i].span, batch.anomalies[i].span);
    EXPECT_EQ(streaming.anomalies[i].min_density,
              batch.anomalies[i].min_density);
    EXPECT_EQ(streaming.anomalies[i].mean_density,
              batch.anomalies[i].mean_density);
    EXPECT_EQ(streaming.anomalies[i].rank, batch.anomalies[i].rank);
  }
}

struct Cadence {
  size_t report_every;
};

class StreamingDifferentialTest : public ::testing::TestWithParam<Cadence> {};

// Horizon-bounded streaming vs the batch detector on the retained suffix,
// replayed at the parameterized report cadence and checked against both a
// single-threaded and a 4-thread batch substrate.
TEST_P(StreamingDifferentialTest, StreamEqualsBatchOnSuffix) {
  const size_t report_every = GetParam().report_every;
  LabeledSeries data = MakeSineWithAnomaly(3000, 70.0, 0.04, 2500, 80, 29);
  StreamingOptions opts;
  opts.sax.window = 100;
  opts.sax.paa_size = 5;
  opts.sax.alphabet_size = 4;
  opts.density.threshold_fraction = 0.05;
  opts.horizon = 600;

  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  ThreadPool single(1);
  ThreadPool quad(4);

  // Every cadence tick draws a report (exercising the difference-updated
  // density curve); the expensive batch recomputation is spot-checked on a
  // subsample of ~20 reports so the fine cadences stay tractable under
  // sanitizers.
  const size_t reports_expected = data.series.size() / report_every;
  const size_t check_every = std::max<size_t>(1, reports_expected / 20);
  size_t reports = 0;
  size_t checked = 0;
  for (size_t i = 0; i < data.series.size(); ++i) {
    monitor->Push(data.series[i]);
    if ((i + 1) % report_every != 0 || i + 1 < opts.sax.window) {
      continue;
    }
    auto report = monitor->Report();
    ASSERT_TRUE(report.ok()) << "at sample " << i + 1;
    ASSERT_EQ(report->suffix_start + report->suffix_length, i + 1);
    if (++reports % check_every != 0) {
      continue;
    }
    std::span<const double> suffix(
        data.series.values().data() + report->suffix_start,
        report->suffix_length);
    ExpectIdentical(report->detection,
                    BatchDetect(suffix, opts.sax, opts.density, &single));
    ExpectIdentical(report->detection,
                    BatchDetect(suffix, opts.sax, opts.density, &quad));
    ++checked;
  }
  EXPECT_GE(checked, 2u) << "cadence too coarse to prove anything";
}

// Unbounded mode (horizon == 0): the report covers the full prefix and
// equals the batch detector on it, independent of cadence.
TEST_P(StreamingDifferentialTest, UnboundedStreamEqualsBatchOnPrefix) {
  const size_t report_every = GetParam().report_every;
  LabeledSeries data = MakeSineWithAnomaly(1400, 50.0, 0.03, 900, 60, 31);
  StreamingOptions opts;
  opts.sax.window = 80;
  opts.sax.paa_size = 4;
  opts.sax.alphabet_size = 5;

  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  ThreadPool quad(4);

  const size_t reports_expected = data.series.size() / report_every;
  const size_t check_every = std::max<size_t>(1, reports_expected / 15);
  size_t reports = 0;
  for (size_t i = 0; i < data.series.size(); ++i) {
    monitor->Push(data.series[i]);
    if ((i + 1) % report_every != 0 || i + 1 < opts.sax.window) {
      continue;
    }
    auto report = monitor->Report();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->suffix_start, 0u);
    if (++reports % check_every != 0 && i + 1 != data.series.size()) {
      continue;
    }
    std::span<const double> prefix(data.series.values().data(), i + 1);
    ExpectIdentical(report->detection,
                    BatchDetect(prefix, opts.sax, opts.density, &quad));
  }
}

// Cadence-independence stated directly: monitors replaying the same stream
// under different report schedules end in identical final reports.
TEST(StreamingDifferentialTest2, FinalReportIndependentOfCadence) {
  LabeledSeries data = MakeSineWithAnomaly(2200, 60.0, 0.05, 1800, 70, 41);
  StreamingOptions opts;
  opts.sax.window = 90;
  opts.sax.paa_size = 3;
  opts.sax.alphabet_size = 4;
  opts.horizon = 400;

  std::vector<size_t> cadences = {1, 113, 2200};
  std::vector<StreamingReport> finals;
  for (size_t cadence : cadences) {
    auto monitor = StreamingAnomalyMonitor::Create(opts);
    ASSERT_TRUE(monitor.ok());
    for (size_t i = 0; i < data.series.size(); ++i) {
      monitor->Push(data.series[i]);
      if ((i + 1) % cadence == 0 && i + 1 >= opts.sax.window) {
        ASSERT_TRUE(monitor->Report().ok());
      }
    }
    auto report = monitor->Report();
    ASSERT_TRUE(report.ok());
    finals.push_back(std::move(*report));
  }
  for (size_t i = 1; i < finals.size(); ++i) {
    EXPECT_EQ(finals[i].suffix_start, finals[0].suffix_start);
    EXPECT_EQ(finals[i].suffix_length, finals[0].suffix_length);
    ExpectIdentical(finals[i].detection, finals[0].detection);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cadences, StreamingDifferentialTest,
    ::testing::Values(Cadence{1}, Cadence{251}, Cadence{997}),
    [](const ::testing::TestParamInfo<Cadence>& cadence_info) {
      return "every" + std::to_string(cadence_info.param.report_every);
    });

}  // namespace
}  // namespace gva
