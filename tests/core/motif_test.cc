#include "core/motif.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "datasets/ecg.h"
#include "datasets/simple.h"

namespace gva {
namespace {

MotifOptions Opts(size_t window, size_t paa = 4, size_t alpha = 4) {
  MotifOptions o;
  o.sax.window = window;
  o.sax.paa_size = paa;
  o.sax.alphabet_size = alpha;
  return o;
}

TEST(MotifTest, PeriodicSeriesYieldsFrequentMotifs) {
  std::vector<double> series = MakeSine(3000, 100.0, 0.02, 1);
  auto detection = FindMotifs(series, Opts(200));
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->motifs.empty());
  // The top motif repeats many times across 30 periods.
  EXPECT_GE(detection->motifs[0].frequency, 5u);
}

TEST(MotifTest, RankedByFrequencyDescending) {
  EcgOptions ecg;
  ecg.num_beats = 50;
  LabeledSeries data = MakeEcg(ecg);
  auto detection = FindMotifs(data.series, Opts(120, 6, 4));
  ASSERT_TRUE(detection.ok());
  for (size_t i = 1; i < detection->motifs.size(); ++i) {
    EXPECT_GE(detection->motifs[i - 1].frequency,
              detection->motifs[i].frequency);
    EXPECT_EQ(detection->motifs[i].rank, i);
  }
}

TEST(MotifTest, OccurrencesHaveVariableLengths) {
  EcgOptions ecg;
  ecg.num_beats = 60;
  LabeledSeries data = MakeEcg(ecg);
  auto detection = FindMotifs(data.series, Opts(120, 6, 4));
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->motifs.empty());
  bool any_variable = false;
  for (const Motif& m : detection->motifs) {
    EXPECT_EQ(m.occurrences.size(), m.frequency);
    EXPECT_LE(m.min_length, m.max_length);
    EXPECT_GE(m.mean_length, static_cast<double>(m.min_length));
    EXPECT_LE(m.mean_length, static_cast<double>(m.max_length));
    if (m.min_length != m.max_length) {
      any_variable = true;
    }
    EXPECT_FALSE(m.rhs.empty());
  }
  EXPECT_TRUE(any_variable)
      << "numerosity reduction should produce variable-length occurrences";
}

TEST(MotifTest, MotifOccurrencesLookAlike) {
  // Occurrences of the top motif must be far closer to each other than the
  // planted anomaly is to anything — motifs and discords are inverses.
  std::vector<double> series = MakeSine(2000, 100.0, 0.01, 3);
  auto detection = FindMotifs(series, Opts(200, 4, 3));
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->motifs.empty());
  const Motif& top = detection->motifs[0];
  ASSERT_GE(top.occurrences.size(), 2u);
  // Compare the first two occurrences at the shorter length.
  const Interval& a = top.occurrences[0];
  const Interval& b = top.occurrences[1];
  const size_t len = std::min(a.length(), b.length()) - 60;
  // Occurrence starts are quantized by numerosity reduction; allow a small
  // alignment slack when comparing shapes.
  double best = std::numeric_limits<double>::infinity();
  for (size_t shift = 0; shift <= 50; shift += 2) {
    if (b.start + shift + len > series.size()) {
      break;
    }
    double diff = 0.0;
    for (size_t i = 0; i < len; ++i) {
      diff += std::abs(series[a.start + i] - series[b.start + shift + i]);
    }
    best = std::min(best, diff / static_cast<double>(len));
  }
  EXPECT_LT(best, 0.25);
}

TEST(MotifTest, MinFrequencyFilters) {
  std::vector<double> series = MakeSine(1500, 75.0, 0.03, 5);
  MotifOptions strict = Opts(150);
  strict.min_frequency = 1000;  // nothing repeats that often
  auto detection = FindMotifs(series, strict);
  ASSERT_TRUE(detection.ok());
  EXPECT_TRUE(detection->motifs.empty());
}

TEST(MotifTest, MaxMotifsCap) {
  std::vector<double> series = MakeSine(3000, 60.0, 0.05, 7);
  MotifOptions opts = Opts(120);
  opts.min_frequency = 2;
  opts.max_motifs = 3;
  auto detection = FindMotifs(series, opts);
  ASSERT_TRUE(detection.ok());
  EXPECT_LE(detection->motifs.size(), 3u);
}

TEST(MotifTest, PropagatesInvalidOptions) {
  std::vector<double> series(50, 0.0);
  EXPECT_FALSE(FindMotifs(series, Opts(100)).ok());
}

TEST(MotifTest, NoiseHasFewOrNoStrongMotifs) {
  std::vector<double> noise = MakeNoise(2000, 1.0, 11);
  MotifOptions opts = Opts(100);
  opts.min_frequency = 5;
  auto detection = FindMotifs(noise, opts);
  ASSERT_TRUE(detection.ok());
  // Pure noise may produce a couple of coincidental repeats but nothing
  // dominant.
  for (const Motif& m : detection->motifs) {
    EXPECT_LT(m.frequency, 50u);
  }
}

}  // namespace
}  // namespace gva
