// Tests for the related-work baseline detectors (rare-word frequency and
// compression scoring) and the weighted density curve variants.

#include <gtest/gtest.h>

#include "core/compression_score.h"
#include "core/evaluate.h"
#include "core/frequency_detector.h"
#include "core/pipeline.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"
#include "grammar/rule_intervals.h"
#include "grammar/sequitur.h"

namespace gva {
namespace {

// --- rare-word frequency baseline -------------------------------------------

TEST(FrequencyDetectorTest, SupportCurveIsNormalized) {
  std::vector<double> series = MakeSine(600, 60.0, 0.05, 1);
  FrequencyAnomalyOptions opts;
  opts.sax.window = 120;
  auto detection = DetectRareWordAnomalies(series, opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_EQ(detection->support.size(), series.size() - 120 + 1);
  for (double s : detection->support) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(FrequencyDetectorTest, FindsPlantedAnomaly) {
  LabeledSeries data = MakeSineWithAnomaly(1500, 75.0, 0.02, 700, 100, 3);
  FrequencyAnomalyOptions opts;
  opts.sax.window = 150;
  opts.sax.paa_size = 5;
  opts.sax.alphabet_size = 4;
  auto detection = DetectRareWordAnomalies(data.series, opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  EXPECT_TRUE(HitsAnyTruth(detection->anomalies[0].span, data.anomalies,
                           opts.sax.window));
}

TEST(FrequencyDetectorTest, AnomaliesRankedBySupport) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.05, 600, 80, 5);
  FrequencyAnomalyOptions opts;
  opts.sax.window = 120;
  opts.threshold_fraction = 0.2;
  auto detection = DetectRareWordAnomalies(data.series, opts);
  ASSERT_TRUE(detection.ok());
  for (size_t i = 1; i < detection->anomalies.size(); ++i) {
    EXPECT_LE(detection->anomalies[i - 1].mean_support,
              detection->anomalies[i].mean_support);
  }
}

TEST(FrequencyDetectorTest, PropagatesInvalidOptions) {
  std::vector<double> series(50, 0.0);
  FrequencyAnomalyOptions opts;
  opts.sax.window = 100;  // longer than the series
  EXPECT_FALSE(DetectRareWordAnomalies(series, opts).ok());
}

// --- compression-score baseline ----------------------------------------------

TEST(CompressionScoreTest, GreedyParseUsesRules) {
  // abab abab -> grammar has a rule for "ab" (and "abab"); parsing "abab"
  // against the dictionary emits far fewer items than tokens.
  std::vector<int32_t> tokens{0, 1, 0, 1, 0, 1, 0, 1};
  auto grammar = InferGrammar(tokens);
  ASSERT_TRUE(grammar.ok());
  const size_t items = GreedyParseItems(*grammar, tokens);
  EXPECT_LT(items, tokens.size() / 2);
}

TEST(CompressionScoreTest, UnknownTokensCostOneEach) {
  std::vector<int32_t> tokens{0, 1, 0, 1};
  auto grammar = InferGrammar(tokens);
  ASSERT_TRUE(grammar.ok());
  std::vector<int32_t> foreign{7, 8, 9};
  EXPECT_EQ(GreedyParseItems(*grammar, foreign), foreign.size());
}

TEST(CompressionScoreTest, FindsPlantedAnomaly) {
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 150, 7);
  CompressionScoreOptions opts;
  opts.sax.window = 200;
  opts.sax.paa_size = 4;
  opts.sax.alphabet_size = 3;
  opts.segment_tokens = 6;
  auto detection = DetectCompressionAnomalies(data.series, opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  // The worst-compressing segment overlaps the planted anomaly.
  EXPECT_TRUE(HitsAnyTruth(detection->anomalies[0].span, data.anomalies,
                           opts.sax.window));
  // Costs are within (0, 1] and sorted descending.
  for (size_t i = 0; i < detection->anomalies.size(); ++i) {
    EXPECT_GT(detection->anomalies[i].cost, 0.0);
    EXPECT_LE(detection->anomalies[i].cost, 1.0);
    if (i > 0) {
      EXPECT_GE(detection->anomalies[i - 1].cost,
                detection->anomalies[i].cost);
    }
  }
}

TEST(CompressionScoreTest, SegmentsTileTheTokenStream) {
  LabeledSeries data = MakeSineWithAnomaly(1000, 50.0, 0.05, 500, 60, 9);
  CompressionScoreOptions opts;
  opts.sax.window = 100;
  opts.segment_tokens = 5;
  auto detection = DetectCompressionAnomalies(data.series, opts);
  ASSERT_TRUE(detection.ok());
  size_t total_tokens = 0;
  for (const SegmentScore& s : detection->segments) {
    total_tokens += s.tokens;
    EXPECT_LE(s.items, s.tokens);
    EXPECT_GE(s.items, 1u);
  }
  EXPECT_EQ(total_tokens, detection->decomposition.records.size());
}

TEST(CompressionScoreTest, RejectsZeroSegment) {
  std::vector<double> series(300, 0.0);
  CompressionScoreOptions opts;
  opts.segment_tokens = 0;
  EXPECT_FALSE(DetectCompressionAnomalies(series, opts).ok());
}

// --- weighted density curves ------------------------------------------------

TEST(WeightedDensityTest, OccurrenceWeightingMatchesPlainCurve) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.03, 600, 80, 11);
  SaxOptions sax;
  sax.window = 120;
  auto decomposition = DecomposeSeries(data.series, sax);
  ASSERT_TRUE(decomposition.ok());
  std::vector<uint32_t> plain =
      RuleDensityCurve(decomposition->intervals, data.series.size());
  std::vector<double> weighted =
      WeightedDensityCurve(decomposition->intervals, data.series.size(),
                           DensityWeighting::kOccurrence);
  ASSERT_EQ(plain.size(), weighted.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(weighted[i], static_cast<double>(plain[i]), 1e-9);
  }
}

TEST(WeightedDensityTest, FrequencyWeightingMatchesNaive) {
  std::vector<RuleInterval> intervals{
      {1, 5, {0, 10}}, {2, 2, {5, 12}}, {3, 7, {90, 100}}};
  std::vector<double> curve =
      WeightedDensityCurve(intervals, 100, DensityWeighting::kRuleFrequency);
  for (size_t i = 0; i < 100; ++i) {
    double expected = 0.0;
    for (const RuleInterval& ri : intervals) {
      if (ri.span.Contains(i)) {
        expected += static_cast<double>(ri.rule_frequency);
      }
    }
    EXPECT_NEAR(curve[i], expected, 1e-9) << "i=" << i;
  }
}

TEST(WeightedDensityTest, InverseLengthWeighting) {
  std::vector<RuleInterval> intervals{{1, 2, {0, 4}}, {2, 2, {0, 8}}};
  std::vector<double> curve =
      WeightedDensityCurve(intervals, 10, DensityWeighting::kInverseLength);
  EXPECT_NEAR(curve[0], 1.0 / 4.0 + 1.0 / 8.0, 1e-9);
  EXPECT_NEAR(curve[5], 1.0 / 8.0, 1e-9);
  EXPECT_NEAR(curve[9], 0.0, 1e-9);
}

}  // namespace
}  // namespace gva
