#include "core/parameter_profile.h"

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"

namespace gva {
namespace {

SaxOptions Opts(size_t window, size_t paa, size_t alpha) {
  SaxOptions o;
  o.window = window;
  o.paa_size = paa;
  o.alphabet_size = alpha;
  return o;
}

TEST(ProfileTest, BasicFieldsPopulated) {
  std::vector<double> series = MakeSine(1000, 50.0, 0.05, 1);
  auto profile = ProfileParameters(series, Opts(100, 5, 4));
  ASSERT_TRUE(profile.ok());
  EXPECT_GT(profile->tokens, 0u);
  EXPECT_GE(profile->rules, 1u);
  EXPECT_GT(profile->approximation_error, 0.0);
  EXPECT_GE(profile->compression, 0.0);
  EXPECT_LE(profile->compression, 1.0);
}

TEST(ProfileTest, FinerDiscretizationApproximatesBetter) {
  std::vector<double> series = MakeSine(1500, 60.0, 0.02, 2);
  auto coarse = ProfileParameters(series, Opts(120, 3, 3));
  auto fine = ProfileParameters(series, Opts(120, 12, 10));
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_LT(fine->approximation_error, coarse->approximation_error);
}

TEST(ProfileTest, PeriodicSeriesCompressesBetterThanNoise) {
  std::vector<double> periodic = MakeSine(2000, 80.0, 0.02, 3);
  std::vector<double> noise = MakeNoise(2000, 1.0, 3);
  auto p = ProfileParameters(periodic, Opts(80, 4, 4));
  auto n = ProfileParameters(noise, Opts(80, 4, 4));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(n.ok());
  EXPECT_GT(p->compression, n->compression);
}

TEST(ProfileTest, InvalidOptionsRejected) {
  std::vector<double> series(100, 0.0);
  EXPECT_FALSE(ProfileParameters(series, Opts(0, 4, 4)).ok());
  EXPECT_FALSE(ProfileParameters(series, Opts(200, 4, 4)).ok());
}

TEST(SweepTest, SkipsInvalidCombinations) {
  std::vector<double> series = MakeSine(400, 40.0, 0.05, 4);
  ParameterGrid grid;
  grid.windows = {50, 100, 1000};  // 1000 doesn't fit
  grid.paa_sizes = {4, 60};        // 60 > 50
  grid.alphabet_sizes = {4};
  auto profiles = SweepParameterGrid(series, grid);
  ASSERT_TRUE(profiles.ok());
  // 50x4, 100x4, 100x60 -> invalid paa>window pruned: expect 3 valid:
  // (50,4), (100,4), (100,60).
  EXPECT_EQ(profiles->size(), 3u);
}

TEST(SweepTest, FailsWhenNothingFits) {
  std::vector<double> series(20, 0.0);
  ParameterGrid grid;
  grid.windows = {500};
  EXPECT_FALSE(SweepParameterGrid(series, grid).ok());
}

TEST(SuggestTest, SuggestionIsValidAndUsable) {
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 120, 5);
  auto suggested = SuggestParameters(data.series);
  ASSERT_TRUE(suggested.ok()) << suggested.status();
  EXPECT_TRUE(suggested->Validate().ok());

  // The suggested parameters must let the density detector find the
  // planted anomaly.
  auto detection = DetectDensityAnomalies(data.series, *suggested, {});
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  EXPECT_TRUE(HitsAnyTruth(detection->anomalies[0].span, data.anomalies,
                           suggested->window));
}

TEST(SuggestTest, WorksOnEcg) {
  EcgOptions ecg;
  ecg.num_beats = 40;
  LabeledSeries data = MakeEcg(ecg);
  auto suggested = SuggestParameters(data.series);
  ASSERT_TRUE(suggested.ok());
  // The ECG's dominant cycle is ~120 samples; a usable suggestion is within
  // a small multiple of it.
  EXPECT_GE(suggested->window, 40u);
  EXPECT_LE(suggested->window, 400u);
}

}  // namespace
}  // namespace gva
