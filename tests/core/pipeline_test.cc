#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "datasets/simple.h"

namespace gva {
namespace {

SaxOptions Opts(size_t window, size_t paa = 4, size_t alpha = 4) {
  SaxOptions o;
  o.window = window;
  o.paa_size = paa;
  o.alphabet_size = alpha;
  return o;
}

TEST(PipelineTest, PopulatesEveryField) {
  std::vector<double> series = MakeSine(1000, 50.0, 0.03, 1);
  auto d = DecomposeSeries(series, Opts(100));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->series_length, series.size());
  EXPECT_EQ(d->window, 100u);
  EXPECT_FALSE(d->records.empty());
  EXPECT_EQ(d->records.size(), d->grammar.tokens.size());
  EXPECT_GE(d->grammar.grammar.size(), 1u);
  EXPECT_EQ(d->density.size(), series.size());
}

TEST(PipelineTest, TokensRoundTripThroughVocabulary) {
  std::vector<double> series = MakeSine(800, 40.0, 0.02, 2);
  auto d = DecomposeSeries(series, Opts(80));
  ASSERT_TRUE(d.ok());
  // Each token id decodes to the word recorded at the same index.
  for (size_t i = 0; i < d->records.size(); ++i) {
    EXPECT_EQ(d->grammar.WordOf(d->grammar.tokens[i]), d->records.words[i]);
  }
  // The grammar's R0 expansion reproduces the token stream.
  EXPECT_EQ(d->grammar.grammar.ExpandToTerminals(0), d->grammar.tokens);
}

TEST(PipelineTest, IntervalsReferenceExistingRules) {
  std::vector<double> series = MakeSine(1200, 60.0, 0.05, 3);
  auto d = DecomposeSeries(series, Opts(120));
  ASSERT_TRUE(d.ok());
  for (const RuleInterval& ri : d->intervals) {
    ASSERT_GE(ri.rule, 1);
    ASSERT_LT(static_cast<size_t>(ri.rule), d->grammar.grammar.size());
    const GrammarRule& rule =
        d->grammar.grammar.rule(static_cast<size_t>(ri.rule));
    EXPECT_EQ(ri.rule_frequency, rule.occurrences.size());
  }
}

TEST(PipelineTest, ErrorsPropagate) {
  std::vector<double> series(10, 0.0);
  EXPECT_FALSE(DecomposeSeries(series, Opts(100)).ok());  // too short
  EXPECT_FALSE(DecomposeSeries(series, Opts(0)).ok());    // invalid window
  SaxOptions bad = Opts(8);
  bad.paa_size = 16;
  EXPECT_FALSE(DecomposeSeries(series, bad).ok());  // paa > window
}

TEST(PipelineTest, ConstantSeriesDegeneratesGracefully) {
  std::vector<double> series(500, 2.0);
  auto d = DecomposeSeries(series, Opts(50));
  ASSERT_TRUE(d.ok());
  // One word survives reduction; no rules can form from a single token.
  EXPECT_EQ(d->records.size(), 1u);
  EXPECT_EQ(d->grammar.grammar.size(), 1u);
  EXPECT_TRUE(d->intervals.empty());
  for (uint32_t v : d->density) {
    EXPECT_EQ(v, 0u);
  }
}

}  // namespace
}  // namespace gva
