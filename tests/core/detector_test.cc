#include "core/detector.h"

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "datasets/simple.h"

namespace gva {
namespace {

SaxOptions DemoSax() {
  SaxOptions sax;
  sax.window = 200;
  sax.paa_size = 4;
  sax.alphabet_size = 3;
  return sax;
}

class DetectorInterfaceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(DetectorInterfaceTest, FactoryProducesWorkingDetector) {
  auto detector = MakeDetectorByName(GetParam(), DemoSax());
  ASSERT_TRUE(detector.ok());
  EXPECT_EQ((*detector)->name(), GetParam());

  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 120, 42);
  auto detection = (*detector)->Detect(data.series, 3);
  ASSERT_TRUE(detection.ok()) << GetParam();
  ASSERT_FALSE(detection->anomalies.empty()) << GetParam();
  // Ranked: scores non-increasing, ranks consecutive.
  for (size_t i = 0; i < detection->anomalies.size(); ++i) {
    EXPECT_EQ(detection->anomalies[i].rank, i);
    if (i > 0) {
      EXPECT_GE(detection->anomalies[i - 1].score,
                detection->anomalies[i].score);
    }
    EXPECT_GE(detection->anomalies[i].score, 0.0);
  }
}

TEST_P(DetectorInterfaceTest, TopAnomalyHitsPlantedAnomaly) {
  auto detector = MakeDetectorByName(GetParam(), DemoSax());
  ASSERT_TRUE(detector.ok());
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 150, 7);
  auto detection = (*detector)->Detect(data.series, 3);
  ASSERT_TRUE(detection.ok());
  std::vector<Interval> found;
  for (const UnifiedAnomaly& a : detection->anomalies) {
    found.push_back(a.span);
  }
  EXPECT_GT(Recall(found, data.anomalies, DemoSax().window), 0.0)
      << GetParam();
}

TEST_P(DetectorInterfaceTest, ErrorsPropagateThroughInterface) {
  auto detector = MakeDetectorByName(GetParam(), DemoSax());
  ASSERT_TRUE(detector.ok());
  std::vector<double> too_short(10, 0.0);
  EXPECT_FALSE((*detector)->Detect(too_short, 3).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorInterfaceTest,
                         ::testing::Values("rule-density", "rra",
                                           "rare-word", "compression"));

TEST(DetectorFactoryTest, UnknownNameFails) {
  auto detector = MakeDetectorByName("nope", DemoSax());
  EXPECT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kNotFound);
}

TEST(DetectorFactoryTest, AvailableDetectorsAllConstruct) {
  for (const std::string& name : AvailableDetectors()) {
    EXPECT_TRUE(MakeDetectorByName(name, DemoSax()).ok()) << name;
  }
}

TEST(DetectorFactoryTest, OnlyRraSpendsDistanceCalls) {
  LabeledSeries data = MakeSineWithAnomaly(1500, 75.0, 0.03, 700, 90, 3);
  for (const std::string& name : AvailableDetectors()) {
    auto detector = MakeDetectorByName(name, DemoSax());
    ASSERT_TRUE(detector.ok());
    auto detection = (*detector)->Detect(data.series, 2);
    ASSERT_TRUE(detection.ok());
    if (name == "rra") {
      EXPECT_GT(detection->distance_calls, 0u);
    } else {
      EXPECT_EQ(detection->distance_calls, 0u) << name;
    }
  }
}

}  // namespace
}  // namespace gva
