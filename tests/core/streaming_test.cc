#include "core/streaming.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"

namespace gva {
namespace {

StreamingOptions Opts(size_t window, size_t paa = 4, size_t alpha = 4) {
  StreamingOptions o;
  o.sax.window = window;
  o.sax.paa_size = paa;
  o.sax.alphabet_size = alpha;
  return o;
}

TEST(StreamingTest, CreateValidatesOptions) {
  EXPECT_TRUE(StreamingAnomalyMonitor::Create(Opts(100)).ok());
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(Opts(0)).ok());
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(Opts(10, 20)).ok());
}

TEST(StreamingTest, ReportRequiresOneFullWindow) {
  auto monitor = StreamingAnomalyMonitor::Create(Opts(50));
  ASSERT_TRUE(monitor.ok());
  for (int i = 0; i < 49; ++i) {
    monitor->Push(static_cast<double>(i));
  }
  EXPECT_FALSE(monitor->Report().ok());
  monitor->Push(49.0);
  EXPECT_TRUE(monitor->Report().ok());
}

TEST(StreamingTest, TokensMatchBatchDiscretization) {
  LabeledSeries data = MakeSineWithAnomaly(1500, 60.0, 0.03, 700, 80, 9);
  StreamingOptions opts = Opts(120, 5, 4);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  monitor->PushAll(data.series);

  auto batch = Discretize(data.series, opts.sax);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(monitor->tokens_emitted(), batch->size());
}

// The defining property: a streaming report over a prefix equals the batch
// detection over the same prefix.
TEST(StreamingTest, MatchesBatchDetection) {
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 120, 3);
  StreamingOptions opts = Opts(200, 4, 3);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  monitor->PushAll(data.series);

  auto streaming = monitor->Report();
  ASSERT_TRUE(streaming.ok());
  auto batch = DetectDensityAnomalies(data.series, opts.sax, opts.density);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(streaming->decomposition.density, batch->decomposition.density);
  EXPECT_EQ(streaming->decomposition.records.words,
            batch->decomposition.records.words);
  EXPECT_EQ(streaming->decomposition.records.offsets,
            batch->decomposition.records.offsets);
  ASSERT_EQ(streaming->anomalies.size(), batch->anomalies.size());
  for (size_t i = 0; i < batch->anomalies.size(); ++i) {
    EXPECT_EQ(streaming->anomalies[i].span, batch->anomalies[i].span);
  }
}

TEST(StreamingTest, MatchesBatchAtSeveralPrefixes) {
  LabeledSeries data = MakeSineWithAnomaly(1600, 80.0, 0.03, 800, 100, 5);
  StreamingOptions opts = Opts(160, 4, 4);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());

  size_t consumed = 0;
  for (size_t checkpoint : {400u, 900u, 1600u}) {
    while (consumed < checkpoint) {
      monitor->Push(data.series[consumed++]);
    }
    auto streaming = monitor->Report();
    ASSERT_TRUE(streaming.ok());
    std::span<const double> prefix(data.series.values().data(), checkpoint);
    auto batch = DetectDensityAnomalies(prefix, opts.sax, opts.density);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(streaming->decomposition.density,
              batch->decomposition.density)
        << "prefix " << checkpoint;
  }
}

// Early detection: the anomaly becomes visible in the report shortly after
// the stream passes it — the paper's "early anomaly detection in real-time
// data streams" (Section 7).
TEST(StreamingTest, DetectsAnomalyShortlyAfterItStreamsBy) {
  EcgOptions ecg;
  ecg.num_beats = 50;
  ecg.anomalous_beats = {30};
  LabeledSeries data = MakeEcg(ecg);
  const Interval truth = data.anomalies[0];

  StreamingOptions opts;
  opts.sax = data.recommended;
  opts.sax.paa_size = 6;
  opts.density.threshold_fraction = 0.05;
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());

  // Stream until a few beats past the anomaly.
  const size_t horizon = truth.end + 4 * ecg.beat_length;
  for (size_t i = 0; i < horizon; ++i) {
    monitor->Push(data.series[i]);
  }
  auto report = monitor->Report();
  ASSERT_TRUE(report.ok());
  std::vector<Interval> found;
  for (const DensityAnomaly& a : report->anomalies) {
    found.push_back(a.span);
  }
  EXPECT_TRUE(HitsAnyTruth(truth, found, opts.sax.window))
      << "anomaly not visible " << horizon - truth.end
      << " samples after it passed";
}

TEST(StreamingTest, MonitorIsMovable) {
  auto monitor = StreamingAnomalyMonitor::Create(Opts(50));
  ASSERT_TRUE(monitor.ok());
  StreamingAnomalyMonitor moved = std::move(monitor).value();
  for (int i = 0; i < 100; ++i) {
    moved.Push(std::sin(0.3 * i));
  }
  EXPECT_EQ(moved.samples_seen(), 100u);
}

}  // namespace
}  // namespace gva
