#include "core/streaming.h"

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"

namespace gva {
namespace {

StreamingOptions Opts(size_t window, size_t paa = 4, size_t alpha = 4) {
  StreamingOptions o;
  o.sax.window = window;
  o.sax.paa_size = paa;
  o.sax.alphabet_size = alpha;
  return o;
}

void ExpectSameDetection(const DensityDetection& streaming,
                         const DensityDetection& batch) {
  EXPECT_EQ(streaming.decomposition.density, batch.decomposition.density);
  EXPECT_EQ(streaming.decomposition.records.words,
            batch.decomposition.records.words);
  EXPECT_EQ(streaming.decomposition.records.offsets,
            batch.decomposition.records.offsets);
  ASSERT_EQ(streaming.anomalies.size(), batch.anomalies.size());
  for (size_t i = 0; i < batch.anomalies.size(); ++i) {
    EXPECT_EQ(streaming.anomalies[i].span, batch.anomalies[i].span);
    EXPECT_EQ(streaming.anomalies[i].min_density,
              batch.anomalies[i].min_density);
    EXPECT_EQ(streaming.anomalies[i].mean_density,
              batch.anomalies[i].mean_density);
  }
}

TEST(StreamingTest, CreateValidatesOptions) {
  EXPECT_TRUE(StreamingAnomalyMonitor::Create(Opts(100)).ok());
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(Opts(0)).ok());
  // window == 1 cannot be z-normalized; rejected like the batch path.
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(Opts(1, 1)).ok());
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(Opts(10, 20)).ok());
}

// Regression: Create used to validate options.sax but never
// options.density, silently accepting nonsense extraction parameters.
TEST(StreamingTest, CreateValidatesDensityOptions) {
  StreamingOptions o = Opts(100);
  o.density.threshold_fraction = -0.25;
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(o).ok());
  o.density.threshold_fraction = 1.5;
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(o).ok());
  o.density.threshold_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(o).ok());
  o.density.threshold_fraction = 0.1;
  o.density.min_length = 0;
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(o).ok());
  o.density.min_length = 1;
  EXPECT_TRUE(StreamingAnomalyMonitor::Create(o).ok());
}

TEST(StreamingTest, CreateValidatesHorizon) {
  StreamingOptions o = Opts(100);
  o.horizon = 99;  // below the window: no report could ever cover a window
  EXPECT_FALSE(StreamingAnomalyMonitor::Create(o).ok());
  o.horizon = 100;
  EXPECT_TRUE(StreamingAnomalyMonitor::Create(o).ok());
  o.horizon = 0;  // unbounded
  EXPECT_TRUE(StreamingAnomalyMonitor::Create(o).ok());
}

TEST(StreamingTest, ReportRequiresOneFullWindow) {
  auto monitor = StreamingAnomalyMonitor::Create(Opts(50));
  ASSERT_TRUE(monitor.ok());
  for (int i = 0; i < 49; ++i) {
    monitor->Push(static_cast<double>(i));
  }
  auto early = monitor->Report();
  ASSERT_FALSE(early.ok());
  // The "too early" condition must be distinguishable from real failures
  // (examples/streaming_monitor.cpp keys on exactly this code).
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);
  monitor->Push(49.0);
  EXPECT_TRUE(monitor->Report().ok());
}

TEST(StreamingTest, SeriesShorterThanWindowNeverReports) {
  auto monitor = StreamingAnomalyMonitor::Create(Opts(200));
  ASSERT_TRUE(monitor.ok());
  std::vector<double> series = MakeSine(150, 40.0, 0.01, 7);
  monitor->PushAll(series);
  EXPECT_EQ(monitor->samples_seen(), 150u);
  EXPECT_EQ(monitor->tokens_emitted(), 0u);
  auto report = monitor->Report();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingTest, TokensMatchBatchDiscretization) {
  LabeledSeries data = MakeSineWithAnomaly(1500, 60.0, 0.03, 700, 80, 9);
  StreamingOptions opts = Opts(120, 5, 4);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  monitor->PushAll(data.series);

  auto batch = Discretize(data.series, opts.sax);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(monitor->tokens_emitted(), batch->size());
}

// The defining property: a streaming report over a prefix equals the batch
// detection over the same prefix.
TEST(StreamingTest, MatchesBatchDetection) {
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 120, 3);
  StreamingOptions opts = Opts(200, 4, 3);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  monitor->PushAll(data.series);

  auto streaming = monitor->Report();
  ASSERT_TRUE(streaming.ok());
  EXPECT_EQ(streaming->suffix_start, 0u);
  EXPECT_EQ(streaming->suffix_length, data.series.size());
  auto batch = DetectDensityAnomalies(data.series, opts.sax, opts.density);
  ASSERT_TRUE(batch.ok());
  ExpectSameDetection(streaming->detection, *batch);
}

TEST(StreamingTest, MatchesBatchAtSeveralPrefixes) {
  LabeledSeries data = MakeSineWithAnomaly(1600, 80.0, 0.03, 800, 100, 5);
  StreamingOptions opts = Opts(160, 4, 4);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());

  size_t consumed = 0;
  for (size_t checkpoint : {400u, 900u, 1600u}) {
    while (consumed < checkpoint) {
      monitor->Push(data.series[consumed++]);
    }
    auto streaming = monitor->Report();
    ASSERT_TRUE(streaming.ok());
    std::span<const double> prefix(data.series.values().data(), checkpoint);
    auto batch = DetectDensityAnomalies(prefix, opts.sax, opts.density);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(streaming->detection.decomposition.density,
              batch->decomposition.density)
        << "prefix " << checkpoint;
  }
}

// kMinDist numerosity on the streaming path: the per-generation reduction
// must take the same keep/drop decisions as the batch discretizer.
TEST(StreamingTest, MinDistNumerosityMatchesBatch) {
  LabeledSeries data = MakeSineWithAnomaly(1200, 60.0, 0.05, 600, 70, 11);
  StreamingOptions opts = Opts(90, 3, 5);
  opts.sax.numerosity = NumerosityReduction::kMinDist;
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  monitor->PushAll(data.series);

  auto batch_records = Discretize(data.series, opts.sax);
  ASSERT_TRUE(batch_records.ok());
  auto streaming = monitor->Report();
  ASSERT_TRUE(streaming.ok());
  EXPECT_EQ(streaming->detection.decomposition.records.words,
            batch_records->words);
  EXPECT_EQ(streaming->detection.decomposition.records.offsets,
            batch_records->offsets);

  auto batch = DetectDensityAnomalies(data.series, opts.sax, opts.density);
  ASSERT_TRUE(batch.ok());
  ExpectSameDetection(streaming->detection, *batch);
}

// Reporting after every single sample must neither disturb the stream state
// nor change any report: the difference-updated density curve equals the
// from-scratch batch curve at every step.
TEST(StreamingTest, ReportAtEverySampleMatchesBatch) {
  LabeledSeries data = MakeSineWithAnomaly(600, 40.0, 0.04, 300, 50, 13);
  StreamingOptions opts = Opts(60, 4, 4);
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());

  for (size_t i = 0; i < data.series.size(); ++i) {
    monitor->Push(data.series[i]);
    auto report = monitor->Report();
    if (i + 1 < opts.sax.window) {
      ASSERT_FALSE(report.ok());
      continue;
    }
    ASSERT_TRUE(report.ok()) << "at sample " << i;
    if ((i + 1) % 97 == 0 || i + 1 == data.series.size()) {
      // Spot-check full equivalence on a few prefixes (every prefix would
      // make the test quadratic).
      std::span<const double> prefix(data.series.values().data(), i + 1);
      auto batch = DetectDensityAnomalies(prefix, opts.sax, opts.density);
      ASSERT_TRUE(batch.ok());
      ExpectSameDetection(report->detection, *batch);
    }
  }
}

// Eviction-boundary determinism: the report after a horizon boundary is a
// pure function of the stream — identical whether or not reports were also
// drawn mid-stream, and identical to the batch detector on the suffix.
TEST(StreamingTest, EvictionBoundaryDeterminism) {
  LabeledSeries data = MakeSineWithAnomaly(2600, 60.0, 0.03, 2200, 60, 17);
  StreamingOptions opts = Opts(80, 4, 4);
  opts.horizon = 500;

  auto quiet = StreamingAnomalyMonitor::Create(opts);
  auto chatty = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(chatty.ok());
  for (size_t i = 0; i < data.series.size(); ++i) {
    quiet->Push(data.series[i]);
    chatty->Push(data.series[i]);
    if ((i + 1) % 37 == 0 && i + 1 >= opts.sax.window) {
      ASSERT_TRUE(chatty->Report().ok());
    }
  }
  // Generations open at 0, 500, ..., 2500; all but the last two retired.
  EXPECT_EQ(quiet->generations_evicted(), 4u);
  EXPECT_EQ(quiet->report_suffix_start(), 2000u);

  auto a = quiet->Report();
  auto b = chatty->Report();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->suffix_start, b->suffix_start);
  EXPECT_EQ(a->suffix_length, b->suffix_length);
  ExpectSameDetection(a->detection, b->detection);

  // The suffix stays within [horizon, 2*horizon] and the report equals the
  // batch detector run on exactly that suffix.
  EXPECT_GE(a->suffix_length, opts.horizon);
  EXPECT_LE(a->suffix_length, 2 * opts.horizon);
  std::span<const double> suffix(
      data.series.values().data() + a->suffix_start, a->suffix_length);
  auto batch = DetectDensityAnomalies(suffix, opts.sax, opts.density);
  ASSERT_TRUE(batch.ok());
  ExpectSameDetection(a->detection, *batch);
}

// With a horizon, retained state is bounded no matter how long the stream
// runs; without one it grows with the prefix.
TEST(StreamingTest, HorizonBoundsRetainedState) {
  StreamingOptions opts = Opts(50, 5, 4);
  opts.horizon = 200;
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());
  std::vector<double> series = MakeSine(5000, 35.0, 0.05, 21);
  size_t max_retained = 0;
  for (double v : series) {
    monitor->Push(v);
    max_retained = std::max(max_retained, monitor->retained_tokens());
  }
  // Two live generations of at most 2*horizon window positions each.
  EXPECT_LE(max_retained, 4 * opts.horizon);
  // Generations open at 0, 200, ..., 4800; all but the last two retired.
  EXPECT_EQ(monitor->generations_evicted(), 5000u / 200 - 2);
  EXPECT_GE(monitor->samples_seen() - monitor->report_suffix_start(),
            opts.horizon);
}

// Early detection: the anomaly becomes visible in the report shortly after
// the stream passes it — the paper's "early anomaly detection in real-time
// data streams" (Section 7).
TEST(StreamingTest, DetectsAnomalyShortlyAfterItStreamsBy) {
  EcgOptions ecg;
  ecg.num_beats = 50;
  ecg.anomalous_beats = {30};
  LabeledSeries data = MakeEcg(ecg);
  const Interval truth = data.anomalies[0];

  StreamingOptions opts;
  opts.sax = data.recommended;
  opts.sax.paa_size = 6;
  opts.density.threshold_fraction = 0.05;
  auto monitor = StreamingAnomalyMonitor::Create(opts);
  ASSERT_TRUE(monitor.ok());

  // Stream until a few beats past the anomaly.
  const size_t horizon = truth.end + 4 * ecg.beat_length;
  for (size_t i = 0; i < horizon; ++i) {
    monitor->Push(data.series[i]);
  }
  auto report = monitor->Report();
  ASSERT_TRUE(report.ok());
  std::vector<Interval> found;
  for (const DensityAnomaly& a : report->detection.anomalies) {
    found.push_back(a.span);
  }
  EXPECT_TRUE(HitsAnyTruth(truth, found, opts.sax.window))
      << "anomaly not visible " << horizon - truth.end
      << " samples after it passed";
}

TEST(StreamingTest, MonitorIsMovable) {
  auto monitor = StreamingAnomalyMonitor::Create(Opts(50));
  ASSERT_TRUE(monitor.ok());
  StreamingAnomalyMonitor moved = std::move(monitor).value();
  for (int i = 0; i < 100; ++i) {
    moved.Push(std::sin(0.3 * i));
  }
  EXPECT_EQ(moved.samples_seen(), 100u);
  EXPECT_TRUE(moved.Report().ok());
}

}  // namespace
}  // namespace gva
