#include "core/rule_density_detector.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "datasets/simple.h"

namespace gva {
namespace {

[[maybe_unused]] std::vector<Interval> Spans(
    const std::vector<DensityAnomaly>& anomalies) {
  std::vector<Interval> out;
  for (const DensityAnomaly& a : anomalies) {
    out.push_back(a.span);
  }
  return out;
}

TEST(FindLowDensityIntervalsTest, GlobalMinimaOnly) {
  std::vector<uint32_t> density{5, 5, 5, 1, 1, 5, 5, 0, 0, 0, 5, 5};
  DensityAnomalyOptions opts;
  opts.exclude_edges = false;
  std::vector<DensityAnomaly> anomalies =
      FindLowDensityIntervals(density, 0, opts);
  ASSERT_EQ(anomalies.size(), 1u);  // only the global minimum (0) qualifies
  EXPECT_EQ(anomalies[0].span, (Interval{7, 10}));
  EXPECT_EQ(anomalies[0].min_density, 0u);
  EXPECT_EQ(anomalies[0].rank, 0u);
}

TEST(FindLowDensityIntervalsTest, ThresholdFractionWidensSelection) {
  std::vector<uint32_t> density{5, 5, 5, 1, 1, 5, 5, 0, 0, 0, 5, 5};
  DensityAnomalyOptions opts;
  opts.exclude_edges = false;
  opts.threshold_fraction = 0.25;  // threshold = 0 + 0.25 * 5 = 1.25
  std::vector<DensityAnomaly> anomalies =
      FindLowDensityIntervals(density, 0, opts);
  ASSERT_EQ(anomalies.size(), 2u);
  // Ranked by mean density: the zero run first.
  EXPECT_EQ(anomalies[0].span, (Interval{7, 10}));
  EXPECT_EQ(anomalies[1].span, (Interval{3, 5}));
}

TEST(FindLowDensityIntervalsTest, MinLengthFilters) {
  std::vector<uint32_t> density{3, 0, 3, 0, 0, 0, 3};
  DensityAnomalyOptions opts;
  opts.exclude_edges = false;
  opts.min_length = 2;
  std::vector<DensityAnomaly> anomalies =
      FindLowDensityIntervals(density, 0, opts);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].span, (Interval{3, 6}));
}

TEST(FindLowDensityIntervalsTest, EdgeExclusion) {
  // Zeros at the boundary are ramp artifacts; with exclusion the interior
  // minimum (value 1) wins.
  std::vector<uint32_t> density{0, 0, 4, 4, 1, 4, 4, 0, 0};
  DensityAnomalyOptions opts;
  opts.exclude_edges = true;
  std::vector<DensityAnomaly> anomalies =
      FindLowDensityIntervals(density, 2, opts);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].span, (Interval{4, 5}));
}

TEST(FindLowDensityIntervalsTest, EmptyAndDegenerateInputs) {
  DensityAnomalyOptions opts;
  EXPECT_TRUE(FindLowDensityIntervals({}, 10, opts).empty());
  // Window exclusion larger than the curve: falls back to the full curve.
  std::vector<uint32_t> tiny{1, 0, 1};
  opts.exclude_edges = true;
  EXPECT_EQ(FindLowDensityIntervals(tiny, 50, opts).size(), 1u);
}

TEST(FindLowDensityIntervalsTest, MaxAnomaliesCap) {
  std::vector<uint32_t> density{9, 0, 9, 0, 9, 0, 9, 0, 9, 0, 9};
  DensityAnomalyOptions opts;
  opts.exclude_edges = false;
  opts.max_anomalies = 3;
  EXPECT_EQ(FindLowDensityIntervals(density, 0, opts).size(), 3u);
}

TEST(DensityDetectorTest, FindsPlantedSineAnomaly) {
  LabeledSeries data = MakeSineWithAnomaly(2000, 100.0, 0.02, 1000, 120, 3);
  auto detection =
      DetectDensityAnomalies(data.series, data.recommended, {});
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  EXPECT_TRUE(HitsAnyTruth(detection->anomalies[0].span, data.anomalies,
                           data.recommended.window))
      << "top density anomaly at " << detection->anomalies[0].span;
}

TEST(DensityDetectorTest, FindsPlantedEcgAnomaly) {
  EcgOptions ecg;
  ecg.num_beats = 60;
  ecg.anomalous_beats = {35};
  LabeledSeries data = MakeEcg(ecg);
  SaxOptions sax = data.recommended;
  sax.paa_size = 6;
  sax.alphabet_size = 4;
  auto detection = DetectDensityAnomalies(data.series, sax, {});
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  EXPECT_TRUE(HitsAnyTruth(detection->anomalies[0].span, data.anomalies,
                           sax.window));
}

TEST(DensityDetectorTest, FindsHolidaysInPowerDemand) {
  PowerDemandOptions power;
  power.weeks = 30;
  power.holiday_days = {87};  // a Thursday
  LabeledSeries data = MakePowerDemand(power);
  auto detection =
      DetectDensityAnomalies(data.series, data.recommended, {});
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  EXPECT_TRUE(HitsAnyTruth(detection->anomalies[0].span, data.anomalies,
                           data.recommended.window));
}

TEST(DensityDetectorTest, PropagatesInvalidOptions) {
  std::vector<double> v(100, 0.0);
  SaxOptions bad;
  bad.window = 0;
  EXPECT_FALSE(DetectDensityAnomalies(v, bad, {}).ok());
}

TEST(DensityAnomalyOptionsTest, ValidateChecksRanges) {
  DensityAnomalyOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.threshold_fraction = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o.threshold_fraction = 1.0001;
  EXPECT_FALSE(o.Validate().ok());
  o.threshold_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(o.Validate().ok());
  o.threshold_fraction = 1.0;
  EXPECT_TRUE(o.Validate().ok());
  o.min_length = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.min_length = 3;
  EXPECT_TRUE(o.Validate().ok());
}

// Regression: the batch detector used to silently accept out-of-range
// density options and produce nonsense reports.
TEST(DensityDetectorTest, RejectsInvalidDensityOptions) {
  LabeledSeries data = MakeSineWithAnomaly(600, 40.0, 0.05, 300, 50, 9);
  SaxOptions sax;
  sax.window = 60;
  sax.paa_size = 4;
  sax.alphabet_size = 4;
  DensityAnomalyOptions bad;
  bad.threshold_fraction = -3.0;
  EXPECT_FALSE(DetectDensityAnomalies(data.series, sax, bad).ok());
  bad.threshold_fraction = 0.05;
  bad.min_length = 0;
  EXPECT_FALSE(DetectDensityAnomalies(data.series, sax, bad).ok());
}

TEST(DensityDetectorTest, DensityCurveLengthMatchesSeries) {
  LabeledSeries data = MakeSineWithAnomaly(800, 40.0, 0.05, 400, 50, 9);
  SaxOptions sax;
  sax.window = 80;
  sax.paa_size = 4;
  sax.alphabet_size = 4;
  auto detection = DetectDensityAnomalies(data.series, sax, {});
  ASSERT_TRUE(detection.ok());
  EXPECT_EQ(detection->decomposition.density.size(), data.series.size());
}

TEST(EvaluateTest, OverlapFractionAndRecall) {
  EXPECT_DOUBLE_EQ(OverlapFraction({0, 10}, {5, 15}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapFraction({0, 10}, {20, 30}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapFraction({0, 100}, {40, 60}), 1.0);
  EXPECT_DOUBLE_EQ(Recall({{0, 10}}, {{5, 8}, {50, 60}}), 0.5);
  EXPECT_DOUBLE_EQ(Recall({}, {{1, 2}}), 0.0);
  EXPECT_DOUBLE_EQ(Recall({{1, 2}}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Precision({{0, 10}, {90, 95}}, {{5, 8}}), 0.5);
  // Slack widens the truth interval; intervals are half-open so a gap of 2
  // needs slack 3 to produce a genuine overlap.
  EXPECT_TRUE(HitsAnyTruth({0, 5}, {{7, 9}}, 3));
  EXPECT_FALSE(HitsAnyTruth({0, 5}, {{7, 9}}, 1));
}

}  // namespace
}  // namespace gva
