#include "net/server.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/job_runner.h"
#include "core/parameter_profile.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "discord/hotsax.h"
#include "server/server_test_client.h"
#include "util/json.h"

namespace gva {
namespace {

using ::gva::testing::HttpGet;
using ::gva::testing::SendHttpRequest;
using ::gva::testing::TestHttpResponse;

/// A small series with one synthetic dropout anomaly, for the inline-series
/// submission path.
std::vector<double> MakeInlineSeries(size_t n) {
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.21);
  }
  for (size_t i = n / 2; i < n / 2 + 30 && i < n; ++i) {
    values[i] = 0.05;  // flatline: a discord against the sine background
  }
  return values;
}

std::string SeriesJson(const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += JsonNumber(values[i]);
  }
  out += "]";
  return out;
}

class ServerIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::AnomalyServerOptions options;  // port 0: ephemeral
    options.runner.slots = 3;
    options.runner.queue_capacity = 16;
    auto server = net::AnomalyServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  uint16_t port() const { return server_->port(); }

  /// Submits a job body, asserting 202; returns the assigned id.
  uint64_t Submit(const std::string& body, const std::string& tenant = "") {
    std::vector<std::pair<std::string, std::string>> headers;
    if (!tenant.empty()) {
      headers.emplace_back("X-Gva-Tenant", tenant);
    }
    const TestHttpResponse response =
        SendHttpRequest(port(), "POST", "/v1/jobs", body, headers);
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.status, 202) << response.body;
    auto doc = ParseJson(response.body);
    EXPECT_TRUE(doc.ok());
    const JsonValue* id = doc->Find("id");
    EXPECT_NE(id, nullptr);
    return static_cast<uint64_t>(id->as_number());
  }

  /// Polls GET /v1/jobs/{id} until the state is terminal; returns the
  /// parsed document.
  JsonValue AwaitJob(uint64_t id) {
    const std::string target = "/v1/jobs/" + std::to_string(id);
    for (;;) {
      const TestHttpResponse response = HttpGet(port(), target);
      EXPECT_TRUE(response.ok);
      EXPECT_EQ(response.status, 200) << response.body;
      auto doc = ParseJson(response.body);
      EXPECT_TRUE(doc.ok()) << response.body;
      const std::string state = doc->Find("state")->as_string();
      if (state != "queued" && state != "running") {
        return *std::move(doc);
      }
      std::this_thread::yield();
    }
  }

  std::unique_ptr<net::AnomalyServer> server_;
};

/// Asserts the job document's result block is bit-identical to a library
/// outcome: the resolved SAX triple, the distance-call count, and every
/// anomaly's rank/start/end/score. Scores compare with == — the JSON wire
/// format uses %.17g so the round trip must be bit-exact, not merely close.
void ExpectResultMatchesOutcome(const JsonValue& doc,
                                const JobOutcome& expected) {
  ASSERT_EQ(doc.Find("state")->as_string(), "done") << doc.Dump();
  const JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("detector")->as_string(), expected.detector);
  EXPECT_EQ(result->Find("window")->as_number(),
            static_cast<double>(expected.window));
  EXPECT_EQ(result->Find("paa")->as_number(),
            static_cast<double>(expected.paa));
  EXPECT_EQ(result->Find("alphabet")->as_number(),
            static_cast<double>(expected.alphabet));
  EXPECT_EQ(result->Find("distance_calls")->as_number(),
            static_cast<double>(expected.distance_calls));
  const JsonValue* anomalies = result->Find("anomalies");
  ASSERT_NE(anomalies, nullptr);
  ASSERT_EQ(anomalies->items().size(), expected.anomalies.size());
  for (size_t i = 0; i < expected.anomalies.size(); ++i) {
    const JsonValue& got = anomalies->items()[i];
    const JobAnomaly& want = expected.anomalies[i];
    EXPECT_EQ(got.Find("rank")->as_number(), static_cast<double>(want.rank));
    EXPECT_EQ(got.Find("start")->as_number(),
              static_cast<double>(want.start));
    EXPECT_EQ(got.Find("end")->as_number(), static_cast<double>(want.end));
    EXPECT_EQ(got.Find("score")->as_number(), want.score)
        << "score not bit-identical at rank " << i;
  }
}

// The acceptance gate: concurrent jobs from two tenants, results asserted
// bit-identical to the library entry points gva_cli calls. Two of the
// expectations are computed from the raw detector API (independently
// re-deriving the CLI's parameter resolution); the rest go through
// RunDetectionJob, the documented CLI-equivalent entry point — together
// they pin both the server's option plumbing and its JSON round trip.
TEST_F(ServerIntegrationTest, ConcurrentMultiTenantJobsBitIdenticalToCli) {
  const std::vector<double> ecg = MakeEcg().series.values();
  const std::vector<double> power = MakePowerDemand().series.values();
  const std::vector<double> inline_series = MakeInlineSeries(900);

  struct Case {
    std::string tenant;
    std::string body;
    JobSpec spec;  ///< CLI-equivalent spec for the expected outcome
    const std::vector<double>* series;
  };
  std::vector<Case> cases;
  auto add = [&cases](std::string tenant, std::string body, JobSpec spec,
                      const std::vector<double>* series) {
    cases.push_back(Case{std::move(tenant), std::move(body), std::move(spec),
                         series});
  };

  JobSpec spec;
  spec.detector = JobDetector::kHotSax;
  add("alpha", R"({"input": "demo:ecg", "detector": "hotsax"})", spec, &ecg);

  spec = JobSpec{};
  spec.detector = JobDetector::kHotSax;
  spec.window = 200;
  spec.paa = 5;
  spec.alphabet = 5;
  add("beta",
      R"({"input": "demo:ecg", "detector": "hotsax",
          "window": 200, "paa": 5, "alphabet": 5})",
      spec, &ecg);

  spec = JobSpec{};
  spec.detector = JobDetector::kRra;
  spec.approx = true;
  add("alpha", R"({"input": "demo:ecg", "detector": "rra", "approx": true})",
      spec, &ecg);

  spec = JobSpec{};
  spec.detector = JobDetector::kRra;
  spec.approx = true;
  spec.window = 500;
  spec.paa = 5;
  spec.alphabet = 5;
  spec.top_k = 2;
  add("beta",
      R"({"input": "demo:power", "detector": "rra", "approx": true,
          "window": 500, "paa": 5, "alphabet": 5, "top": 2})",
      spec, &power);

  spec = JobSpec{};
  spec.detector = JobDetector::kDensity;
  spec.window = 300;
  spec.paa = 6;
  spec.alphabet = 4;
  add("alpha",
      R"({"input": "demo:power", "detector": "density",
          "window": 300, "paa": 6, "alphabet": 4})",
      spec, &power);

  spec = JobSpec{};
  spec.detector = JobDetector::kDensity;
  spec.window = 120;
  spec.paa = 4;
  spec.alphabet = 4;
  spec.threshold = 0.1;
  add("beta",
      R"({"input": "demo:ecg", "detector": "density",
          "window": 120, "paa": 4, "alphabet": 4, "threshold": 0.1})",
      spec, &ecg);

  spec = JobSpec{};
  spec.detector = JobDetector::kEnsemble;
  spec.window = 150;
  spec.paa = 4;
  spec.alphabet = 6;
  add("alpha",
      R"({"input": "demo:ecg", "detector": "ensemble",
          "window": 150, "paa": 4, "alphabet": 6})",
      spec, &ecg);

  spec = JobSpec{};
  spec.detector = JobDetector::kBruteForce;
  spec.window = 50;
  spec.paa = 4;
  spec.alphabet = 4;
  add("beta",
      std::string(R"({"detector": "brute", "window": 50, "paa": 4,)") +
          R"( "alphabet": 4, "series": )" + SeriesJson(inline_series) + "}",
      spec, &inline_series);

  ASSERT_GE(cases.size(), 8u);

  // Submit all jobs concurrently: one client thread per job, two tenants
  // interleaved, against 3 server slots.
  std::vector<uint64_t> ids(cases.size(), 0);
  {
    std::vector<std::thread> submitters;
    for (size_t i = 0; i < cases.size(); ++i) {
      submitters.emplace_back([this, &cases, &ids, i] {
        ids[i] = Submit(cases[i].body, cases[i].tenant);
      });
    }
    for (std::thread& t : submitters) {
      t.join();
    }
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_NE(ids[i], 0u) << "submission " << i << " failed";
  }

  // Expected outcomes, computed while the server chews.
  const auto ecg_suggested = SuggestParameters(ecg);
  ASSERT_TRUE(ecg_suggested.ok());

  for (size_t i = 0; i < cases.size(); ++i) {
    const JsonValue doc = AwaitJob(ids[i]);
    EXPECT_EQ(doc.Find("tenant")->as_string(), cases[i].tenant);
    auto expected =
        RunDetectionJob(cases[i].spec, *cases[i].series, nullptr);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ExpectResultMatchesOutcome(doc, *expected);
  }

  // Independent re-derivation for the two hotsax jobs: straight to the
  // detector API, resolving parameters the way gva_cli does.
  {
    HotSaxOptions options;
    options.sax = *ecg_suggested;
    options.top_k = 3;
    options.num_threads = 1;
    auto direct = FindDiscordsHotSax(ecg, options);
    ASSERT_TRUE(direct.ok());
    const JsonValue doc = AwaitJob(ids[0]);
    const JsonValue* anomalies = doc.Find("result")->Find("anomalies");
    ASSERT_EQ(anomalies->items().size(), direct->discords.size());
    for (size_t i = 0; i < direct->discords.size(); ++i) {
      EXPECT_EQ(anomalies->items()[i].Find("start")->as_number(),
                static_cast<double>(direct->discords[i].position));
      EXPECT_EQ(anomalies->items()[i].Find("score")->as_number(),
                direct->discords[i].distance);
    }
  }
  {
    HotSaxOptions options;
    options.sax = *ecg_suggested;  // explicit fields overwrite below
    options.sax.window = 200;
    options.sax.paa_size = 5;
    options.sax.alphabet_size = 5;
    options.top_k = 3;
    options.num_threads = 1;
    auto direct = FindDiscordsHotSax(ecg, options);
    ASSERT_TRUE(direct.ok());
    const JsonValue doc = AwaitJob(ids[1]);
    const JsonValue* result = doc.Find("result");
    EXPECT_EQ(result->Find("window")->as_number(), 200.0);
    EXPECT_EQ(result->Find("distance_calls")->as_number(),
              static_cast<double>(direct->distance_calls));
    const JsonValue* anomalies = result->Find("anomalies");
    ASSERT_EQ(anomalies->items().size(), direct->discords.size());
    for (size_t i = 0; i < direct->discords.size(); ++i) {
      EXPECT_EQ(anomalies->items()[i].Find("score")->as_number(),
                direct->discords[i].distance);
    }
  }

  // Tenant-filtered listing sees exactly that tenant's jobs.
  size_t alpha_jobs = 0;
  for (const Case& c : cases) {
    alpha_jobs += c.tenant == "alpha" ? 1u : 0u;
  }
  const TestHttpResponse listing = HttpGet(port(), "/v1/jobs?tenant=alpha");
  ASSERT_EQ(listing.status, 200);
  auto listing_doc = ParseJson(listing.body);
  ASSERT_TRUE(listing_doc.ok());
  EXPECT_EQ(listing_doc->Find("jobs")->items().size(), alpha_jobs);
  for (const JsonValue& job : listing_doc->Find("jobs")->items()) {
    EXPECT_EQ(job.Find("tenant")->as_string(), "alpha");
  }
}

TEST_F(ServerIntegrationTest, StreamingSessionLifecycle) {
  // Create a session for tenant "acme".
  const std::vector<std::pair<std::string, std::string>> acme = {
      {"X-Gva-Tenant", "acme"}};
  TestHttpResponse response =
      SendHttpRequest(port(), "POST", "/v1/streams/s1",
                      R"({"window": 64, "paa": 4, "alphabet": 4})", acme);
  ASSERT_EQ(response.status, 201) << response.body;
  EXPECT_EQ(server_->stream_count(), 1u);

  // Creating it again collides; the same id under another tenant does not.
  response = SendHttpRequest(port(), "POST", "/v1/streams/s1", "{}", acme);
  EXPECT_EQ(response.status, 409);
  response = SendHttpRequest(port(), "POST", "/v1/streams/s1",
                             R"({"window": 64, "paa": 4, "alphabet": 4})");
  EXPECT_EQ(response.status, 201);
  EXPECT_EQ(server_->stream_count(), 2u);

  // Feed samples in two batches; the monitor accumulates.
  std::vector<double> wave(300);
  for (size_t i = 0; i < wave.size(); ++i) {
    wave[i] = std::sin(static_cast<double>(i) / 7.0);
  }
  const std::vector<double> first(wave.begin(), wave.begin() + 200);
  const std::vector<double> second(wave.begin() + 200, wave.end());
  response = SendHttpRequest(port(), "POST", "/v1/streams/s1/samples",
                             "{\"samples\": " + SeriesJson(first) + "}",
                             acme);
  ASSERT_EQ(response.status, 200) << response.body;
  response = SendHttpRequest(port(), "POST", "/v1/streams/s1/samples",
                             "{\"samples\": " + SeriesJson(second) + "}",
                             acme);
  ASSERT_EQ(response.status, 200);
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("samples_seen")->as_number(), 300.0);

  // The report reflects only acme's 300 samples, not the other tenant's
  // empty session.
  response = SendHttpRequest(port(), "GET", "/v1/streams/s1/report", "",
                             acme);
  ASSERT_EQ(response.status, 200) << response.body;
  doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("samples_seen")->as_number(), 300.0);
  ASSERT_NE(doc->Find("anomalies"), nullptr);

  // The default tenant's twin session never saw a sample: its report is a
  // precondition failure, proving the sessions are distinct.
  response = SendHttpRequest(port(), "GET", "/v1/streams/s1/report");
  EXPECT_EQ(response.status, 409);

  // Delete is scoped to the tenant too.
  response = SendHttpRequest(port(), "DELETE", "/v1/streams/s1", "", acme);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(server_->stream_count(), 1u);
  response = SendHttpRequest(port(), "DELETE", "/v1/streams/s1", "", acme);
  EXPECT_EQ(response.status, 404);  // already gone
  response = SendHttpRequest(port(), "DELETE", "/v1/streams/s1");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(server_->stream_count(), 0u);
}

TEST_F(ServerIntegrationTest, SvgReportForFinishedJob) {
  const uint64_t id = Submit(
      R"({"detector": "density", "window": 40, "paa": 4, "alphabet": 4,
          "series": )" +
      SeriesJson(MakeInlineSeries(400)) + "}");
  AwaitJob(id);
  const TestHttpResponse svg =
      HttpGet(port(), "/v1/jobs/" + std::to_string(id) + "/svg");
  ASSERT_EQ(svg.status, 200);
  const std::string* type = svg.FindHeader("content-type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(*type, "image/svg+xml");
  EXPECT_NE(svg.body.find("<svg"), std::string::npos);
}

TEST_F(ServerIntegrationTest, TelemetrySurfaceSharesTheListener) {
  const TestHttpResponse health = HttpGet(port(), "/healthz");
  ASSERT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"server_slots\": 3"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"server_queue_capacity\": 16"),
            std::string::npos);

  const TestHttpResponse metrics = HttpGet(port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);

  // The query-string normalization regression: a scraper appending ?x=1
  // must hit the same route (this was broken before the parser-level fix).
  const TestHttpResponse with_query = HttpGet(port(), "/metrics?x=1");
  EXPECT_EQ(with_query.status, 200);
  const TestHttpResponse health_query = HttpGet(port(), "/healthz?probe=1");
  EXPECT_EQ(health_query.status, 200);
  EXPECT_NE(health_query.body.find("\"status\": \"ok\""), std::string::npos);
}

TEST_F(ServerIntegrationTest, MalformedSubmissionsAreRejected) {
  struct BadCase {
    const char* body;
    int status;
  };
  const BadCase bad_cases[] = {
      {"not json", 400},
      {R"({"detector": "hotsax"})", 400},            // no input at all
      {R"({"input": "demo:ecg", "series": [1]})", 400},  // both inputs
      {R"({"input": "demo:nope"})", 404},            // unknown demo
      {R"({"input": "demo:ecg", "detector": "psychic"})", 404},
      {R"({"input": "demo:ecg", "widnow": 100})", 400},  // typoed field
      {R"({"series": []})", 400},                    // empty series
      {R"({"input": "demo:ecg", "window": -5})", 400},
      {R"({"input": "demo:ecg", "window": 1.5})", 400},
  };
  for (const BadCase& bad : bad_cases) {
    const TestHttpResponse response =
        SendHttpRequest(port(), "POST", "/v1/jobs", bad.body);
    EXPECT_EQ(response.status, bad.status) << bad.body << "\n"
                                           << response.body;
  }
  EXPECT_EQ(server_->runner().jobs_accepted(), 0u);
}

// Route-table unit tests straight through HandleRequest — no sockets, so
// they pin routing decisions independent of transport.
TEST_F(ServerIntegrationTest, RouteTableEdges) {
  auto request = [](std::string method, std::string target,
                    std::string body = "") {
    net::HttpRequest r;
    r.method = std::move(method);
    r.target = target;
    net::NormalizeTarget(r.target, &r.path, &r.query);
    r.body = std::move(body);
    return r;
  };

  EXPECT_EQ(server_->HandleRequest(request("GET", "/nope")).status, 404);
  EXPECT_EQ(server_->HandleRequest(request("PATCH", "/v1/jobs")).status, 405);
  EXPECT_EQ(server_->HandleRequest(request("POST", "/v1/jobs/1")).status,
            405);
  EXPECT_EQ(server_->HandleRequest(request("GET", "/v1/jobs/999")).status,
            404);
  EXPECT_EQ(server_->HandleRequest(request("GET", "/v1/jobs/abc")).status,
            404);
  EXPECT_EQ(server_->HandleRequest(request("GET", "/v1/jobs/1/bogus")).status,
            404);
  EXPECT_EQ(server_->HandleRequest(request("DELETE", "/v1/jobs/7")).status,
            404);
  EXPECT_EQ(
      server_->HandleRequest(request("GET", "/v1/streams/void/report")).status,
      404);
  EXPECT_EQ(
      server_->HandleRequest(request("POST", "/v1/streams/bad name", "{}"))
          .status,
      400);
  EXPECT_EQ(
      server_->HandleRequest(request("PATCH", "/v1/streams/s", "{}")).status,
      405);
  EXPECT_EQ(server_->HandleRequest(request("GET", "/v1/admin/shutdown"))
                .status,
            405);
  // Unfinished job: the SVG route refuses rather than rendering a stub.
  net::HttpRequest submit = request(
      "POST", "/v1/jobs",
      R"({"detector": "rra", "window": 64, "paa": 4, "alphabet": 4,
          "series": )" +
          SeriesJson(MakeInlineSeries(4000)) + "}");
  const net::HttpResponse accepted = server_->HandleRequest(submit);
  ASSERT_EQ(accepted.status, 202);
  auto doc = ParseJson(accepted.body);
  ASSERT_TRUE(doc.ok());
  const uint64_t id = static_cast<uint64_t>(doc->Find("id")->as_number());
  const std::string job_path = "/v1/jobs/" + std::to_string(id);
  const net::HttpResponse svg =
      server_->HandleRequest(request("GET", job_path + "/svg"));
  if (svg.status != 200) {
    EXPECT_EQ(svg.status, 409);  // still queued/running
  }
  AwaitJob(id);
}

// An admin shutdown request must be acknowledged, raise the flag, and make
// the event fd readable — without tearing the listener down itself (the
// daemon's main() owns the Stop() call, so the 202 can flush first).
TEST_F(ServerIntegrationTest, AdminShutdownSignalsTheEventFd) {
  ASSERT_FALSE(server_->shutdown_requested());
  const TestHttpResponse response =
      SendHttpRequest(port(), "POST", "/v1/admin/shutdown");
  ASSERT_EQ(response.status, 202);
  EXPECT_TRUE(server_->shutdown_requested());

  char byte = 0;
  EXPECT_EQ(::read(server_->shutdown_event_fd(), &byte, 1), 1);

  // The loop is still alive until Stop(): the health route keeps serving.
  EXPECT_EQ(HttpGet(port(), "/healthz").status, 200);
}

}  // namespace
}  // namespace gva
